//! `pos` — the command-line face of the toolchain.
//!
//! Mirrors the workflow of Appendix A: scaffold an experiment directory,
//! run it on a (simulated) testbed, evaluate the result tree into figures,
//! and publish everything as a release bundle with a website.
//!
//! ```text
//! pos init <dir>                        scaffold the case-study experiment
//! pos run <dir> [options]               execute the experiment
//!     --results <root>     result tree root       (default: ./results)
//!     --testbed pos|vpos   hardware or VM testbed (default: pos)
//!     --seed <n>           testbed seed           (default: 1799)
//! pos resume <result-dir> [options]     pick up an interrupted campaign
//!     --testbed pos|vpos   hardware or VM testbed (default: pos)
//! pos serve [options]                   crash-surviving campaign daemon
//!     --state <dir>        ledger + snapshots     (default: ./serve-state)
//!     --listen <addr>      HTTP endpoint          (default: 127.0.0.1:0)
//! pos queue ... --daemon <addr>         speak to a running daemon
//! pos dag init|run|resume|viz ...       experiment DAGs (scatter/gather stages)
//! pos fsck <result-dir>                 verify journal + per-run checksums
//! pos scrub <result-dir> [--repair]     detect (and heal) bit rot
//! pos eval <result-dir> [--out <dir>]   parse, aggregate, plot
//! pos publish <result-dir> [options]    bundle + manifest + website
//!     --out <dir>          release directory      (default: ./release)
//!     --tar <file>         additionally write a tar archive
//!     --title <text>       website title
//! pos table1                            print the Table 1 comparison
//! ```
//!
//! Argument parsing is deliberately hand-rolled: the CLI's needs are a
//! dozen flags, not a dependency.

use pos::core::commands::case_study_testbed;
use pos::core::controller::{Controller, ControllerError, ExperimentOutcome, Progress, RunOptions};
use pos::core::experiment::{linux_router_experiment, ExperimentSpec};
use pos::core::journal::{Journal, JournalRecord, JOURNAL_FILE, LEDGER_FILE};
use pos::core::vfs::{FaultPlan, Vfs};
use pos::dag::DagSpec;
use pos::eval::loader::ResultSet;
use pos::eval::plot::PlotSpec;
use pos::publish::bundle::{verify_dir, verify_runs, Bundle};
use pos::publish::website::{attach_site, SiteInfo};
use pos::sched::{
    resume_parallel, run_parallel, CompletionOutcome, LaneFaultPlan, LaneFlavor, LaneRecovery,
    ParallelOptions, ParallelOutcome, SubmissionQueue,
};
use pos::serve::{
    http_request, signal as serve_signal, DrainAck, ErrorBody, HttpServer, ServeEngine,
    ServeOptions, ServeStatus, SubmitAck, SubmitRequest,
};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// How a command finished. `Degraded` is the contract for a campaign
/// that *completed* — full result tree, sealed journals — but recorded
/// failed or quarantined runs: exit code 3, distinct from both success
/// (0) and error/abort (1), so automation can tell "usable but
/// imperfect" from "dead".
enum Completion {
    Clean,
    Degraded,
}

/// Exit code for a degraded-but-complete campaign.
const EXIT_DEGRADED: u8 = 3;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("init") => cmd_init(&args[1..]).map(|()| Completion::Clean),
        Some("run") => cmd_run(&args[1..]),
        Some("resume") => cmd_resume(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("queue") => cmd_queue(&args[1..]),
        Some("dag") => cmd_dag(&args[1..]),
        Some("fsck") => cmd_fsck(&args[1..]).map(|()| Completion::Clean),
        Some("scrub") => cmd_scrub(&args[1..]),
        Some("eval") => cmd_eval(&args[1..]).map(|()| Completion::Clean),
        Some("publish") => cmd_publish(&args[1..]).map(|()| Completion::Clean),
        Some("table1") => {
            print!("{}", pos::core::requirements::render_table1());
            Ok(Completion::Clean)
        }
        Some("help") | Some("--help") | Some("-h") | None => {
            print!("{}", usage());
            Ok(Completion::Clean)
        }
        Some(other) => Err(format!("unknown command `{other}`\n\n{}", usage())),
    };
    match result {
        Ok(Completion::Clean) => ExitCode::SUCCESS,
        Ok(Completion::Degraded) => {
            eprintln!(
                "pos: completed DEGRADED (failed/quarantined runs, or a campaign \
                 checkpointed by a storage fault; see messages above); \
                 exit code {EXIT_DEGRADED}"
            );
            ExitCode::from(EXIT_DEGRADED)
        }
        Err(msg) => {
            eprintln!("pos: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn usage() -> &'static str {
    "pos — reproducible network experiments (CoNEXT '21 reproduction)\n\
     \n\
     usage:\n\
     \x20 pos init <dir>                     scaffold the case-study experiment\n\
     \x20 pos run <dir> [--results <root>] [--testbed pos|vpos] [--seed <n>]\n\
     \x20         [--lanes <n>] [--site-replicas <n>]   parallel worker lanes\n\
     \x20         [--max-run-retries <n>] [--lane-grace <f>]\n\
     \x20         [--lane-recovery redistribute|replace] [--poison-threshold <n>]\n\
     \x20         [--lane-faults <json-file>]            injected lane faults\n\
     \x20         [--disk-faults <json-file>]            injected storage faults\n\
     \x20         exit codes: 0 ok, 1 error, 3 degraded completion\n\
     \x20         (3 also means: out of disk space, checkpointed — resumable)\n\
     \x20 pos resume <result-dir> [--testbed pos|vpos] [--disk-faults <json-file>]\n\
     \x20 pos serve [--state <dir>] [--results <root>] [--listen <addr>]\n\
     \x20         [--capacity <n>] [--user-backlog <n>] [--seed <n>] [--lanes <n>]\n\
     \x20         crash-surviving daemon: journals before acknowledging, survives\n\
     \x20         kill -9 + restart; SIGTERM drains (twice: checkpoint in-flight)\n\
     \x20         exit codes: 0 everything completed clean, 3 otherwise\n\
     \x20 pos queue submit <exp-dir> [--user <u>] [--priority <n>] [--queue <dir>]\n\
     \x20         [--daemon <addr>] [--token <t>]    submit over HTTP to pos serve\n\
     \x20 pos queue status [--queue <dir>] [--daemon <addr>]\n\
     \x20 pos queue drain [--queue <dir>] [--results <root>] [--seed <n>] [--lanes <n>]\n\
     \x20 pos queue drain --daemon <addr>    ask a running daemon to drain\n\
     \x20 pos dag init <dir>                 scaffold experiment + 3-stage dag.yml\n\
     \x20 pos dag run <dir> [--results <root>] [--seed <n>] [--lanes <n>]\n\
     \x20         [--testbed pos|vpos] [--site-replicas <n>]\n\
     \x20         [--target in-process|sim-batch] [--partition <n>]\n\
     \x20         [--disk-faults <json-file>]  execute an experiment DAG\n\
     \x20 pos dag resume <result-dir> [--seed <n>] [--lanes <n>] [same flags]\n\
     \x20 pos dag viz <dir> [--format ascii|dot]   render DAG (+ testbed) graph\n\
     \x20 pos fsck <result-dir | serve-state> verify journals + checksums / ledger\n\
     \x20         (DAG trees are audited per node: stranded scatter groups,\n\
     \x20          unsealed gathers, subtree digests, inner campaign fsck)\n\
     \x20 pos scrub <result-dir> [--repair] [--json <file>]   detect/heal bit rot\n\
     \x20 pos eval <result-dir> [--out <dir>]\n\
     \x20 pos publish <result-dir> [--out <dir>] [--tar <file>] [--title <text>]\n\
     \x20 pos table1                         print the testbed comparison\n"
}

/// Splits `args` into positionals and `--flag value` options.
fn parse_opts(
    args: &[String],
) -> Result<(Vec<&str>, std::collections::BTreeMap<&str, &str>), String> {
    let mut positional = Vec::new();
    let mut opts = std::collections::BTreeMap::new();
    let mut i = 0;
    while i < args.len() {
        if let Some(flag) = args[i].strip_prefix("--") {
            let value = args
                .get(i + 1)
                .ok_or_else(|| format!("--{flag} needs a value"))?;
            opts.insert(flag, value.as_str());
            i += 2;
        } else {
            positional.push(args[i].as_str());
            i += 1;
        }
    }
    Ok((positional, opts))
}

fn cmd_init(args: &[String]) -> Result<(), String> {
    let (pos_args, _) = parse_opts(args)?;
    let [dir] = pos_args.as_slice() else {
        return Err("usage: pos init <dir>".into());
    };
    let dir = Path::new(dir);
    if dir.join("experiment.yml").exists() {
        return Err(format!("{} already holds an experiment", dir.display()));
    }
    let spec = linux_router_experiment("vriga", "vtartu", 30, 10);
    spec.to_dir(dir).map_err(|e| e.to_string())?;
    println!(
        "scaffolded `{}` ({} loop-variable combinations) in {}",
        spec.name,
        pos::core::loopvars::cross_product_size(&spec.loop_vars).unwrap_or(0),
        dir.display()
    );
    println!(
        "edit the scripts/variables, then: pos run {}",
        dir.display()
    );
    Ok(())
}

fn cmd_run(args: &[String]) -> Result<Completion, String> {
    let (pos_args, opts) = parse_opts(args)?;
    let [dir] = pos_args.as_slice() else {
        return Err("usage: pos run <experiment-dir> [options]".into());
    };
    let spec = ExperimentSpec::from_dir(Path::new(dir))
        .map_err(|e| format!("cannot load experiment from {dir}: {e}"))?;
    spec.validate().map_err(|e| e.to_string())?;

    let results = PathBuf::from(opts.get("results").copied().unwrap_or("results"));
    let seed: u64 = opts
        .get("seed")
        .map(|s| s.parse().map_err(|_| format!("bad --seed {s}")))
        .transpose()?
        .unwrap_or(0x707);
    let virtualized = match opts.get("testbed").copied().unwrap_or("pos") {
        "pos" => false,
        "vpos" => true,
        other => return Err(format!("--testbed must be pos or vpos, got {other}")),
    };

    let lanes: usize = opts
        .get("lanes")
        .map(|s| s.parse().map_err(|_| format!("bad --lanes {s}")))
        .transpose()?
        .unwrap_or(1);
    if lanes == 0 {
        return Err("--lanes must be at least 1".into());
    }
    let site_replicas: usize = opts
        .get("site-replicas")
        .map(|s| s.parse().map_err(|_| format!("bad --site-replicas {s}")))
        .transpose()?
        .unwrap_or(lanes);

    let mut run_opts = RunOptions::new(&results);
    run_opts.testbed_flavor = if virtualized { "vpos" } else { "pos" }.into();
    if let Some(&n) = opts.get("max-run-retries") {
        run_opts.max_run_retries = n
            .parse()
            .map_err(|_| format!("bad --max-run-retries {n}"))?;
    }
    if let Some(&file) = opts.get("disk-faults") {
        run_opts.vfs = load_disk_faults(file)?;
    }

    let mut supervisor = pos::sched::SupervisorOptions::default();
    if let Some(&g) = opts.get("lane-grace") {
        supervisor.grace_factor = g.parse().map_err(|_| format!("bad --lane-grace {g}"))?;
        if !supervisor.grace_factor.is_finite() || supervisor.grace_factor <= 0.0 {
            return Err(format!("--lane-grace must be a positive factor, got {g}"));
        }
    }
    if let Some(&k) = opts.get("poison-threshold") {
        supervisor.poison_threshold = k
            .parse()
            .map_err(|_| format!("bad --poison-threshold {k}"))?;
        if supervisor.poison_threshold == 0 {
            return Err("--poison-threshold must be at least 1".into());
        }
    }
    if let Some(&policy) = opts.get("lane-recovery") {
        supervisor.recovery = match policy {
            "redistribute" => LaneRecovery::Redistribute,
            "replace" | "replacement" => LaneRecovery::Replacement,
            other => {
                return Err(format!(
                    "--lane-recovery must be redistribute or replace, got {other}"
                ))
            }
        };
    }
    if let Some(&file) = opts.get("lane-faults") {
        let json = std::fs::read_to_string(file)
            .map_err(|e| format!("cannot read --lane-faults {file}: {e}"))?;
        supervisor.fault_plan = serde_json::from_str::<LaneFaultPlan>(&json)
            .map_err(|e| format!("{file} is not a valid lane fault plan: {e}"))?;
    }

    // A fault plan needs the supervisor, so even a single lane routes
    // through the parallel path (this is what the byte-identity contract
    // compares against: `--lanes 1` under the same fault plan).
    let supervised = lanes > 1 || !supervisor.fault_plan.is_empty();
    if supervised {
        if virtualized {
            return Err(
                "--lanes and --lane-faults need the pos testbed; lanes beyond \
                 --site-replicas run on vpos clones automatically"
                    .into(),
            );
        }
        // Validate construction once up front; replica lanes rebuild the
        // same testbed and cannot fail differently.
        case_study_testbed(&spec, seed, false, false).map_err(|e| e.to_string())?;
        println!(
            "running `{}` on {lanes} lanes ({site_replicas} bare-metal replica sets, seed {seed}, {} runs)...",
            spec.name,
            pos::core::loopvars::cross_product_size(&spec.loop_vars).unwrap_or(0)
        );
        let popts = ParallelOptions {
            lanes,
            site_replicas,
            supervisor,
        };
        let out = match run_parallel(&spec, &run_opts, &popts, &mut |_, flavor| {
            case_study_testbed(&spec, seed, flavor == LaneFlavor::Virtual, true)
        }) {
            Ok(out) => out,
            Err(e) => return checkpointed_or_error(e, &resume_hint(&results)),
        };
        print_parallel_outcome(&out);
        return Ok(completion_of(&out.outcome));
    }

    let mut tb = case_study_testbed(&spec, seed, virtualized, false).map_err(|e| e.to_string())?;
    println!(
        "running `{}` on the {} testbed (seed {seed}, {} runs)...",
        spec.name,
        if virtualized { "vpos" } else { "pos" },
        pos::core::loopvars::cross_product_size(&spec.loop_vars).unwrap_or(0)
    );
    let outcome = match Controller::new(&mut tb)
        .with_progress(print_progress)
        .run_experiment(&spec, &run_opts)
    {
        Ok(outcome) => outcome,
        Err(e) => return checkpointed_or_error(e, &resume_hint(&results)),
    };
    print_outcome(&outcome);
    Ok(completion_of(&outcome))
}

/// Loads a serialized [`FaultPlan`] and arms a faulty [`Vfs`] with it.
fn load_disk_faults(file: &str) -> Result<Vfs, String> {
    let json = std::fs::read_to_string(file)
        .map_err(|e| format!("cannot read --disk-faults {file}: {e}"))?;
    let plan: FaultPlan = serde_json::from_str(&json)
        .map_err(|e| format!("{file} is not a valid disk fault plan: {e}"))?;
    Vfs::faulty(plan).map_err(|e| format!("{file}: {e}"))
}

/// The checkpoint contract: running out of disk space or being
/// cooperatively canceled (a draining daemon's second SIGTERM) is a
/// *graceful* degradation, not an abort. The write-ahead journal
/// guarantees the tree is consistent at the last appended record, so
/// the campaign is a checkpoint — `pos resume` completes it once space
/// returns or the urgency passes. Any other error stays a hard error
/// (exit 1).
fn checkpointed_or_error(e: ControllerError, resume_at: &str) -> Result<Completion, String> {
    if !e.is_checkpoint() {
        return Err(e.to_string());
    }
    eprintln!("pos: checkpointed: {e}");
    eprintln!(
        "pos: campaign checkpointed at the last consistent journal boundary; \
         run `pos resume {resume_at}` to complete"
    );
    Ok(Completion::Degraded)
}

/// Best-effort pointer at the freshest campaign under a result root,
/// for the resume hint a storage-full `pos run` prints. The store nests
/// trees as `<root>/<user>/<experiment>/vt-<time>/`, each holding a
/// journal.
fn resume_hint(root: &Path) -> String {
    fn walk(dir: &Path, found: &mut Vec<PathBuf>) {
        let Ok(entries) = std::fs::read_dir(dir) else {
            return;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            if !path.is_dir() {
                continue;
            }
            if path.join(JOURNAL_FILE).exists() {
                found.push(path);
            } else {
                walk(&path, found);
            }
        }
    }
    let mut found = Vec::new();
    walk(root, &mut found);
    found
        .into_iter()
        .max()
        .map(|p| p.display().to_string())
        .unwrap_or_else(|| format!("{}", root.display()))
}

/// The degraded-exit-code contract: a campaign that completed but
/// recorded failed or quarantined runs exits with code 3.
fn completion_of(outcome: &ExperimentOutcome) -> Completion {
    if outcome.failed_runs.is_empty() && outcome.quarantined_runs.is_empty() {
        Completion::Clean
    } else {
        Completion::Degraded
    }
}

/// The parallel variant of [`print_outcome`]: per-run lines come from the
/// merged records (the lanes have no live progress callback), followed by
/// the lane and speedup summary.
fn print_parallel_outcome(out: &ParallelOutcome) {
    for r in &out.outcome.runs {
        println!(
            "  run {}/{} {}",
            r.params.index + 1,
            out.outcome.runs.len(),
            if r.success { "ok" } else { "FAILED" }
        );
    }
    println!(
        "lanes: {} [{}], runs per lane {:?}",
        out.lanes,
        out.flavors.join(","),
        out.lane_runs.iter().map(Vec::len).collect::<Vec<_>>()
    );
    println!(
        "virtual time: {} sequential -> {} parallel ({:.2}x speedup)",
        out.sequential_elapsed,
        out.parallel_elapsed,
        out.speedup()
    );
    if !out.retired_lanes.is_empty() || out.replanned_lanes > 0 {
        println!(
            "failover: {} lane(s) retired, {} replacement lane(s), \
             {} retry step(s), {} failover time",
            out.retired_lanes.len(),
            out.replanned_lanes,
            out.ladder_retries,
            out.failover_time
        );
        for (lane, reason) in &out.retired_lanes {
            println!("  lane {lane} retired: {reason}");
        }
    }
    if !out.outcome.quarantined_runs.is_empty() {
        println!(
            "quarantined runs: {:?} (forensics under quarantine/)",
            out.outcome.quarantined_runs
        );
    }
    print_outcome(&out.outcome);
}

/// One line per lifecycle event — the paper's progress bar.
fn print_progress(p: &Progress) {
    match p {
        Progress::HostReady { host } => println!("  {host} booted"),
        Progress::SetupDone => println!("  setup phase complete"),
        Progress::RunDone {
            index,
            total,
            success,
            ..
        } => {
            println!(
                "  run {}/{} {}",
                index + 1,
                total,
                if *success { "ok" } else { "FAILED" }
            );
        }
        Progress::RunSkipped { index, total } => {
            println!("  run {}/{} ok (verified, skipped)", index + 1, total);
        }
        Progress::PowerRetry {
            host,
            attempt,
            delay,
        } => {
            println!("  {host}: power command retry {attempt} (waited {delay})");
        }
        Progress::RunRetry {
            index,
            attempt,
            delay,
        } => {
            println!(
                "  run {}: attempt {attempt} failed, retrying after {delay}",
                index + 1
            );
        }
        Progress::HostRecovering { host } => println!("  {host}: unresponsive, recovering"),
        Progress::HostRecovered { host } => println!("  {host}: recovered"),
        Progress::HostQuarantined { host } => println!("  {host}: QUARANTINED"),
    }
}

fn print_outcome(outcome: &ExperimentOutcome) {
    println!(
        "done: {}/{} runs, {} recoveries, {} virtual time",
        outcome.successes(),
        outcome.runs.len(),
        outcome.recoveries,
        outcome.finished - outcome.started
    );
    println!("result tree: {}", outcome.result_dir.display());
    println!("next: pos eval {}", outcome.result_dir.display());
}

fn cmd_resume(args: &[String]) -> Result<Completion, String> {
    let (pos_args, opts) = parse_opts(args)?;
    let [dir] = pos_args.as_slice() else {
        return Err(
            "usage: pos resume <result-dir> [--testbed pos|vpos] [--disk-faults <file>]".into(),
        );
    };
    let result_dir = Path::new(dir);
    let vfs = match opts.get("disk-faults") {
        Some(&file) => load_disk_faults(file)?,
        None => Vfs::real(),
    };

    // The campaign's identity lives in its journal: the testbed seed and
    // flavor to rebuild with, and the spec digest resume re-checks for us.
    let replay = Journal::replay(&result_dir.join(JOURNAL_FILE)).map_err(|e| e.to_string())?;
    let Some(JournalRecord::CampaignStarted {
        seed,
        total_runs,
        testbed,
        ..
    }) = replay.campaign_start()
    else {
        return Err(format!("{dir}: journal has no CampaignStarted record"));
    };
    let virtualized = match testbed.as_str() {
        "pos" => false,
        "vpos" => true,
        other => return Err(format!("{dir}: journal records unknown testbed `{other}`")),
    };
    if let Some(&flag) = opts.get("testbed") {
        if flag != testbed {
            return Err(format!(
                "campaign ran on the `{testbed}` testbed; drop --testbed or pass --testbed {testbed}"
            ));
        }
    }
    if replay.finished() {
        // A finished campaign is only off-limits while it is *intact*;
        // resuming a damaged one is how bit rot gets repaired.
        let report = pos::core::fsck::fsck(result_dir).map_err(|e| e.to_string())?;
        if report.is_clean() {
            return Err(format!(
                "{dir}: campaign already finished, nothing to resume"
            ));
        }
        println!(
            "campaign finished but {} run(s) fail verification; repairing",
            report.broken_runs().len()
        );
    }
    let spec = ExperimentSpec::from_dir(&result_dir.join("experiment"))
        .map_err(|e| format!("cannot load stored experiment from {dir}/experiment: {e}"))?;
    spec.validate().map_err(|e| e.to_string())?;

    // A LanePlan record marks a parallel campaign: route to the scheduler
    // resume, which replays every lane journal.
    if let Some(JournalRecord::LanePlan { lanes, .. }) = replay
        .records
        .iter()
        .find(|r| matches!(r, JournalRecord::LanePlan { .. }))
    {
        let seed = *seed;
        case_study_testbed(&spec, seed, false, false).map_err(|e| e.to_string())?;
        println!(
            "resuming `{}` on {lanes} lanes (seed {seed}, {total_runs} runs planned)...",
            spec.name,
        );
        let mut run_opts = RunOptions::new(result_dir);
        run_opts.testbed_flavor = testbed.clone();
        run_opts.vfs = vfs;
        let out = match resume_parallel(result_dir, &spec, &run_opts, &mut |_, flavor| {
            case_study_testbed(&spec, seed, flavor == LaneFlavor::Virtual, true)
        }) {
            Ok(out) => out,
            Err(e) => return checkpointed_or_error(e, dir),
        };
        print_parallel_outcome(&out);
        return Ok(completion_of(&out.outcome));
    }

    let mut tb = case_study_testbed(&spec, *seed, virtualized, true).map_err(|e| e.to_string())?;
    println!(
        "resuming `{}` on the {} testbed (seed {seed}, {total_runs} runs planned)...",
        spec.name,
        if virtualized { "vpos" } else { "pos" },
    );
    // result_root is unused on resume (the tree already exists) but the
    // options still carry timeouts and failure policy.
    let mut run_opts = RunOptions::new(result_dir);
    run_opts.testbed_flavor = testbed.clone();
    run_opts.vfs = vfs;
    let outcome = match Controller::new(&mut tb)
        .with_progress(print_progress)
        .resume_experiment(result_dir, &spec, &run_opts)
    {
        Ok(outcome) => outcome,
        Err(e) => return checkpointed_or_error(e, dir),
    };
    print_outcome(&outcome);
    Ok(completion_of(&outcome))
}

/// Multi-campaign admission: `pos queue submit|status|drain`.
///
/// The queue state lives in `<queue-dir>/queue.json` (default `queue/`),
/// so submissions survive between invocations; `drain` closes the queue
/// and runs every admitted campaign to completion, preemption-free, in
/// fair-share order. The ledger is persisted through the same atomic
/// write (temp sibling → fsync → rename → dir fsync) as every result
/// artifact: a crash mid-save never leaves a torn queue.
/// `pos serve` — the long-running, crash-surviving campaign daemon.
///
/// Every state transition is journaled to the queue ledger *before* it
/// is acknowledged, so a `kill -9` at any point restarts into a
/// consistent state: re-running `pos serve` with the same `--state`
/// replays the ledger, resumes the in-flight campaign, and keeps
/// serving the surviving backlog. SIGTERM drains (finish the in-flight
/// campaign, keep the backlog durable); a second SIGTERM checkpoints
/// the in-flight campaign too. Exit code 0 means every accepted
/// submission completed cleanly; 3 means something is left pending,
/// degraded, failed, or checkpointed.
fn cmd_serve(args: &[String]) -> Result<Completion, String> {
    let (pos_args, opts) = parse_opts(args)?;
    if !pos_args.is_empty() {
        return Err(
            "usage: pos serve [--state <dir>] [--results <root>] [--listen <addr>] \
             [--capacity <n>] [--user-backlog <n>] [--seed <n>] [--lanes <n>]"
                .into(),
        );
    }
    let state = opts.get("state").copied().unwrap_or("serve-state");
    let results = opts.get("results").copied().unwrap_or("results");
    let listen = opts.get("listen").copied().unwrap_or("127.0.0.1:0");
    let mut sopts = ServeOptions::new(state, results);
    if let Some(s) = opts.get("capacity") {
        sopts.capacity = s.parse().map_err(|_| format!("bad --capacity {s}"))?;
    }
    if let Some(s) = opts.get("user-backlog") {
        sopts.user_backlog = s.parse().map_err(|_| format!("bad --user-backlog {s}"))?;
    }
    if let Some(s) = opts.get("seed") {
        sopts.seed = s.parse().map_err(|_| format!("bad --seed {s}"))?;
    }
    if let Some(s) = opts.get("lanes") {
        sopts.lanes = s.parse().map_err(|_| format!("bad --lanes {s}"))?;
    }
    serve_signal::install();
    let engine = Arc::new(ServeEngine::start(sopts).map_err(|e| e.to_string())?);
    let server = HttpServer::bind(listen).map_err(|e| e.to_string())?;
    let addr = server.addr();
    // Scripts discover an ephemeral port from `<state>/addr`; humans
    // from stdout — flushed explicitly, because a daemon whose stdout
    // is a pipe block-buffers and the announcement would sit unseen.
    std::fs::write(Path::new(state).join("addr"), addr.to_string()).map_err(|e| e.to_string())?;
    println!("pos-serve: listening on {addr}");
    std::io::stdout().flush().map_err(|e| e.to_string())?;
    let stop = Arc::new(AtomicBool::new(false));
    let handle = server.spawn(engine.clone(), stop.clone());
    let report = engine.run_loop(
        serve_signal::termination_requests,
        Duration::from_millis(25),
    );
    stop.store(true, Ordering::SeqCst);
    let _ = handle.join();
    let report = report.map_err(|e| e.to_string())?;
    println!(
        "pos-serve: drained ({} completed, {} degraded, {} failed, {} checkpointed, \
         {} pending, {} in flight)",
        report.totals.completed,
        report.totals.completed_degraded,
        report.totals.failed,
        report.totals.checkpointed,
        report.pending,
        report.in_flight,
    );
    if report.clean {
        Ok(Completion::Clean)
    } else {
        Ok(Completion::Degraded)
    }
}

/// `pos queue … --daemon <addr>` — the same verbs, spoken over HTTP to
/// a running `pos serve` daemon instead of the on-disk queue file.
fn cmd_queue_daemon(
    addr: &str,
    pos_args: &[&str],
    opts: &std::collections::BTreeMap<&str, &str>,
) -> Result<Completion, String> {
    let unreachable = |e: std::io::Error| format!("daemon at {addr} unreachable: {e}");
    match pos_args {
        ["submit", exp_dir] => {
            // The daemon resolves experiment paths relative to *its*
            // working directory; canonicalize so submitting from any
            // directory works.
            let exp_dir = std::fs::canonicalize(exp_dir)
                .map_err(|e| format!("cannot resolve {exp_dir}: {e}"))?;
            let req = SubmitRequest {
                user: opts.get("user").map(|s| s.to_string()),
                experiment: exp_dir.display().to_string(),
                priority: opts
                    .get("priority")
                    .map(|s| s.parse().map_err(|_| format!("bad --priority {s}")))
                    .transpose()?
                    .unwrap_or(1),
                token: opts.get("token").map(|s| s.to_string()),
            };
            let body = serde_json::to_string(&req).map_err(|e| e.to_string())?;
            let resp = http_request(addr, "POST", "/submit", Some(&body)).map_err(unreachable)?;
            if resp.status == 200 {
                let ack: SubmitAck = serde_json::from_str(&resp.body).map_err(|e| e.to_string())?;
                if ack.deduped {
                    println!("submission {} already queued (token dedupe)", ack.id);
                } else {
                    println!("submission {} queued", ack.id);
                }
                return Ok(Completion::Clean);
            }
            let err: ErrorBody = serde_json::from_str(&resp.body).unwrap_or(ErrorBody {
                error: resp.body.clone(),
                retry_after_secs: None,
            });
            match err.retry_after_secs {
                Some(secs) => Err(format!(
                    "rejected ({}): {}; retry after {secs}s",
                    resp.status, err.error
                )),
                None => Err(format!("rejected ({}): {}", resp.status, err.error)),
            }
        }
        ["status"] => {
            let resp = http_request(addr, "GET", "/status", None).map_err(unreachable)?;
            if resp.status != 200 {
                return Err(format!("daemon returned {}: {}", resp.status, resp.body));
            }
            let st: ServeStatus = serde_json::from_str(&resp.body).map_err(|e| e.to_string())?;
            let phase = if st.draining {
                "draining"
            } else if st.accepting {
                "accepting"
            } else {
                "dead"
            };
            println!(
                "daemon: {phase} (session {}, {} ledger records replayed)",
                st.sessions, st.replayed_records
            );
            println!(
                "queue: {}/{} queued, {} admitted so far, in flight: {:?}",
                st.queue.depth, st.queue.capacity, st.queue.admitted, st.in_flight
            );
            println!(
                "totals: accepted {} (deduped {}, rejected {}), dispatched {}",
                st.totals.accepted, st.totals.deduped, st.totals.rejected, st.totals.dispatched
            );
            // Machine-greppable completion counter for polling scripts:
            // from the replayed queue ledger, so it spans daemon
            // restarts (the totals below are this session only).
            println!("completed: {}", st.queue.completed.len());
            println!(
                "  this session: clean {}, degraded {}, failed {}, checkpointed {}",
                st.totals.completed,
                st.totals.completed_degraded,
                st.totals.failed,
                st.totals.checkpointed
            );
            Ok(Completion::Clean)
        }
        ["drain"] => {
            let resp = http_request(addr, "POST", "/drain", None).map_err(unreachable)?;
            if resp.status != 202 {
                return Err(format!("daemon returned {}: {}", resp.status, resp.body));
            }
            let ack: DrainAck = serde_json::from_str(&resp.body).map_err(|e| e.to_string())?;
            println!(
                "daemon draining; {} submission(s) left pending for a later session",
                ack.pending
            );
            Ok(Completion::Clean)
        }
        _ => Err("usage: pos queue submit <exp-dir> | status | drain --daemon <addr>".into()),
    }
}

fn cmd_queue(args: &[String]) -> Result<Completion, String> {
    let (pos_args, opts) = parse_opts(args)?;
    if let Some(addr) = opts.get("daemon") {
        return cmd_queue_daemon(addr, &pos_args, &opts);
    }
    let queue_dir = PathBuf::from(opts.get("queue").copied().unwrap_or("queue"));
    let queue_file = queue_dir.join("queue.json");

    let load = || -> Result<SubmissionQueue, String> {
        if queue_file.exists() {
            let json = std::fs::read_to_string(&queue_file).map_err(|e| e.to_string())?;
            serde_json::from_str(&json)
                .map_err(|e| format!("{} is not a valid queue: {e}", queue_file.display()))
        } else {
            let capacity = opts
                .get("capacity")
                .map(|s| s.parse().map_err(|_| format!("bad --capacity {s}")))
                .transpose()?
                .unwrap_or(8);
            Ok(SubmissionQueue::new(capacity))
        }
    };
    let save = |q: &SubmissionQueue| -> Result<(), String> {
        std::fs::create_dir_all(&queue_dir).map_err(|e| e.to_string())?;
        let json = serde_json::to_string_pretty(q).map_err(|e| e.to_string())?;
        pos::core::resultstore::atomic_write(&queue_file, json.as_bytes())
            .map_err(|e| e.to_string())
    };

    match pos_args.as_slice() {
        ["submit", exp_dir] => {
            // Reject garbage up front: a queue full of unloadable specs
            // would wedge the drain, not the submitter.
            let spec = ExperimentSpec::from_dir(Path::new(exp_dir))
                .map_err(|e| format!("cannot load experiment from {exp_dir}: {e}"))?;
            spec.validate().map_err(|e| e.to_string())?;
            let user = opts.get("user").copied().unwrap_or(spec.user.as_str());
            let priority: u32 = opts
                .get("priority")
                .map(|s| s.parse().map_err(|_| format!("bad --priority {s}")))
                .transpose()?
                .unwrap_or(1);
            let mut q = load()?;
            let id = q
                .submit(user, *exp_dir, priority)
                .map_err(|e| e.to_string())?;
            save(&q)?;
            println!(
                "submission {id} queued for {user} (depth {}/{})",
                q.status().depth,
                q.status().capacity
            );
            Ok(Completion::Clean)
        }
        ["status"] => {
            let q = load()?;
            let st = q.status();
            println!(
                "queue: {}/{} queued, {} admitted so far, {}",
                st.depth,
                st.capacity,
                st.admitted,
                if st.open { "open" } else { "draining" }
            );
            for s in &st.pending {
                println!(
                    "  #{} {} {} (priority {})",
                    s.id, s.user, s.experiment, s.priority
                );
            }
            for c in &st.completed {
                println!(
                    "  #{} {} {} -> {}",
                    c.submission.id, c.submission.user, c.submission.experiment, c.outcome
                );
            }
            Ok(Completion::Clean)
        }
        ["drain"] => {
            let mut q = load()?;
            let admitted = q.drain();
            save(&q)?;
            if admitted.is_empty() {
                println!("queue empty, nothing to drain");
                return Ok(Completion::Clean);
            }
            println!(
                "draining {} campaign(s) in fair-share order",
                admitted.len()
            );
            let results = opts
                .get("results")
                .copied()
                .unwrap_or("results")
                .to_string();
            let seed = opts.get("seed").copied().unwrap_or("1799").to_string();
            let lanes = opts.get("lanes").copied();
            // A degraded campaign is a *completed* campaign: record it in
            // the ledger rather than dropping or re-admitting it, and keep
            // draining. Only hard errors stop counting as completion.
            let mut drain_completion = Completion::Clean;
            let mut failures = Vec::new();
            for sub in admitted {
                println!("== #{} {} {} ==", sub.id, sub.user, sub.experiment);
                let mut run_args = vec![
                    sub.experiment.clone(),
                    "--results".into(),
                    results.clone(),
                    "--seed".into(),
                    seed.clone(),
                ];
                if let Some(lanes) = lanes {
                    run_args.push("--lanes".into());
                    run_args.push(lanes.to_string());
                }
                let outcome = match cmd_run(&run_args) {
                    Ok(Completion::Clean) => CompletionOutcome::Completed,
                    Ok(Completion::Degraded) => {
                        drain_completion = Completion::Degraded;
                        CompletionOutcome::CompletedDegraded
                    }
                    Err(msg) => {
                        eprintln!("pos: submission #{} failed: {msg}", sub.id);
                        failures.push(sub.id);
                        CompletionOutcome::Failed
                    }
                };
                q.record_outcome(sub, outcome);
                save(&q)?;
            }
            for c in q.completed() {
                println!(
                    "#{} {} {} -> {}",
                    c.submission.id, c.submission.user, c.submission.experiment, c.outcome
                );
            }
            if failures.is_empty() {
                Ok(drain_completion)
            } else {
                Err(format!(
                    "{} submission(s) failed to run: {failures:?}",
                    failures.len()
                ))
            }
        }
        _ => Err("usage: pos queue submit <exp-dir> | status | drain [options]".into()),
    }
}

fn cmd_fsck(args: &[String]) -> Result<(), String> {
    let (pos_args, _) = parse_opts(args)?;
    let [dir] = pos_args.as_slice() else {
        return Err("usage: pos fsck <result-dir | serve-state-dir>".into());
    };
    let path = Path::new(dir);
    // A serve state directory is identified by its queue ledger, a DAG
    // tree by its stored dag.yml, a plain result tree by its campaign
    // journal. Route to the matching check.
    if path.join(LEDGER_FILE).exists() {
        let report = pos::core::fsck::fsck_queue(path).map_err(|e| e.to_string())?;
        print!("{}", report.render());
        return if report.is_clean() {
            Ok(())
        } else {
            Err(format!("{dir} is not clean"))
        };
    }
    if DagSpec::present_in(path) {
        let report = pos::core::fsck::fsck_dag(path).map_err(|e| e.to_string())?;
        print!("{}", report.render());
        return if report.is_clean() {
            Ok(())
        } else {
            Err(format!("{dir} is not clean"))
        };
    }
    let report = pos::core::fsck::fsck(path).map_err(|e| e.to_string())?;
    print!("{}", report.render());
    if report.is_clean() {
        Ok(())
    } else {
        Err(format!("{dir} is not clean"))
    }
}

/// `pos dag <init|run|resume|viz>` — experiment DAGs: scatter/gather
/// stages over pluggable execution targets.
fn cmd_dag(args: &[String]) -> Result<Completion, String> {
    match args.first().map(String::as_str) {
        Some("init") => cmd_dag_init(&args[1..]).map(|()| Completion::Clean),
        Some("run") => cmd_dag_run(&args[1..]),
        Some("resume") => cmd_dag_resume(&args[1..]),
        Some("viz") => cmd_dag_viz(&args[1..]).map(|()| Completion::Clean),
        _ => Err(
            "usage: pos dag init <dir> | run <exp-dir> | resume <result-dir> | viz <dir>".into(),
        ),
    }
}

fn cmd_dag_init(args: &[String]) -> Result<(), String> {
    let (pos_args, _) = parse_opts(args)?;
    let [dir] = pos_args.as_slice() else {
        return Err("usage: pos dag init <dir>".into());
    };
    let dir = Path::new(dir);
    if dir.join(pos::dag::spec::DAG_FILE).exists() {
        return Err(format!("{} already holds a DAG", dir.display()));
    }
    let spec = linux_router_experiment("vriga", "vtartu", 30, 10);
    if !dir.join("experiment.yml").exists() {
        spec.to_dir(dir).map_err(|e| e.to_string())?;
    }
    let dag = pos::dag::linux_router_dag();
    dag.to_dir(dir).map_err(|e| e.to_string())?;
    println!(
        "scaffolded DAG `{}` ({} stages) in {}",
        dag.name,
        dag.stages.len(),
        dir.display()
    );
    print!("{}", pos::dag::viz::render_ascii(&dag, Some(&spec)));
    println!("run it: pos dag run {}", dir.display());
    Ok(())
}

/// Loads the DAG next to an experiment dir, falling back to the
/// built-in linux-router 3-stage DAG when no `dag.yml` is present.
fn load_dag(dir: &Path) -> Result<pos::dag::DagSpec, String> {
    if pos::dag::DagSpec::present_in(dir) {
        pos::dag::DagSpec::from_dir(dir)
            .map_err(|e| format!("cannot load DAG from {}: {e}", dir.display()))
    } else {
        println!(
            "{} has no dag.yml; using the built-in linux-router 3-stage DAG",
            dir.display()
        );
        Ok(pos::dag::linux_router_dag())
    }
}

/// The shared target/lane/seed flags of `pos dag run` and `pos dag
/// resume`, resolved into run options, DAG options, and a target.
fn dag_exec_setup(
    opts: &std::collections::BTreeMap<&str, &str>,
    results: &Path,
) -> Result<
    (
        RunOptions,
        pos::dag::DagOptions,
        Box<dyn pos::dag::ExecutionTarget>,
    ),
    String,
> {
    let seed: u64 = opts
        .get("seed")
        .map(|s| s.parse().map_err(|_| format!("bad --seed {s}")))
        .transpose()?
        .unwrap_or(0x707);
    let lanes: usize = opts
        .get("lanes")
        .map(|s| s.parse().map_err(|_| format!("bad --lanes {s}")))
        .transpose()?
        .unwrap_or(1);
    if lanes == 0 {
        return Err("--lanes must be at least 1".into());
    }
    let virtualized = match opts.get("testbed").copied().unwrap_or("pos") {
        "pos" => false,
        "vpos" => true,
        other => return Err(format!("--testbed must be pos or vpos, got {other}")),
    };
    let site_replicas: usize = opts
        .get("site-replicas")
        .map(|s| s.parse().map_err(|_| format!("bad --site-replicas {s}")))
        .transpose()?
        .unwrap_or(lanes);

    let mut run_opts = RunOptions::new(results);
    run_opts.testbed_flavor = if virtualized { "vpos" } else { "pos" }.into();
    if let Some(&file) = opts.get("disk-faults") {
        run_opts.vfs = load_disk_faults(file)?;
    }

    let target: Box<dyn pos::dag::ExecutionTarget> =
        match opts.get("target").copied().unwrap_or("in-process") {
            "in-process" | "inprocess" => Box::new(pos::dag::InProcessTarget::new(
                seed,
                virtualized,
                site_replicas,
            )),
            "sim-batch" | "batch" => {
                let partition: usize = opts
                    .get("partition")
                    .map(|s| s.parse().map_err(|_| format!("bad --partition {s}")))
                    .transpose()?
                    .unwrap_or(site_replicas);
                Box::new(pos::dag::SimBatchTarget::new(seed, virtualized, partition))
            }
            other => {
                return Err(format!(
                    "--target must be in-process or sim-batch, got {other}"
                ))
            }
        };

    Ok((run_opts, pos::dag::DagOptions::new(lanes, seed), target))
}

/// Per-node lines, the target's job table, and the schedule summary.
fn print_dag_outcome(out: &pos::dag::DagOutcome) {
    for node in &out.nodes {
        println!(
            "  node {:<12} [{:<6}] {} {:>6.1}s..{:>6.1}s{}{}",
            node.id,
            node.kind.label(),
            &node.digest[..12.min(node.digest.len())],
            node.started_ns as f64 / 1e9,
            node.finished_ns as f64 / 1e9,
            if node.failed_runs > 0 {
                format!("  {} FAILED run(s)", node.failed_runs)
            } else {
                String::new()
            },
            if node.verified {
                "  (verified, skipped)"
            } else {
                ""
            },
        );
    }
    print!("{}", out.target.render());
    print!("{}", out.summary());
    println!("results: {}", out.dag_dir.display());
}

/// The DAG flavor of [`checkpointed_or_error`].
fn dag_checkpointed_or_error(e: pos::dag::DagError, resume_at: &str) -> Result<Completion, String> {
    if !e.is_checkpoint() {
        return Err(e.to_string());
    }
    eprintln!("pos: checkpointed: {e}");
    eprintln!(
        "pos: DAG checkpointed at the last consistent journal boundary; \
         run `pos dag resume {resume_at}` to complete"
    );
    Ok(Completion::Degraded)
}

fn cmd_dag_run(args: &[String]) -> Result<Completion, String> {
    let (pos_args, opts) = parse_opts(args)?;
    let [dir] = pos_args.as_slice() else {
        return Err("usage: pos dag run <experiment-dir> [options]".into());
    };
    let dir = Path::new(dir);
    let spec = ExperimentSpec::from_dir(dir)
        .map_err(|e| format!("cannot load experiment from {}: {e}", dir.display()))?;
    spec.validate().map_err(|e| e.to_string())?;
    let dag = load_dag(dir)?;
    dag.validate().map_err(|e| e.to_string())?;

    let results = PathBuf::from(opts.get("results").copied().unwrap_or("results"));
    let (run_opts, dag_opts, mut target) = dag_exec_setup(&opts, &results)?;
    println!(
        "running DAG `{}` ({} stages, {} lanes, seed {}, target {})...",
        dag.name,
        dag.stages.len(),
        dag_opts.lanes,
        dag_opts.seed,
        target.name()
    );
    print!("{}", pos::dag::viz::render_ascii(&dag, Some(&spec)));
    let out = match pos::dag::run_dag(&dag, &spec, &run_opts, &dag_opts, target.as_mut()) {
        Ok(out) => out,
        Err(e) => return dag_checkpointed_or_error(e, &resume_hint(&results)),
    };
    print_dag_outcome(&out);
    Ok(if out.failed_runs == 0 {
        Completion::Clean
    } else {
        Completion::Degraded
    })
}

fn cmd_dag_resume(args: &[String]) -> Result<Completion, String> {
    let (pos_args, opts) = parse_opts(args)?;
    let [dir] = pos_args.as_slice() else {
        return Err("usage: pos dag resume <result-dir> [options]".into());
    };
    let dag_dir = Path::new(dir);
    // The resume root only matters for the options plumbing; the tree
    // location is authoritative.
    let results = PathBuf::from(opts.get("results").copied().unwrap_or("results"));
    let (run_opts, dag_opts, mut target) = dag_exec_setup(&opts, &results)?;
    println!(
        "resuming DAG tree {} ({} lanes, seed {}, target {})...",
        dag_dir.display(),
        dag_opts.lanes,
        dag_opts.seed,
        target.name()
    );
    let out = match pos::dag::resume_dag(dag_dir, &run_opts, &dag_opts, target.as_mut()) {
        Ok(out) => out,
        Err(e) => return dag_checkpointed_or_error(e, dir),
    };
    print_dag_outcome(&out);
    Ok(if out.failed_runs == 0 {
        Completion::Clean
    } else {
        Completion::Degraded
    })
}

fn cmd_dag_viz(args: &[String]) -> Result<(), String> {
    let (pos_args, opts) = parse_opts(args)?;
    let [dir] = pos_args.as_slice() else {
        return Err("usage: pos dag viz <dir> [--format ascii|dot] [--seed <n>]".into());
    };
    let dir = Path::new(dir);
    let dag = load_dag(dir)?;
    dag.validate().map_err(|e| e.to_string())?;
    // An experiment bundle (either alongside dag.yml, or stored inside
    // a DAG result tree) enriches the graph with fan-out widths and the
    // testbed wiring.
    let spec = ExperimentSpec::from_dir(dir)
        .or_else(|_| ExperimentSpec::from_dir(&dir.join("experiment")))
        .ok();
    match opts.get("format").copied().unwrap_or("ascii") {
        "ascii" => print!("{}", pos::dag::viz::render_ascii(&dag, spec.as_ref())),
        "dot" => {
            let seed: u64 = opts
                .get("seed")
                .map(|s| s.parse().map_err(|_| format!("bad --seed {s}")))
                .transpose()?
                .unwrap_or(0x707);
            let topology = spec.as_ref().and_then(|s| {
                case_study_testbed(s, seed, false, false)
                    .ok()
                    .map(|tb| tb.topology.render())
            });
            print!(
                "{}",
                pos::dag::viz::render_dot(&dag, spec.as_ref(), topology.as_deref())
            );
        }
        other => return Err(format!("--format must be ascii or dot, got {other}")),
    }
    Ok(())
}

/// `pos scrub <result-dir> [--repair] [--json <file>]` — walk a result
/// tree against its journal digests and per-run checksum manifests,
/// report every rotted, missing, or extra byte, and with `--repair`
/// heal in place: restore artifacts from content-identical copies
/// elsewhere in the tree, rebuild rotted manifests, remove extras, and
/// re-execute runs with no intact donor through the same machinery as
/// `pos resume`. Exit 0 means the tree verifies end to end.
fn cmd_scrub(args: &[String]) -> Result<Completion, String> {
    // `--repair` is the CLI's only valueless flag; peel it off before
    // the generic `--flag value` parser sees it.
    let rest: Vec<String> = args
        .iter()
        .filter(|a| a.as_str() != "--repair")
        .cloned()
        .collect();
    let repair = rest.len() != args.len();
    let (pos_args, opts) = parse_opts(&rest)?;
    let [dir] = pos_args.as_slice() else {
        return Err("usage: pos scrub <result-dir> [--repair] [--json <file>]".into());
    };
    let result_dir = Path::new(dir);

    let mut report = pos::core::scrub::scrub(result_dir, repair).map_err(|e| e.to_string())?;

    // Runs with no intact donor anywhere in the tree can only converge
    // by re-execution — exactly what `pos resume` does to a finished
    // but damaged campaign, so hand over and account for the outcome.
    if repair && !report.reexecution_required.is_empty() {
        println!(
            "scrub: {} run(s) have no intact donor; re-executing via resume",
            report.reexecution_required.len()
        );
        let _ = cmd_resume(&[dir.to_string()])?;
        report = pos::core::scrub::scrub(result_dir, repair).map_err(|e| e.to_string())?;
    }

    print!("{}", report.render());
    if let Some(&file) = opts.get("json") {
        let json = report.to_json().map_err(|e| e.to_string())?;
        std::fs::write(file, json.as_bytes()).map_err(|e| e.to_string())?;
        println!("report written to {file}");
    }

    if report.clean {
        return Ok(Completion::Clean);
    }
    if !repair {
        return Err(format!(
            "{dir}: scrub found {} problem(s); `pos scrub {dir} --repair` to heal",
            report.findings.len()
        ));
    }
    // The report above shows what was damaged and repaired; the verdict
    // comes from a confirming detect-only pass over the healed tree.
    let confirm = pos::core::scrub::scrub(result_dir, false).map_err(|e| e.to_string())?;
    if confirm.clean {
        println!("scrub: tree verifies clean after repair");
        Ok(Completion::Clean)
    } else {
        Err(format!(
            "{dir}: {} problem(s) remain after repair",
            confirm.findings.len()
        ))
    }
}

fn cmd_eval(args: &[String]) -> Result<(), String> {
    let (pos_args, opts) = parse_opts(args)?;
    let [dir] = pos_args.as_slice() else {
        return Err("usage: pos eval <result-dir> [--out <dir>]".into());
    };
    let result_dir = Path::new(dir);
    let set = ResultSet::load(result_dir).map_err(|e| e.to_string())?;
    for diag in &set.diagnostics {
        eprintln!("warning: {diag}");
    }
    if set.is_empty() {
        return Err(format!("no runs under {dir}"));
    }
    println!(
        "{} runs loaded ({} successful)",
        set.len(),
        set.successful().len()
    );
    print!("{}", set.render_summary());

    let out = opts
        .get("out")
        .map(PathBuf::from)
        .unwrap_or_else(|| result_dir.join("figures"));
    std::fs::create_dir_all(&out).map_err(|e| e.to_string())?;

    // The out-of-the-box throughput figure: forwarded rate over the rate
    // loop variable, one series per packet size (falls back to a single
    // series when the sweep has no pkt_sz).
    let mut plot = PlotSpec::line(
        "Forwarding throughput",
        "offered [Mpps]",
        "forwarded [Mpps]",
    );
    let groups = set.group_by("pkt_sz");
    for (size, group) in &groups {
        let series: Vec<(f64, f64)> = group
            .series("pkt_rate", |r| Some(r.report()?.rx_mpps()))
            .into_iter()
            .map(|(x, y)| (x / 1e6, y))
            .collect();
        println!("  pkt_sz={size}: {} points", series.len());
        for (x, y) in &series {
            println!("    offered {x:.4} Mpps -> forwarded {y:.4} Mpps");
        }
        plot = plot.with_series(format!("{size} B"), series);
    }
    for (ext, content) in [
        ("svg", plot.render_svg()),
        ("tex", plot.render_tex()),
        ("csv", plot.render_csv()),
    ] {
        std::fs::write(out.join(format!("throughput.{ext}")), content)
            .map_err(|e| e.to_string())?;
    }
    println!("figures written to {}", out.display());
    Ok(())
}

fn cmd_publish(args: &[String]) -> Result<(), String> {
    let (pos_args, opts) = parse_opts(args)?;
    let [dir] = pos_args.as_slice() else {
        return Err("usage: pos publish <result-dir> [options]".into());
    };
    let result_dir = Path::new(dir);
    let out = PathBuf::from(opts.get("out").copied().unwrap_or("release"));
    let title = opts
        .get("title")
        .copied()
        .unwrap_or("pos experiment artifacts");

    // Refuse to release a damaged source tree: every run's checksum
    // manifest must verify before its bytes get fresh bundle hashes.
    let damaged = verify_runs(result_dir).map_err(|e| e.to_string())?;
    if !damaged.is_empty() {
        for p in &damaged {
            eprintln!("pos: {p}");
        }
        return Err(format!(
            "{} run artifact problem(s) in {dir}; run `pos fsck {dir}` (and `pos resume {dir}` to repair)",
            damaged.len()
        ));
    }

    let mut bundle = Bundle::new(title);
    let n = bundle.add_tree(result_dir, "").map_err(|e| e.to_string())?;
    attach_site(
        &mut bundle,
        &SiteInfo {
            title: title.to_owned(),
            description: format!(
                "Artifacts of a pos experiment: {n} files including scripts, variables, \
                 per-run results with metadata, and generated figures."
            ),
            repo_url: String::new(),
        },
    );
    let manifest = bundle.write_dir(&out).map_err(|e| e.to_string())?;
    let bad = verify_dir(&out).map_err(|e| e.to_string())?;
    if !bad.is_empty() {
        return Err(format!("manifest verification failed for {bad:?}"));
    }
    println!(
        "published {} artifacts ({} bytes) to {}",
        manifest.files.len(),
        manifest.total_size(),
        out.display()
    );
    if let Some(tar_path) = opts.get("tar") {
        let mut buf = Vec::new();
        bundle.write_tar(&mut buf).map_err(|e| e.to_string())?;
        std::fs::write(tar_path, &buf).map_err(|e| e.to_string())?;
        println!("archive: {tar_path} ({} bytes)", buf.len());
    }
    println!("website: {}/index.html", out.display());
    Ok(())
}
