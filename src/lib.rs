//! # pos — reproducible network experiments, reproduced
//!
//! Umbrella crate for the Rust reproduction of *"The pos Framework: A
//! Methodology and Toolchain for Reproducible Network Experiments"*
//! (Gallenmüller et al., CoNEXT '21).
//!
//! Each subsystem lives in its own crate; this crate re-exports them under
//! stable module names so applications can depend on a single `pos` crate:
//!
//! | module | crate | role |
//! |---|---|---|
//! | [`simkernel`] | `pos-simkernel` | deterministic discrete-event kernel |
//! | [`packet`] | `pos-packet` | Ethernet/IPv4/UDP frames, pcap files |
//! | [`netsim`] | `pos-netsim` | NIC/link/router/bridge models |
//! | [`loadgen`] | `pos-loadgen` | MoonGen-like packet generator |
//! | [`testbed`] | `pos-testbed` | hosts, images, calendar, power control |
//! | [`core`] | `pos-core` | the pos controller and methodology |
//! | [`sched`] | `pos-sched` | parallel campaign scheduler and admission queue |
//! | [`dag`] | `pos-dag` | experiment DAGs: scatter/gather stages, execution targets |
//! | [`serve`] | `pos-serve` | crash-surviving multi-tenant campaign daemon |
//! | [`eval`] | `pos-eval` | parsers, statistics, plots |
//! | [`publish`] | `pos-publish` | artifact bundling and website |
//!
//! See `examples/quickstart.rs` for an end-to-end experiment.

#![warn(missing_docs)]

pub use pos_core as core;
pub use pos_dag as dag;
pub use pos_eval as eval;
pub use pos_loadgen as loadgen;
pub use pos_netsim as netsim;
pub use pos_packet as packet;
pub use pos_publish as publish;
pub use pos_sched as sched;
pub use pos_serve as serve;
pub use pos_simkernel as simkernel;
pub use pos_testbed as testbed;
