//! End-to-end integration: the complete pos pipeline from experiment
//! specification to published, integrity-verified artifact bundle.

use pos::core::commands::register_all;
use pos::core::controller::{Controller, RunOptions};
use pos::core::experiment::linux_router_experiment;
use pos::core::fsck::fsck_dag;
use pos::dag::{linux_router_dag, run_dag, DagOptions, InProcessTarget};
use pos::eval::loader::ResultSet;
use pos::eval::plot::PlotSpec;
use pos::publish::bundle::{verify_dir, Bundle};
use pos::publish::website::{attach_site, SiteInfo};
use pos::testbed::{HardwareSpec, InitInterface, PortId, Testbed};
use std::path::PathBuf;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pos-it-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn case_study_testbed(seed: u64) -> Testbed {
    let mut tb = Testbed::new(seed);
    tb.add_host("vriga", HardwareSpec::paper_dut(), InitInterface::Ipmi);
    tb.add_host("vtartu", HardwareSpec::paper_dut(), InitInterface::Ipmi);
    tb.topology
        .wire(PortId::new("vriga", 0), PortId::new("vtartu", 0))
        .unwrap();
    tb.topology
        .wire(PortId::new("vtartu", 1), PortId::new("vriga", 1))
        .unwrap();
    register_all(&mut tb);
    tb
}

#[test]
fn experiment_to_published_bundle() {
    // ----------------------------------------------------- run the study
    let mut tb = case_study_testbed(1);
    let spec = linux_router_experiment("vriga", "vtartu", 3, 1);
    let outcome = Controller::new(&mut tb)
        .run_experiment(&spec, &RunOptions::new(tmp("e2e-results")))
        .expect("experiment runs");
    assert_eq!(outcome.runs.len(), 6);
    assert_eq!(outcome.successes(), 6);

    // ------------------------------------------------------- evaluate it
    let set = ResultSet::load(&outcome.result_dir).expect("loadable tree");
    assert_eq!(set.len(), 6);
    let mut plot = PlotSpec::line("throughput", "offered [pps]", "forwarded [Mpps]");
    for (size, group) in set.group_by("pkt_sz") {
        let series = group.series("pkt_rate", |r| Some(r.report()?.rx_mpps()));
        assert_eq!(series.len(), 3, "3 rates per size");
        // Below saturation on bare metal: forwarded == offered.
        for (rate, rx_mpps) in &series {
            assert!(
                (rx_mpps * 1e6 - rate).abs() / rate < 0.01,
                "size {size}: offered {rate} got {rx_mpps} Mpps"
            );
        }
        plot = plot.with_series(format!("{size}B"), series);
    }
    let figures = outcome.result_dir.join("figures");
    std::fs::create_dir_all(&figures).unwrap();
    std::fs::write(figures.join("throughput.svg"), plot.render_svg()).unwrap();
    std::fs::write(figures.join("throughput.csv"), plot.render_csv()).unwrap();

    // -------------------------------------------------------- publish it
    let mut bundle = Bundle::new(&spec.name);
    let collected = bundle.add_tree(&outcome.result_dir, "").unwrap();
    assert!(collected > 20, "a real result tree has many artifacts");
    attach_site(
        &mut bundle,
        &SiteInfo {
            title: "pos case study".into(),
            description: "integration test artifact".into(),
            repo_url: String::new(),
        },
    );
    let release = tmp("e2e-release");
    let manifest = bundle.write_dir(&release).expect("publishable");

    // The release is self-contained and integrity-checked.
    assert!(release.join("manifest.json").exists());
    assert!(release.join("index.html").exists());
    assert!(release.join("README.md").exists());
    assert!(release.join("experiment/loop-variables.yml").exists());
    assert!(release.join("figures/throughput.svg").exists());
    assert_eq!(
        verify_dir(&release).expect("verifiable"),
        Vec::<String>::new()
    );

    // The website lists the measurement artifacts.
    let readme = std::fs::read_to_string(release.join("README.md")).unwrap();
    assert!(readme.contains("run-0000"));
    assert!(readme.contains("Generated figures"));
    assert!(manifest.entry("topology.txt").is_some());
}

/// The `examples/dag_study.rs` walk as a test: the same case study
/// restructured as the 3-stage DAG (setup --scatter--> rate-sweep
/// ==gather==> eval), executed, fsck'd, and published as a bundle.
#[test]
fn dag_study_to_published_bundle() {
    // ------------------------------------------------- execute the DAG
    let dag = linux_router_dag();
    let spec = linux_router_experiment("vriga", "vtartu", 3, 1);
    let out = run_dag(
        &dag,
        &spec,
        &RunOptions::new(tmp("dag-e2e-results")),
        &DagOptions::new(2, 0x707),
        &mut InProcessTarget::new(0x707, false, 2),
    )
    .expect("DAG executes");
    assert_eq!(out.nodes.len(), 3);
    assert_eq!(out.failed_runs, 0);
    assert_eq!(
        out.critical_path,
        vec!["setup".to_string(), "rate-sweep".into(), "eval".into()]
    );

    // Every stage left its artifacts; the audit calls the tree clean.
    assert!(out.dag_dir.join("dag.yml").exists());
    assert!(out.dag_dir.join("dag.dot").exists());
    assert!(out.dag_dir.join("stage-setup/topology.txt").exists());
    assert!(out.dag_dir.join("stage-eval/figures/eval.svg").exists());
    assert!(out.dag_dir.join("stage-eval/summary.txt").exists());
    let report = fsck_dag(&out.dag_dir).expect("auditable");
    assert!(
        report.is_clean(),
        "DAG tree not clean:\n{}",
        report.render()
    );

    // The gather stage aggregated all six scatter results.
    let inputs = std::fs::read_to_string(out.dag_dir.join("stage-eval/inputs.txt")).unwrap();
    assert!(inputs.contains("rate-sweep"));
    let set = ResultSet::load(
        &out.dag_dir
            .join("stage-rate-sweep/user/linux-router-forwarding/vt-0000000000"),
    )
    .expect("sweep tree loads");
    assert_eq!(set.len(), 6);

    // -------------------------------------------------------- publish it
    let mut bundle = Bundle::new(&dag.name);
    let collected = bundle.add_tree(&out.dag_dir, "").unwrap();
    assert!(collected > 30, "a DAG tree has many artifacts");
    attach_site(
        &mut bundle,
        &SiteInfo {
            title: "pos DAG case study".into(),
            description: "integration test artifact".into(),
            repo_url: String::new(),
        },
    );
    let release = tmp("dag-e2e-release");
    let manifest = bundle.write_dir(&release).expect("publishable");
    assert!(release.join("manifest.json").exists());
    assert!(release.join("stage-eval/figures/eval.svg").exists());
    assert_eq!(
        verify_dir(&release).expect("verifiable"),
        Vec::<String>::new()
    );
    assert!(manifest.entry("dag.yml").is_some());
}

#[test]
fn published_scripts_match_executed_scripts() {
    // Publishability means the *actual* inputs are captured: the scripts
    // in the result tree must equal the spec's scripts byte for byte.
    let mut tb = case_study_testbed(2);
    let spec = linux_router_experiment("vriga", "vtartu", 2, 1);
    let outcome = Controller::new(&mut tb)
        .run_experiment(&spec, &RunOptions::new(tmp("scripts-results")))
        .expect("experiment runs");
    for role in &spec.roles {
        let setup = std::fs::read_to_string(
            outcome
                .result_dir
                .join(format!("experiment/{}/setup.sh", role.role)),
        )
        .unwrap();
        assert_eq!(setup, role.setup.source);
        let measurement = std::fs::read_to_string(
            outcome
                .result_dir
                .join(format!("experiment/{}/measurement.sh", role.role)),
        )
        .unwrap();
        assert_eq!(measurement, role.measurement.source);
    }
    // And the loop variables round-trip through their YAML artifact.
    let loop_yaml =
        std::fs::read_to_string(outcome.result_dir.join("experiment/loop-variables.yml")).unwrap();
    let back = pos::core::vars::Variables::from_yaml(&loop_yaml).unwrap();
    assert_eq!(back, spec.loop_vars);
}

#[test]
fn hardware_and_topology_captured() {
    let mut tb = case_study_testbed(3);
    let spec = linux_router_experiment("vriga", "vtartu", 1, 1);
    let outcome = Controller::new(&mut tb)
        .run_experiment(&spec, &RunOptions::new(tmp("hw-results")))
        .expect("experiment runs");
    let hw = std::fs::read_to_string(outcome.result_dir.join("hardware/vtartu.txt")).unwrap();
    assert!(hw.contains("Xeon Silver 4214"));
    assert!(hw.contains("82599"));
    let topo = std::fs::read_to_string(outcome.result_dir.join("topology.txt")).unwrap();
    assert!(topo.contains("vriga:0 <-> vtartu:0"));
    let log = std::fs::read_to_string(outcome.result_dir.join("controller.log")).unwrap();
    assert!(log.contains("allocated"));
}
