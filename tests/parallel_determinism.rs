//! The parallel scheduler's determinism contract, end to end:
//!
//! * a chaos-free campaign executed on 4 lanes leaves a result tree
//!   **byte-identical** (journals excepted) to the same campaign on
//!   1 lane, and to the plain sequential controller;
//! * a campaign crashed mid-flight by journal fault injection and then
//!   resumed with `resume_parallel` converges to that same tree;
//! * lane failover — injected lane deaths at run boundaries, watchdog
//!   retirements, poison-run quarantine, replacement-lane replanning —
//!   never perturbs the tree: the merged result stays byte-identical to
//!   `--lanes 1` under the same fault plan, crashes mid-failover
//!   included.

use pos::core::commands::register_all;
use pos::core::controller::{Controller, ControllerError, RunOptions};
use pos::core::experiment::{linux_router_experiment, ExperimentSpec};
use pos::sched::{
    resume_parallel, run_parallel, LaneDeath, LaneFaultPlan, LaneFlavor, LaneRecovery,
    ParallelOptions, ParallelOutcome,
};
use pos::testbed::{clone_virtual, CloneOptions, HardwareSpec, InitInterface, PortId, Testbed};
use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

const SEED: u64 = 0x5EED;

fn case_study_testbed() -> Testbed {
    lane_testbed(LaneFlavor::BareMetal)
}

/// A replica testbed for any lane flavor: replacement lanes beyond the
/// site's replica sets come from the clone pool (`vpos`), cloned with
/// the same root seed so artifacts stay byte-identical.
fn lane_testbed(flavor: LaneFlavor) -> Testbed {
    let mut tb = Testbed::new(SEED);
    tb.add_host("vriga", HardwareSpec::paper_dut(), InitInterface::Ipmi);
    tb.add_host("vtartu", HardwareSpec::paper_dut(), InitInterface::Ipmi);
    tb.topology
        .wire(PortId::new("vriga", 0), PortId::new("vtartu", 0))
        .unwrap();
    tb.topology
        .wire(PortId::new("vtartu", 1), PortId::new("vriga", 1))
        .unwrap();
    let mut tb = if flavor == LaneFlavor::Virtual {
        clone_virtual(
            &tb,
            CloneOptions {
                seed: Some(SEED),
                ..CloneOptions::default()
            },
        )
    } else {
        tb
    };
    register_all(&mut tb);
    tb
}

fn small_spec() -> ExperimentSpec {
    linux_router_experiment("vriga", "vtartu", 3, 1)
}

fn workdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pos-par-{name}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

/// Every file under `root` (relative path → bytes), excluding the
/// journals — they record *how* the tree was produced, not its content.
fn tree_snapshot(root: &Path) -> BTreeMap<String, Vec<u8>> {
    fn walk(root: &Path, dir: &Path, out: &mut BTreeMap<String, Vec<u8>>) {
        for entry in fs::read_dir(dir).unwrap() {
            let entry = entry.unwrap();
            let path = entry.path();
            if path.is_dir() {
                walk(root, &path, out);
            } else {
                let name = path.file_name().unwrap().to_string_lossy();
                if name.starts_with("journal") {
                    continue;
                }
                let rel = path
                    .strip_prefix(root)
                    .unwrap()
                    .to_string_lossy()
                    .into_owned();
                out.insert(rel, fs::read(&path).unwrap());
            }
        }
    }
    let mut out = BTreeMap::new();
    walk(root, root, &mut out);
    out
}

fn assert_trees_identical(a: &Path, b: &Path, what: &str) {
    let ta = tree_snapshot(a);
    let tb = tree_snapshot(b);
    let keys_a: Vec<&String> = ta.keys().collect();
    let keys_b: Vec<&String> = tb.keys().collect();
    assert_eq!(keys_a, keys_b, "{what}: file sets differ");
    for (rel, bytes) in &ta {
        assert_eq!(
            bytes,
            &tb[rel],
            "{what}: `{rel}` differs between {} and {}",
            a.display(),
            b.display()
        );
    }
}

fn make_lane(_lane: usize, flavor: LaneFlavor) -> Result<Testbed, ControllerError> {
    assert_eq!(flavor, LaneFlavor::BareMetal, "tests use bare-metal lanes");
    Ok(case_study_testbed())
}

fn run_with_lanes(root: &Path, lanes: usize) -> PathBuf {
    let spec = small_spec();
    let opts = RunOptions::new(root);
    let popts = ParallelOptions::new(lanes);
    let out = run_parallel(&spec, &opts, &popts, &mut make_lane).unwrap();
    assert_eq!(out.outcome.runs.len(), 6);
    assert_eq!(out.outcome.successes(), 6);
    out.outcome.result_dir
}

#[test]
fn four_lanes_match_one_lane_byte_for_byte() {
    let root1 = workdir("lanes1");
    let root4 = workdir("lanes4");
    let dir1 = run_with_lanes(&root1, 1);
    let dir4 = run_with_lanes(&root4, 4);
    assert_trees_identical(&dir1, &dir4, "lanes=4 vs lanes=1");
}

#[test]
fn parallel_tree_matches_sequential_controller() {
    let root_seq = workdir("seq");
    let root_par = workdir("par2");
    let spec = small_spec();

    let mut tb = case_study_testbed();
    let seq = Controller::new(&mut tb)
        .run_experiment(&spec, &RunOptions::new(&root_seq))
        .unwrap();

    let dir_par = run_with_lanes(&root_par, 2);
    assert_trees_identical(&seq.result_dir, &dir_par, "lanes=2 vs sequential");
}

#[test]
fn parallel_speedup_is_real() {
    let root = workdir("speedup");
    let spec = small_spec();
    let opts = RunOptions::new(&root);
    let out = run_parallel(&spec, &opts, &ParallelOptions::new(4), &mut make_lane).unwrap();
    assert!(
        out.speedup() > 1.0,
        "4 lanes must beat 1 on a 6-run campaign, got {:.2}x",
        out.speedup()
    );
    assert!(
        out.lane_runs.iter().filter(|l| !l.is_empty()).count() > 1,
        "work must actually spread across lanes: {:?}",
        out.lane_runs
    );
}

#[test]
fn crashed_parallel_campaign_resumes_to_identical_tree() {
    // Reference: an uninterrupted 4-lane execution.
    let root_ok = workdir("crash-ref");
    let dir_ok = run_with_lanes(&root_ok, 4);

    // Crash: the first lane journal to reach its third append (its first
    // run's RunCompleted record) fails mid-campaign.
    let root = workdir("crash");
    let spec = small_spec();
    let mut opts = RunOptions::new(&root);
    opts.journal_crash_after = Some(2);
    opts.journal_torn_write = true;
    let err = run_parallel(&spec, &opts, &ParallelOptions::new(4), &mut make_lane).unwrap_err();
    let msg = err.to_string();
    assert!(
        msg.contains("injected journal crash"),
        "unexpected error: {msg}"
    );

    // The wreckage is on disk; find the result dir under the root.
    let dir = find_result_dir(&root);

    // Resume replays all lane journals and re-executes what is missing.
    let resume_opts = RunOptions::new(&root);
    let out = resume_parallel(&dir, &spec, &resume_opts, &mut make_lane).unwrap();
    assert_eq!(out.outcome.successes(), 6);
    assert_trees_identical(&dir_ok, &dir, "resumed vs uninterrupted 4-lane tree");
}

/// Descends `<root>/<user>/<exp>/vt-*/` to the single result dir.
fn find_result_dir(root: &Path) -> PathBuf {
    let mut dir = root.to_path_buf();
    for _ in 0..3 {
        let mut entries: Vec<PathBuf> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .filter(|p| p.is_dir())
            .collect();
        entries.sort();
        assert_eq!(entries.len(), 1, "expected one subdir in {}", dir.display());
        dir = entries.remove(0);
    }
    dir
}

// ---------------------------------------------------------------------
// Lane failover determinism

fn faulted_popts(lanes: usize, plan: LaneFaultPlan, recovery: LaneRecovery) -> ParallelOptions {
    let mut popts = ParallelOptions::new(lanes);
    // Leave spare bare-metal replica sets on the site calendar so every
    // replacement lane is a bare-metal set: clone-pool replacements
    // carry vpos fidelity and legitimately measure differently (that is
    // the paper's Table 1 trade-off, covered by its own test below).
    popts.site_replicas = lanes + 4;
    popts.supervisor.fault_plan = plan;
    popts.supervisor.recovery = recovery;
    popts
}

fn run_faulted(popts: &ParallelOptions, opts: &RunOptions) -> ParallelOutcome {
    run_parallel(&small_spec(), opts, popts, &mut |_, flavor| {
        Ok(lane_testbed(flavor))
    })
    .unwrap()
}

#[test]
fn lane_death_at_every_boundary_matches_one_lane() {
    // Lane deaths change which replica executes later runs, never what
    // those runs write: every (boundary, recovery policy) combination
    // must reproduce the clean 1-lane tree.
    let ref_root = workdir("death-ref");
    let ref_dir = run_with_lanes(&ref_root, 1);
    for recovery in [LaneRecovery::Redistribute, LaneRecovery::Replacement] {
        for boundary in 0..=2 {
            let root = workdir(&format!("death-{recovery:?}-{boundary}"));
            let plan = LaneFaultPlan {
                lane_deaths: vec![LaneDeath {
                    lane: 1,
                    after_dispatches: boundary,
                }],
                poison_runs: vec![],
            };
            let popts = faulted_popts(4, plan, recovery);
            let out = run_faulted(&popts, &RunOptions::new(&root));
            assert_eq!(out.outcome.successes(), 6, "{recovery:?}/{boundary}");
            assert_trees_identical(
                &ref_dir,
                &out.outcome.result_dir,
                &format!("lane death {recovery:?} boundary {boundary} vs lanes=1"),
            );
            if boundary < 2 {
                // Boundary 2 may never come up for lane 1 on a 6-run
                // campaign; earlier boundaries must actually fire.
                assert!(
                    out.retired_lanes.iter().any(|(lane, _)| *lane == 1),
                    "{recovery:?}/{boundary}: lane 1 should have been retired: {:?}",
                    out.retired_lanes
                );
                if recovery == LaneRecovery::Replacement {
                    assert_eq!(out.replanned_lanes, 1, "{recovery:?}/{boundary}");
                }
            }
        }
    }
}

#[test]
fn poison_run_quarantine_is_identical_across_lane_counts() {
    // A poison run kills `poison_threshold` lanes and is then sealed as
    // a failed zero-width run with a forensic bundle. The sealed run
    // dir, the quarantine report, and every later run's artifacts must
    // match a 1-lane execution of the same fault plan byte for byte.
    let plan = LaneFaultPlan {
        lane_deaths: vec![],
        poison_runs: vec![2],
    };
    let ref_root = workdir("poison-ref");
    let ref_out = run_faulted(
        &faulted_popts(1, plan.clone(), LaneRecovery::Redistribute),
        &RunOptions::new(&ref_root),
    );
    assert_eq!(ref_out.outcome.successes(), 5);
    assert_eq!(ref_out.outcome.quarantined_runs, vec![2]);
    assert_eq!(ref_out.outcome.failed_runs, vec![2]);
    let report = ref_out
        .outcome
        .result_dir
        .join("quarantine/run-0002/report.json");
    assert!(report.exists(), "missing forensic report {report:?}");

    for recovery in [LaneRecovery::Redistribute, LaneRecovery::Replacement] {
        let root = workdir(&format!("poison-{recovery:?}"));
        let out = run_faulted(
            &faulted_popts(4, plan.clone(), recovery),
            &RunOptions::new(&root),
        );
        assert_eq!(out.outcome.successes(), 5, "{recovery:?}");
        assert_eq!(out.outcome.quarantined_runs, vec![2], "{recovery:?}");
        assert_eq!(
            out.retired_lanes.len(),
            2,
            "{recovery:?}: the poison run kills exactly poison_threshold lanes"
        );
        assert!(out.ladder_retries >= 1, "{recovery:?}: ladder must step");
        assert_trees_identical(
            &ref_out.outcome.result_dir,
            &out.outcome.result_dir,
            &format!("poison {recovery:?} lanes=4 vs lanes=1"),
        );
    }
}

#[test]
fn crash_mid_failover_resumes_to_identical_tree() {
    // Reference: the same fault plan (a lane death plus a poison run)
    // executed uninterrupted on 4 lanes.
    let plan = LaneFaultPlan {
        lane_deaths: vec![LaneDeath {
            lane: 1,
            after_dispatches: 1,
        }],
        poison_runs: vec![2],
    };
    let popts = faulted_popts(4, plan, LaneRecovery::Redistribute);
    let ref_root = workdir("failover-crash-ref");
    let ref_out = run_faulted(&popts, &RunOptions::new(&ref_root));
    assert_eq!(ref_out.outcome.successes(), 5);

    // Crash at every scheduler-journal append across the failover record
    // window (LaneRetired / RunRetry / RunQuarantined / RunCompleted),
    // torn and clean-cut, then resume. Each resume must converge to the
    // reference tree: journaled retirements stay retired, the ladder
    // continues from its journaled attempt, unsealed quarantines re-seal.
    for crash_after in 3..=8u64 {
        for torn in [false, true] {
            let root = workdir(&format!("failover-crash-{crash_after}-{torn}"));
            let mut opts = RunOptions::new(&root);
            opts.journal_crash_after = Some(crash_after);
            opts.journal_torn_write = torn;
            let err = run_parallel(&small_spec(), &opts, &popts, &mut |_, flavor| {
                Ok(lane_testbed(flavor))
            })
            .unwrap_err();
            assert!(
                err.to_string().contains("injected journal crash"),
                "crash_after={crash_after} torn={torn}: unexpected error: {err}"
            );

            let dir = find_result_dir(&root);
            let out = resume_parallel(
                &dir,
                &small_spec(),
                &RunOptions::new(&root),
                &mut |_, flavor| Ok(lane_testbed(flavor)),
            )
            .unwrap();
            assert_eq!(
                out.outcome.successes(),
                5,
                "crash_after={crash_after} torn={torn}"
            );
            assert_eq!(
                out.outcome.quarantined_runs,
                vec![2],
                "crash_after={crash_after} torn={torn}"
            );
            assert_trees_identical(
                &ref_out.outcome.result_dir,
                &dir,
                &format!("resume after crash_after={crash_after} torn={torn}"),
            );
        }
    }
}

#[test]
fn watchdog_retirements_preserve_identity() {
    // A pathologically tight watchdog budget retires a lane after nearly
    // every completed run; the campaign limps across replacement lanes
    // and still reproduces the clean 1-lane tree.
    let ref_root = workdir("watchdog-ref");
    let ref_dir = run_with_lanes(&ref_root, 1);

    let root = workdir("watchdog");
    let mut popts = ParallelOptions::new(4);
    popts.site_replicas = 8;
    popts.supervisor.grace_factor = 1e-6;
    let out = run_faulted(&popts, &RunOptions::new(&root));
    assert_eq!(out.outcome.successes(), 6);
    assert!(
        !out.retired_lanes.is_empty(),
        "the watchdog must retire at least one lane"
    );
    assert!(
        out.retired_lanes
            .iter()
            .all(|(_, reason)| reason.contains("watchdog overrun")),
        "unexpected retirement reasons: {:?}",
        out.retired_lanes
    );
    assert_trees_identical(&ref_dir, &out.outcome.result_dir, "watchdog vs lanes=1");
}

#[test]
fn replacement_exhausts_site_and_falls_back_to_clone_pool() {
    // With no spare bare-metal replica sets (site_replicas == lanes),
    // a replacement lane comes from the clone pool: the campaign still
    // completes every run, on a lane journaled as `vpos`.
    let plan = LaneFaultPlan {
        lane_deaths: vec![LaneDeath {
            lane: 1,
            after_dispatches: 0,
        }],
        poison_runs: vec![],
    };
    let mut popts = ParallelOptions::new(4);
    popts.supervisor.fault_plan = plan;
    popts.supervisor.recovery = LaneRecovery::Replacement;
    let root = workdir("clone-fallback");
    let out = run_faulted(&popts, &RunOptions::new(&root));
    assert_eq!(out.outcome.successes(), 6);
    assert_eq!(out.replanned_lanes, 1);
    assert_eq!(
        out.flavors.last().map(String::as_str),
        Some("vpos"),
        "the replacement must come from the clone pool: {:?}",
        out.flavors
    );
}

#[test]
fn interrupted_failover_strands_run_and_fsck_flags_it() {
    // Crash exactly between the poison run's LaneRetired record and its
    // RunRetry: the journal now shows a dead lane holding a run that was
    // neither reassigned nor quarantined. `pos fsck` must call that out
    // as stranded, and a resume must repair it.
    let plan = LaneFaultPlan {
        lane_deaths: vec![],
        poison_runs: vec![2],
    };
    let popts = faulted_popts(4, plan, LaneRecovery::Redistribute);
    let root = workdir("stranded");
    let mut opts = RunOptions::new(&root);
    opts.journal_crash_after = Some(4);
    let err = run_parallel(&small_spec(), &opts, &popts, &mut |_, flavor| {
        Ok(lane_testbed(flavor))
    })
    .unwrap_err();
    assert!(err.to_string().contains("injected journal crash"), "{err}");

    let dir = find_result_dir(&root);
    let report = pos::core::fsck::fsck(&dir).unwrap();
    assert!(!report.is_clean());
    let rendered = report.render();
    assert!(
        rendered.contains("stranded"),
        "fsck must flag the stranded run:\n{rendered}"
    );
    assert!(
        rendered.contains("retired"),
        "fsck must report the retired lane:\n{rendered}"
    );

    let out = resume_parallel(
        &dir,
        &small_spec(),
        &RunOptions::new(&root),
        &mut |_, flavor| Ok(lane_testbed(flavor)),
    )
    .unwrap();
    assert_eq!(out.outcome.quarantined_runs, vec![2]);
    let report = pos::core::fsck::fsck(&dir).unwrap();
    assert!(
        report.is_clean(),
        "resume must repair the stranded failover:\n{}",
        report.render()
    );
    assert!(report.render().contains("quarantined runs: [2]"));
}
