//! The parallel scheduler's determinism contract, end to end:
//!
//! * a chaos-free campaign executed on 4 lanes leaves a result tree
//!   **byte-identical** (journals excepted) to the same campaign on
//!   1 lane, and to the plain sequential controller;
//! * a campaign crashed mid-flight by journal fault injection and then
//!   resumed with `resume_parallel` converges to that same tree.

use pos::core::commands::register_all;
use pos::core::controller::{Controller, RunOptions};
use pos::core::experiment::{linux_router_experiment, ExperimentSpec};
use pos::sched::{resume_parallel, run_parallel, LaneFlavor, ParallelOptions};
use pos::testbed::{HardwareSpec, InitInterface, PortId, Testbed};
use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

const SEED: u64 = 0x5EED;

fn case_study_testbed() -> Testbed {
    let mut tb = Testbed::new(SEED);
    tb.add_host("vriga", HardwareSpec::paper_dut(), InitInterface::Ipmi);
    tb.add_host("vtartu", HardwareSpec::paper_dut(), InitInterface::Ipmi);
    tb.topology
        .wire(PortId::new("vriga", 0), PortId::new("vtartu", 0))
        .unwrap();
    tb.topology
        .wire(PortId::new("vtartu", 1), PortId::new("vriga", 1))
        .unwrap();
    register_all(&mut tb);
    tb
}

fn small_spec() -> ExperimentSpec {
    linux_router_experiment("vriga", "vtartu", 3, 1)
}

fn workdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pos-par-{name}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

/// Every file under `root` (relative path → bytes), excluding the
/// journals — they record *how* the tree was produced, not its content.
fn tree_snapshot(root: &Path) -> BTreeMap<String, Vec<u8>> {
    fn walk(root: &Path, dir: &Path, out: &mut BTreeMap<String, Vec<u8>>) {
        for entry in fs::read_dir(dir).unwrap() {
            let entry = entry.unwrap();
            let path = entry.path();
            if path.is_dir() {
                walk(root, &path, out);
            } else {
                let name = path.file_name().unwrap().to_string_lossy();
                if name.starts_with("journal") {
                    continue;
                }
                let rel = path
                    .strip_prefix(root)
                    .unwrap()
                    .to_string_lossy()
                    .into_owned();
                out.insert(rel, fs::read(&path).unwrap());
            }
        }
    }
    let mut out = BTreeMap::new();
    walk(root, root, &mut out);
    out
}

fn assert_trees_identical(a: &Path, b: &Path, what: &str) {
    let ta = tree_snapshot(a);
    let tb = tree_snapshot(b);
    let keys_a: Vec<&String> = ta.keys().collect();
    let keys_b: Vec<&String> = tb.keys().collect();
    assert_eq!(keys_a, keys_b, "{what}: file sets differ");
    for (rel, bytes) in &ta {
        assert_eq!(
            bytes,
            &tb[rel],
            "{what}: `{rel}` differs between {} and {}",
            a.display(),
            b.display()
        );
    }
}

fn make_lane(_lane: usize, flavor: LaneFlavor) -> Testbed {
    assert_eq!(flavor, LaneFlavor::BareMetal, "tests use bare-metal lanes");
    case_study_testbed()
}

fn run_with_lanes(root: &Path, lanes: usize) -> PathBuf {
    let spec = small_spec();
    let opts = RunOptions::new(root);
    let popts = ParallelOptions::new(lanes);
    let out = run_parallel(&spec, &opts, &popts, &mut make_lane).unwrap();
    assert_eq!(out.outcome.runs.len(), 6);
    assert_eq!(out.outcome.successes(), 6);
    out.outcome.result_dir
}

#[test]
fn four_lanes_match_one_lane_byte_for_byte() {
    let root1 = workdir("lanes1");
    let root4 = workdir("lanes4");
    let dir1 = run_with_lanes(&root1, 1);
    let dir4 = run_with_lanes(&root4, 4);
    assert_trees_identical(&dir1, &dir4, "lanes=4 vs lanes=1");
}

#[test]
fn parallel_tree_matches_sequential_controller() {
    let root_seq = workdir("seq");
    let root_par = workdir("par2");
    let spec = small_spec();

    let mut tb = case_study_testbed();
    let seq = Controller::new(&mut tb)
        .run_experiment(&spec, &RunOptions::new(&root_seq))
        .unwrap();

    let dir_par = run_with_lanes(&root_par, 2);
    assert_trees_identical(&seq.result_dir, &dir_par, "lanes=2 vs sequential");
}

#[test]
fn parallel_speedup_is_real() {
    let root = workdir("speedup");
    let spec = small_spec();
    let opts = RunOptions::new(&root);
    let out = run_parallel(&spec, &opts, &ParallelOptions::new(4), &mut make_lane).unwrap();
    assert!(
        out.speedup() > 1.0,
        "4 lanes must beat 1 on a 6-run campaign, got {:.2}x",
        out.speedup()
    );
    assert!(
        out.lane_runs.iter().filter(|l| !l.is_empty()).count() > 1,
        "work must actually spread across lanes: {:?}",
        out.lane_runs
    );
}

#[test]
fn crashed_parallel_campaign_resumes_to_identical_tree() {
    // Reference: an uninterrupted 4-lane execution.
    let root_ok = workdir("crash-ref");
    let dir_ok = run_with_lanes(&root_ok, 4);

    // Crash: the first lane journal to reach its third append (its first
    // run's RunCompleted record) fails mid-campaign.
    let root = workdir("crash");
    let spec = small_spec();
    let mut opts = RunOptions::new(&root);
    opts.journal_crash_after = Some(2);
    opts.journal_torn_write = true;
    let err = run_parallel(&spec, &opts, &ParallelOptions::new(4), &mut make_lane).unwrap_err();
    let msg = err.to_string();
    assert!(
        msg.contains("injected journal crash"),
        "unexpected error: {msg}"
    );

    // The wreckage is on disk; find the result dir under the root.
    let dir = find_result_dir(&root);

    // Resume replays all lane journals and re-executes what is missing.
    let resume_opts = RunOptions::new(&root);
    let out = resume_parallel(&dir, &spec, &resume_opts, &mut make_lane).unwrap();
    assert_eq!(out.outcome.successes(), 6);
    assert_trees_identical(&dir_ok, &dir, "resumed vs uninterrupted 4-lane tree");
}

/// Descends `<root>/<user>/<exp>/vt-*/` to the single result dir.
fn find_result_dir(root: &Path) -> PathBuf {
    let mut dir = root.to_path_buf();
    for _ in 0..3 {
        let mut entries: Vec<PathBuf> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .filter(|p| p.is_dir())
            .collect();
        entries.sort();
        assert_eq!(entries.len(), 1, "expected one subdir in {}", dir.display());
        dir = entries.remove(0);
    }
    dir
}
