//! Repetitions: re-running the whole cross product several times and
//! aggregating across runs — the statistical-confidence workflow that the
//! robustness discussion (§2, Zilberman's NDP evaluation) calls for.

use pos::core::commands::register_all;
use pos::core::controller::{Controller, RunOptions};
use pos::core::experiment::linux_router_experiment;
use pos::eval::loader::ResultSet;
use pos::eval::plot::PlotSpec;
use pos::testbed::{HardwareSpec, InitInterface, PortId, Testbed};
use std::path::PathBuf;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pos-rep2-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn vpos_testbed() -> Testbed {
    let mut tb = Testbed::new(0xEE);
    tb.add_host("vriga", HardwareSpec::vpos_vm(), InitInterface::Hypervisor);
    tb.add_host("vtartu", HardwareSpec::vpos_vm(), InitInterface::Hypervisor);
    tb.topology
        .wire(PortId::new("vriga", 0), PortId::new("vtartu", 0))
        .unwrap();
    tb.topology
        .wire(PortId::new("vtartu", 1), PortId::new("vriga", 1))
        .unwrap();
    register_all(&mut tb);
    tb
}

#[test]
fn repetitions_multiply_runs_and_aggregate() {
    let mut tb = vpos_testbed();
    // 2 rates × 1 size, 4 repetitions = 8 runs. The 100 kpps point is far
    // above the VM's saturation, so repetitions scatter — which is exactly
    // what the error bars should show.
    let mut spec = linux_router_experiment("vriga", "vtartu", 2, 1);
    spec.loop_vars = pos::core::vars::Variables::new().with("pkt_rate", vec![20_000i64, 100_000]);
    spec.global_vars.set("pkt_sz", 64i64);
    let mut opts = RunOptions::new(tmp("agg"));
    opts.repetitions = 4;
    let outcome = Controller::new(&mut tb)
        .run_experiment(&spec, &opts)
        .unwrap();
    assert_eq!(outcome.runs.len(), 8);
    assert_eq!(outcome.successes(), 8);

    let set = ResultSet::load(&outcome.result_dir).unwrap();
    // Every run's metadata records its repetition index.
    let mut reps: Vec<String> = set
        .runs
        .iter()
        .filter_map(|r| r.param("repetition").map(str::to_owned))
        .collect();
    reps.sort();
    reps.dedup();
    assert_eq!(reps, vec!["0", "1", "2", "3"]);

    // Aggregation: one summary per rate, four samples each.
    let agg = set.series_aggregated("pkt_rate", |r| Some(r.report()?.rx_mpps()));
    assert_eq!(agg.len(), 2);
    for (x, summary) in &agg {
        assert_eq!(summary.count, 4, "4 repetitions at rate {x}");
    }
    // Below saturation the repetitions agree tightly; in overload they
    // scatter more.
    let cv_low = agg[0].1.cv().unwrap_or(0.0);
    let cv_high = agg[1].1.cv().unwrap_or(0.0);
    assert!(cv_low < 0.01, "below saturation: cv {cv_low}");
    assert!(
        cv_high > cv_low,
        "overload must scatter more: {cv_high} vs {cv_low}"
    );

    // And the error-bar figure falls out of the aggregation.
    let points: Vec<(f64, f64)> = agg.iter().map(|(x, s)| (*x, s.mean)).collect();
    let errs: Vec<f64> = agg
        .iter()
        .map(|(_, s)| {
            let (lo, hi) = s.ci95();
            (hi - lo) / 2.0
        })
        .collect();
    let plot = PlotSpec::line("vpos forwarding", "offered [pps]", "forwarded [Mpps]")
        .with_series_err("64 B (mean ± 95% CI)", points, errs);
    let svg = plot.render_svg();
    assert!(svg.contains("mean ± 95% CI"));
    let csv = plot.render_csv();
    assert!(csv.starts_with("series,x,y,y_err"));
}

#[test]
fn single_repetition_adds_no_synthetic_variable() {
    let mut tb = vpos_testbed();
    let mut spec = linux_router_experiment("vriga", "vtartu", 1, 1);
    spec.loop_vars = pos::core::vars::Variables::new().with("pkt_rate", vec![10_000i64]);
    spec.global_vars.set("pkt_sz", 64i64);
    let outcome = Controller::new(&mut tb)
        .run_experiment(&spec, &RunOptions::new(tmp("single")))
        .unwrap();
    let set = ResultSet::load(&outcome.result_dir).unwrap();
    assert_eq!(set.len(), 1);
    assert!(set.runs[0].param("repetition").is_none());
}
