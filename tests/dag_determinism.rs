//! The DAG executor's determinism contract, end to end:
//!
//! * the linux-router DAG executed with `--lanes 4` on the in-process
//!   target, with `--lanes 2`, and on the simulated batch target all
//!   leave a result tree **byte-identical** (journals excepted) to the
//!   sequential `--lanes 1` execution;
//! * a DAG killed at *every* DAG-journal record boundary — cleanly and
//!   with a torn final frame — and then resumed converges to that same
//!   tree, with `pos fsck` calling the resumed DAG clean;
//! * a crash *inside* a sweep stage's own campaign journal is a
//!   checkpoint too: `resume_dag` routes it through the parallel
//!   scheduler's resume and still converges;
//! * resume refuses identity drift (wrong seed, wrong target).

use pos::core::controller::RunOptions;
use pos::core::experiment::{linux_router_experiment, ExperimentSpec};
use pos::core::fsck::fsck_dag;
use pos::core::journal::{Journal, JOURNAL_FILE};
use pos::dag::{linux_router_dag, InProcessTarget, SimBatchTarget};
use pos::dag::{resume_dag, run_dag, DagError, DagOptions, DagSpec, ExecutionTarget};
use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

const SEED: u64 = 0x5EED;

/// 3 rate steps × 2 packet sizes × 1 virtual second: 6 runs per sweep,
/// small enough for the full kill matrix.
fn small_spec() -> ExperimentSpec {
    linux_router_experiment("vriga", "vtartu", 3, 1)
}

fn dag() -> DagSpec {
    linux_router_dag()
}

fn workdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pos-dag-{name}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn in_process() -> InProcessTarget {
    InProcessTarget::new(SEED, true, 2)
}

/// Every file under `root` (relative path → bytes), excluding journals
/// at any depth — the DAG journal and each sweep's campaign journal
/// record *how* the tree was produced, not its content.
fn tree_snapshot(root: &Path) -> BTreeMap<String, Vec<u8>> {
    fn walk(root: &Path, dir: &Path, out: &mut BTreeMap<String, Vec<u8>>) {
        for entry in fs::read_dir(dir).unwrap() {
            let path = entry.unwrap().path();
            if path.is_dir() {
                walk(root, &path, out);
            } else {
                let name = path.file_name().unwrap().to_string_lossy();
                if name.starts_with("journal") {
                    continue;
                }
                let rel = path
                    .strip_prefix(root)
                    .unwrap()
                    .to_string_lossy()
                    .into_owned();
                out.insert(rel, fs::read(&path).unwrap());
            }
        }
    }
    let mut out = BTreeMap::new();
    walk(root, root, &mut out);
    out
}

fn assert_matches_reference(reference: &BTreeMap<String, Vec<u8>>, dag_dir: &Path, what: &str) {
    let got = tree_snapshot(dag_dir);
    let want_names: Vec<&String> = reference.keys().collect();
    let got_names: Vec<&String> = got.keys().collect();
    assert_eq!(got_names, want_names, "{what}: file sets differ");
    for (rel, want) in reference {
        assert_eq!(
            &got[rel], want,
            "{what}: `{rel}` diverges from the sequential reference"
        );
    }
}

/// The sequential (1-lane, in-process) reference tree and the number of
/// records its DAG journal holds.
fn reference() -> (BTreeMap<String, Vec<u8>>, u64) {
    let root = workdir("reference");
    let out = run_dag(
        &dag(),
        &small_spec(),
        &RunOptions::new(&root),
        &DagOptions::new(1, SEED),
        &mut in_process(),
    )
    .expect("sequential DAG succeeds");
    assert_eq!(out.nodes.len(), 3);
    assert_eq!(out.failed_runs, 0);
    let report = fsck_dag(&out.dag_dir).unwrap();
    assert!(
        report.is_clean(),
        "reference not clean:\n{}",
        report.render()
    );
    let records = Journal::replay(&out.dag_dir.join(JOURNAL_FILE))
        .unwrap()
        .records
        .len() as u64;
    (tree_snapshot(&out.dag_dir), records)
}

#[test]
fn lane_counts_and_targets_are_artifact_interchangeable() {
    let (want, _) = reference();

    for lanes in [2usize, 4] {
        let root = workdir(&format!("lanes{lanes}"));
        let out = run_dag(
            &dag(),
            &small_spec(),
            &RunOptions::new(&root),
            &DagOptions::new(lanes, SEED),
            &mut in_process(),
        )
        .unwrap_or_else(|e| panic!("--lanes {lanes} failed: {e}"));
        assert_matches_reference(&want, &out.dag_dir, &format!("--lanes {lanes}"));
    }

    // The simulated batch target queues jobs and clamps lanes to its
    // partition width, but the merged artifacts must not know that.
    let root = workdir("batch");
    let mut batch = SimBatchTarget::new(SEED, true, 2);
    let out = run_dag(
        &dag(),
        &small_spec(),
        &RunOptions::new(&root),
        &DagOptions::new(4, SEED),
        &mut batch,
    )
    .expect("batch target DAG succeeds");
    assert_matches_reference(&want, &out.dag_dir, "sim-batch target");
    let report = batch.report();
    assert_eq!(report.target, "sim-batch");
    assert!(
        report.jobs.iter().any(|j| j.lanes_granted == 2),
        "partition width clamps the grant: {}",
        report.render()
    );
}

/// The single `vt-*` DAG dir created under a fresh root.
fn find_dag_dir(root: &Path) -> PathBuf {
    let mut dir = root.to_path_buf();
    for _ in 0..3 {
        let mut subdirs: Vec<PathBuf> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .filter(|p| p.is_dir())
            .collect();
        subdirs.sort();
        dir = subdirs.into_iter().next().expect("result tree level");
    }
    dir
}

#[test]
fn kill_at_every_dag_journal_boundary_then_resume_converges() {
    let (want, total_records) = reference();
    assert!(
        total_records >= 8,
        "3-stage DAG journals at least start + 3x(started,finished) + finish, got {total_records}"
    );

    for torn in [false, true] {
        for k in 0..total_records {
            let label = format!("crash at DAG record {k} (torn={torn})");
            let root = workdir(&format!("kill-{k}-{torn}"));
            let mut dopts = DagOptions::new(2, SEED);
            dopts.dag_crash_after = Some(k);
            dopts.dag_torn_write = torn;
            let err = run_dag(
                &dag(),
                &small_spec(),
                &RunOptions::new(&root),
                &dopts,
                &mut in_process(),
            )
            .expect_err(&format!("{label}: DAG must abort"));
            assert!(
                err.to_string().contains("injected journal crash"),
                "{label}: unexpected error {err}"
            );

            let dag_dir = find_dag_dir(&root);
            let out = resume_dag(
                &dag_dir,
                &RunOptions::new(&root),
                &DagOptions::new(2, SEED),
                &mut in_process(),
            )
            .unwrap_or_else(|e| panic!("{label}: resume failed: {e}"));
            assert_eq!(out.nodes.len(), 3, "{label}");
            assert_matches_reference(&want, &out.dag_dir, &label);
            let report = fsck_dag(&out.dag_dir).unwrap();
            assert!(
                report.is_clean(),
                "{label}: fsck not clean:\n{}",
                report.render()
            );
        }
    }
}

#[test]
fn resume_fast_forwards_digest_verified_nodes() {
    let (want, total_records) = reference();
    // Crash on the final DagFinished append: every node is durable and
    // digest-verified, resume re-executes nothing.
    let root = workdir("ff");
    let mut dopts = DagOptions::new(1, SEED);
    dopts.dag_crash_after = Some(total_records - 1);
    run_dag(
        &dag(),
        &small_spec(),
        &RunOptions::new(&root),
        &dopts,
        &mut in_process(),
    )
    .expect_err("DAG must abort on the final record");
    let dag_dir = find_dag_dir(&root);
    let out = resume_dag(
        &dag_dir,
        &RunOptions::new(&root),
        &DagOptions::new(1, SEED),
        &mut in_process(),
    )
    .expect("resume completes");
    assert_eq!(out.verified_nodes, 3, "all nodes fast-forwarded");
    assert!(out.nodes.iter().all(|n| n.verified));
    assert_matches_reference(&want, &out.dag_dir, "fast-forward resume");
}

#[test]
fn inner_sweep_crash_is_a_checkpoint_and_dag_resume_converges() {
    let (want, _) = reference();
    let root = workdir("inner");
    let mut opts = RunOptions::new(&root);
    // Crash the *sweep stage's own* campaign journal mid-flight; the
    // DAG journal stays healthy at the NodeStarted(rate-sweep) record.
    opts.journal_crash_after = Some(6);
    let err = run_dag(
        &dag(),
        &small_spec(),
        &opts,
        &DagOptions::new(2, SEED),
        &mut in_process(),
    )
    .expect_err("inner crash aborts the DAG");
    assert!(
        err.to_string().contains("injected journal crash"),
        "inner journal crash surfaces through the DAG error: {err}"
    );

    let dag_dir = find_dag_dir(&root);
    let out = resume_dag(
        &dag_dir,
        &RunOptions::new(&root),
        &DagOptions::new(2, SEED),
        &mut in_process(),
    )
    .expect("DAG resume routes through the scheduler's resume");
    assert_matches_reference(&want, &out.dag_dir, "inner-crash resume");
    let report = fsck_dag(&out.dag_dir).unwrap();
    assert!(report.is_clean(), "fsck not clean:\n{}", report.render());
}

#[test]
fn resume_refuses_identity_drift() {
    let root = workdir("drift");
    let mut dopts = DagOptions::new(1, SEED);
    dopts.dag_crash_after = Some(3);
    run_dag(
        &dag(),
        &small_spec(),
        &RunOptions::new(&root),
        &dopts,
        &mut in_process(),
    )
    .expect_err("DAG must abort");
    let dag_dir = find_dag_dir(&root);

    let wrong_seed = resume_dag(
        &dag_dir,
        &RunOptions::new(&root),
        &DagOptions::new(1, SEED + 1),
        &mut in_process(),
    );
    assert!(
        matches!(wrong_seed, Err(DagError::Resume { .. })),
        "wrong seed must be refused: {wrong_seed:?}"
    );

    let mut batch = SimBatchTarget::new(SEED, true, 2);
    let wrong_target = resume_dag(
        &dag_dir,
        &RunOptions::new(&root),
        &DagOptions::new(1, SEED),
        &mut batch,
    );
    assert!(
        matches!(wrong_target, Err(DagError::Resume { .. })),
        "target swap mid-campaign must be refused: {wrong_target:?}"
    );

    // The original identity still resumes fine.
    resume_dag(
        &dag_dir,
        &RunOptions::new(&root),
        &DagOptions::new(1, SEED),
        &mut in_process(),
    )
    .expect("original identity resumes");
}
