//! Integration test of the `pos` CLI binary: init → run → eval → publish,
//! exactly the Appendix-A command sequence.

use std::path::{Path, PathBuf};
use std::process::Command;

fn pos_bin() -> &'static str {
    env!("CARGO_BIN_EXE_pos")
}

fn run(dir: &Path, args: &[&str]) -> (bool, String, String) {
    let out = Command::new(pos_bin())
        .args(args)
        .current_dir(dir)
        .output()
        .expect("spawn pos binary");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

fn workdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pos-cli-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn full_cli_workflow() {
    let dir = workdir("flow");

    // init
    let (ok, stdout, stderr) = run(&dir, &["init", "exp"]);
    assert!(ok, "init failed: {stderr}");
    assert!(stdout.contains("60 loop-variable combinations"));
    assert!(dir.join("exp/experiment.yml").exists());
    assert!(dir.join("exp/dut/setup.sh").exists());

    // Edit the sweep down (the researcher's prerogative) so the test is
    // quick: one size, two rates, 1 s runs.
    std::fs::write(dir.join("exp/loop-variables.yml"), "pkt_sz: [64]\npkt_rate: [20000, 40000]\n").unwrap();
    std::fs::write(
        dir.join("exp/global-variables.yml"),
        "dut_ip0: 10.0.0.1\ndut_ip1: 10.0.1.1\nrun_secs: 1\n",
    )
    .unwrap();

    // run
    let (ok, stdout, stderr) = run(&dir, &["run", "exp", "--results", "res", "--seed", "7"]);
    assert!(ok, "run failed: {stderr}");
    assert!(stdout.contains("run 2/2 ok"), "{stdout}");
    assert!(stdout.contains("done: 2/2 runs"));
    let result_dir = stdout
        .lines()
        .find_map(|l| l.strip_prefix("result tree: "))
        .expect("result dir printed")
        .trim()
        .to_owned();

    // eval
    let (ok, stdout, stderr) = run(&dir, &["eval", &result_dir]);
    assert!(ok, "eval failed: {stderr}");
    assert!(stdout.contains("2 runs loaded (2 successful)"));
    assert!(stdout.contains("pkt_sz=64"));
    assert!(dir.join(&result_dir).join("figures/throughput.svg").exists());

    // publish
    let (ok, stdout, stderr) = run(
        &dir,
        &["publish", &result_dir, "--out", "rel", "--tar", "rel.tar", "--title", "CLI test"],
    );
    assert!(ok, "publish failed: {stderr}");
    assert!(stdout.contains("published"));
    assert!(dir.join("rel/manifest.json").exists());
    assert!(dir.join("rel/index.html").exists());
    assert!(dir.join("rel.tar").exists());
    // The published figures include the eval output.
    assert!(dir.join("rel/figures/throughput.svg").exists());
}

#[test]
fn cli_vpos_flag_switches_testbed() {
    let dir = workdir("vpos");
    run(&dir, &["init", "exp"]);
    std::fs::write(dir.join("exp/loop-variables.yml"), "pkt_sz: [64]\npkt_rate: [100000]\n").unwrap();
    std::fs::write(
        dir.join("exp/global-variables.yml"),
        "dut_ip0: 10.0.0.1\ndut_ip1: 10.0.1.1\nrun_secs: 1\n",
    )
    .unwrap();
    let (ok, stdout, _) = run(&dir, &["run", "exp", "--results", "r", "--testbed", "vpos"]);
    assert!(ok);
    assert!(stdout.contains("vpos testbed"));
    // At 100 kpps a VM DuT drops heavily; the measurement shows it.
    let result_dir = stdout
        .lines()
        .find_map(|l| l.strip_prefix("result tree: "))
        .unwrap()
        .trim()
        .to_owned();
    let (ok, stdout, _) = run(&dir, &["eval", &result_dir]);
    assert!(ok);
    let fwd_line = stdout
        .lines()
        .find(|l| l.contains("-> forwarded"))
        .expect("series printed");
    let fwd: f64 = fwd_line
        .split("forwarded ")
        .nth(1)
        .unwrap()
        .split(' ')
        .next()
        .unwrap()
        .parse()
        .unwrap();
    assert!(
        (0.02..0.06).contains(&fwd),
        "vpos saturates near 0.04 Mpps, got {fwd}: {fwd_line}"
    );
}

#[test]
fn cli_errors_are_clean() {
    let dir = workdir("errors");
    let (ok, _, stderr) = run(&dir, &["frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("unknown command"));

    let (ok, _, stderr) = run(&dir, &["run", "missing-dir"]);
    assert!(!ok);
    assert!(stderr.contains("cannot load experiment"));

    let (ok, _, stderr) = run(&dir, &["run"]);
    assert!(!ok);
    assert!(stderr.contains("usage"));

    // init refuses to clobber an existing experiment.
    run(&dir, &["init", "exp"]);
    let (ok, _, stderr) = run(&dir, &["init", "exp"]);
    assert!(!ok);
    assert!(stderr.contains("already holds"));
}

#[test]
fn cli_table1_prints_matrix() {
    let dir = workdir("t1");
    let (ok, stdout, _) = run(&dir, &["table1"]);
    assert!(ok);
    assert!(stdout.contains("pos"));
    assert!(stdout.contains("Chameleon"));
    assert!(stdout.contains("✓"));
}

#[test]
fn cli_help_shown_without_args() {
    let dir = workdir("help");
    let (ok, stdout, _) = run(&dir, &[]);
    assert!(ok);
    assert!(stdout.contains("usage:"));
}

#[test]
fn cli_fsck_and_resume_repair_a_damaged_tree() {
    let dir = workdir("fsck");
    run(&dir, &["init", "exp"]);
    std::fs::write(dir.join("exp/loop-variables.yml"), "pkt_sz: [64]\npkt_rate: [20000]\n").unwrap();
    std::fs::write(
        dir.join("exp/global-variables.yml"),
        "dut_ip0: 10.0.0.1\ndut_ip1: 10.0.1.1\nrun_secs: 1\n",
    )
    .unwrap();
    let (ok, stdout, stderr) = run(&dir, &["run", "exp", "--results", "res"]);
    assert!(ok, "run failed: {stderr}");
    let result_dir = stdout
        .lines()
        .find_map(|l| l.strip_prefix("result tree: "))
        .expect("result dir printed")
        .trim()
        .to_owned();

    // An intact tree is clean and an intact finished campaign refuses to
    // resume.
    let (ok, stdout, _) = run(&dir, &["fsck", &result_dir]);
    assert!(ok, "fsck of a pristine tree must succeed");
    assert!(stdout.contains("status: clean"), "{stdout}");
    assert!(stdout.contains("campaign finished"), "{stdout}");
    let (ok, _, stderr) = run(&dir, &["resume", &result_dir]);
    assert!(!ok);
    assert!(stderr.contains("nothing to resume"), "{stderr}");

    // Flip one byte in a run artifact: fsck flags it, publish refuses it.
    let victim = dir.join(&result_dir).join("run-0000/loadgen_measurement.log");
    let mut bytes = std::fs::read(&victim).unwrap();
    bytes[0] ^= 0x01;
    std::fs::write(&victim, &bytes).unwrap();

    let (ok, stdout, stderr) = run(&dir, &["fsck", &result_dir]);
    assert!(!ok, "fsck must fail on bit rot");
    assert!(stdout.contains("damaged"), "{stdout}");
    assert!(stdout.contains("corrupt"), "{stdout}");
    assert!(stdout.contains("status: NOT clean"), "{stdout}");
    assert!(stderr.contains("not clean"), "{stderr}");
    let (ok, _, stderr) = run(&dir, &["publish", &result_dir, "--out", "rel"]);
    assert!(!ok, "publish must refuse a damaged tree");
    assert!(stderr.contains("corrupt"), "{stderr}");

    // Resume repairs exactly the damaged run; afterwards the tree is
    // clean and publishable again.
    let (ok, stdout, stderr) = run(&dir, &["resume", &result_dir]);
    assert!(ok, "resume failed: {stderr}");
    assert!(stdout.contains("repairing"), "{stdout}");
    assert!(stdout.contains("run 1/1 ok"), "{stdout}");
    let (ok, stdout, _) = run(&dir, &["fsck", &result_dir]);
    assert!(ok, "repaired tree must be clean:\n{stdout}");
    let (ok, _, stderr) = run(&dir, &["publish", &result_dir, "--out", "rel"]);
    assert!(ok, "publish after repair failed: {stderr}");
}
