//! Integration test of the `pos` CLI binary: init → run → eval → publish,
//! exactly the Appendix-A command sequence.

use std::path::{Path, PathBuf};
use std::process::Command;

fn pos_bin() -> &'static str {
    env!("CARGO_BIN_EXE_pos")
}

fn run(dir: &Path, args: &[&str]) -> (bool, String, String) {
    let out = Command::new(pos_bin())
        .args(args)
        .current_dir(dir)
        .output()
        .expect("spawn pos binary");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

fn workdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pos-cli-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn full_cli_workflow() {
    let dir = workdir("flow");

    // init
    let (ok, stdout, stderr) = run(&dir, &["init", "exp"]);
    assert!(ok, "init failed: {stderr}");
    assert!(stdout.contains("60 loop-variable combinations"));
    assert!(dir.join("exp/experiment.yml").exists());
    assert!(dir.join("exp/dut/setup.sh").exists());

    // Edit the sweep down (the researcher's prerogative) so the test is
    // quick: one size, two rates, 1 s runs.
    std::fs::write(
        dir.join("exp/loop-variables.yml"),
        "pkt_sz: [64]\npkt_rate: [20000, 40000]\n",
    )
    .unwrap();
    std::fs::write(
        dir.join("exp/global-variables.yml"),
        "dut_ip0: 10.0.0.1\ndut_ip1: 10.0.1.1\nrun_secs: 1\n",
    )
    .unwrap();

    // run
    let (ok, stdout, stderr) = run(&dir, &["run", "exp", "--results", "res", "--seed", "7"]);
    assert!(ok, "run failed: {stderr}");
    assert!(stdout.contains("run 2/2 ok"), "{stdout}");
    assert!(stdout.contains("done: 2/2 runs"));
    let result_dir = stdout
        .lines()
        .find_map(|l| l.strip_prefix("result tree: "))
        .expect("result dir printed")
        .trim()
        .to_owned();

    // eval
    let (ok, stdout, stderr) = run(&dir, &["eval", &result_dir]);
    assert!(ok, "eval failed: {stderr}");
    assert!(stdout.contains("2 runs loaded (2 successful)"));
    assert!(stdout.contains("pkt_sz=64"));
    assert!(dir
        .join(&result_dir)
        .join("figures/throughput.svg")
        .exists());

    // publish
    let (ok, stdout, stderr) = run(
        &dir,
        &[
            "publish",
            &result_dir,
            "--out",
            "rel",
            "--tar",
            "rel.tar",
            "--title",
            "CLI test",
        ],
    );
    assert!(ok, "publish failed: {stderr}");
    assert!(stdout.contains("published"));
    assert!(dir.join("rel/manifest.json").exists());
    assert!(dir.join("rel/index.html").exists());
    assert!(dir.join("rel.tar").exists());
    // The published figures include the eval output.
    assert!(dir.join("rel/figures/throughput.svg").exists());
}

#[test]
fn cli_vpos_flag_switches_testbed() {
    let dir = workdir("vpos");
    run(&dir, &["init", "exp"]);
    std::fs::write(
        dir.join("exp/loop-variables.yml"),
        "pkt_sz: [64]\npkt_rate: [100000]\n",
    )
    .unwrap();
    std::fs::write(
        dir.join("exp/global-variables.yml"),
        "dut_ip0: 10.0.0.1\ndut_ip1: 10.0.1.1\nrun_secs: 1\n",
    )
    .unwrap();
    let (ok, stdout, _) = run(&dir, &["run", "exp", "--results", "r", "--testbed", "vpos"]);
    assert!(ok);
    assert!(stdout.contains("vpos testbed"));
    // At 100 kpps a VM DuT drops heavily; the measurement shows it.
    let result_dir = stdout
        .lines()
        .find_map(|l| l.strip_prefix("result tree: "))
        .unwrap()
        .trim()
        .to_owned();
    let (ok, stdout, _) = run(&dir, &["eval", &result_dir]);
    assert!(ok);
    let fwd_line = stdout
        .lines()
        .find(|l| l.contains("-> forwarded"))
        .expect("series printed");
    let fwd: f64 = fwd_line
        .split("forwarded ")
        .nth(1)
        .unwrap()
        .split(' ')
        .next()
        .unwrap()
        .parse()
        .unwrap();
    assert!(
        (0.02..0.06).contains(&fwd),
        "vpos saturates near 0.04 Mpps, got {fwd}: {fwd_line}"
    );
}

#[test]
fn cli_errors_are_clean() {
    let dir = workdir("errors");
    let (ok, _, stderr) = run(&dir, &["frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("unknown command"));

    let (ok, _, stderr) = run(&dir, &["run", "missing-dir"]);
    assert!(!ok);
    assert!(stderr.contains("cannot load experiment"));

    let (ok, _, stderr) = run(&dir, &["run"]);
    assert!(!ok);
    assert!(stderr.contains("usage"));

    // init refuses to clobber an existing experiment.
    run(&dir, &["init", "exp"]);
    let (ok, _, stderr) = run(&dir, &["init", "exp"]);
    assert!(!ok);
    assert!(stderr.contains("already holds"));
}

#[test]
fn cli_table1_prints_matrix() {
    let dir = workdir("t1");
    let (ok, stdout, _) = run(&dir, &["table1"]);
    assert!(ok);
    assert!(stdout.contains("pos"));
    assert!(stdout.contains("Chameleon"));
    assert!(stdout.contains("✓"));
}

#[test]
fn cli_help_shown_without_args() {
    let dir = workdir("help");
    let (ok, stdout, _) = run(&dir, &[]);
    assert!(ok);
    assert!(stdout.contains("usage:"));
}

#[test]
fn cli_fsck_and_resume_repair_a_damaged_tree() {
    let dir = workdir("fsck");
    run(&dir, &["init", "exp"]);
    std::fs::write(
        dir.join("exp/loop-variables.yml"),
        "pkt_sz: [64]\npkt_rate: [20000]\n",
    )
    .unwrap();
    std::fs::write(
        dir.join("exp/global-variables.yml"),
        "dut_ip0: 10.0.0.1\ndut_ip1: 10.0.1.1\nrun_secs: 1\n",
    )
    .unwrap();
    let (ok, stdout, stderr) = run(&dir, &["run", "exp", "--results", "res"]);
    assert!(ok, "run failed: {stderr}");
    let result_dir = stdout
        .lines()
        .find_map(|l| l.strip_prefix("result tree: "))
        .expect("result dir printed")
        .trim()
        .to_owned();

    // An intact tree is clean and an intact finished campaign refuses to
    // resume.
    let (ok, stdout, _) = run(&dir, &["fsck", &result_dir]);
    assert!(ok, "fsck of a pristine tree must succeed");
    assert!(stdout.contains("status: clean"), "{stdout}");
    assert!(stdout.contains("campaign finished"), "{stdout}");
    let (ok, _, stderr) = run(&dir, &["resume", &result_dir]);
    assert!(!ok);
    assert!(stderr.contains("nothing to resume"), "{stderr}");

    // Flip one byte in a run artifact: fsck flags it, publish refuses it.
    let victim = dir
        .join(&result_dir)
        .join("run-0000/loadgen_measurement.log");
    let mut bytes = std::fs::read(&victim).unwrap();
    bytes[0] ^= 0x01;
    std::fs::write(&victim, &bytes).unwrap();

    let (ok, stdout, stderr) = run(&dir, &["fsck", &result_dir]);
    assert!(!ok, "fsck must fail on bit rot");
    assert!(stdout.contains("damaged"), "{stdout}");
    assert!(stdout.contains("corrupt"), "{stdout}");
    assert!(stdout.contains("status: NOT clean"), "{stdout}");
    assert!(stderr.contains("not clean"), "{stderr}");
    let (ok, _, stderr) = run(&dir, &["publish", &result_dir, "--out", "rel"]);
    assert!(!ok, "publish must refuse a damaged tree");
    assert!(stderr.contains("corrupt"), "{stderr}");

    // Resume repairs exactly the damaged run; afterwards the tree is
    // clean and publishable again.
    let (ok, stdout, stderr) = run(&dir, &["resume", &result_dir]);
    assert!(ok, "resume failed: {stderr}");
    assert!(stdout.contains("repairing"), "{stdout}");
    assert!(stdout.contains("run 1/1 ok"), "{stdout}");
    let (ok, stdout, _) = run(&dir, &["fsck", &result_dir]);
    assert!(ok, "repaired tree must be clean:\n{stdout}");
    let (ok, _, stderr) = run(&dir, &["publish", &result_dir, "--out", "rel"]);
    assert!(ok, "publish after repair failed: {stderr}");
}

/// Scaffolds the case-study experiment shrunk to a quick sweep.
fn init_small_exp(dir: &Path) {
    run(dir, &["init", "exp"]);
    std::fs::write(
        dir.join("exp/loop-variables.yml"),
        "pkt_sz: [64]\npkt_rate: [20000, 40000]\n",
    )
    .unwrap();
    std::fs::write(
        dir.join("exp/global-variables.yml"),
        "dut_ip0: 10.0.0.1\ndut_ip1: 10.0.1.1\nrun_secs: 1\n",
    )
    .unwrap();
}

fn result_dir_of(stdout: &str) -> String {
    stdout
        .lines()
        .find_map(|l| l.strip_prefix("result tree: "))
        .expect("result dir printed")
        .trim()
        .to_owned()
}

#[test]
fn cli_parallel_lanes_match_sequential_and_fsck_audits_lane_journals() {
    let dir = workdir("lanes");
    init_small_exp(&dir);

    let (ok, stdout, stderr) = run(&dir, &["run", "exp", "--results", "seq", "--seed", "9"]);
    assert!(ok, "sequential run failed: {stderr}");
    let seq_dir = result_dir_of(&stdout);

    let (ok, stdout, stderr) = run(
        &dir,
        &[
            "run",
            "exp",
            "--results",
            "par",
            "--seed",
            "9",
            "--lanes",
            "2",
        ],
    );
    assert!(ok, "parallel run failed: {stderr}");
    assert!(stdout.contains("lanes: 2 [pos,pos]"), "{stdout}");
    assert!(stdout.contains("speedup"), "{stdout}");
    let par_dir = result_dir_of(&stdout);

    // The parallel tree is byte-identical to the sequential one, journals
    // excepted.
    let diff = |rel: &str| {
        let a = std::fs::read(dir.join(&seq_dir).join(rel)).unwrap();
        let b = std::fs::read(dir.join(&par_dir).join(rel)).unwrap();
        assert_eq!(a, b, "`{rel}` differs between sequential and parallel");
    };
    diff("controller.log");
    diff("run-0000/loadgen_measurement.log");
    diff("run-0001/loadgen_measurement.log");
    diff("run-0001/checksums.json");
    assert!(dir.join(&par_dir).join("journal-lane0.log").exists());
    assert!(dir.join(&par_dir).join("journal-lane1.log").exists());

    // fsck recognizes the lane journals and audits through them.
    let (ok, stdout, stderr) = run(&dir, &["fsck", &par_dir]);
    assert!(ok, "fsck of a parallel tree failed: {stdout}{stderr}");
    assert!(stdout.contains("lanes: 2 lane journals"), "{stdout}");
    assert!(stdout.contains("status: clean"), "{stdout}");

    // Damage a run: fsck attributes it, resume routes to the parallel
    // scheduler and repairs it.
    let victim = dir.join(&par_dir).join("run-0000/loadgen_measurement.log");
    let mut bytes = std::fs::read(&victim).unwrap();
    bytes[0] ^= 0x01;
    std::fs::write(&victim, &bytes).unwrap();
    let (ok, stdout, _) = run(&dir, &["fsck", &par_dir]);
    assert!(!ok);
    assert!(stdout.contains("status: NOT clean"), "{stdout}");

    let (ok, stdout, stderr) = run(&dir, &["resume", &par_dir]);
    assert!(ok, "parallel resume failed: {stderr}");
    assert!(stdout.contains("resuming"), "{stdout}");
    assert!(stdout.contains("lanes"), "{stdout}");
    let (ok, stdout, _) = run(&dir, &["fsck", &par_dir]);
    assert!(ok, "repaired parallel tree must be clean:\n{stdout}");
    diff("run-0000/loadgen_measurement.log");
}

#[test]
fn cli_queue_submit_status_drain() {
    let dir = workdir("queue");
    init_small_exp(&dir);

    // Two users share the queue.
    let (ok, stdout, stderr) = run(
        &dir,
        &["queue", "submit", "exp", "--user", "alice", "--queue", "q"],
    );
    assert!(ok, "submit failed: {stderr}");
    assert!(stdout.contains("submission 0 queued for alice"), "{stdout}");
    let (ok, _, stderr) = run(
        &dir,
        &["queue", "submit", "exp", "--user", "bob", "--queue", "q"],
    );
    assert!(ok, "submit failed: {stderr}");

    let (ok, stdout, _) = run(&dir, &["queue", "status", "--queue", "q"]);
    assert!(ok);
    assert!(stdout.contains("queue: 2/8 queued"), "{stdout}");
    assert!(stdout.contains("#0 alice exp"), "{stdout}");
    assert!(stdout.contains("#1 bob exp"), "{stdout}");

    // Drain runs both campaigns to completion, fair-share ordered.
    let (ok, stdout, stderr) = run(
        &dir,
        &[
            "queue",
            "drain",
            "--queue",
            "q",
            "--results",
            "res",
            "--seed",
            "5",
        ],
    );
    assert!(ok, "drain failed: {stderr}");
    assert!(stdout.contains("draining 2 campaign(s)"), "{stdout}");
    assert!(stdout.contains("== #0 alice exp =="), "{stdout}");
    assert!(stdout.contains("== #1 bob exp =="), "{stdout}");
    assert_eq!(stdout.matches("done: 2/2 runs").count(), 2, "{stdout}");

    // The queue is drained and closed: empty status, submissions refused.
    let (ok, stdout, _) = run(&dir, &["queue", "status", "--queue", "q"]);
    assert!(ok);
    assert!(stdout.contains("queue: 0/8 queued"), "{stdout}");
    assert!(stdout.contains("draining"), "{stdout}");
    let (ok, _, stderr) = run(
        &dir,
        &["queue", "submit", "exp", "--user", "carol", "--queue", "q"],
    );
    assert!(!ok, "a drained queue must refuse submissions");
    assert!(stderr.contains("queue closed"), "{stderr}");
}

#[test]
fn cli_queue_bounded_with_diagnostic() {
    let dir = workdir("queue-full");
    init_small_exp(&dir);
    for user in ["alice", "alice", "bob"] {
        let (ok, _, stderr) = run(
            &dir,
            &[
                "queue",
                "submit",
                "exp",
                "--user",
                user,
                "--queue",
                "q",
                "--capacity",
                "3",
            ],
        );
        assert!(ok, "submit failed: {stderr}");
    }
    let (ok, _, stderr) = run(
        &dir,
        &["queue", "submit", "exp", "--user", "carol", "--queue", "q"],
    );
    assert!(!ok, "a full queue must reject, not wedge");
    assert!(stderr.contains("queue full: 3/3"), "{stderr}");
    assert!(stderr.contains("alice=2"), "{stderr}");
    assert!(stderr.contains("bob=1"), "{stderr}");
}
