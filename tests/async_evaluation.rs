//! Asynchronous evaluation (§4.4): *"The evaluation script processes the
//! result files either after all runs have been completed or
//! asynchronously during their runtime."* The `RunDone` progress event
//! carries the finished run's directory, so an evaluator can consume each
//! run while the next one measures.

use pos::core::commands::register_all;
use pos::core::controller::{Controller, Progress, RunOptions};
use pos::core::experiment::linux_router_experiment;
use pos::core::resultstore::ResultStore;
use pos::eval::moongen;
use pos::testbed::{HardwareSpec, InitInterface, PortId, Testbed};
use std::cell::RefCell;
use std::rc::Rc;

#[test]
fn runs_are_evaluatable_the_moment_they_finish() {
    let mut tb = Testbed::new(0xA5);
    tb.add_host("vriga", HardwareSpec::paper_dut(), InitInterface::Ipmi);
    tb.add_host("vtartu", HardwareSpec::paper_dut(), InitInterface::Ipmi);
    tb.topology
        .wire(PortId::new("vriga", 0), PortId::new("vtartu", 0))
        .unwrap();
    tb.topology
        .wire(PortId::new("vtartu", 1), PortId::new("vriga", 1))
        .unwrap();
    register_all(&mut tb);

    let root = std::env::temp_dir().join(format!("pos-async-eval-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);

    // The "asynchronous evaluation script": runs inside the progress
    // callback, i.e. between measurement runs, parsing each run's output
    // as soon as it lands on disk.
    let live_results: Rc<RefCell<Vec<(usize, f64)>>> = Rc::new(RefCell::new(Vec::new()));
    let sink = live_results.clone();
    let spec = linux_router_experiment("vriga", "vtartu", 2, 1);
    let outcome = Controller::new(&mut tb)
        .with_progress(move |p| {
            if let Progress::RunDone {
                index,
                dir,
                success,
                ..
            } = p
            {
                assert!(success);
                // The run directory is complete: metadata + output.
                let meta = ResultStore::read_run_metadata(dir).expect("metadata readable");
                assert_eq!(meta.index, *index);
                let log = std::fs::read_to_string(dir.join("loadgen_measurement.log"))
                    .expect("measurement output readable");
                let summary = moongen::parse(&log).expect("parseable mid-experiment");
                sink.borrow_mut().push((*index, summary.rx_mpps()));
            }
        })
        .run_experiment(&spec, &RunOptions::new(&root))
        .unwrap();

    // The incremental evaluation saw every run, in execution order, and
    // agrees with a post-hoc full evaluation.
    let live = live_results.borrow();
    assert_eq!(live.len(), 4);
    for (i, (idx, _)) in live.iter().enumerate() {
        assert_eq!(*idx, i);
    }
    let full = pos::eval::loader::ResultSet::load(&outcome.result_dir).unwrap();
    for (idx, live_rx) in live.iter() {
        let post = full.runs[*idx].report().unwrap().rx_mpps();
        assert_eq!(post, *live_rx, "incremental and post-hoc evaluation agree");
    }
}
