//! Crash-consistency matrix: kill the controller at EVERY journal record
//! boundary — cleanly and with a torn (half-written) final frame — then
//! resume, and assert the result tree always converges to the tree an
//! uninterrupted campaign produces, byte for byte.
//!
//! `journal.log` itself is excluded from the comparison: the journal is
//! the record *of* the interruption (a resumed campaign carries extra
//! `CampaignResumed` records by design). Everything else — run artifacts,
//! metadata, checksum manifests, inputs, `controller.log` — must be
//! identical, and `pos fsck` must call the resumed tree clean.

use pos::core::commands::register_all;
use pos::core::controller::{Controller, Progress, RunOptions};
use pos::core::experiment::{linux_router_experiment, ExperimentSpec};
use pos::core::fsck::{fsck, RunStatus};
use pos::core::journal::{Journal, JOURNAL_FILE};
use pos::testbed::{HardwareSpec, InitInterface, PortId, Testbed};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::rc::Rc;

const SEED: u64 = 0xC0DE;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pos-crash-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn testbed() -> Testbed {
    let mut tb = Testbed::new(SEED);
    tb.add_host("vriga", HardwareSpec::paper_dut(), InitInterface::Ipmi);
    tb.add_host("vtartu", HardwareSpec::paper_dut(), InitInterface::Ipmi);
    tb.topology
        .wire(PortId::new("vriga", 0), PortId::new("vtartu", 0))
        .unwrap();
    tb.topology
        .wire(PortId::new("vtartu", 1), PortId::new("vriga", 1))
        .unwrap();
    register_all(&mut tb);
    tb
}

/// Two runs (1 rate step × 2 packet sizes), one virtual second each —
/// small enough that the full kill matrix stays fast.
fn spec() -> ExperimentSpec {
    linux_router_experiment("vriga", "vtartu", 1, 1)
}

/// Every file under `dir` (relative path → contents), minus the journal.
fn snapshot(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    let mut files = BTreeMap::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(current) = stack.pop() {
        for entry in std::fs::read_dir(&current).unwrap() {
            let path = entry.unwrap().path();
            if path.is_dir() {
                stack.push(path);
            } else {
                let rel = path
                    .strip_prefix(dir)
                    .unwrap()
                    .to_string_lossy()
                    .into_owned();
                if rel != JOURNAL_FILE {
                    files.insert(rel, std::fs::read(&path).unwrap());
                }
            }
        }
    }
    files
}

/// The single `<root>/<user>/<experiment>/vt-*` dir a campaign created.
fn find_result_dir(root: &Path) -> PathBuf {
    let mut stack = vec![root.to_path_buf()];
    while let Some(current) = stack.pop() {
        if current.join(JOURNAL_FILE).exists() {
            return current;
        }
        if current.is_dir() {
            for entry in std::fs::read_dir(&current).unwrap() {
                stack.push(entry.unwrap().path());
            }
        }
    }
    panic!("no result dir with a journal under {}", root.display());
}

fn assert_trees_equal(reference: &BTreeMap<String, Vec<u8>>, resumed: &Path, context: &str) {
    let got = snapshot(resumed);
    let want_names: Vec<&String> = reference.keys().collect();
    let got_names: Vec<&String> = got.keys().collect();
    assert_eq!(got_names, want_names, "{context}: file sets differ");
    for (name, want) in reference {
        assert_eq!(
            &got[name], want,
            "{context}: {name} diverges from the uninterrupted tree"
        );
    }
}

/// Reference tree of the uninterrupted campaign plus its journal length.
fn reference() -> (BTreeMap<String, Vec<u8>>, u64) {
    let root = tmp("reference");
    let mut tb = testbed();
    let outcome = Controller::new(&mut tb)
        .run_experiment(&spec(), &RunOptions::new(&root))
        .expect("uninterrupted campaign succeeds");
    let report = fsck(&outcome.result_dir).unwrap();
    assert!(
        report.is_clean(),
        "reference not clean:\n{}",
        report.render()
    );
    let appended = Journal::replay(&outcome.result_dir.join(JOURNAL_FILE))
        .unwrap()
        .records
        .len() as u64;
    (snapshot(&outcome.result_dir), appended)
}

#[test]
fn kill_at_every_journal_boundary_then_resume_converges() {
    let (want, total_records) = reference();
    assert!(
        total_records >= 6,
        "2-run campaign journals at least start + 2×(started,completed) + finish"
    );

    for torn in [false, true] {
        for k in 0..total_records {
            let label = format!("crash at record {k} (torn={torn})");
            let root = tmp(&format!("kill-{k}-{torn}"));
            let mut opts = RunOptions::new(&root);
            opts.journal_crash_after = Some(k);
            opts.journal_torn_write = torn;
            let mut tb = testbed();
            Controller::new(&mut tb)
                .run_experiment(&spec(), &opts)
                .expect_err(&format!("{label}: campaign must abort"));
            let result_dir = find_result_dir(&root);

            let mut tb = testbed();
            let resumed = Controller::new(&mut tb).resume_experiment(
                &result_dir,
                &spec(),
                &RunOptions::new(&root),
            );
            if k == 0 {
                // Nothing durable — not even the campaign's identity.
                resumed.expect_err(&format!("{label}: no CampaignStarted to resume from"));
                continue;
            }
            let outcome = resumed.unwrap_or_else(|e| panic!("{label}: resume failed: {e}"));
            assert_eq!(outcome.successes(), 2, "{label}");
            assert_trees_equal(&want, &result_dir, &label);
            let report = fsck(&result_dir).unwrap();
            assert!(
                report.is_clean(),
                "{label}: fsck not clean:\n{}",
                report.render()
            );
        }
    }
}

#[test]
fn resume_skips_verified_runs_and_reexecutes_the_rest() {
    let (want, _) = reference();
    // Crash right before the final run's RunCompleted record: run 0 is
    // durable, run 1 has artifacts on disk but no completion record.
    let root = tmp("skipmatrix");
    let mut opts = RunOptions::new(&root);
    opts.journal_crash_after = Some(4);
    let mut tb = testbed();
    Controller::new(&mut tb)
        .run_experiment(&spec(), &opts)
        .expect_err("campaign must abort");
    let result_dir = find_result_dir(&root);

    let events: Rc<RefCell<Vec<(bool, usize)>>> = Rc::default();
    let sink = events.clone();
    let mut tb = testbed();
    Controller::new(&mut tb)
        .with_progress(move |p| match p {
            Progress::RunSkipped { index, .. } => sink.borrow_mut().push((true, *index)),
            Progress::RunDone { index, .. } => sink.borrow_mut().push((false, *index)),
            _ => {}
        })
        .resume_experiment(&result_dir, &spec(), &RunOptions::new(&root))
        .unwrap();
    assert_eq!(
        events.borrow().as_slice(),
        &[(true, 0), (false, 1)],
        "run 0 skipped as verified, run 1 re-executed"
    );
    assert_trees_equal(&want, &result_dir, "skip/re-execute split");
}

#[test]
fn fsck_detects_flipped_byte_and_resume_repairs_exactly_that_run() {
    let (want, _) = reference();
    let root = tmp("bitrot");
    let mut tb = testbed();
    let outcome = Controller::new(&mut tb)
        .run_experiment(&spec(), &RunOptions::new(&root))
        .unwrap();
    let result_dir = outcome.result_dir;

    // Flip one byte in a finished run's artifact.
    let victim = result_dir.join("run-0001/loadgen_measurement.log");
    let mut bytes = std::fs::read(&victim).unwrap();
    bytes[0] ^= 0x01;
    std::fs::write(&victim, &bytes).unwrap();

    let report = fsck(&result_dir).unwrap();
    assert!(!report.is_clean());
    assert_eq!(report.broken_runs(), vec![1]);
    let damaged = report.runs.iter().find(|r| r.index == 1).unwrap();
    match &damaged.status {
        RunStatus::Damaged(v) => {
            assert_eq!(v.corrupt, vec!["loadgen_measurement.log".to_string()])
        }
        other => panic!("expected Damaged, got {other:?}"),
    }

    // Resume re-executes exactly the damaged run and converges.
    let events: Rc<RefCell<Vec<(bool, usize)>>> = Rc::default();
    let sink = events.clone();
    let mut tb = testbed();
    Controller::new(&mut tb)
        .with_progress(move |p| match p {
            Progress::RunSkipped { index, .. } => sink.borrow_mut().push((true, *index)),
            Progress::RunDone { index, .. } => sink.borrow_mut().push((false, *index)),
            _ => {}
        })
        .resume_experiment(&result_dir, &spec(), &RunOptions::new(&root))
        .unwrap();
    assert_eq!(events.borrow().as_slice(), &[(true, 0), (false, 1)]);
    assert_trees_equal(&want, &result_dir, "bit-rot repair");
    assert!(fsck(&result_dir).unwrap().is_clean());
}

#[test]
fn resume_refuses_wrong_seed_and_mutated_spec() {
    let root = tmp("refuse");
    let mut opts = RunOptions::new(&root);
    opts.journal_crash_after = Some(3);
    let mut tb = testbed();
    Controller::new(&mut tb)
        .run_experiment(&spec(), &opts)
        .expect_err("campaign must abort");
    let result_dir = find_result_dir(&root);

    let mut other_seed = Testbed::new(SEED + 1);
    other_seed.add_host("vriga", HardwareSpec::paper_dut(), InitInterface::Ipmi);
    other_seed.add_host("vtartu", HardwareSpec::paper_dut(), InitInterface::Ipmi);
    other_seed
        .topology
        .wire(PortId::new("vriga", 0), PortId::new("vtartu", 0))
        .unwrap();
    other_seed
        .topology
        .wire(PortId::new("vtartu", 1), PortId::new("vriga", 1))
        .unwrap();
    register_all(&mut other_seed);
    let err = Controller::new(&mut other_seed)
        .resume_experiment(&result_dir, &spec(), &RunOptions::new(&root))
        .unwrap_err();
    assert!(err.to_string().contains("seed"), "{err}");

    let mut mutated = spec();
    mutated.roles[0].measurement = pos::core::script::Script::parse("sleep 2\npos_sync run_done");
    let mut tb = testbed();
    let err = Controller::new(&mut tb)
        .resume_experiment(&result_dir, &mutated, &RunOptions::new(&root))
        .unwrap_err();
    assert!(err.to_string().contains("digest"), "{err}");

    // Wrong testbed flavor: same seed, but a vpos testbed boots on a
    // different timeline than the journaled bare-metal campaign.
    let mut other_flavor = RunOptions::new(&root);
    other_flavor.testbed_flavor = "vpos".into();
    let mut tb = testbed();
    let err = Controller::new(&mut tb)
        .resume_experiment(&result_dir, &spec(), &other_flavor)
        .unwrap_err();
    assert!(err.to_string().contains("`pos` testbed"), "{err}");
}
