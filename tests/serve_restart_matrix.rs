//! The `pos serve` crash contract, end to end:
//!
//! * every state transition is journaled to the queue ledger *before*
//!   it is acknowledged, so killing the daemon at **every** ledger
//!   append boundary (clean and torn) during a multi-user submission
//!   storm, then restarting, converges to result trees byte-identical
//!   to an uninterrupted daemon — unacknowledged submissions retried by
//!   their idempotency token, acknowledged ones deduplicated;
//! * the same holds for a machine death at campaign-journal boundaries
//!   while a dispatched campaign is executing;
//! * SIGTERM drain semantics: a drained-empty daemon exits 0, a daemon
//!   that leaves work pending (or checkpoints its in-flight campaign on
//!   an urgent second signal) exits 3, and a later session finishes the
//!   leftovers;
//! * per-user backlog rejection carries a deterministic retry-after
//!   hint, over the engine API and as an HTTP 429 `Retry-After` header.

use pos::core::experiment::{linux_router_experiment, ExperimentSpec};
use pos::serve::{
    http_request, DrainAck, HttpServer, ServeEngine, ServeOptions, ServeStatus, StepOutcome,
    SubmitAck, SubmitRequest, SubmitResponse,
};
use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn workdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pos-serve-{name}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

/// The smallest real campaign the case-study generator produces.
fn tiny_spec(user: &str, name: &str) -> ExperimentSpec {
    let mut spec = linux_router_experiment("vriga", "vtartu", 1, 1);
    spec.user = user.into();
    spec.name = name.into();
    spec
}

/// One tenant submission of the storm: who submits what, under which
/// idempotency token.
struct Tenant {
    user: &'static str,
    token: &'static str,
    priority: u32,
    dir: PathBuf,
}

/// A 3-submission, 2-user storm with per-submission experiment dirs.
fn storm(root: &Path) -> Vec<Tenant> {
    let plan = [
        ("alice", "exp-a", "tok-a", 1),
        ("bob", "exp-b", "tok-b", 2),
        ("alice", "exp-c", "tok-c", 1),
    ];
    plan.iter()
        .map(|(user, name, token, priority)| {
            let dir = root.join("specs").join(name);
            fs::create_dir_all(&dir).unwrap();
            tiny_spec(user, name).to_dir(&dir).unwrap();
            Tenant {
                user,
                token,
                priority: *priority,
                dir,
            }
        })
        .collect()
}

fn request(t: &Tenant) -> SubmitRequest {
    SubmitRequest {
        user: Some(t.user.into()),
        experiment: t.dir.display().to_string(),
        priority: t.priority,
        token: Some(t.token.into()),
    }
}

/// Runs dispatch steps until the daemon goes idle. Returns `Err` when
/// an injected death fires; panics if the engine neither finishes nor
/// dies within a sane step budget.
fn drive(engine: &ServeEngine) -> Result<(), String> {
    for _ in 0..50 {
        match engine.run_next().map_err(|e| e.to_string())? {
            StepOutcome::Idle => return Ok(()),
            StepOutcome::Finished { .. } => {}
            StepOutcome::Checkpointed { id } => {
                panic!("unexpected checkpoint of #{id} in a chaos-free drive")
            }
        }
    }
    panic!("daemon did not go idle within 50 dispatch steps");
}

/// Every file under `root` (relative path → bytes), journals excluded —
/// they record *how* the tree was produced, not its content.
fn tree_snapshot(root: &Path) -> BTreeMap<String, Vec<u8>> {
    fn walk(root: &Path, dir: &Path, out: &mut BTreeMap<String, Vec<u8>>) {
        for entry in fs::read_dir(dir).unwrap() {
            let path = entry.unwrap().path();
            if path.is_dir() {
                walk(root, &path, out);
            } else {
                let name = path.file_name().unwrap().to_string_lossy();
                if name.starts_with("journal") {
                    continue;
                }
                let rel = path
                    .strip_prefix(root)
                    .unwrap()
                    .to_string_lossy()
                    .into_owned();
                out.insert(rel, fs::read(&path).unwrap());
            }
        }
    }
    let mut out = BTreeMap::new();
    walk(root, root, &mut out);
    out
}

fn assert_trees_identical(reference: &Path, recovered: &Path, what: &str) {
    let want = tree_snapshot(reference);
    let got = tree_snapshot(recovered);
    let keys_want: Vec<&String> = want.keys().collect();
    let keys_got: Vec<&String> = got.keys().collect();
    assert_eq!(keys_want, keys_got, "{what}: file sets differ");
    for (rel, bytes) in &want {
        assert_eq!(
            bytes,
            &got[rel],
            "{what}: `{rel}` differs between {} and {}",
            reference.display(),
            recovered.display()
        );
    }
}

/// Builds the uninterrupted reference: the full storm served by one
/// crash-free daemon session.
fn reference_trees(root: &Path, tenants: &[Tenant]) -> PathBuf {
    let results = root.join("results-reference");
    let engine = ServeEngine::start(ServeOptions::new(root.join("state-reference"), &results))
        .expect("reference daemon starts");
    for t in tenants {
        assert!(
            matches!(
                engine.submit(&request(t)).unwrap(),
                SubmitResponse::Accepted { .. }
            ),
            "reference submission must be accepted"
        );
    }
    drive(&engine).unwrap();
    let report = engine.shutdown().unwrap();
    assert!(report.clean, "reference session must end clean: {report:?}");
    assert_eq!(report.totals.completed, tenants.len() as u64);
    results
}

/// One crash-then-recover cycle: run a session with the given injection
/// until it dies (or completes), then restart crash-free, retry the
/// storm by token, and drive to completion. Returns whether the first
/// session actually died.
fn crash_and_recover(
    state: &Path,
    results: &Path,
    tenants: &[Tenant],
    inject: impl FnOnce(&mut ServeOptions),
    what: &str,
) -> bool {
    let mut opts = ServeOptions::new(state, results);
    inject(&mut opts);
    let crashed = match ServeEngine::start(opts) {
        Err(_) => true,
        Ok(engine) => {
            let mut died = false;
            for t in tenants {
                if engine.submit(&request(t)).is_err() {
                    died = true;
                }
            }
            if !died {
                died = drive(&engine).is_err();
            }
            if !died {
                // The injection point lies beyond this session's appends;
                // it completes like the reference.
                let report = engine.shutdown().unwrap();
                assert!(report.clean, "{what}: uncrashed session not clean");
            }
            died
        }
    };

    // Restart: replay the ledger, retry every submission under its
    // idempotency token (acknowledged ones dedupe), finish everything.
    let engine =
        ServeEngine::start(ServeOptions::new(state, results)).expect("recovery session starts");
    for t in tenants {
        match engine.submit(&request(t)).unwrap() {
            SubmitResponse::Accepted { .. } | SubmitResponse::Duplicate { .. } => {}
            other => panic!("{what}: retry of {} refused: {other:?}", t.token),
        }
    }
    drive(&engine).unwrap_or_else(|e| panic!("{what}: recovery drive failed: {e}"));
    let report = engine.shutdown().unwrap();
    assert!(report.clean, "{what}: recovery must end clean: {report:?}");
    assert_eq!(report.exit_code(), 0, "{what}: recovery exit code");
    crashed
}

/// The tentpole: kill the daemon at every ledger append boundary (torn
/// on odd boundaries) and at campaign-journal boundaries, restart, and
/// require byte-identical result trees versus the uninterrupted run.
#[test]
fn restart_matrix_converges_to_uninterrupted_trees() {
    let root = workdir("matrix");
    let tenants = storm(&root);
    let reference = reference_trees(&root, &tenants);

    // An uninterrupted session appends ServeStarted + one Accepted,
    // Dispatched, Finished triple per submission.
    let ledger_appends = 1 + 3 * tenants.len() as u64;
    for k in 0..=ledger_appends {
        let torn = k % 2 == 1;
        let what = format!("ledger boundary {k} (torn {torn})");
        let state = root.join(format!("state-l{k}"));
        let results = root.join(format!("results-l{k}"));
        let crashed = crash_and_recover(
            &state,
            &results,
            &tenants,
            |o| {
                o.ledger_crash_after = Some(k);
                o.ledger_torn_write = torn;
            },
            &what,
        );
        assert_eq!(
            crashed,
            k < ledger_appends,
            "{what}: crash expectation — the boundary census drifted"
        );
        assert_trees_identical(&reference, &results, &what);
    }

    // Machine death at campaign-journal boundaries: the first dispatched
    // campaign's k-th append fails mid-execution.
    for (k, torn) in [(0, false), (1, true), (2, false), (5, true)] {
        let what = format!("campaign boundary {k} (torn {torn})");
        let state = root.join(format!("state-c{k}"));
        let results = root.join(format!("results-c{k}"));
        let crashed = crash_and_recover(
            &state,
            &results,
            &tenants,
            |o| {
                o.campaign_crash_after = Some(k);
                o.campaign_torn_write = torn;
            },
            &what,
        );
        if k <= 2 {
            assert!(crashed, "{what}: boundary {k} must be inside the campaign");
        }
        assert_trees_identical(&reference, &results, &what);
    }
}

/// A daemon drained with nothing left exits 0.
#[test]
fn clean_drain_exits_zero() {
    let root = workdir("drain-clean");
    let tenants = storm(&root);
    let engine =
        ServeEngine::start(ServeOptions::new(root.join("state"), root.join("results"))).unwrap();
    engine.submit(&request(&tenants[0])).unwrap();
    drive(&engine).unwrap();
    assert_eq!(engine.begin_drain().unwrap(), 0);
    assert!(!engine.is_accepting());
    let report = engine.shutdown().unwrap();
    assert_eq!(report.exit_code(), 0, "clean drain: {report:?}");
}

/// A drain that leaves submissions pending exits 3; the backlog stays
/// durable in the ledger and a later session completes it.
#[test]
fn drain_with_backlog_exits_degraded_and_backlog_survives() {
    let root = workdir("drain-backlog");
    let tenants = storm(&root);
    let state = root.join("state");
    let results = root.join("results");

    let engine = ServeEngine::start(ServeOptions::new(&state, &results)).unwrap();
    for t in &tenants {
        engine.submit(&request(t)).unwrap();
    }
    // Finish exactly one campaign, then drain with two still queued.
    assert!(matches!(
        engine.run_next().unwrap(),
        StepOutcome::Finished { .. }
    ));
    let pending = engine.begin_drain().unwrap();
    assert_eq!(pending, 2, "two submissions must be left pending");
    // Submissions are refused once draining.
    assert!(matches!(
        engine.submit(&request(&tenants[0])).unwrap(),
        SubmitResponse::Duplicate { .. }
    ));
    assert!(matches!(engine.run_next().unwrap(), StepOutcome::Idle));
    let report = engine.shutdown().unwrap();
    assert_eq!(report.pending, 2);
    assert_eq!(report.exit_code(), 3, "pending backlog: {report:?}");

    // The next session inherits the backlog from the ledger alone.
    let engine = ServeEngine::start(ServeOptions::new(&state, &results)).unwrap();
    drive(&engine).unwrap();
    let report = engine.shutdown().unwrap();
    assert_eq!(report.exit_code(), 0, "inherited backlog: {report:?}");
    assert_eq!(report.totals.completed, 2);
}

/// An urgent stop (second SIGTERM) checkpoints the in-flight campaign:
/// this session exits 3, the next session resumes the checkpoint, and
/// the final tree is byte-identical to a never-interrupted run.
#[test]
fn urgent_cancel_checkpoints_in_flight_and_resumes() {
    let root = workdir("urgent");
    let tenants = storm(&root);
    let reference = reference_trees(&root, &tenants[..1]);
    let state = root.join("state");
    let results = root.join("results");

    let engine = ServeEngine::start(ServeOptions::new(&state, &results)).unwrap();
    engine.submit(&request(&tenants[0])).unwrap();
    // The urgent signal lands before the dispatch step reaches the
    // campaign, so it checkpoints at its first cancellation check.
    engine.cancel_in_flight();
    assert!(matches!(
        engine.run_next().unwrap(),
        StepOutcome::Checkpointed { .. }
    ));
    let report = engine.shutdown().unwrap();
    assert_eq!(report.in_flight, 1, "checkpoint stays in flight");
    assert_eq!(report.totals.checkpointed, 1);
    assert_eq!(report.exit_code(), 3, "urgent stop: {report:?}");

    // The next session resumes the checkpoint from the ledger.
    let engine = ServeEngine::start(ServeOptions::new(&state, &results)).unwrap();
    drive(&engine).unwrap();
    let report = engine.shutdown().unwrap();
    assert_eq!(report.exit_code(), 0, "resumed checkpoint: {report:?}");
    assert_trees_identical(&reference, &results, "urgent-cancel resume");
}

/// Per-user backlog rejection is deterministic: the same overload
/// yields the same `retry_after_secs` hint, and the queue stays usable
/// for other tenants.
#[test]
fn backlog_rejection_has_deterministic_retry_after() {
    let root = workdir("backlog");
    let tenants = storm(&root);
    let mut opts = ServeOptions::new(root.join("state"), root.join("results"));
    opts.user_backlog = 1;
    let engine = ServeEngine::start(opts).unwrap();

    assert!(matches!(
        engine.submit(&request(&tenants[0])).unwrap(),
        SubmitResponse::Accepted { .. }
    ));
    // Same user, second submission: over the per-user backlog.
    let overload = SubmitRequest {
        token: None,
        ..request(&tenants[2])
    };
    let first = match engine.submit(&overload).unwrap() {
        SubmitResponse::Rejected {
            retry_after_secs,
            closed,
            error,
        } => {
            assert!(!closed, "backlog rejection is not a drain");
            assert!(
                error.contains("backlog"),
                "diagnostic must name the backlog: {error}"
            );
            retry_after_secs.expect("backlog rejection carries a retry hint")
        }
        other => panic!("expected backlog rejection, got {other:?}"),
    };
    let second = match engine.submit(&overload).unwrap() {
        SubmitResponse::Rejected {
            retry_after_secs, ..
        } => retry_after_secs.unwrap(),
        other => panic!("expected backlog rejection, got {other:?}"),
    };
    assert_eq!(first, second, "retry hint must be deterministic");
    // Another tenant is unaffected by alice's backlog.
    assert!(matches!(
        engine.submit(&request(&tenants[1])).unwrap(),
        SubmitResponse::Accepted { .. }
    ));
}

/// Idempotency tokens deduplicate across the whole submission
/// lifetime, completed campaigns included.
#[test]
fn tokens_deduplicate_across_completion() {
    let root = workdir("dedupe");
    let tenants = storm(&root);
    let engine =
        ServeEngine::start(ServeOptions::new(root.join("state"), root.join("results"))).unwrap();
    let id = match engine.submit(&request(&tenants[0])).unwrap() {
        SubmitResponse::Accepted { id } => id,
        other => panic!("expected acceptance, got {other:?}"),
    };
    match engine.submit(&request(&tenants[0])).unwrap() {
        SubmitResponse::Duplicate { id: dup } => assert_eq!(dup, id),
        other => panic!("expected pre-run dedupe, got {other:?}"),
    }
    drive(&engine).unwrap();
    match engine.submit(&request(&tenants[0])).unwrap() {
        SubmitResponse::Duplicate { id: dup } => assert_eq!(dup, id, "post-completion dedupe"),
        other => panic!("expected post-completion dedupe, got {other:?}"),
    }
}

/// The HTTP face of the daemon: health, readiness, status, submission
/// (including 429 + `Retry-After` on backlog), and drain.
#[test]
fn http_endpoints_speak_the_protocol() {
    let root = workdir("http");
    let tenants = storm(&root);
    let mut opts = ServeOptions::new(root.join("state"), root.join("results"));
    opts.user_backlog = 1;
    let engine = Arc::new(ServeEngine::start(opts).unwrap());
    let server = HttpServer::bind("127.0.0.1:0").unwrap();
    let addr = server.addr().to_string();
    let stop = Arc::new(AtomicBool::new(false));
    let handle = server.spawn(engine.clone(), stop.clone());

    assert_eq!(
        http_request(&addr, "GET", "/healthz", None).unwrap().status,
        200
    );
    assert_eq!(
        http_request(&addr, "GET", "/readyz", None).unwrap().status,
        200
    );

    // Accepted submission.
    let body = serde_json::to_string(&request(&tenants[0])).unwrap();
    let resp = http_request(&addr, "POST", "/submit", Some(&body)).unwrap();
    assert_eq!(resp.status, 200, "submit: {}", resp.body);
    let ack: SubmitAck = serde_json::from_str(&resp.body).unwrap();
    assert!(!ack.deduped);

    // Token dedupe over the wire.
    let resp = http_request(&addr, "POST", "/submit", Some(&body)).unwrap();
    assert_eq!(resp.status, 200);
    let dup: SubmitAck = serde_json::from_str(&resp.body).unwrap();
    assert!(dup.deduped);
    assert_eq!(dup.id, ack.id);

    // Backlog overflow: 429 with a Retry-After header.
    let overload = SubmitRequest {
        token: None,
        ..request(&tenants[2])
    };
    let body = serde_json::to_string(&overload).unwrap();
    let resp = http_request(&addr, "POST", "/submit", Some(&body)).unwrap();
    assert_eq!(resp.status, 429, "backlog over HTTP: {}", resp.body);
    let retry = resp
        .header("retry-after")
        .expect("429 must carry Retry-After")
        .to_string();
    assert!(
        retry.parse::<u64>().is_ok(),
        "Retry-After not secs: {retry}"
    );

    // Garbage body.
    let resp = http_request(&addr, "POST", "/submit", Some("{not json")).unwrap();
    assert_eq!(resp.status, 400);

    // Status reflects the accepted submission.
    let resp = http_request(&addr, "GET", "/status", None).unwrap();
    assert_eq!(resp.status, 200);
    let status: ServeStatus = serde_json::from_str(&resp.body).unwrap();
    assert!(status.accepting);
    assert_eq!(status.totals.accepted, 1);
    assert_eq!(status.totals.deduped, 1);
    assert_eq!(status.totals.rejected, 1);
    assert_eq!(status.queue.depth, 1);

    // Drain: 202, then not ready, then submissions refused as closed.
    let resp = http_request(&addr, "POST", "/drain", None).unwrap();
    assert_eq!(resp.status, 202, "drain: {}", resp.body);
    let drain: DrainAck = serde_json::from_str(&resp.body).unwrap();
    assert_eq!(drain.pending, 1);
    assert_eq!(
        http_request(&addr, "GET", "/readyz", None).unwrap().status,
        503
    );
    let body = serde_json::to_string(&request(&tenants[1])).unwrap();
    let resp = http_request(&addr, "POST", "/submit", Some(&body)).unwrap();
    assert_eq!(resp.status, 503, "submit after drain: {}", resp.body);

    stop.store(true, Ordering::SeqCst);
    handle.join().unwrap();
}
