//! The §5 claim: *the same experiment scripts* run on the hardware
//! testbed (pos) and on its virtual clone (vpos); raw numbers differ by
//! up to 44×, but the tendencies agree.

use pos::core::commands::register_all;
use pos::core::controller::{Controller, RunOptions};
use pos::core::experiment::{linux_router_experiment, ExperimentSpec};
use pos::eval::loader::ResultSet;
use pos::testbed::{HardwareSpec, InitInterface, PortId, Testbed};
use std::path::PathBuf;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pos-vv-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Builds either testbed flavor with identical host names and wiring —
/// only the hardware (and thus init interface) differs.
fn testbed(virtualized: bool) -> Testbed {
    let mut tb = Testbed::new(0xAB);
    let (spec_fn, init): (fn() -> HardwareSpec, InitInterface) = if virtualized {
        (HardwareSpec::vpos_vm, InitInterface::Hypervisor)
    } else {
        (HardwareSpec::paper_dut, InitInterface::Ipmi)
    };
    tb.add_host("vriga", spec_fn(), init);
    tb.add_host("vtartu", spec_fn(), init);
    tb.topology
        .wire(PortId::new("vriga", 0), PortId::new("vtartu", 0))
        .unwrap();
    tb.topology
        .wire(PortId::new("vtartu", 1), PortId::new("vriga", 1))
        .unwrap();
    register_all(&mut tb);
    tb
}

/// The experiment is *identical* for both platforms — that is the point.
fn experiment() -> ExperimentSpec {
    // 5 rates from 10k to 300k, both packet sizes, 1 s runs.
    linux_router_experiment("vriga", "vtartu", 5, 1)
}

fn run_on(virtualized: bool, name: &str) -> ResultSet {
    let mut tb = testbed(virtualized);
    let outcome = Controller::new(&mut tb)
        .run_experiment(&experiment(), &RunOptions::new(tmp(name)))
        .expect("experiment runs");
    assert_eq!(outcome.successes(), 10);
    ResultSet::load(&outcome.result_dir).expect("loadable")
}

fn peak_rx_mpps(set: &ResultSet, pkt_sz: &str) -> f64 {
    set.where_eq("pkt_sz", pkt_sz)
        .series("pkt_rate", |r| Some(r.report()?.rx_mpps()))
        .iter()
        .map(|p| p.1)
        .fold(0.0, f64::max)
}

#[test]
fn same_scripts_different_platforms_same_tendencies() {
    let pos_set = run_on(false, "pos");
    let vpos_set = run_on(true, "vpos");

    // Identical experiment inputs (reproducibility by design): the
    // published script artifacts of both runs are byte-identical.
    let spec = experiment();
    for role in &spec.roles {
        assert_eq!(
            role.measurement.source,
            experiment().role(&role.role).unwrap().measurement.source
        );
    }

    // Tendency 1 (both platforms): at the low end, forwarding is
    // loss-free — forwarded equals offered for every size.
    for set in [&pos_set, &vpos_set] {
        for size in ["64", "1500"] {
            let series = set
                .where_eq("pkt_sz", size)
                .series("pkt_rate", |r| Some(r.report()?.rx_mpps()));
            let (rate, rx) = series[0]; // 10 kpps
            assert!(
                (rx * 1e6 - rate).abs() / rate < 0.02,
                "size {size}: offered {rate}, forwarded {rx} Mpps"
            );
        }
    }

    // Tendency 2: within the 10-300 kpps window, pos forwards everything
    // (far below its 1.75 Mpps limit) while vpos saturates near 40 kpps.
    let pos_peak = peak_rx_mpps(&pos_set, "64");
    let vpos_peak = peak_rx_mpps(&vpos_set, "64");
    assert!((0.29..0.31).contains(&pos_peak), "pos peak {pos_peak}");
    assert!((0.03..0.055).contains(&vpos_peak), "vpos peak {vpos_peak}");

    // Tendency 3: packet size does not change the drop-free rate (as long
    // as no bandwidth limit is hit) — on either platform.
    for set in [&pos_set, &vpos_set] {
        let p64 = peak_rx_mpps(set, "64");
        let p1500 = peak_rx_mpps(set, "1500");
        let ratio = p64 / p1500;
        assert!(
            (0.8..1.35).contains(&ratio),
            "packet size must not matter much here, ratio {ratio}"
        );
    }

    // The headline factor: vpos peak is dozens of times below what pos
    // could do (1.75 Mpps vs 0.04 Mpps ≈ 44).
    let factor = 1.75 / vpos_peak;
    assert!(
        (30.0..60.0).contains(&factor),
        "paper: 'a factor of up to 44', got {factor:.1}"
    );
}

#[test]
fn vpos_boots_much_faster_than_pos() {
    // The virtual testbed as a development environment: the same workflow
    // completes in far less virtual time because VM boots are cheap.
    let mut tb_pos = testbed(false);
    let mut tb_vpos = testbed(true);
    let spec = linux_router_experiment("vriga", "vtartu", 1, 1);
    let o1 = Controller::new(&mut tb_pos)
        .run_experiment(&spec, &RunOptions::new(tmp("bootcmp-pos")))
        .unwrap();
    let o2 = Controller::new(&mut tb_vpos)
        .run_experiment(&spec, &RunOptions::new(tmp("bootcmp-vpos")))
        .unwrap();
    let pos_total = (o1.finished - o1.started).as_secs_f64();
    let vpos_total = (o2.finished - o2.started).as_secs_f64();
    assert!(
        pos_total > vpos_total + 30.0,
        "bare-metal boots dominate: pos {pos_total:.0}s vs vpos {vpos_total:.0}s"
    );
}
