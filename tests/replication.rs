//! Replication: a *different researcher* takes the published artifacts,
//! reconstructs the experiment from them alone, runs it on a *different*
//! testbed instance (different seed, different host names), and obtains
//! the same scientific conclusions — the paper's replicability story.

use pos::core::commands::register_all;
use pos::core::controller::{Controller, RunOptions};
use pos::core::experiment::{linux_router_experiment, ExperimentSpec};
use pos::eval::loader::ResultSet;
use pos::publish::bundle::Bundle;
use pos::publish::website::{attach_site, SiteInfo};
use pos::testbed::{HardwareSpec, InitInterface, PortId, Testbed};
use std::path::{Path, PathBuf};

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pos-rep-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn testbed(seed: u64, a: &str, b: &str) -> Testbed {
    let mut tb = Testbed::new(seed);
    tb.add_host(a, HardwareSpec::paper_dut(), InitInterface::Ipmi);
    tb.add_host(b, HardwareSpec::paper_dut(), InitInterface::Ipmi);
    tb.topology
        .wire(PortId::new(a, 0), PortId::new(b, 0))
        .unwrap();
    tb.topology
        .wire(PortId::new(b, 1), PortId::new(a, 1))
        .unwrap();
    register_all(&mut tb);
    tb
}

fn peak(set: &ResultSet, pkt_sz: &str) -> f64 {
    set.where_eq("pkt_sz", pkt_sz)
        .series("pkt_rate", |r| Some(r.report()?.rx_mpps()))
        .iter()
        .map(|p| p.1)
        .fold(0.0, f64::max)
}

#[test]
fn a_stranger_can_replicate_from_the_bundle_alone() {
    // ---------------------------------------------- original researcher
    let mut tb = testbed(111, "vriga", "vtartu");
    let spec = linux_router_experiment("vriga", "vtartu", 4, 1);
    let outcome = Controller::new(&mut tb)
        .run_experiment(&spec, &RunOptions::new(tmp("orig")))
        .expect("original experiment");
    let orig_set = ResultSet::load(&outcome.result_dir).unwrap();

    let mut bundle = Bundle::new(&spec.name);
    bundle.add_tree(&outcome.result_dir, "").unwrap();
    attach_site(
        &mut bundle,
        &SiteInfo {
            title: "published".into(),
            description: "artifact".into(),
            repo_url: String::new(),
        },
    );
    let release = tmp("release");
    bundle.write_dir(&release).expect("published");

    // ------------------------------------------------ replicating party
    // Everything below uses ONLY the files in `release`.
    let replicated_spec = reconstruct_spec(&release);
    // Different testbed: new seed, new host names; the spec's host
    // assignment is re-targeted, exactly like passing different arguments
    // to experiment.sh in Appendix A.
    let mut spec2 = replicated_spec;
    spec2.roles[0].host = "nodeA".into();
    spec2.roles[1].host = "nodeB".into();
    spec2.user = "replicator".into();
    let mut tb2 = testbed(999, "nodeA", "nodeB");
    let outcome2 = Controller::new(&mut tb2)
        .run_experiment(&spec2, &RunOptions::new(tmp("replica")))
        .expect("replicated experiment");
    let replica_set = ResultSet::load(&outcome2.result_dir).unwrap();

    // ------------------------------------------------------- comparison
    assert_eq!(replica_set.len(), orig_set.len(), "same run structure");
    for size in ["64", "1500"] {
        let o = peak(&orig_set, size);
        let r = peak(&replica_set, size);
        assert!(
            (o - r).abs() / o < 0.02,
            "size {size}: original peak {o} vs replicated {r}"
        );
    }
}

/// Rebuilds the [`ExperimentSpec`] from published artifacts only.
fn reconstruct_spec(release: &Path) -> ExperimentSpec {
    let yaml = std::fs::read_to_string(release.join("experiment/experiment.yml"))
        .expect("the bundle documents the experiment");
    let spec: ExperimentSpec = serde_yaml::from_str(&yaml).expect("spec deserializes");
    // Cross-check: the individually published script files agree with the
    // embedded spec (belt and braces — both are in the bundle).
    for role in &spec.roles {
        let setup =
            std::fs::read_to_string(release.join(format!("experiment/{}/setup.sh", role.role)))
                .expect("published setup script");
        assert_eq!(setup, role.setup.source);
    }
    spec
}

#[test]
fn robustness_packet_size_variation() {
    // Zilberman's robustness point (§2): small input variations should
    // not flip conclusions. Sweep nearby packet sizes; on bare metal well
    // below saturation, the drop-free property must hold for all of them.
    use pos::loadgen::scenario::{run_forwarding_experiment, ForwardingScenario, Platform};
    use pos::simkernel::SimDuration;
    for pkt_size in [64usize, 128, 256, 512, 1024, 1280, 1500] {
        let scenario = ForwardingScenario {
            duration: SimDuration::from_millis(300),
            ..ForwardingScenario::new(Platform::Pos, pkt_size, 200_000.0)
        };
        let r = run_forwarding_experiment(&scenario);
        assert!(
            r.report.loss_fraction() < 0.001,
            "size {pkt_size}: unexpected loss {}",
            r.report.loss_fraction()
        );
    }
}
