//! Recoverability (R3) through the full workflow, across initialization
//! interfaces — including the power plug, which has no reset command.
//!
//! The second half of this file drives *chaos plans* through the
//! controller: scheduled crashes, wedges, management outages, command
//! hangs and lossy-link windows, each replayed twice to pin down that
//! degraded experiments are byte-for-byte reproducible.

use pos::core::commands::register_all;
use pos::core::controller::{Controller, HostHealth, Progress, RunOptions};
use pos::core::experiment::linux_router_experiment;
use pos::core::script::Script;
use pos::core::vars::Variables;
use pos::netsim::{ChaosEvent, ChaosPlan, FaultConfig};
use pos::simkernel::{SimDuration, SimTime};
use pos::testbed::{CommandResult, HardwareSpec, InitInterface, PortId, Testbed};
use std::cell::{Cell, RefCell};
use std::path::PathBuf;
use std::rc::Rc;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pos-rec-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn testbed_with_init(init: InitInterface) -> Testbed {
    let mut tb = Testbed::new(0xFEED);
    tb.add_host("vriga", HardwareSpec::paper_dut(), InitInterface::Ipmi);
    tb.add_host("vtartu", HardwareSpec::paper_dut(), init);
    tb.topology
        .wire(PortId::new("vriga", 0), PortId::new("vtartu", 0))
        .unwrap();
    tb.topology
        .wire(PortId::new("vtartu", 1), PortId::new("vriga", 1))
        .unwrap();
    register_all(&mut tb);
    tb
}

/// Registers a command that wedges the host on its first call.
fn register_crash_once(tb: &mut Testbed) -> Rc<Cell<u32>> {
    let calls = Rc::new(Cell::new(0u32));
    let counter = calls.clone();
    tb.register_command(
        "crash-once",
        Rc::new(move |tb: &mut Testbed, host: &str, _argv: &[String]| {
            counter.set(counter.get() + 1);
            if counter.get() == 1 {
                tb.host_mut(host).unwrap().inject_crash();
                CommandResult::fail(255, "connection reset by peer")
            } else {
                CommandResult::ok("ok")
            }
        }),
    );
    calls
}

fn crash_spec() -> pos::core::experiment::ExperimentSpec {
    let mut spec = linux_router_experiment("vriga", "vtartu", 1, 1);
    spec.loop_vars = Variables::new().with("pkt_rate", vec![10_000i64, 20_000]);
    spec.global_vars.set("pkt_sz", 64i64);
    spec.roles[1].measurement = Script::parse("crash-once\nsleep $run_secs\npos_sync run_done\n");
    spec
}

#[test]
fn recovery_via_ipmi_reset() {
    let mut tb = testbed_with_init(InitInterface::Ipmi);
    let calls = register_crash_once(&mut tb);
    let outcome = Controller::new(&mut tb)
        .run_experiment(&crash_spec(), &RunOptions::new(tmp("ipmi")))
        .expect("recovers and completes");
    assert_eq!(outcome.successes(), 2);
    assert_eq!(outcome.recoveries, 1);
    assert!(calls.get() >= 2);
    // The recovered host re-ran its setup: forwarding is enabled again and
    // the second run still measures real throughput.
    let dut = tb.host("vtartu").unwrap();
    assert_eq!(dut.sysctls["net.ipv4.ip_forward"], "1");
    assert!(dut.boots >= 2);
}

#[test]
fn recovery_via_power_plug_cycle() {
    // Power plugs cannot reset; the controller must power-cycle instead
    // (off + mandatory dwell + on).
    let mut tb = testbed_with_init(InitInterface::PowerPlug);
    let _calls = register_crash_once(&mut tb);
    let outcome = Controller::new(&mut tb)
        .run_experiment(&crash_spec(), &RunOptions::new(tmp("plug")))
        .expect("power-cycle recovery works too");
    assert_eq!(outcome.successes(), 2);
    assert_eq!(outcome.recoveries, 1);
    assert!(tb.host("vtartu").unwrap().boots >= 2);
}

#[test]
fn recovery_via_hypervisor() {
    let mut tb = Testbed::new(0xFEED);
    tb.add_host("vriga", HardwareSpec::vpos_vm(), InitInterface::Hypervisor);
    tb.add_host("vtartu", HardwareSpec::vpos_vm(), InitInterface::Hypervisor);
    tb.topology
        .wire(PortId::new("vriga", 0), PortId::new("vtartu", 0))
        .unwrap();
    tb.topology
        .wire(PortId::new("vtartu", 1), PortId::new("vriga", 1))
        .unwrap();
    register_all(&mut tb);
    let _calls = register_crash_once(&mut tb);
    let outcome = Controller::new(&mut tb)
        .run_experiment(&crash_spec(), &RunOptions::new(tmp("hv")))
        .expect("vm recovery");
    assert_eq!(outcome.successes(), 2);
    assert_eq!(outcome.recoveries, 1);
}

#[test]
fn run_results_after_recovery_are_complete() {
    // The interrupted run is *retried from scratch*, so its published
    // artifacts are indistinguishable from an undisturbed run's.
    let mut tb = testbed_with_init(InitInterface::Ipmi);
    let _calls = register_crash_once(&mut tb);
    let outcome = Controller::new(&mut tb)
        .run_experiment(&crash_spec(), &RunOptions::new(tmp("complete")))
        .expect("completes");
    let set = pos::eval::loader::ResultSet::load(&outcome.result_dir).unwrap();
    assert_eq!(set.len(), 2);
    for run in &set.runs {
        assert!(run.metadata.success);
        let report = run.reports.get("loadgen").expect("full measurement output");
        assert!(report.rx_frames > 0, "real traffic was measured");
        assert_eq!(report.rx_frames, report.tx_frames, "below saturation");
    }
    // Attempt counts document the recovery in the metadata.
    let attempts: Vec<u32> = set.runs.iter().map(|r| r.metadata.attempts).collect();
    assert!(
        attempts.iter().any(|&a| a > 1),
        "metadata records the retry"
    );
}

// --------------------------------------------------------------- chaos

/// 2 packet sizes × 2 rates, 30 s runs: long enough that chaos events
/// pinned to virtual time land mid-sweep for any boot jitter. Rates are
/// kept low — chaos scenarios probe recovery, not saturation, and lower
/// rates keep the packet-level simulation fast.
fn chaos_spec() -> pos::core::experiment::ExperimentSpec {
    let mut spec = linux_router_experiment("vriga", "vtartu", 2, 30);
    spec.loop_vars.set(
        "pkt_rate",
        pos::core::vars::VarValue::List(vec![10_000i64.into(), 50_000i64.into()]),
    );
    spec
}

/// Runs the chaos spec once under `plan` and returns what the scenario
/// assertions need. `init` selects vtartu's initialization interface
/// (Hypervisor switches both hosts to vpos VMs, like the real testbeds).
fn run_chaos_scenario(
    tag: &str,
    init: InitInterface,
    plan: &ChaosPlan,
    tune: impl Fn(&mut RunOptions),
) -> ChaosScenarioResult {
    let mut tb = if init == InitInterface::Hypervisor {
        let mut tb = Testbed::new(0xFEED);
        tb.add_host("vriga", HardwareSpec::vpos_vm(), InitInterface::Hypervisor);
        tb.add_host("vtartu", HardwareSpec::vpos_vm(), InitInterface::Hypervisor);
        tb.topology
            .wire(PortId::new("vriga", 0), PortId::new("vtartu", 0))
            .unwrap();
        tb.topology
            .wire(PortId::new("vtartu", 1), PortId::new("vriga", 1))
            .unwrap();
        register_all(&mut tb);
        tb
    } else {
        testbed_with_init(init)
    };
    let mut opts = RunOptions::new(tmp(tag));
    opts.continue_on_run_failure = true;
    tune(&mut opts);
    let events = Rc::new(RefCell::new(Vec::new()));
    let sink = events.clone();
    let mut ctl =
        Controller::new(&mut tb).with_progress(move |p| sink.borrow_mut().push(p.clone()));
    ctl.apply_chaos(plan).expect("plan validates");
    let outcome = ctl.run_experiment(&chaos_spec(), &opts).expect("completes");
    let vtartu_health = ctl.host_health("vtartu");
    drop(ctl);
    let seen = events.borrow().clone();
    ChaosScenarioResult {
        summary: outcome.summary(),
        outcome,
        events: seen,
        vtartu_boots: tb.host("vtartu").unwrap().boots,
        vtartu_health,
    }
}

struct ChaosScenarioResult {
    summary: String,
    outcome: pos::core::controller::ExperimentOutcome,
    events: Vec<Progress>,
    vtartu_boots: u64,
    vtartu_health: HostHealth,
}

impl ChaosScenarioResult {
    fn all_fault_lines(&self) -> String {
        self.outcome
            .runs
            .iter()
            .flat_map(|r| r.fault_trace.iter())
            .cloned()
            .collect::<Vec<_>>()
            .join("\n")
    }
}

#[test]
fn chaos_crash_recovers_across_interfaces() {
    // The same mid-sweep kernel panic, recovered through every bare-metal
    // style interface: IPMI reset, vendor-management reset, and the power
    // plug's off/dwell/on cycle.
    let plan = ChaosPlan::new(1).with_event(ChaosEvent::HostCrash {
        host: "vtartu".into(),
        at: SimTime::from_secs(118),
    });
    for (init, tag) in [
        (InitInterface::Ipmi, "chaos-ipmi"),
        (InitInterface::VendorManagement, "chaos-vendor"),
        (InitInterface::PowerPlug, "chaos-plug"),
    ] {
        let a = run_chaos_scenario(tag, init, &plan, |_| {});
        assert_eq!(a.outcome.successes(), 4, "{init}: all runs recover");
        assert!(a.outcome.failed_runs.is_empty(), "{init}");
        assert!(a.outcome.recoveries >= 1, "{init}: crash was recovered");
        assert!(
            a.outcome.total_recovery_time > SimDuration::ZERO,
            "{init}: recovery took virtual time"
        );
        assert!(a.vtartu_boots >= 2, "{init}: reboot happened");
        assert_eq!(a.vtartu_health, HostHealth::Healthy, "{init}");
        // The degraded run carries its fault story even though it succeeded.
        let degraded = a.outcome.runs.iter().find(|r| r.recoveries > 0).unwrap();
        assert!(degraded.success);
        assert!(!degraded.fault_trace.is_empty(), "{init}: fault trace kept");
        assert!(
            a.events
                .iter()
                .any(|e| matches!(e, Progress::HostRecovered { host } if host == "vtartu")),
            "{init}: recovery visible via progress"
        );
        // Replay: the same plan against the same seed is byte-identical.
        let b = run_chaos_scenario(&format!("{tag}-replay"), init, &plan, |_| {});
        assert_eq!(a.summary, b.summary, "{init}: chaos replay diverged");
    }
}

#[test]
fn chaos_wedge_escalates_to_power_cycle_on_hypervisor() {
    // A wedged host shrugs off soft resets; the controller must notice the
    // reset retries going nowhere and escalate to a full power cycle.
    let plan = ChaosPlan::new(2).with_event(ChaosEvent::HostWedge {
        host: "vtartu".into(),
        at: SimTime::from_secs(50),
    });
    let a = run_chaos_scenario("chaos-wedge", InitInterface::Hypervisor, &plan, |_| {});
    assert_eq!(a.outcome.successes(), 4);
    assert!(a.outcome.recoveries >= 1);
    assert!(
        a.all_fault_lines().contains("escalating to power cycle"),
        "escalation recorded in the fault trace:\n{}",
        a.all_fault_lines()
    );
    assert_eq!(a.vtartu_health, HostHealth::Healthy);
    let b = run_chaos_scenario(
        "chaos-wedge-replay",
        InitInterface::Hypervisor,
        &plan,
        |_| {},
    );
    assert_eq!(a.summary, b.summary);
}

#[test]
fn chaos_hang_trips_watchdog_and_recovers() {
    // Commands on the DuT stop returning for 82 s; a 40 s watchdog reaps
    // the stuck session, the host is treated like a crash and recovered.
    let plan = ChaosPlan::new(3).with_event(ChaosEvent::CommandHang {
        host: "vtartu".into(),
        from: SimTime::from_secs(118),
        until: SimTime::from_secs(200),
    });
    let tune = |o: &mut RunOptions| o.command_timeout = Some(SimDuration::from_secs(40));
    let a = run_chaos_scenario("chaos-hang", InitInterface::VendorManagement, &plan, tune);
    assert_eq!(a.outcome.successes(), 4, "summary:\n{}", a.summary);
    assert!(a.outcome.recoveries >= 1, "watchdog kill triggers recovery");
    assert!(
        a.all_fault_lines().contains("watchdog"),
        "watchdog kill recorded:\n{}",
        a.all_fault_lines()
    );
    let b = run_chaos_scenario(
        "chaos-hang-replay",
        InitInterface::VendorManagement,
        &plan,
        tune,
    );
    assert_eq!(a.summary, b.summary);
}

#[test]
fn chaos_power_outage_quarantines_host_and_sweep_degrades() {
    // The DuT panics while its management interface is dark: reset retries
    // fail, the power-cycle fallback fails, the host is quarantined — and
    // with continue_on_run_failure the rest of the sweep still completes,
    // recording the lost runs instead of aborting.
    let plan = ChaosPlan::new(4)
        .with_event(ChaosEvent::HostCrash {
            host: "vtartu".into(),
            at: SimTime::from_secs(118),
        })
        .with_event(ChaosEvent::PowerOutage {
            host: "vtartu".into(),
            from: SimTime::from_secs(110),
            until: SimTime::from_secs(4000),
        });
    let a = run_chaos_scenario("chaos-outage", InitInterface::Ipmi, &plan, |_| {});
    assert_eq!(a.outcome.successes(), 2, "runs before the crash survive");
    assert_eq!(a.outcome.failed_runs, vec![2, 3], "summary:\n{}", a.summary);
    assert_eq!(a.outcome.quarantined_hosts, vec!["vtartu".to_string()]);
    assert_eq!(a.vtartu_health, HostHealth::Quarantined);
    assert_eq!(a.outcome.recoveries, 0, "no recovery succeeded");
    assert_eq!(a.outcome.runs.len(), 4, "sweep completed despite the loss");
    // The run hit by the crash burned one attempt; the one after the
    // quarantine failed fast without any.
    assert_eq!(a.outcome.runs[2].attempts, 1);
    assert_eq!(a.outcome.runs[3].attempts, 0);
    assert!(
        !a.outcome.runs[3].fault_trace.is_empty(),
        "skip is recorded"
    );
    assert!(a
        .events
        .iter()
        .any(|e| matches!(e, Progress::PowerRetry { host, .. } if host == "vtartu")));
    assert!(a
        .events
        .iter()
        .any(|e| matches!(e, Progress::HostQuarantined { host } if host == "vtartu")));
    // Surviving runs still produced a full result tree.
    let set = pos::eval::loader::ResultSet::load(&a.outcome.result_dir).unwrap();
    assert_eq!(set.len(), 4);
    assert_eq!(
        set.runs.iter().filter(|r| r.metadata.success).count(),
        2,
        "degradation visible in the published metadata"
    );
    let b = run_chaos_scenario("chaos-outage-replay", InitInterface::Ipmi, &plan, |_| {});
    assert_eq!(a.summary, b.summary, "degraded outcome replays bit-for-bit");
}

#[test]
fn chaos_link_faults_degrade_measurements_not_runs() {
    // A lossy experiment link is *not* a failure: every run completes, but
    // the measurements show the loss — deterministically.
    let plan = ChaosPlan::new(5).with_event(ChaosEvent::LinkFaults {
        host: "vriga".into(),
        from: SimTime::from_secs(1),
        until: SimTime::from_secs(10_000),
        config: FaultConfig {
            drop_chance: 0.3,
            ..FaultConfig::none()
        },
    });
    let a = run_chaos_scenario("chaos-link", InitInterface::Ipmi, &plan, |_| {});
    assert_eq!(a.outcome.successes(), 4, "lossy link fails no run");
    assert_eq!(a.outcome.recoveries, 0);
    let set = pos::eval::loader::ResultSet::load(&a.outcome.result_dir).unwrap();
    for run in &set.runs {
        let report = run.reports.get("loadgen").unwrap();
        assert!(
            report.rx_frames < report.tx_frames,
            "loss shows up in the measurement: rx {} tx {}",
            report.rx_frames,
            report.tx_frames
        );
    }
    let b = run_chaos_scenario("chaos-link-replay", InitInterface::Ipmi, &plan, |_| {});
    assert_eq!(a.summary, b.summary);
}

#[test]
fn chaos_campaign_interrupted_mid_quarantine_resumes_identically() {
    // The outage scenario above, but the controller is killed at journal
    // boundaries around the quarantine — right before the failed run's
    // completion record and right before the final skipped run's — then
    // resumed with the same chaos plan. The resumed campaign must report
    // exactly the summary of the uninterrupted one: same failed runs, same
    // attempts, same quarantine, same virtual timings.
    let plan = ChaosPlan::new(4)
        .with_event(ChaosEvent::HostCrash {
            host: "vtartu".into(),
            at: SimTime::from_secs(118),
        })
        .with_event(ChaosEvent::PowerOutage {
            host: "vtartu".into(),
            from: SimTime::from_secs(110),
            until: SimTime::from_secs(4000),
        });
    let reference = run_chaos_scenario("chaos-resume-ref", InitInterface::Ipmi, &plan, |_| {});

    // k=7 kills the append of run 2's RunCompleted: the HostQuarantined
    // record is durable but run 2 is not, so the quarantine must be
    // *re-derived* by re-executing the run. k=9 kills run 3's
    // RunCompleted: run 2 is durable and the quarantine is *restored*
    // from the journal instead — both paths must converge.
    for k in [7u64, 9] {
        let tag = format!("chaos-resume-k{k}");
        let root = tmp(&tag);
        let mut tb = testbed_with_init(InitInterface::Ipmi);
        let mut opts = RunOptions::new(&root);
        opts.continue_on_run_failure = true;
        opts.journal_crash_after = Some(k);
        let mut ctl = Controller::new(&mut tb);
        ctl.apply_chaos(&plan).expect("plan validates");
        ctl.run_experiment(&chaos_spec(), &opts)
            .expect_err("campaign must abort at the injected crash");
        drop(ctl);

        // Find the interrupted tree (root/user/experiment/vt-*).
        let mut result_dir = root.clone();
        while !result_dir.join("journal.log").exists() {
            let mut entries: Vec<PathBuf> = std::fs::read_dir(&result_dir)
                .unwrap()
                .filter_map(|e| e.ok())
                .map(|e| e.path())
                .collect();
            entries.sort();
            result_dir = entries.into_iter().next().expect("result tree exists");
        }

        let mut tb = testbed_with_init(InitInterface::Ipmi);
        let mut opts = RunOptions::new(&root);
        opts.continue_on_run_failure = true;
        let mut ctl = Controller::new(&mut tb);
        ctl.apply_chaos(&plan).expect("plan validates");
        let outcome = ctl
            .resume_experiment(&result_dir, &chaos_spec(), &opts)
            .unwrap_or_else(|e| panic!("{tag}: resume failed: {e}"));
        assert_eq!(
            outcome.summary(),
            reference.summary,
            "{tag}: resumed chaos campaign diverges from uninterrupted replay"
        );
        assert_eq!(
            outcome.quarantined_hosts,
            vec!["vtartu".to_string()],
            "{tag}"
        );
        assert_eq!(outcome.failed_runs, vec![2, 3], "{tag}");
    }
}

#[test]
fn generated_campaign_roundtrips_and_replays() {
    // A seed-generated campaign archives as JSON, reloads validated, and
    // replays to the same outcome — the plan file alone reproduces the
    // degraded experiment.
    let cfg = pos::netsim::CampaignConfig {
        crashes: 1,
        hangs: 1,
        ..Default::default()
    };
    let plan = ChaosPlan::generate(0xC0FFEE, &["vriga", "vtartu"], &cfg);
    let reloaded = ChaosPlan::from_json(&plan.to_json()).unwrap();
    assert_eq!(plan, reloaded);

    let a = run_chaos_scenario("chaos-gen", InitInterface::Ipmi, &reloaded, |_| {});
    let b = run_chaos_scenario("chaos-gen-replay", InitInterface::Ipmi, &plan, |_| {});
    assert_eq!(a.outcome.runs.len(), 4);
    assert_eq!(a.summary, b.summary);
}
