//! Recoverability (R3) through the full workflow, across initialization
//! interfaces — including the power plug, which has no reset command.

use pos::core::commands::register_all;
use pos::core::controller::{Controller, RunOptions};
use pos::core::experiment::linux_router_experiment;
use pos::core::script::Script;
use pos::core::vars::Variables;
use pos::testbed::{CommandResult, HardwareSpec, InitInterface, PortId, Testbed};
use std::cell::Cell;
use std::path::PathBuf;
use std::rc::Rc;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pos-rec-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn testbed_with_init(init: InitInterface) -> Testbed {
    let mut tb = Testbed::new(0xFEED);
    tb.add_host("vriga", HardwareSpec::paper_dut(), InitInterface::Ipmi);
    tb.add_host("vtartu", HardwareSpec::paper_dut(), init);
    tb.topology
        .wire(PortId::new("vriga", 0), PortId::new("vtartu", 0))
        .unwrap();
    tb.topology
        .wire(PortId::new("vtartu", 1), PortId::new("vriga", 1))
        .unwrap();
    register_all(&mut tb);
    tb
}

/// Registers a command that wedges the host on its first call.
fn register_crash_once(tb: &mut Testbed) -> Rc<Cell<u32>> {
    let calls = Rc::new(Cell::new(0u32));
    let counter = calls.clone();
    tb.register_command(
        "crash-once",
        Rc::new(move |tb: &mut Testbed, host: &str, _argv: &[String]| {
            counter.set(counter.get() + 1);
            if counter.get() == 1 {
                tb.host_mut(host).unwrap().inject_crash();
                CommandResult::fail(255, "connection reset by peer")
            } else {
                CommandResult::ok("ok")
            }
        }),
    );
    calls
}

fn crash_spec() -> pos::core::experiment::ExperimentSpec {
    let mut spec = linux_router_experiment("vriga", "vtartu", 1, 1);
    spec.loop_vars = Variables::new().with("pkt_rate", vec![10_000i64, 20_000]);
    spec.global_vars.set("pkt_sz", 64i64);
    spec.roles[1].measurement = Script::parse("crash-once\nsleep $run_secs\npos_sync run_done\n");
    spec
}

#[test]
fn recovery_via_ipmi_reset() {
    let mut tb = testbed_with_init(InitInterface::Ipmi);
    let calls = register_crash_once(&mut tb);
    let outcome = Controller::new(&mut tb)
        .run_experiment(&crash_spec(), &RunOptions::new(tmp("ipmi")))
        .expect("recovers and completes");
    assert_eq!(outcome.successes(), 2);
    assert_eq!(outcome.recoveries, 1);
    assert!(calls.get() >= 2);
    // The recovered host re-ran its setup: forwarding is enabled again and
    // the second run still measures real throughput.
    let dut = tb.host("vtartu").unwrap();
    assert_eq!(dut.sysctls["net.ipv4.ip_forward"], "1");
    assert!(dut.boots >= 2);
}

#[test]
fn recovery_via_power_plug_cycle() {
    // Power plugs cannot reset; the controller must power-cycle instead
    // (off + mandatory dwell + on).
    let mut tb = testbed_with_init(InitInterface::PowerPlug);
    let _calls = register_crash_once(&mut tb);
    let outcome = Controller::new(&mut tb)
        .run_experiment(&crash_spec(), &RunOptions::new(tmp("plug")))
        .expect("power-cycle recovery works too");
    assert_eq!(outcome.successes(), 2);
    assert_eq!(outcome.recoveries, 1);
    assert!(tb.host("vtartu").unwrap().boots >= 2);
}

#[test]
fn recovery_via_hypervisor() {
    let mut tb = Testbed::new(0xFEED);
    tb.add_host("vriga", HardwareSpec::vpos_vm(), InitInterface::Hypervisor);
    tb.add_host("vtartu", HardwareSpec::vpos_vm(), InitInterface::Hypervisor);
    tb.topology
        .wire(PortId::new("vriga", 0), PortId::new("vtartu", 0))
        .unwrap();
    tb.topology
        .wire(PortId::new("vtartu", 1), PortId::new("vriga", 1))
        .unwrap();
    register_all(&mut tb);
    let _calls = register_crash_once(&mut tb);
    let outcome = Controller::new(&mut tb)
        .run_experiment(&crash_spec(), &RunOptions::new(tmp("hv")))
        .expect("vm recovery");
    assert_eq!(outcome.successes(), 2);
    assert_eq!(outcome.recoveries, 1);
}

#[test]
fn run_results_after_recovery_are_complete() {
    // The interrupted run is *retried from scratch*, so its published
    // artifacts are indistinguishable from an undisturbed run's.
    let mut tb = testbed_with_init(InitInterface::Ipmi);
    let _calls = register_crash_once(&mut tb);
    let outcome = Controller::new(&mut tb)
        .run_experiment(&crash_spec(), &RunOptions::new(tmp("complete")))
        .expect("completes");
    let set = pos::eval::loader::ResultSet::load(&outcome.result_dir).unwrap();
    assert_eq!(set.len(), 2);
    for run in &set.runs {
        assert!(run.metadata.success);
        let report = run.reports.get("loadgen").expect("full measurement output");
        assert!(report.rx_frames > 0, "real traffic was measured");
        assert_eq!(report.rx_frames, report.tx_frames, "below saturation");
    }
    // Attempt counts document the recovery in the metadata.
    let attempts: Vec<u32> = set.runs.iter().map(|r| r.metadata.attempts).collect();
    assert!(attempts.iter().any(|&a| a > 1), "metadata records the retry");
}
