//! Disk-fault matrix: inject a storage fault at EVERY journal record
//! boundary — ENOSPC at the exact frame boundary and mid-frame, a torn
//! `write(2)`, a failing fsync — plus post-hoc bit rot, then recover
//! (resume for interrupted campaigns, scrub for rotted trees) and assert
//! the result tree always converges to the uninterrupted campaign's
//! tree, byte for byte.
//!
//! This is the storage sibling of `crash_matrix.rs` (which kills the
//! *process* at every boundary): here the process survives but the disk
//! misbehaves, through the `Vfs` fault-injection layer. Journal files are
//! excluded from the byte comparison as usual — they record the
//! interruption itself.

use pos::core::commands::register_all;
use pos::core::controller::{Controller, RunOptions};
use pos::core::experiment::{linux_router_experiment, ExperimentSpec};
use pos::core::fsck::fsck;
use pos::core::journal::{decode_frame, FrameStep, Journal, JOURNAL_FILE};
use pos::core::scrub::scrub;
use pos::core::vfs::{DiskFault, FaultPlan, Vfs};
use pos::sched::{resume_parallel, run_parallel, ParallelOptions};
use pos::testbed::{HardwareSpec, InitInterface, PortId, Testbed};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

const SEED: u64 = 0xD15C;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pos-diskfault-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn testbed() -> Testbed {
    let mut tb = Testbed::new(SEED);
    tb.add_host("vriga", HardwareSpec::paper_dut(), InitInterface::Ipmi);
    tb.add_host("vtartu", HardwareSpec::paper_dut(), InitInterface::Ipmi);
    tb.topology
        .wire(PortId::new("vriga", 0), PortId::new("vtartu", 0))
        .unwrap();
    tb.topology
        .wire(PortId::new("vtartu", 1), PortId::new("vriga", 1))
        .unwrap();
    register_all(&mut tb);
    tb
}

/// Two runs, one virtual second each — the same footprint as the crash
/// matrix, small enough that the full fault sweep stays fast.
fn spec() -> ExperimentSpec {
    linux_router_experiment("vriga", "vtartu", 1, 1)
}

/// Every file under `dir` (relative path → contents), minus journals.
fn snapshot(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    let mut files = BTreeMap::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(current) = stack.pop() {
        for entry in std::fs::read_dir(&current).unwrap() {
            let path = entry.unwrap().path();
            if path.is_dir() {
                stack.push(path);
            } else {
                let name = path.file_name().unwrap().to_string_lossy().into_owned();
                if name.starts_with("journal") {
                    continue;
                }
                let rel = path
                    .strip_prefix(dir)
                    .unwrap()
                    .to_string_lossy()
                    .into_owned();
                files.insert(rel, std::fs::read(&path).unwrap());
            }
        }
    }
    files
}

/// The single `<root>/<user>/<experiment>/vt-*` dir a campaign created.
fn find_result_dir(root: &Path) -> PathBuf {
    let mut stack = vec![root.to_path_buf()];
    while let Some(current) = stack.pop() {
        if current.join(JOURNAL_FILE).exists() {
            return current;
        }
        if current.is_dir() {
            for entry in std::fs::read_dir(&current).unwrap() {
                stack.push(entry.unwrap().path());
            }
        }
    }
    panic!("no result dir with a journal under {}", root.display());
}

fn assert_trees_equal(reference: &BTreeMap<String, Vec<u8>>, resumed: &Path, context: &str) {
    let got = snapshot(resumed);
    let want_names: Vec<&String> = reference.keys().collect();
    let got_names: Vec<&String> = got.keys().collect();
    assert_eq!(got_names, want_names, "{context}: file sets differ");
    for (name, want) in reference {
        assert_eq!(
            &got[name], want,
            "{context}: {name} diverges from the uninterrupted tree"
        );
    }
}

/// Byte offsets at which the journal image is a clean prefix: 0 and the
/// end of every complete frame. The journal is deterministic for a given
/// seed, so boundaries measured on the reference run are exact for every
/// faulted run.
fn frame_boundaries(bytes: &[u8]) -> Vec<usize> {
    let mut boundaries = vec![0usize];
    let mut offset = 0;
    while offset < bytes.len() {
        match decode_frame(bytes, offset).expect("reference journal decodes") {
            FrameStep::Record { frame_len, .. } => {
                offset += frame_len;
                boundaries.push(offset);
            }
            FrameStep::Torn { .. } => panic!("reference journal has no torn tail"),
        }
    }
    boundaries
}

/// Reference tree of the uninterrupted campaign plus its journal image.
fn reference() -> (BTreeMap<String, Vec<u8>>, Vec<u8>) {
    let root = tmp("reference");
    let mut tb = testbed();
    let outcome = Controller::new(&mut tb)
        .run_experiment(&spec(), &RunOptions::new(&root))
        .expect("uninterrupted campaign succeeds");
    let report = fsck(&outcome.result_dir).unwrap();
    assert!(
        report.is_clean(),
        "reference not clean:\n{}",
        report.render()
    );
    let journal = std::fs::read(outcome.result_dir.join(JOURNAL_FILE)).unwrap();
    (snapshot(&outcome.result_dir), journal)
}

fn journal_fault_opts(root: &Path, fault: DiskFault) -> RunOptions {
    let mut opts = RunOptions::new(root);
    opts.vfs = Vfs::faulty(FaultPlan {
        seed: SEED,
        faults: vec![fault],
    })
    .unwrap();
    opts
}

/// Runs the faulted campaign, asserts it aborts, then resumes on a
/// healthy disk and asserts byte-identical convergence. `k == 0` means
/// nothing durable at all, where resume has no identity to pick up.
fn crash_then_resume_converges(
    want: &BTreeMap<String, Vec<u8>>,
    root: &Path,
    opts: &RunOptions,
    k: usize,
    label: &str,
) {
    let mut tb = testbed();
    Controller::new(&mut tb)
        .run_experiment(&spec(), opts)
        .expect_err(&format!("{label}: campaign must abort"));
    let result_dir = find_result_dir(root);

    let mut tb = testbed();
    let resumed =
        Controller::new(&mut tb).resume_experiment(&result_dir, &spec(), &RunOptions::new(root));
    if k == 0 {
        resumed.expect_err(&format!("{label}: no CampaignStarted to resume from"));
        return;
    }
    let outcome = resumed.unwrap_or_else(|e| panic!("{label}: resume failed: {e}"));
    assert_eq!(outcome.successes(), 2, "{label}");
    assert_trees_equal(want, &result_dir, label);
    let report = fsck(&result_dir).unwrap();
    assert!(
        report.is_clean(),
        "{label}: fsck not clean:\n{}",
        report.render()
    );
}

#[test]
fn enospc_at_every_journal_boundary_then_resume_converges() {
    let (want, journal) = reference();
    let boundaries = frame_boundaries(&journal);
    let total_records = boundaries.len() - 1;
    assert!(total_records >= 6);

    // `mid == 0` fills the disk exactly at the frame boundary (append k
    // lands nothing); `mid == 7` fills it mid-frame, leaving a torn tail
    // the resume must shed first.
    for mid in [0usize, 7] {
        for (k, &boundary) in boundaries.iter().enumerate().take(total_records) {
            let label = format!("ENOSPC after record {k} + {mid} bytes");
            let root = tmp(&format!("enospc-{k}-{mid}"));
            let opts = journal_fault_opts(
                &root,
                DiskFault::Enospc {
                    after_bytes: (boundary + mid) as u64,
                    file: Some(JOURNAL_FILE.into()),
                },
            );
            let mut tb = testbed();
            let err = Controller::new(&mut tb)
                .run_experiment(&spec(), &opts)
                .expect_err(&format!("{label}: campaign must abort"));
            assert!(
                err.is_storage_full(),
                "{label}: expected a storage-full error, got {err}"
            );
            let result_dir = find_result_dir(&root);
            let replay = Journal::replay(&result_dir.join(JOURNAL_FILE)).unwrap();
            assert_eq!(replay.records.len(), k, "{label}: durable prefix");
            assert_eq!(replay.torn_tail, mid > 0, "{label}: tail classification");

            let mut tb = testbed();
            let resumed = Controller::new(&mut tb).resume_experiment(
                &result_dir,
                &spec(),
                &RunOptions::new(&root),
            );
            if k == 0 {
                resumed.expect_err(&format!("{label}: no CampaignStarted to resume from"));
                continue;
            }
            let outcome = resumed.unwrap_or_else(|e| panic!("{label}: resume failed: {e}"));
            assert_eq!(outcome.successes(), 2, "{label}");
            assert_trees_equal(&want, &result_dir, &label);
            assert!(fsck(&result_dir).unwrap().is_clean(), "{label}");
        }
    }
}

#[test]
fn torn_write_at_every_journal_boundary_then_resume_converges() {
    let (want, journal) = reference();
    let total_records = frame_boundaries(&journal).len() - 1;

    for k in 0..total_records {
        let label = format!("torn write at record {k}");
        let root = tmp(&format!("tornwrite-{k}"));
        // 40 bytes is less than a frame header: replay must classify the
        // remnant as a torn tail, and resume must truncate it away.
        let opts = journal_fault_opts(
            &root,
            DiskFault::TornWrite {
                at_write: k as u64,
                keep_bytes: 40,
                file: Some(JOURNAL_FILE.into()),
            },
        );
        crash_then_resume_converges(&want, &root, &opts, k, &label);
    }
}

#[test]
fn fsync_failure_at_every_journal_boundary_then_resume_converges() {
    let (want, journal) = reference();
    let total_records = frame_boundaries(&journal).len() - 1;

    for k in 0..total_records {
        let label = format!("fsync failure at record {k}");
        let root = tmp(&format!("fsyncfail-{k}"));
        // Fsync index k+1: the journal's create_sync burns index 0.
        let opts = journal_fault_opts(
            &root,
            DiskFault::FsyncFail {
                at_fsync: k as u64 + 1,
                file: Some(JOURNAL_FILE.into()),
            },
        );
        let mut tb = testbed();
        Controller::new(&mut tb)
            .run_experiment(&spec(), &opts)
            .expect_err(&format!("{label}: campaign must abort"));
        let result_dir = find_result_dir(&root);

        // A failed fsync leaves the frame's bytes in the file — written
        // but never promised. Replaying such a journal is still sound:
        // every record describes a state that *was* reached before the
        // append, so resume may trust the whole prefix.
        let replay = Journal::replay(&result_dir.join(JOURNAL_FILE)).unwrap();
        assert_eq!(replay.records.len(), k + 1, "{label}: frame reached cache");
        if replay.finished() {
            // The unpromised record was CampaignFinished itself: the
            // tree is already complete and verifiable as-is.
            assert_trees_equal(&want, &result_dir, &label);
            assert!(fsck(&result_dir).unwrap().is_clean(), "{label}");
            continue;
        }

        let mut tb = testbed();
        let outcome = Controller::new(&mut tb)
            .resume_experiment(&result_dir, &spec(), &RunOptions::new(&root))
            .unwrap_or_else(|e| panic!("{label}: resume failed: {e}"));
        assert_eq!(outcome.successes(), 2, "{label}");
        assert_trees_equal(&want, &result_dir, &label);
        assert!(fsck(&result_dir).unwrap().is_clean(), "{label}");
    }
}

#[test]
fn scrub_reports_zero_findings_on_undamaged_tree() {
    let root = tmp("scrub-clean");
    let mut tb = testbed();
    let outcome = Controller::new(&mut tb)
        .run_experiment(&spec(), &RunOptions::new(&root))
        .unwrap();
    let report = scrub(&outcome.result_dir, false).unwrap();
    assert!(report.clean, "undamaged tree must scrub clean");
    assert_eq!(report.findings.len(), 0);
    assert_eq!(report.runs_scanned, 2);
    assert!(report.files_scanned > 0);
}

#[test]
fn bit_flips_detected_by_scrub_and_healed_to_byte_identity() {
    let (want, _) = reference();
    let root = tmp("bitflip");
    let mut tb = testbed();
    let outcome = Controller::new(&mut tb)
        .run_experiment(&spec(), &RunOptions::new(&root))
        .unwrap();
    let result_dir = outcome.result_dir;

    // Rot two files at rest: a measurement artifact and the other run's
    // checksum manifest — the two repair paths (restore/re-execute vs
    // deterministic manifest rebuild).
    let rot = Vfs::faulty(FaultPlan {
        seed: SEED,
        faults: vec![
            DiskFault::BitFlip {
                file: "run-0000/loadgen_measurement.log".into(),
                offset: 5,
                mask: 0x20,
            },
            DiskFault::BitFlip {
                file: "run-0001/checksums.json".into(),
                offset: 99,
                mask: 0x01,
            },
        ],
    })
    .unwrap();
    let flipped = rot.apply_bit_flips(&result_dir).unwrap();
    assert_eq!(flipped.len(), 2, "both flips must land");

    // Detection pass: both damaged runs surface, nothing is touched.
    let detect = scrub(&result_dir, false).unwrap();
    assert!(!detect.clean);
    assert!(detect.findings.len() >= 2, "{}", detect.render());
    assert!(!fsck(&result_dir).unwrap().is_clean());

    // Repair pass; whatever has no intact donor goes through resume,
    // exactly as the `pos scrub --repair` CLI drives it.
    let repair = scrub(&result_dir, true).unwrap();
    if !repair.reexecution_required.is_empty() {
        let mut tb = testbed();
        Controller::new(&mut tb)
            .resume_experiment(&result_dir, &spec(), &RunOptions::new(&root))
            .expect("resume repairs runs scrub could not");
    }
    let confirm = scrub(&result_dir, false).unwrap();
    assert!(confirm.clean, "after repair:\n{}", confirm.render());
    assert_trees_equal(&want, &result_dir, "bit-flip heal");
    assert!(fsck(&result_dir).unwrap().is_clean());
}

#[test]
fn parallel_enospc_checkpoints_and_resume_parallel_converges() {
    let (want, _) = reference();

    // Clean 2-lane reference run to measure the scheduler journal's
    // deterministic frame boundaries (lane journals have different
    // names and are not matched by the `journal.log` suffix filter).
    let popts = ParallelOptions::new(2);
    let clean_root = tmp("par-clean");
    let out = run_parallel(
        &spec(),
        &RunOptions::new(&clean_root),
        &popts,
        &mut |_, _| Ok(testbed()),
    )
    .expect("clean parallel campaign succeeds");
    assert_trees_equal(&want, &out.outcome.result_dir, "parallel clean");
    let sched_journal = std::fs::read(out.outcome.result_dir.join(JOURNAL_FILE)).unwrap();
    let boundaries = frame_boundaries(&sched_journal);
    assert!(boundaries.len() > 4, "scheduler journal too short to cut");

    // Fill the disk for the scheduler journal mid-campaign.
    let cut = boundaries[boundaries.len() / 2];
    let root = tmp("par-enospc");
    let opts = journal_fault_opts(
        &root,
        DiskFault::Enospc {
            after_bytes: cut as u64,
            file: Some(JOURNAL_FILE.into()),
        },
    );
    let err = run_parallel(&spec(), &opts, &popts, &mut |_, _| Ok(testbed()))
        .expect_err("parallel campaign must abort on a full disk");
    assert!(err.is_storage_full(), "expected storage-full, got {err}");
    let result_dir = find_result_dir(&root);

    let out = resume_parallel(
        &result_dir,
        &spec(),
        &RunOptions::new(&root),
        &mut |_, _| Ok(testbed()),
    )
    .expect("parallel resume completes once space returns");
    assert_eq!(out.outcome.successes(), 2);
    assert_trees_equal(&want, &result_dir, "parallel ENOSPC resume");
    assert!(fsck(&result_dir).unwrap().is_clean());
}

/// End-to-end CLI contract: ENOSPC exits with the degraded code (3) and
/// a checkpoint message, `pos resume` completes on a healthy disk with
/// exit 0, and `pos scrub` then reports a clean tree.
#[test]
fn cli_enospc_exits_degraded_then_resume_and_scrub_succeed() {
    use std::process::Command;
    let bin = env!("CARGO_BIN_EXE_pos");
    let base = tmp("cli");
    std::fs::create_dir_all(&base).unwrap();
    let exp = base.join("exp");
    spec().to_dir(&exp).unwrap();
    let results = base.join("results");

    // Measure the journal of a clean CLI run, then cut mid-journal.
    let clean = Command::new(bin)
        .args(["run", exp.to_str().unwrap(), "--results"])
        .arg(base.join("clean-results"))
        .output()
        .unwrap();
    assert!(clean.status.success(), "clean run failed: {clean:?}");
    let clean_dir = find_result_dir(&base.join("clean-results"));
    let journal = std::fs::read(clean_dir.join(JOURNAL_FILE)).unwrap();
    let boundaries = frame_boundaries(&journal);
    let cut = boundaries[boundaries.len() / 2];

    let plan = base.join("disk-faults.json");
    std::fs::write(
        &plan,
        serde_json::to_string(&FaultPlan {
            seed: SEED,
            faults: vec![DiskFault::Enospc {
                after_bytes: cut as u64,
                file: Some(JOURNAL_FILE.into()),
            }],
        })
        .unwrap(),
    )
    .unwrap();

    let run = Command::new(bin)
        .args(["run", exp.to_str().unwrap(), "--results"])
        .arg(&results)
        .args(["--disk-faults", plan.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(
        run.status.code(),
        Some(3),
        "ENOSPC must exit degraded, not error: {run:?}"
    );
    let stderr = String::from_utf8_lossy(&run.stderr);
    assert!(
        stderr.contains("checkpointed at the last consistent journal boundary"),
        "missing checkpoint message:\n{stderr}"
    );

    let result_dir = find_result_dir(&results);
    let resume = Command::new(bin)
        .arg("resume")
        .arg(&result_dir)
        .output()
        .unwrap();
    assert!(
        resume.status.success(),
        "resume after freeing space must exit 0: {resume:?}"
    );

    let scrub_out = Command::new(bin)
        .arg("scrub")
        .arg(&result_dir)
        .output()
        .unwrap();
    assert!(
        scrub_out.status.success(),
        "scrub on the completed tree must exit 0: {scrub_out:?}"
    );
    let stdout = String::from_utf8_lossy(&scrub_out.stdout);
    assert!(stdout.contains("zero findings"), "scrub output:\n{stdout}");
}
