//! Property-style invariants of the controller, checked across randomized
//! loop-variable shapes: the result tree always mirrors the cross product
//! exactly, whatever the sweep looks like.

use pos::core::commands::register_all;
use pos::core::controller::{Controller, RunOptions};
use pos::core::experiment::{ExperimentSpec, RoleSpec};
use pos::core::loopvars::expand_cross_product;
use pos::core::script::Script;
use pos::core::vars::{VarValue, Variables};
use pos::eval::loader::ResultSet;
use pos::simkernel::SimRng;
use pos::testbed::{HardwareSpec, InitInterface, PortId, Testbed};
use std::path::PathBuf;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pos-prop-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A fast experiment: no traffic, just barrier-synchronized no-ops, so we
/// can afford many randomized shapes.
fn noop_spec(loop_vars: Variables) -> ExperimentSpec {
    let mut a = RoleSpec::new("a", "hostA");
    a.setup = Script::parse("pos_sync s\n");
    a.measurement = Script::parse("true\npos_sync m\n");
    let mut b = RoleSpec::new("b", "hostB");
    b.setup = Script::parse("pos_sync s\n");
    b.measurement = Script::parse("echo run done\npos_sync m\n");
    let mut spec = ExperimentSpec::new("prop", "prover")
        .with_role(a)
        .with_role(b);
    spec.loop_vars = loop_vars;
    spec
}

fn testbed(seed: u64) -> Testbed {
    let mut tb = Testbed::new(seed);
    tb.add_host("hostA", HardwareSpec::paper_dut(), InitInterface::Ipmi);
    tb.add_host("hostB", HardwareSpec::paper_dut(), InitInterface::Ipmi);
    tb.topology
        .wire(PortId::new("hostA", 0), PortId::new("hostB", 0))
        .unwrap();
    register_all(&mut tb);
    tb
}

#[test]
fn result_tree_always_mirrors_the_cross_product() {
    let mut rng = SimRng::new(0x9999);
    for case in 0..12u64 {
        // Random sweep shape: 1..=3 variables, 1..=3 values each.
        let n_vars = 1 + rng.uniform_u64(3);
        let mut loop_vars = Variables::new();
        for v in 0..n_vars {
            let n_vals = 1 + rng.uniform_u64(3);
            let vals: Vec<VarValue> = (0..n_vals)
                .map(|k| VarValue::Int((rng.uniform_u64(100) * 10 + k) as i64))
                .collect();
            loop_vars.set(format!("v{v}"), VarValue::List(vals));
        }
        let expected = expand_cross_product(&loop_vars);

        let mut tb = testbed(case);
        let spec = noop_spec(loop_vars);
        let outcome = Controller::new(&mut tb)
            .run_experiment(&spec, &RunOptions::new(tmp(&format!("case{case}"))))
            .unwrap_or_else(|e| panic!("case {case}: {e}"));

        // Invariant 1: one successful run per combination, in order.
        assert_eq!(outcome.runs.len(), expected.len(), "case {case}");
        assert_eq!(outcome.successes(), expected.len(), "case {case}");
        for (rec, exp) in outcome.runs.iter().zip(&expected) {
            assert_eq!(rec.params.label(), exp.label(), "case {case}");
        }

        // Invariant 2: the on-disk tree agrees with the in-memory outcome.
        let set = ResultSet::load(&outcome.result_dir).unwrap();
        assert_eq!(set.len(), expected.len(), "case {case}");
        for (run, exp) in set.runs.iter().zip(&expected) {
            assert_eq!(run.metadata.index, exp.index);
            assert_eq!(run.metadata.label, exp.label());
            assert!(run.metadata.success);
            // Captured stdout of role b is present for every run.
            assert!(run.raw_logs["b"].contains("run done"), "case {case}");
        }

        // Invariant 3: virtual time is monotone across runs.
        let mut last = 0u64;
        for run in &set.runs {
            assert!(run.metadata.started_ns >= last, "case {case}");
            assert!(run.metadata.finished_ns >= run.metadata.started_ns);
            last = run.metadata.finished_ns;
        }
    }
}
