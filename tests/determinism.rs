//! Repeatability made literal: the same experiment on the same (seeded)
//! testbed produces byte-identical published artifacts.

use pos::core::commands::register_all;
use pos::core::controller::{Controller, RunOptions};
use pos::core::experiment::linux_router_experiment;
use pos::publish::bundle::Bundle;
use pos::testbed::{HardwareSpec, InitInterface, PortId, Testbed};
use std::path::PathBuf;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pos-det-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn full_pipeline(seed: u64, root: &str) -> Vec<u8> {
    let mut tb = Testbed::new(seed);
    tb.add_host("vriga", HardwareSpec::paper_dut(), InitInterface::Ipmi);
    tb.add_host("vtartu", HardwareSpec::paper_dut(), InitInterface::Ipmi);
    tb.topology
        .wire(PortId::new("vriga", 0), PortId::new("vtartu", 0))
        .unwrap();
    tb.topology
        .wire(PortId::new("vtartu", 1), PortId::new("vriga", 1))
        .unwrap();
    register_all(&mut tb);
    let spec = linux_router_experiment("vriga", "vtartu", 3, 1);
    let outcome = Controller::new(&mut tb)
        .run_experiment(&spec, &RunOptions::new(tmp(root)))
        .expect("experiment runs");

    let mut bundle = Bundle::new(&spec.name);
    bundle.add_tree(&outcome.result_dir, "").unwrap();
    let mut tar = Vec::new();
    bundle.write_tar(&mut tar).expect("archive");
    tar
}

#[test]
fn same_seed_byte_identical_archive() {
    let a = full_pipeline(0xC0FFEE, "a");
    let b = full_pipeline(0xC0FFEE, "b");
    assert_eq!(
        pos::publish::sha256_hex(&a),
        pos::publish::sha256_hex(&b),
        "two runs of the same experiment must publish identical bytes"
    );
}

#[test]
fn different_seed_differs_in_detail_not_in_shape() {
    let a = full_pipeline(1, "s1");
    let b = full_pipeline(2, "s2");
    // Different seeds differ somewhere (boot jitter, latency samples)...
    assert_ne!(pos::publish::sha256_hex(&a), pos::publish::sha256_hex(&b));
    // ...but both archives contain the same artifact structure.
    let ea = pos::publish::archive::read_tar(&a).unwrap();
    let eb = pos::publish::archive::read_tar(&b).unwrap();
    let paths = |es: &[pos::publish::TarEntry]| -> Vec<String> {
        es.iter().map(|e| e.path.clone()).collect()
    };
    assert_eq!(paths(&ea), paths(&eb));
}
