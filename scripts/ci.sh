#!/usr/bin/env sh
# CI gate for the pos reproduction. Offline by design: all dependencies are
# vendored path crates, so no step may touch the network.
#
#   sh scripts/ci.sh            # build + full test suite + crash matrix + bench smoke
#   POS_CI_SKIP_BENCH=1 sh …    # skip the bench smoke (fastest useful signal)
set -eu

cd "$(dirname "$0")/.."

# First-party crates only: vendor/* are offline registry stand-ins and are
# exempt from the style gates.
FIRST_PARTY="-p pos -p pos-core -p pos-testbed -p pos-simkernel -p pos-netsim \
 -p pos-packet -p pos-loadgen -p pos-eval -p pos-publish -p pos-bench -p pos-sched"

echo "==> rustfmt (check, first-party crates)"
cargo fmt --check $FIRST_PARTY

echo "==> clippy (deny warnings, first-party crates)"
cargo clippy $FIRST_PARTY --all-targets -- -D warnings

echo "==> build (release, workspace)"
cargo build --release --workspace

echo "==> tests (workspace)"
cargo test -q --workspace

# The crash matrix is the durability contract: kill the controller at every
# journal record boundary (cleanly and with torn tails), resume, and demand a
# byte-identical result tree. It runs as part of the workspace suite above;
# repeating it by name here keeps the gate loud if someone filters tests.
echo "==> crash matrix (tests/crash_matrix.rs)"
cargo test -q --test crash_matrix

# The failover half of that contract: kill the scheduler at every append in
# the failover record window (LaneRetired / RunRetry / RunQuarantined),
# resume, and demand byte-identity with an uninterrupted faulted campaign.
echo "==> failover crash matrix (tests/parallel_determinism.rs)"
cargo test -q --test parallel_determinism crash_mid_failover_resumes_to_identical_tree
cargo test -q --test parallel_determinism interrupted_failover_strands_run_and_fsck_flags_it

if [ "${POS_CI_SKIP_BENCH:-0}" != "1" ]; then
    echo "==> bench smoke: robustness (sweep + chaos campaign + resume + lane failover)"
    POS_RUN_SECS=0.05 POS_CHAOS_RUN_SECS=5 POS_FAILOVER_RUN_SECS=2 \
        cargo run --release -p pos-bench --bin robustness >/dev/null
    # Replay-determinism caveat: BENCH_robustness.json is byte-stable EXCEPT
    # the "resume" object — journal_replay_us / digest_verify_us are wall-clock
    # microseconds and vary between runs and machines. To compare two runs,
    # drop that object first, e.g.:
    #   grep -v '_us"' BENCH_robustness.json
    # Everything else (sweep rows, campaign counters) must be identical for
    # identical seeds.
    test -s BENCH_robustness.json
    rm -f BENCH_robustness.json

    echo "==> bench smoke: parallel (lane-count speedup + merge overhead)"
    # Shrunk rate keeps the packet simulation cheap; the virtual-time
    # speedup (>=2x at 4 lanes) is rate-independent, so the smoke still
    # exercises the real acceptance numbers.
    POS_PAR_RATE=2000 \
        cargo run --release -p pos-bench --bin parallel >/dev/null
    test -s BENCH_parallel.json
    rm -f BENCH_parallel.json
fi

echo "==> ci: OK"
