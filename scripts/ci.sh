#!/usr/bin/env sh
# CI gate for the pos reproduction. Offline by design: all dependencies are
# vendored path crates, so no step may touch the network.
#
#   sh scripts/ci.sh            # build + full test suite + crash matrix + bench smoke
#   POS_CI_SKIP_BENCH=1 sh …    # skip the bench smoke (fastest useful signal)
set -eu

cd "$(dirname "$0")/.."

# First-party crates only: vendor/* are offline registry stand-ins and are
# exempt from the style gates.
FIRST_PARTY="-p pos -p pos-core -p pos-testbed -p pos-simkernel -p pos-netsim \
 -p pos-packet -p pos-loadgen -p pos-eval -p pos-publish -p pos-bench -p pos-sched \
 -p pos-serve -p pos-dag"

echo "==> rustfmt (check, first-party crates)"
cargo fmt --check $FIRST_PARTY

echo "==> clippy (deny warnings, first-party crates)"
cargo clippy $FIRST_PARTY --all-targets -- -D warnings

echo "==> build (release, workspace)"
cargo build --release --workspace

echo "==> tests (workspace)"
cargo test -q --workspace

# The crash matrix is the durability contract: kill the controller at every
# journal record boundary (cleanly and with torn tails), resume, and demand a
# byte-identical result tree. It runs as part of the workspace suite above;
# repeating it by name here keeps the gate loud if someone filters tests.
echo "==> crash matrix (tests/crash_matrix.rs)"
cargo test -q --test crash_matrix

# The failover half of that contract: kill the scheduler at every append in
# the failover record window (LaneRetired / RunRetry / RunQuarantined),
# resume, and demand byte-identity with an uninterrupted faulted campaign.
echo "==> failover crash matrix (tests/parallel_determinism.rs)"
cargo test -q --test parallel_determinism crash_mid_failover_resumes_to_identical_tree
cargo test -q --test parallel_determinism interrupted_failover_strands_run_and_fsck_flags_it

# The storage half: ENOSPC / torn writes / fsync failures at every journal
# boundary plus bit-flip rot, recovered to byte-identity via resume + scrub.
echo "==> disk-fault matrix (tests/disk_fault_matrix.rs)"
cargo test -q --test disk_fault_matrix

# The DAG half: the linux-router DAG executed at several lane counts and on
# both execution targets must leave byte-identical trees; a kill at every
# DAG-journal record boundary (clean + torn) followed by `resume_dag` must
# converge to that same tree with `fsck_dag` calling it clean.
echo "==> DAG crash matrix (tests/dag_determinism.rs)"
cargo test -q --test dag_determinism

# The daemon half: kill `pos serve` at every queue-ledger append boundary
# (and at campaign-journal boundaries) during a multi-user submission storm,
# restart, and demand byte-identical trees versus an uninterrupted daemon.
echo "==> serve restart matrix (tests/serve_restart_matrix.rs)"
cargo test -q --test serve_restart_matrix

# Scrub smoke, end to end through the CLI: corrupt one artifact of a real
# result tree with dd, demand that `pos scrub` detects it (nonzero exit),
# `pos scrub --repair` heals it, and the tree then scrubs and fscks clean.
echo "==> scrub smoke (pos scrub detect + repair)"
POS=target/release/pos
SCRUB_DIR=$(mktemp -d)
"$POS" init "$SCRUB_DIR/exp" >/dev/null
cat >"$SCRUB_DIR/exp/loop-variables.yml" <<'EOF'
pkt_rate:
- 10000
pkt_sz:
- 64
- 1500
EOF
cat >"$SCRUB_DIR/exp/global-variables.yml" <<'EOF'
dut_ip0: 10.0.0.1
dut_ip1: 10.0.1.1
run_secs: 1
EOF
"$POS" run "$SCRUB_DIR/exp" --results "$SCRUB_DIR/res" >/dev/null
TREE=$(dirname "$(find "$SCRUB_DIR/res" -name journal.log)")
printf 'X' | dd of="$TREE/run-0000/loadgen_measurement.log" \
    bs=1 count=1 conv=notrunc 2>/dev/null
if "$POS" scrub "$TREE" >/dev/null 2>&1; then
    echo "scrub smoke: corruption went undetected" >&2
    exit 1
fi
"$POS" scrub "$TREE" --repair >/dev/null
"$POS" scrub "$TREE" >/dev/null
"$POS" fsck "$TREE" >/dev/null
rm -rf "$SCRUB_DIR"

# DAG smoke, end to end through the CLI: scaffold the 3-stage case-study
# DAG, check `pos dag viz` golden lines in both formats, run it small at 2
# lanes, viz + fsck the result tree, and resume (a complete tree must be a
# verified no-op fast-forward, not a rerun).
echo "==> dag smoke (pos dag init + viz golden + run + fsck + resume)"
DAG_DIR=$(mktemp -d)
"$POS" dag init "$DAG_DIR/exp" >/dev/null
"$POS" dag viz "$DAG_DIR/exp" | grep -q 'scatter x' || {
    echo "dag smoke: ascii viz lost its scatter edge" >&2
    exit 1
}
"$POS" dag viz "$DAG_DIR/exp" | grep -q '==gather==>' || {
    echo "dag smoke: ascii viz lost its gather edge" >&2
    exit 1
}
"$POS" dag viz "$DAG_DIR/exp" --format dot | grep -q '^digraph ' || {
    echo "dag smoke: dot viz is not a digraph" >&2
    exit 1
}
"$POS" dag viz "$DAG_DIR/exp" --format dot | grep -q 'cluster_testbed' || {
    echo "dag smoke: dot viz lost the testbed cluster" >&2
    exit 1
}
cat >"$DAG_DIR/exp/loop-variables.yml" <<'EOF'
pkt_rate:
- 10000
- 20000
pkt_sz:
- 64
- 1500
EOF
cat >"$DAG_DIR/exp/global-variables.yml" <<'EOF'
dut_ip0: 10.0.0.1
dut_ip1: 10.0.1.1
run_secs: 1
EOF
"$POS" dag run "$DAG_DIR/exp" --results "$DAG_DIR/res" --lanes 2 >/dev/null
DAG_TREE=$(dirname "$(find "$DAG_DIR/res" -name dag.yml)")
test -s "$DAG_TREE/stage-eval/figures/eval.svg"
"$POS" dag viz "$DAG_TREE" | grep -q 'wave 0: \[setup setup\]' || {
    echo "dag smoke: result-tree viz lost its setup wave" >&2
    exit 1
}
"$POS" fsck "$DAG_TREE" >/dev/null
"$POS" dag resume "$DAG_TREE" | grep -q 'verified, skipped' || {
    echo "dag smoke: resume of a complete DAG re-ran instead of verifying" >&2
    exit 1
}
rm -rf "$DAG_DIR"

# Serve smoke, end to end through the real binary: start the daemon, submit
# over HTTP, kill -9 mid-service, restart on the same state dir, and demand
# that the acknowledged submission completes anyway (journal-before-ack).
# Then: token dedupe across the restart, a SIGTERM drain that must exit 0,
# and a ledger fsck of the state dir.
echo "==> serve smoke (kill -9 + restart + SIGTERM drain via pos serve)"
SERVE_DIR=$(mktemp -d)
"$POS" init "$SERVE_DIR/exp" >/dev/null
cat >"$SERVE_DIR/exp/loop-variables.yml" <<'EOF'
pkt_rate:
- 10000
pkt_sz:
- 64
EOF
cat >"$SERVE_DIR/exp/global-variables.yml" <<'EOF'
dut_ip0: 10.0.0.1
dut_ip1: 10.0.1.1
run_secs: 1
EOF
serve_wait_addr() {
    i=0
    while [ ! -s "$SERVE_DIR/state/addr" ]; do
        i=$((i + 1))
        if [ "$i" -gt 100 ]; then
            echo "serve smoke: daemon never published its address" >&2
            exit 1
        fi
        sleep 0.1
    done
    cat "$SERVE_DIR/state/addr"
}
"$POS" serve --state "$SERVE_DIR/state" --results "$SERVE_DIR/res" \
    >"$SERVE_DIR/serve1.log" 2>&1 &
SERVE_PID=$!
ADDR=$(serve_wait_addr)
"$POS" queue submit "$SERVE_DIR/exp" --daemon "$ADDR" --token smoke-1 >/dev/null
# The ack means the submission is durable in the ledger: a kill -9 right
# now — before, during, or after the campaign — must not lose it.
kill -9 "$SERVE_PID"
wait "$SERVE_PID" 2>/dev/null || true
rm -f "$SERVE_DIR/state/addr"
"$POS" serve --state "$SERVE_DIR/state" --results "$SERVE_DIR/res" \
    >"$SERVE_DIR/serve2.log" 2>&1 &
SERVE_PID=$!
ADDR=$(serve_wait_addr)
i=0
until "$POS" queue status --daemon "$ADDR" | grep -q '^completed: 1'; do
    i=$((i + 1))
    if [ "$i" -gt 300 ]; then
        echo "serve smoke: submission did not complete after restart" >&2
        "$POS" queue status --daemon "$ADDR" >&2 || true
        exit 1
    fi
    sleep 0.2
done
"$POS" queue submit "$SERVE_DIR/exp" --daemon "$ADDR" --token smoke-1 \
    | grep -q 'already queued' || {
    echo "serve smoke: idempotency token did not dedupe across restart" >&2
    exit 1
}
kill -TERM "$SERVE_PID"
SERVE_EXIT=0
wait "$SERVE_PID" || SERVE_EXIT=$?
if [ "$SERVE_EXIT" -ne 0 ]; then
    echo "serve smoke: drain of a completed daemon exited $SERVE_EXIT, want 0" >&2
    cat "$SERVE_DIR/serve2.log" >&2 || true
    exit 1
fi
"$POS" fsck "$SERVE_DIR/state" >/dev/null
rm -rf "$SERVE_DIR"

if [ "${POS_CI_SKIP_BENCH:-0}" != "1" ]; then
    echo "==> bench smoke: robustness (sweep + chaos + resume + failover + scrub/ENOSPC)"
    POS_RUN_SECS=0.05 POS_CHAOS_RUN_SECS=5 POS_FAILOVER_RUN_SECS=2 \
        cargo run --release -p pos-bench --bin robustness >/dev/null
    # Replay-determinism caveat: BENCH_robustness.json is byte-stable EXCEPT
    # the wall-clock fields — every key ending in `_us` (resume replay/verify,
    # scrub detect/repair, ENOSPC resume) varies between runs and machines.
    # To compare two runs, drop those lines first, e.g.:
    #   grep -v '_us"' BENCH_robustness.json
    # Everything else (sweep rows, campaign counters, checkpoint record
    # counts) must be identical for identical seeds.
    test -s BENCH_robustness.json
    rm -f BENCH_robustness.json

    echo "==> bench smoke: parallel (lane-count speedup + merge overhead)"
    # Shrunk rate keeps the packet simulation cheap; the virtual-time
    # speedup (>=2x at 4 lanes) is rate-independent, so the smoke still
    # exercises the real acceptance numbers.
    POS_PAR_RATE=2000 \
        cargo run --release -p pos-bench --bin parallel >/dev/null
    test -s BENCH_parallel.json
    rm -f BENCH_parallel.json

    echo "==> bench smoke: serve (admission latency + stride fairness + restart replay)"
    POS_SERVE_STORM=24 \
        cargo run --release -p pos-bench --bin serve >/dev/null
    test -s BENCH_serve.json
    rm -f BENCH_serve.json

    echo "==> bench smoke: dag (node dispatch + scatter throughput + gather barrier)"
    POS_DAG_RUN_SECS=1 POS_DAG_RATE_STEPS=3 \
        cargo run --release -p pos-bench --bin dag >/dev/null
    test -s BENCH_dag.json
    rm -f BENCH_dag.json

    echo "==> bench smoke: kernel (event churn + packet path, regression floors)"
    # Floors sit at ~25% of current dev-machine numbers (16M events/s,
    # 6.6M pkts/s @64B, 5.1M pkts/s @1500B) so slow CI hosts pass but a
    # return to the pre-wheel/pre-zero-copy kernel (9M / 1.25M / 0.9M)
    # trips loudly. The binary exits nonzero on a floor violation.
    POS_KERNEL_EVENTS=1000000 POS_KERNEL_RUN_SECS=0.2 \
        POS_KERNEL_FLOOR_EPS=4000000 \
        POS_KERNEL_FLOOR_PPS64=1600000 \
        POS_KERNEL_FLOOR_PPS1500=1300000 \
        cargo run --release -p pos-bench --bin kernel >/dev/null
    test -s BENCH_kernel.json
    rm -f BENCH_kernel.json
fi

echo "==> ci: OK"
