//! The multi-user calendar (§4.4 setup phase): temporal separation of
//! experiment hosts between users, conflict rejection, parallel
//! experiments on disjoint node sets, and free-slot search.
//!
//! Run with: `cargo run --example multiuser_calendar`

use pos::core::commands::register_all;
use pos::core::controller::{Controller, ControllerError, RunOptions};
use pos::core::experiment::linux_router_experiment;
use pos::simkernel::SimDuration;
use pos::testbed::{HardwareSpec, InitInterface, PortId, Testbed};

fn main() {
    // A four-host testbed: two directly wired pairs.
    let mut tb = Testbed::new(7);
    for name in ["vriga", "vtartu", "vvilnius", "vkaunas2"] {
        tb.add_host(name, HardwareSpec::paper_dut(), InitInterface::Ipmi);
    }
    for (a, b) in [("vriga", "vtartu"), ("vvilnius", "vkaunas2")] {
        tb.topology
            .wire(PortId::new(a, 0), PortId::new(b, 0))
            .expect("fresh ports");
        tb.topology
            .wire(PortId::new(b, 1), PortId::new(a, 1))
            .expect("fresh ports");
    }
    register_all(&mut tb);
    let root = std::env::temp_dir().join("pos-calendar-results");

    // Alice books the first pair for a long experiment, starting now.
    let now = tb.now();
    let alice_res = tb
        .calendar
        .reserve(
            "alice",
            &["vriga".into(), "vtartu".into()],
            now,
            SimDuration::from_hours(3),
        )
        .expect("free testbed");
    println!(
        "alice reserved vriga+vtartu for 3h (reservation {:?})",
        alice_res
    );

    // Bob tries to run the case study on the same nodes: the controller's
    // allocation is rejected by the calendar.
    let mut bob_spec = linux_router_experiment("vriga", "vtartu", 2, 1);
    bob_spec.user = "bob".into();
    match Controller::new(&mut tb).run_experiment(&bob_spec, &RunOptions::new(&root)) {
        Err(ControllerError::Allocation(e)) => {
            println!("bob on vriga+vtartu rejected: {e}");
        }
        other => panic!("expected an allocation conflict, got {other:?}"),
    }

    // The calendar tells Bob when the nodes free up...
    let slot = tb.calendar.find_free_slot(
        &["vriga".into(), "vtartu".into()],
        SimDuration::from_hours(1),
        tb.now(),
    );
    println!(
        "earliest 1h slot on vriga+vtartu: t+{}",
        slot - pos::simkernel::SimTime::ZERO
    );

    // ...but Bob can run *right now* on the other pair — multiple
    // independent experiments in parallel (§4.4).
    let mut bob_spec2 = linux_router_experiment("vvilnius", "vkaunas2", 2, 1);
    bob_spec2.user = "bob".into();
    let outcome = Controller::new(&mut tb)
        .run_experiment(&bob_spec2, &RunOptions::new(&root))
        .expect("disjoint nodes are free");
    println!(
        "bob ran on vvilnius+vkaunas2 instead: {}/{} runs ok",
        outcome.successes(),
        outcome.runs.len()
    );

    // Alice releases early; the slot reopens.
    tb.calendar.release(alice_res);
    let now = tb.now();
    assert!(tb
        .calendar
        .is_free("vriga", now, now + SimDuration::from_hours(1)));
    println!("alice released her reservation; vriga+vtartu are free again");
}
