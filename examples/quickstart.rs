//! Quickstart: the smallest complete pos experiment.
//!
//! Builds a two-host testbed (a load generator and a Linux-router DuT,
//! directly wired), defines a fully scripted experiment with one loop
//! variable, runs it through the pos controller, and reads the results
//! back through the evaluation API.
//!
//! Run with: `cargo run --example quickstart`

use pos::core::commands::register_all;
use pos::core::controller::{Controller, RunOptions};
use pos::core::experiment::{ExperimentSpec, RoleSpec};
use pos::core::script::Script;
use pos::core::vars::Variables;
use pos::eval::loader::ResultSet;
use pos::testbed::{HardwareSpec, InitInterface, PortId, Testbed};

fn main() {
    // ---------------------------------------------------------------- 1.
    // The testbed: two bare-metal hosts, two direct cables (R2), IPMI
    // power control (R3), everything seeded for repeatability.
    let mut tb = Testbed::new(42);
    tb.add_host("loadgen", HardwareSpec::paper_dut(), InitInterface::Ipmi);
    tb.add_host("dut", HardwareSpec::paper_dut(), InitInterface::Ipmi);
    tb.topology
        .wire(PortId::new("loadgen", 0), PortId::new("dut", 0))
        .expect("fresh ports");
    tb.topology
        .wire(PortId::new("dut", 1), PortId::new("loadgen", 1))
        .expect("fresh ports");
    register_all(&mut tb); // moongen + iperf commands

    // ---------------------------------------------------------------- 2.
    // The experiment: scripts (what to do) strictly separated from
    // variables (with which values) — the paper's HTML/CSS analogy.
    let mut dut = RoleSpec::new("dut", "dut");
    dut.setup = Script::parse(
        "ip link set $PORT0 up\n\
         ip link set $PORT1 up\n\
         sysctl -w net.ipv4.ip_forward=1\n\
         pos_sync setup_done\n",
    );
    dut.measurement = Script::parse("sleep 1\npos_sync run_done\n");
    dut.local_vars = Variables::new()
        .with("PORT0", "enp24s0f0")
        .with("PORT1", "enp24s0f1");

    let mut loadgen = RoleSpec::new("loadgen", "loadgen");
    loadgen.setup = Script::parse("pos_sync setup_done\n");
    loadgen.measurement =
        Script::parse("moongen --rate $pkt_rate --size 64 --time 1\npos_sync run_done\n");

    let mut spec = ExperimentSpec::new("quickstart", "alice")
        .with_role(loadgen)
        .with_role(dut);
    // One loop variable with three values = three measurement runs.
    spec.loop_vars = Variables::new().with("pkt_rate", vec![50_000i64, 100_000, 200_000]);

    // ---------------------------------------------------------------- 3.
    // Run it. The controller allocates via the calendar, live-boots both
    // hosts, runs the setup scripts in lockstep, then one measurement run
    // per loop-variable combination, capturing everything.
    let result_root = std::env::temp_dir().join("pos-quickstart-results");
    let outcome = Controller::new(&mut tb)
        .with_progress(|p| println!("  [progress] {p:?}"))
        .run_experiment(&spec, &RunOptions::new(&result_root))
        .expect("experiment runs");
    println!(
        "\nexperiment done: {}/{} runs ok, {} of virtual time, results in {}",
        outcome.successes(),
        outcome.runs.len(),
        outcome.finished - outcome.started,
        outcome.result_dir.display()
    );

    // ---------------------------------------------------------------- 4.
    // Evaluate: load the result tree, join metadata, extract a series.
    let set = ResultSet::load(&outcome.result_dir).expect("load results");
    println!("\n  rate [pps]   forwarded [Mpps]");
    for (x, y) in set.series("pkt_rate", |r| Some(r.report()?.rx_mpps())) {
        println!("  {x:>10}   {y:.4}");
    }
}
