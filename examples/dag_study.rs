//! The §5 / Appendix A case study restructured as an experiment DAG:
//!
//! ```text
//! [setup] --scatter--> [rate-sweep] ==gather==> [eval]
//! ```
//!
//! 1. **setup** — allocate the simulated bare-metal testbed, capture
//!    topology and host list.
//! 2. **rate-sweep** — the Linux-router forwarding sweep (packet sizes
//!    {64, 1500} B × a rate sweep) *scattered* across scheduler lanes;
//!    each scatter group leases its own replica set.
//! 3. **eval** — the gather barrier: consume every scatter
//!    result, aggregate, and render the throughput figure (SVG/TeX/CSV).
//!
//! The whole walk is journaled: kill it at any point and
//! `pos dag resume <dir>` fast-forwards digest-verified stages and
//! completes the rest, converging on the byte-identical tree.
//!
//! Run with: `cargo run --release --example dag_study`
//! Env: `POS_RATE_STEPS` (default 10), `POS_RUN_SECS` (default 1),
//!      `POS_DAG_LANES` (default 4), `POS_DAG_TARGET`
//!      (`in-process` | `sim-batch`, default `in-process`).

use pos::core::controller::RunOptions;
use pos::core::experiment::linux_router_experiment;
use pos::dag::{
    linux_router_dag, run_dag, viz, DagOptions, ExecutionTarget, InProcessTarget, SimBatchTarget,
};

const SEED: u64 = 0x707;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let rate_steps = env_usize("POS_RATE_STEPS", 10);
    let run_secs = env_usize("POS_RUN_SECS", 1) as u64;
    let lanes = env_usize("POS_DAG_LANES", 4).max(1);
    let batch = std::env::var("POS_DAG_TARGET").as_deref() == Ok("sim-batch");
    let root = std::env::temp_dir().join("pos-dag-study");
    let _ = std::fs::remove_dir_all(&root);

    let dag = linux_router_dag();
    let spec = linux_router_experiment("vriga", "vtartu", rate_steps, run_secs);

    // ------------------------------------------------------ the graph
    println!("{}", viz::render_ascii(&dag, Some(&spec)));

    // -------------------------------------------------- execute the DAG
    let mut target: Box<dyn ExecutionTarget> = if batch {
        Box::new(SimBatchTarget::new(SEED, false, lanes))
    } else {
        Box::new(InProcessTarget::new(SEED, false, lanes))
    };
    println!(
        "executing on the {} target with {lanes} lanes ({} runs per sweep)...",
        target.name(),
        2 * rate_steps
    );
    let out = run_dag(
        &dag,
        &spec,
        &RunOptions::new(&root),
        &DagOptions::new(lanes, SEED),
        target.as_mut(),
    )
    .expect("DAG executes");

    // ------------------------------------------------------- the report
    for node in &out.nodes {
        println!(
            "  [{}] {:<16} digest {}  virtual {:>7.1}s..{:<7.1}s",
            node.kind.label(),
            node.id,
            &node.digest[..12],
            node.started_ns as f64 / 1e9,
            node.finished_ns as f64 / 1e9,
        );
    }
    print!("{}", out.target.render());
    print!("{}", out.summary());
    println!("result tree: {}", out.dag_dir.display());
    println!(
        "figures: {}",
        out.dag_dir.join("stage-eval/figures").display()
    );
    println!(
        "resume after a crash with: pos dag resume {}",
        out.dag_dir.display()
    );
}
