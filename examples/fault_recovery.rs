//! Recoverability (R3) in action.
//!
//! Two demonstrations:
//!
//! 1. **Host recovery** — the DuT wedges in the middle of a measurement
//!    run (driver crash). The controller notices the dead connection,
//!    resets the host out of band via IPMI, reboots the live image (clean
//!    slate), replays the setup script, and retries the run. The
//!    experiment completes with every run successful.
//! 2. **Link faults** — a lossy cable (smoltcp-style fault injection)
//!    between generator and DuT; the measurement output shows exactly the
//!    injected loss, demonstrating that loss accounting works end to end.
//!
//! Run with: `cargo run --release --example fault_recovery`

use pos::core::commands::register_all;
use pos::core::controller::{Controller, Progress, RunOptions};
use pos::core::experiment::linux_router_experiment;
use pos::core::script::Script;
use pos::netsim::engine::{LinkConfig, NetSim, PortConfig};
use pos::netsim::fault::FaultConfig;
use pos::netsim::router::{LinuxRouter, RouteEntry, ServiceProfile};
use pos::netsim::sink::CountingSink;
use pos::packet::builder::UdpFrameSpec;
use pos::packet::MacAddr;
use pos::simkernel::{SimDuration, SimRng, SimTime};
use pos::testbed::{CommandResult, HardwareSpec, InitInterface, PortId, Testbed};
use std::cell::Cell;
use std::net::Ipv4Addr;
use std::rc::Rc;

fn main() {
    host_recovery_demo();
    link_fault_demo();
}

fn host_recovery_demo() {
    println!("== 1. host crash mid-experiment, out-of-band recovery ==");
    let mut tb = Testbed::new(99);
    tb.add_host("vriga", HardwareSpec::paper_dut(), InitInterface::Ipmi);
    tb.add_host("vtartu", HardwareSpec::paper_dut(), InitInterface::Ipmi);
    tb.topology
        .wire(PortId::new("vriga", 0), PortId::new("vtartu", 0))
        .expect("fresh ports");
    tb.topology
        .wire(PortId::new("vtartu", 1), PortId::new("vriga", 1))
        .expect("fresh ports");
    register_all(&mut tb);

    // A flaky driver probe: wedges the DuT on its second invocation.
    let calls = Rc::new(Cell::new(0u32));
    let counter = calls.clone();
    tb.register_command(
        "probe-driver",
        Rc::new(move |tb: &mut Testbed, host: &str, _argv: &[String]| {
            counter.set(counter.get() + 1);
            if counter.get() == 2 {
                tb.host_mut(host).expect("dut exists").inject_crash();
                CommandResult::fail(255, "connection reset by peer")
            } else {
                CommandResult::ok("driver ok")
            }
        }),
    );

    let mut spec = linux_router_experiment("vriga", "vtartu", 3, 1);
    spec.loop_vars =
        pos::core::vars::Variables::new().with("pkt_rate", vec![10_000i64, 20_000, 30_000]);
    // pkt_sz is no longer swept; the measurement script still uses it.
    spec.global_vars.set("pkt_sz", 64i64);
    // The DuT measurement script now pokes the flaky driver each run.
    spec.roles[1].measurement = Script::parse("probe-driver\nsleep $run_secs\npos_sync run_done\n");

    let root = std::env::temp_dir().join("pos-recovery-results");
    let outcome = Controller::new(&mut tb)
        .with_progress(|p| {
            if let Progress::RunDone {
                index,
                total,
                success,
                ..
            } = p
            {
                println!(
                    "  run {}/{} -> {}",
                    index + 1,
                    total,
                    if *success { "ok" } else { "FAILED" }
                );
            }
        })
        .run_experiment(&spec, &RunOptions::new(&root))
        .expect("experiment completes despite the crash");

    println!(
        "  all {} runs succeeded; {} out-of-band recoveries; DuT booted {} times",
        outcome.successes(),
        outcome.recoveries,
        tb.host("vtartu").expect("dut").boots
    );
    assert_eq!(outcome.successes(), 3);
    assert!(outcome.recoveries >= 1);
}

fn link_fault_demo() {
    println!("\n== 2. lossy cable: injected faults are visible in the results ==");
    for drop_chance in [0.0, 0.05, 0.15] {
        let mut sim = NetSim::new(7);
        let gen = sim.add_element(
            "moongen",
            Box::new(pos::loadgen::moongen::MoonGen::new(
                pos::loadgen::moongen::GeneratorConfig {
                    spec: UdpFrameSpec {
                        src_mac: MacAddr::testbed_host(1),
                        dst_mac: MacAddr::testbed_host(10),
                        src_ip: Ipv4Addr::new(10, 0, 0, 2),
                        dst_ip: Ipv4Addr::new(10, 0, 1, 2),
                        src_port: 1000,
                        dst_port: 2000,
                        ttl: 64,
                    },
                    size: pos::loadgen::moongen::SizeSpec::Fixed(64),
                    rate_pps: 100_000.0,
                    duration: SimDuration::from_secs(1),
                    flow_id: 1,
                    latency_sample_every: 16,
                    record_pcap_frames: 0,
                },
            )),
            &[PortConfig::ten_gbe(), PortConfig::ten_gbe()],
        );
        let mut router = LinuxRouter::new(
            ServiceProfile::bare_metal(),
            vec![MacAddr::testbed_host(10), MacAddr::testbed_host(11)],
            SimRng::new(7).derive("dut"),
        );
        router.add_route(RouteEntry {
            network: Ipv4Addr::new(10, 0, 1, 0),
            prefix_len: 24,
            port: 1,
            next_hop_mac: MacAddr::testbed_host(2),
        });
        let dut = sim.add_element(
            "dut",
            Box::new(router),
            &[PortConfig::ten_gbe(), PortConfig::ten_gbe()],
        );
        let fault = FaultConfig {
            drop_chance,
            ..FaultConfig::none()
        };
        sim.connect(
            (gen, 0),
            (dut, 0),
            LinkConfig::direct_cable().with_fault(fault),
        );
        sim.connect((dut, 1), (gen, 1), LinkConfig::direct_cable());

        // A counting sink is unnecessary — the generator's port 1 receives.
        let _unused = CountingSink::new();
        sim.run_until(SimTime::from_secs(2));
        let counters = sim.port_counters(gen, 0);
        let report = sim
            .element_as::<pos::loadgen::moongen::MoonGen>(gen)
            .expect("generator")
            .report(counters.tx_frames, counters.tx_bytes);
        let (link_drops, _) = sim.link_fault_stats(gen, 0).expect("wired");
        println!(
            "  drop_chance {:>4.0}% -> measured loss {:>6.2}%  (link injector dropped {})",
            drop_chance * 100.0,
            report.loss_fraction() * 100.0,
            link_drops
        );
    }
}
