//! A 15-node distributed experiment.
//!
//! §6: pos was used for *"distributed network experiments involving 15
//! nodes"* — a secure-multiparty-computation performance study [34]. This
//! example reproduces that *kind* of experiment: fifteen hosts run a
//! round-based secret-sharing protocol; the loop variable sweeps the
//! number of participating parties; every host runs the *same* scripts
//! (script/parameter separation at scale), synchronized by barriers.
//!
//! The protocol model: one MPC round costs a deterministic
//! `base + c·parties²` (all-to-all share exchange dominates), which is the
//! scaling shape the cited study reports.
//!
//! Run with: `cargo run --release --example distributed_experiment`

use pos::core::commands::register_all;
use pos::core::controller::{Controller, RunOptions};
use pos::core::experiment::{ExperimentSpec, RoleSpec};
use pos::core::script::Script;
use pos::core::vars::Variables;
use pos::eval::loader::ResultSet;
use pos::simkernel::SimDuration;
use pos::testbed::{CommandResult, HardwareSpec, InitInterface, Testbed};
use std::rc::Rc;

const NODES: usize = 15;

fn main() {
    // ---------------------------------------------------------- testbed
    let mut tb = Testbed::new(0x15);
    for i in 0..NODES {
        tb.add_host(
            format!("node{i:02}"),
            HardwareSpec::paper_dut(),
            InitInterface::Ipmi,
        );
    }
    register_all(&mut tb);

    // The MPC round command: a deterministic computation whose duration
    // scales quadratically with the number of parties (share exchange).
    tb.register_command(
        "mpc-round",
        Rc::new(|tb: &mut Testbed, host: &str, argv: &[String]| {
            let parties: usize = match argv.get(2).and_then(|v| v.parse().ok()) {
                Some(p) if argv.get(1).map(String::as_str) == Some("--parties") => p,
                _ => return CommandResult::fail(2, "usage: mpc-round --parties N"),
            };
            // Host indices ≥ parties sit this round out.
            let index: usize = host
                .strip_prefix("node")
                .and_then(|n| n.parse().ok())
                .unwrap_or(usize::MAX);
            if index >= parties {
                return CommandResult::ok("idle");
            }
            // base 50 ms + 2 ms · parties² of exchange/computation, with a
            // small deterministic per-host skew.
            let skew_us = (tb.derive_rng(host).uniform_u64(5_000)) as f64;
            let ms = 50.0 + 2.0 * (parties * parties) as f64;
            let duration = SimDuration::from_secs_f64(ms / 1e3 + skew_us / 1e6);
            CommandResult::ok(format!(
                "round complete in {:.3} ms",
                duration.as_secs_f64() * 1e3
            ))
            .with_duration(duration)
        }),
    );

    // ------------------------------------------------------- experiment
    // One role per node, all running the *same* scripts — only the local
    // variables (here: none needed) would differ.
    let setup = Script::parse("hostname $role_name\npos_sync setup_done\n");
    let measurement = Script::parse("mpc-round --parties $parties\npos_sync round_done\n");
    let mut spec = ExperimentSpec::new("mpc-scaling", "researcher");
    for i in 0..NODES {
        let mut role = RoleSpec::new(format!("party{i:02}"), format!("node{i:02}"));
        role.setup = setup.clone();
        role.measurement = measurement.clone();
        role.local_vars = Variables::new().with("role_name", format!("party{i:02}"));
        spec.roles.push(role);
    }
    spec.loop_vars = Variables::new().with("parties", vec![3i64, 7, 11, 15]);
    spec.validate().expect("valid 15-node experiment");

    // -------------------------------------------------------------- run
    let root = std::env::temp_dir().join("pos-mpc-results");
    let outcome = Controller::new(&mut tb)
        .run_experiment(&spec, &RunOptions::new(&root))
        .expect("experiment runs");
    println!(
        "{} nodes, {} runs, {} virtual time (boots dominate)",
        NODES,
        outcome.runs.len(),
        outcome.finished - outcome.started
    );

    // ------------------------------------------------------- evaluation
    // Round time per party count, from the run metadata (barrier-aligned:
    // the run takes as long as the slowest party).
    let set = ResultSet::load(&outcome.result_dir).expect("loadable");
    println!("\n  parties   round time [ms]   (model: 50 + 2·n²)");
    for run in &set.runs {
        let parties = run.param("parties").unwrap();
        let ms = (run.metadata.finished_ns - run.metadata.started_ns) as f64 / 1e6;
        let n: f64 = parties.parse().unwrap();
        println!(
            "  {parties:>7}   {ms:>15.1}   (expected ≈{:.0})",
            50.0 + 2.0 * n * n
        );
    }

    // Quadratic scaling sanity check: 15 parties vs 3 parties.
    let time_of = |p: &str| {
        set.runs
            .iter()
            .find(|r| r.param("parties") == Some(p))
            .map(|r| (r.metadata.finished_ns - r.metadata.started_ns) as f64)
            .expect("run exists")
    };
    let ratio = time_of("15") / time_of("3");
    println!("\n15-party / 3-party round time ratio: {ratio:.1} (communication-bound scaling)");
    assert!(ratio > 3.0, "quadratic term must dominate");
}
