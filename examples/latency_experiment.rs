//! Latency distributions: pos (bare metal) vs. vpos (KVM), rendered with
//! the evaluation toolbox's distribution plots (CDF, HDR, violin,
//! histogram) — the "latency distributions out-of-the-box" of §4.4.
//!
//! Note the Appendix-A caveat: *"in our VM, we cannot generate latency
//! measurements, due to the limited hardware support"* — true for the real
//! vpos, but our simulated virtio ports timestamp happily, so this example
//! shows what the hardware testbed measures *and* what the VM would.
//!
//! Run with: `cargo run --release --example latency_experiment`

use pos::eval::hdr::HdrHistogram;
use pos::eval::plot::PlotSpec;
use pos::eval::stats::Summary;
use pos::loadgen::scenario::{run_forwarding_experiment, ForwardingScenario, Platform};
use pos::simkernel::SimDuration;

fn main() {
    let out_dir = std::env::temp_dir().join("pos-latency-figures");
    std::fs::create_dir_all(&out_dir).expect("mkdir figures");

    // One measurement per platform, comfortably below saturation so the
    // distribution reflects forwarding latency rather than queueing.
    let mut samples: Vec<(&str, Vec<f64>)> = Vec::new();
    for (platform, rate) in [(Platform::Pos, 200_000.0), (Platform::Vpos, 10_000.0)] {
        let scenario = ForwardingScenario {
            duration: SimDuration::from_secs(2),
            latency_sample_every: 4,
            ..ForwardingScenario::new(platform, 64, rate)
        };
        let result = run_forwarding_experiment(&scenario);
        let lat: Vec<f64> = result
            .report
            .latency_samples_ns
            .iter()
            .map(|&v| v as f64)
            .collect();
        println!(
            "{}: {} samples at {} kpps offered",
            platform.name(),
            lat.len(),
            rate / 1e3
        );
        let s = Summary::of(&lat).expect("non-empty samples");
        println!(
            "  mean {:>10.0} ns   p50 {:>10.0}   p99 {:>10.0}   p99.9 {:>10.0}   max {:>10.0}",
            s.mean,
            s.percentile(50.0),
            s.percentile(99.0),
            s.percentile(99.9),
            s.max
        );
        let mut hdr = HdrHistogram::new(3_600_000_000_000, 3);
        for &v in &result.report.latency_samples_ns {
            hdr.record(v);
        }
        println!("  HDR percentile series:");
        for (p, v) in hdr.percentile_series() {
            println!("    p{p:<6} {v:>12} ns");
        }
        samples.push((platform.name(), lat));
    }

    // The four distribution representations, exported in all formats.
    let mut plots = vec![
        ("latency_cdf", {
            let mut p = PlotSpec::cdf("Forwarding latency CDF", "latency [ns]");
            for (name, s) in &samples {
                p = p.with_samples(*name, s.clone());
            }
            p
        }),
        ("latency_hdr", {
            let mut p = PlotSpec::hdr("Forwarding latency by percentile", "latency [ns]");
            for (name, s) in &samples {
                p = p.with_samples(*name, s.clone());
            }
            p
        }),
        ("latency_violin", {
            let mut p = PlotSpec::violin("Forwarding latency distribution", "latency [ns]");
            for (name, s) in &samples {
                p = p.with_samples(*name, s.clone());
            }
            p
        }),
    ];
    // Histograms are per platform (the scales differ by ~40x).
    for (name, s) in &samples {
        plots.push((
            match *name {
                "pos" => "latency_hist_pos",
                _ => "latency_hist_vpos",
            },
            PlotSpec::histogram(&format!("Latency histogram ({name})"), "latency [ns]", 40)
                .with_samples(*name, s.clone()),
        ));
    }
    for (stem, plot) in plots {
        std::fs::write(out_dir.join(format!("{stem}.svg")), plot.render_svg()).expect("svg");
        std::fs::write(out_dir.join(format!("{stem}.tex")), plot.render_tex()).expect("tex");
        std::fs::write(out_dir.join(format!("{stem}.csv")), plot.render_csv()).expect("csv");
    }
    println!("\nfigures written to {}", out_dir.display());
}
