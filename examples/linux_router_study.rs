//! The complete §5 / Appendix A case study, end to end:
//!
//! 1. **Setup + measurement phases** — the Linux-router forwarding
//!    experiment (packet sizes {64, 1500} B × a rate sweep) through the
//!    full pos workflow on the simulated hardware testbed.
//! 2. **Evaluation phase** — parse the MoonGen outputs, build the
//!    throughput figure, export SVG/TeX/CSV.
//! 3. **Publication phase** — bundle scripts, variables, results, figures
//!    and the generated website into a release directory plus a tar
//!    archive, with a hashed manifest.
//!
//! Run with: `cargo run --release --example linux_router_study`
//! Env: `POS_RATE_STEPS` (default 10), `POS_RUN_SECS` (default 1).

use pos::eval::loader::ResultSet;
use pos::eval::plot::PlotSpec;
use pos::publish::bundle::Bundle;
use pos::publish::website::{attach_site, SiteInfo};

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let rate_steps = env_usize("POS_RATE_STEPS", 10);
    let run_secs = env_usize("POS_RUN_SECS", 1) as u64;
    let root = std::env::temp_dir().join("pos-router-study");

    // ------------------------------------------------- experiment phases
    println!("running the case study ({rate_steps} rates x 2 sizes, {run_secs}s runs)...");
    let outcome = pos_bench_case_study(&root, rate_steps, run_secs);
    println!(
        "  {} runs, {} ok, {} virtual time",
        outcome.runs.len(),
        outcome.successes(),
        outcome.finished - outcome.started
    );

    // --------------------------------------------------- evaluation phase
    let set = ResultSet::load(&outcome.result_dir).expect("load result tree");
    let mut plot = PlotSpec::line(
        "Linux router forwarding (pos, bare metal)",
        "offered rate [Mpps]",
        "forwarded rate [Mpps]",
    );
    for (size, group) in set.group_by("pkt_sz") {
        let series = group.series("pkt_rate", |r| {
            let rep = r.report()?;
            Some(rep.rx_mpps())
        });
        let series: Vec<(f64, f64)> = series.into_iter().map(|(x, y)| (x / 1e6, y)).collect();
        println!("  pkt_sz={size}: {} points", series.len());
        plot = plot.with_series(format!("{size} B"), series);
    }
    let figures_dir = outcome.result_dir.join("figures");
    std::fs::create_dir_all(&figures_dir).expect("mkdir figures");
    std::fs::write(figures_dir.join("throughput.svg"), plot.render_svg()).expect("svg");
    std::fs::write(figures_dir.join("throughput.tex"), plot.render_tex()).expect("tex");
    std::fs::write(figures_dir.join("throughput.csv"), plot.render_csv()).expect("csv");
    println!("  figures written to {}", figures_dir.display());

    // -------------------------------------------------- publication phase
    let mut bundle = Bundle::new("linux-router-forwarding");
    let n = bundle
        .add_tree(&outcome.result_dir, "")
        .expect("collect artifacts");
    attach_site(
        &mut bundle,
        &SiteInfo {
            title: "pos case study: Linux router forwarding performance".into(),
            description: "Throughput of a Linux software router for 64 B and 1500 B packets, \
                          measured with a MoonGen-style load generator through the pos \
                          experiment workflow. All scripts, parameters, per-run results and \
                          metadata are included."
                .into(),
            repo_url: "https://example.org/pos-artifacts".into(),
        },
    );
    let release_dir = std::env::temp_dir().join("pos-router-study-release");
    let _ = std::fs::remove_dir_all(&release_dir);
    let manifest = bundle.write_dir(&release_dir).expect("write release");
    let tar_path = release_dir.join("pos-artifacts.tar");
    let mut tar = Vec::new();
    bundle.write_tar(&mut tar).expect("write tar");
    std::fs::write(&tar_path, &tar).expect("store tar");
    println!(
        "\npublished {} artifacts ({} files from the result tree) to {}",
        manifest.files.len(),
        n,
        release_dir.display()
    );
    println!("  archive: {} ({} bytes)", tar_path.display(), tar.len());
    println!(
        "  open {}/index.html for the artifact website",
        release_dir.display()
    );
}

/// Thin wrapper so the example does not depend on the bench crate.
fn pos_bench_case_study(
    root: &std::path::Path,
    rate_steps: usize,
    run_secs: u64,
) -> pos::core::controller::ExperimentOutcome {
    use pos::core::commands::register_all;
    use pos::core::controller::{Controller, RunOptions};
    use pos::core::experiment::linux_router_experiment;
    use pos::testbed::{HardwareSpec, InitInterface, PortId, Testbed};

    let mut tb = Testbed::new(0x705);
    tb.add_host("vriga", HardwareSpec::paper_dut(), InitInterface::Ipmi);
    tb.add_host("vtartu", HardwareSpec::paper_dut(), InitInterface::Ipmi);
    tb.topology
        .wire(PortId::new("vriga", 0), PortId::new("vtartu", 0))
        .expect("fresh ports");
    tb.topology
        .wire(PortId::new("vtartu", 1), PortId::new("vriga", 1))
        .expect("fresh ports");
    register_all(&mut tb);
    let spec = linux_router_experiment("vriga", "vtartu", rate_steps, run_secs);
    Controller::new(&mut tb)
        .run_experiment(&spec, &RunOptions::new(root))
        .expect("case study experiment")
}
