//! Link fault injection.
//!
//! Real testbed links misbehave; a reproducible testbed must be able to
//! misbehave *on demand*. The knobs mirror the smoltcp example fault
//! injector: random drop, random corruption, a size limit, and a token
//! bucket rate limiter. The pos case study runs with faults disabled; the
//! recoverability tests and the `fault_recovery` example switch them on.

use pos_simkernel::{SimDuration, SimRng, SimTime};
use serde::{Deserialize, Serialize};

/// Configuration of a link's fault injector.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Probability in `[0, 1]` that a frame is silently dropped.
    pub drop_chance: f64,
    /// Probability in `[0, 1]` that a frame is corrupted in flight. The
    /// receiving NIC detects the broken FCS and discards the frame,
    /// counting an rx error.
    pub corrupt_chance: f64,
    /// Frames with a wire size above this limit are dropped (0 = no limit).
    pub size_limit: usize,
    /// Token bucket size in frames (0 = no rate limit).
    pub rate_limit_tokens: u32,
    /// Token bucket refill interval.
    pub shaping_interval: SimDuration,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig::none()
    }
}

impl FaultConfig {
    /// A fault-free link.
    pub fn none() -> FaultConfig {
        FaultConfig {
            drop_chance: 0.0,
            corrupt_chance: 0.0,
            size_limit: 0,
            rate_limit_tokens: 0,
            shaping_interval: SimDuration::from_millis(50),
        }
    }

    /// True when every fault mechanism is disabled.
    pub fn is_none(&self) -> bool {
        self.drop_chance <= 0.0
            && self.corrupt_chance <= 0.0
            && self.size_limit == 0
            && self.rate_limit_tokens == 0
    }

    /// Checks the configuration for values that would silently misbehave at
    /// runtime: NaN or out-of-`[0, 1]` probabilities, or a rate limiter with
    /// a zero refill interval (its bucket would never refill).
    ///
    /// Call this on every deserialized `FaultConfig` before handing it to a
    /// simulation — serde accepts any `f64`, including `NaN` and `7.3`.
    pub fn validate(&self) -> Result<(), FaultConfigError> {
        for (field, p) in [
            ("drop_chance", self.drop_chance),
            ("corrupt_chance", self.corrupt_chance),
        ] {
            if p.is_nan() {
                return Err(FaultConfigError {
                    field,
                    reason: "probability is NaN".to_owned(),
                });
            }
            if !(0.0..=1.0).contains(&p) {
                return Err(FaultConfigError {
                    field,
                    reason: format!("probability {p} outside [0, 1]"),
                });
            }
        }
        if self.rate_limit_tokens > 0 && self.shaping_interval == SimDuration::ZERO {
            return Err(FaultConfigError {
                field: "shaping_interval",
                reason: "rate limiting enabled with a zero refill interval".to_owned(),
            });
        }
        Ok(())
    }
}

/// A [`FaultConfig`] field that failed validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultConfigError {
    /// Name of the offending field.
    pub field: &'static str,
    /// What is wrong with it.
    pub reason: String,
}

impl core::fmt::Display for FaultConfigError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "invalid fault config: {}: {}", self.field, self.reason)
    }
}

impl std::error::Error for FaultConfigError {}

/// What happened to a frame passing through the injector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultOutcome {
    /// Delivered unharmed.
    Deliver,
    /// Silently lost in flight.
    Dropped,
    /// Delivered but corrupted; the receiver's FCS check will discard it.
    Corrupted,
}

/// Runtime state of a link's fault injector.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    config: FaultConfig,
    tokens: u32,
    bucket_refilled_at: SimTime,
    /// Frames dropped by the injector (drop chance + size + rate limit).
    pub dropped: u64,
    /// Frames corrupted by the injector.
    pub corrupted: u64,
}

impl FaultInjector {
    /// Creates an injector for the given configuration.
    pub fn new(config: FaultConfig) -> FaultInjector {
        debug_assert!(
            config.validate().is_ok(),
            "FaultInjector built from invalid config: {:?}",
            config.validate()
        );
        FaultInjector {
            tokens: config.rate_limit_tokens,
            bucket_refilled_at: SimTime::ZERO,
            config,
            dropped: 0,
            corrupted: 0,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// Decides the fate of a frame of `wire_size` bytes crossing the link
    /// at time `now`.
    pub fn apply(&mut self, now: SimTime, wire_size: usize, rng: &mut SimRng) -> FaultOutcome {
        if self.config.is_none() {
            return FaultOutcome::Deliver;
        }
        if self.config.size_limit > 0 && wire_size > self.config.size_limit {
            self.dropped += 1;
            return FaultOutcome::Dropped;
        }
        if self.config.rate_limit_tokens > 0 {
            // Refill the bucket for every full interval that elapsed.
            let interval = self.config.shaping_interval;
            if interval > SimDuration::ZERO {
                let elapsed = now.saturating_duration_since(self.bucket_refilled_at);
                let periods = elapsed.as_nanos() / interval.as_nanos().max(1);
                if periods > 0 {
                    self.tokens = self.config.rate_limit_tokens;
                    self.bucket_refilled_at +=
                        SimDuration::from_nanos(periods * interval.as_nanos());
                }
            }
            if self.tokens == 0 {
                self.dropped += 1;
                return FaultOutcome::Dropped;
            }
            self.tokens -= 1;
        }
        if rng.chance(self.config.drop_chance) {
            self.dropped += 1;
            return FaultOutcome::Dropped;
        }
        if rng.chance(self.config.corrupt_chance) {
            self.corrupted += 1;
            return FaultOutcome::Corrupted;
        }
        FaultOutcome::Deliver
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SimRng {
        SimRng::new(1234)
    }

    #[test]
    fn no_faults_always_delivers() {
        let mut inj = FaultInjector::new(FaultConfig::none());
        let mut r = rng();
        for i in 0..1_000 {
            assert_eq!(
                inj.apply(SimTime::from_nanos(i), 1518, &mut r),
                FaultOutcome::Deliver
            );
        }
        assert_eq!(inj.dropped, 0);
        assert_eq!(inj.corrupted, 0);
    }

    #[test]
    fn drop_chance_statistics() {
        let mut cfg = FaultConfig::none();
        cfg.drop_chance = 0.15; // the smoltcp-recommended starting value
        let mut inj = FaultInjector::new(cfg);
        let mut r = rng();
        let n = 100_000;
        for i in 0..n {
            inj.apply(SimTime::from_nanos(i), 64, &mut r);
        }
        let rate = inj.dropped as f64 / n as f64;
        assert!((rate - 0.15).abs() < 0.01, "drop rate {rate} far from 0.15");
    }

    #[test]
    fn corrupt_chance_statistics() {
        let mut cfg = FaultConfig::none();
        cfg.corrupt_chance = 0.15;
        let mut inj = FaultInjector::new(cfg);
        let mut r = rng();
        let n = 100_000;
        for i in 0..n {
            inj.apply(SimTime::from_nanos(i), 64, &mut r);
        }
        let rate = inj.corrupted as f64 / n as f64;
        assert!((rate - 0.15).abs() < 0.01);
    }

    #[test]
    fn size_limit_drops_large_frames_only() {
        let mut cfg = FaultConfig::none();
        cfg.size_limit = 1000;
        let mut inj = FaultInjector::new(cfg);
        let mut r = rng();
        assert_eq!(inj.apply(SimTime::ZERO, 64, &mut r), FaultOutcome::Deliver);
        assert_eq!(
            inj.apply(SimTime::ZERO, 1518, &mut r),
            FaultOutcome::Dropped
        );
        assert_eq!(inj.dropped, 1);
    }

    #[test]
    fn token_bucket_limits_per_interval() {
        let mut cfg = FaultConfig::none();
        cfg.rate_limit_tokens = 4;
        cfg.shaping_interval = SimDuration::from_millis(50);
        let mut inj = FaultInjector::new(cfg);
        let mut r = rng();
        // 10 frames in the first interval: 4 pass, 6 dropped.
        let mut delivered = 0;
        for i in 0..10 {
            if inj.apply(SimTime::from_micros(i), 64, &mut r) == FaultOutcome::Deliver {
                delivered += 1;
            }
        }
        assert_eq!(delivered, 4);
        // Next interval refills the bucket.
        assert_eq!(
            inj.apply(SimTime::from_millis(51), 64, &mut r),
            FaultOutcome::Deliver
        );
    }

    #[test]
    fn bucket_refill_is_aligned_to_intervals() {
        let mut cfg = FaultConfig::none();
        cfg.rate_limit_tokens = 1;
        cfg.shaping_interval = SimDuration::from_millis(10);
        let mut inj = FaultInjector::new(cfg);
        let mut r = rng();
        assert_eq!(inj.apply(SimTime::ZERO, 64, &mut r), FaultOutcome::Deliver);
        assert_eq!(
            inj.apply(SimTime::from_millis(9), 64, &mut r),
            FaultOutcome::Dropped
        );
        assert_eq!(
            inj.apply(SimTime::from_millis(10), 64, &mut r),
            FaultOutcome::Deliver
        );
        // Two intervals later, still only one token per interval.
        assert_eq!(
            inj.apply(SimTime::from_millis(30), 64, &mut r),
            FaultOutcome::Deliver
        );
        assert_eq!(
            inj.apply(SimTime::from_millis(31), 64, &mut r),
            FaultOutcome::Dropped
        );
    }

    #[test]
    fn is_none_detection() {
        assert!(FaultConfig::none().is_none());
        let mut cfg = FaultConfig::none();
        cfg.drop_chance = 0.01;
        assert!(!cfg.is_none());
    }

    #[test]
    fn validate_accepts_sane_configs() {
        assert!(FaultConfig::none().validate().is_ok());
        let mut cfg = FaultConfig::none();
        cfg.drop_chance = 1.0;
        cfg.corrupt_chance = 0.0;
        cfg.rate_limit_tokens = 8;
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn validate_rejects_nan_and_out_of_range() {
        let mut cfg = FaultConfig::none();
        cfg.drop_chance = f64::NAN;
        let err = cfg.validate().unwrap_err();
        assert_eq!(err.field, "drop_chance");
        assert!(err.to_string().contains("NaN"));

        let mut cfg = FaultConfig::none();
        cfg.corrupt_chance = 1.5;
        assert_eq!(cfg.validate().unwrap_err().field, "corrupt_chance");

        let mut cfg = FaultConfig::none();
        cfg.drop_chance = -0.1;
        assert_eq!(cfg.validate().unwrap_err().field, "drop_chance");
    }

    #[test]
    fn validate_rejects_zero_interval_rate_limit() {
        let mut cfg = FaultConfig::none();
        cfg.rate_limit_tokens = 4;
        cfg.shaping_interval = SimDuration::ZERO;
        assert_eq!(cfg.validate().unwrap_err().field, "shaping_interval");
    }

    #[test]
    fn deserialized_config_is_validated_before_use() {
        // serde happily produces a config with a NaN-free but out-of-range
        // probability; validate() is the gate that rejects it.
        let json = r#"{"drop_chance":2.0,"corrupt_chance":0.0,"size_limit":0,
                       "rate_limit_tokens":0,"shaping_interval":50000000}"#;
        let cfg: FaultConfig = serde_json::from_str(json).unwrap();
        assert!(cfg.validate().is_err());
    }
}
