//! The Linux software router — the paper's device under test.
//!
//! § 5 of the paper measures a Linux kernel router forwarding UDP traffic
//! between two ports, on bare metal and inside a KVM virtual machine. We
//! model the router as a single-server queue in front of the egress NIC:
//!
//! * **Ingress**: frames enter a bounded input queue (the driver's RX
//!   descriptor ring). A full ring tail-drops — exactly how an overloaded
//!   Linux router loses packets.
//! * **Service**: each packet costs `base_ns + per_byte_ns · len` of CPU
//!   time with multiplicative jitter. The *virtualized* profile adds a
//!   hypervisor preemption process: the vCPU is periodically descheduled,
//!   stalling all service — the source of the wild throughput variance
//!   above saturation that Fig. 3b shows.
//! * **Forwarding**: the IPv4 TTL is decremented and the checksum rebuilt
//!   (a packet whose TTL expires is dropped), the route table picks the
//!   egress port, and Ethernet addresses are rewritten.
//!
//! Calibration targets, from Fig. 3a/3b of the paper:
//!
//! | profile | saturation 64 B | saturation 1500 B | limit |
//! |---|---|---|---|
//! | bare metal | ≈ 1.75 Mpps | ≈ 0.8 Mpps | CPU for 64 B, 10 G line for 1500 B |
//! | virtualized | ≈ 0.04 Mpps | ≈ 0.04 Mpps | vCPU, packet-size independent |

use crate::engine::{Element, SimCtx};
use pos_packet::arp::ArpPacket;
use pos_packet::builder::Frame;
use pos_packet::ethernet::{EtherType, EthernetHeader};
use pos_packet::icmp::IcmpMessage;
use pos_packet::ipv4::{Ipv4Header, Protocol};
use pos_packet::MacAddr;
use pos_simkernel::{SimDuration, SimRng, SimTime, TraceLevel};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::net::Ipv4Addr;

/// Timer token for "service of the head-of-line packet completed".
const TOKEN_SERVICE_DONE: u64 = 1;
/// Timer token for "hypervisor preemption ended, resume the vCPU".
const TOKEN_PREEMPTION_END: u64 = 2;
/// Timer token for "schedule the next hypervisor preemption".
const TOKEN_PREEMPTION_BEGIN: u64 = 3;

/// Hypervisor preemption model for the virtualized profile: the vCPU runs
/// for an exponentially distributed period, then is descheduled for an
/// exponentially distributed pause.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PreemptionModel {
    /// Mean uninterrupted vCPU run period.
    pub period_mean: SimDuration,
    /// Mean pause while other host work runs.
    pub pause_mean: SimDuration,
}

impl PreemptionModel {
    /// Fraction of CPU time stolen by the hypervisor.
    pub fn stolen_fraction(&self) -> f64 {
        let p = self.pause_mean.as_secs_f64();
        let r = self.period_mean.as_secs_f64();
        p / (p + r)
    }
}

/// Per-packet service cost model of a software forwarding path.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServiceProfile {
    /// Human-readable profile name (appears in captured hardware info).
    pub name: &'static str,
    /// Fixed per-packet cost in nanoseconds.
    pub base_ns: f64,
    /// Additional cost per frame byte in nanoseconds (memory copies).
    pub per_byte_ns: f64,
    /// Multiplicative lognormal jitter: sigma of `ln` service time.
    pub jitter_sigma: f64,
    /// RX descriptor ring capacity in frames.
    pub ring_size: usize,
    /// Hypervisor preemption, present only for VM profiles.
    pub preemption: Option<PreemptionModel>,
}

impl ServiceProfile {
    /// The paper's bare-metal DuT: Debian Buster, kernel 4.19, on two Xeon
    /// Silver 4214 CPUs. Single-flow forwarding saturates around 1.75 Mpps
    /// for 64 B frames; 1500 B frames hit the 10 Gbit/s NIC first.
    pub fn bare_metal() -> ServiceProfile {
        ServiceProfile {
            name: "linux-router/bare-metal",
            base_ns: 556.0,
            per_byte_ns: 0.25,
            jitter_sigma: 0.06,
            ring_size: 512,
            preemption: None,
        }
    }

    /// The paper's virtualized DuT: the same Linux router inside a KVM
    /// guest, NICs emulated through virtio + Linux bridges, vCPU pinned but
    /// still sharing the host with the hypervisor. Saturates around
    /// 0.04 Mpps regardless of packet size, and becomes unstable beyond.
    pub fn virtualized() -> ServiceProfile {
        ServiceProfile {
            name: "linux-router/kvm-guest",
            base_ns: 19_000.0,
            per_byte_ns: 0.65,
            jitter_sigma: 0.35,
            ring_size: 256,
            preemption: Some(PreemptionModel {
                period_mean: SimDuration::from_micros(2_000),
                pause_mean: SimDuration::from_micros(500),
            }),
        }
    }

    /// Mean service time for a frame of `len` bytes (without FCS).
    pub fn mean_service_ns(&self, len: usize) -> f64 {
        self.base_ns + self.per_byte_ns * len as f64
    }

    /// The drop-free forwarding limit in packets per second for frames of
    /// `len` bytes (without FCS), accounting for stolen CPU time.
    pub fn saturation_pps(&self, len: usize) -> f64 {
        let available = match &self.preemption {
            Some(p) => 1.0 - p.stolen_fraction(),
            None => 1.0,
        };
        available / (self.mean_service_ns(len) * 1e-9)
    }

    /// Samples one service time.
    fn sample_service(&self, len: usize, rng: &mut SimRng) -> SimDuration {
        let mean = self.mean_service_ns(len);
        let t = if self.jitter_sigma > 0.0 {
            // Lognormal with unit mean: exp(N(-sigma^2/2, sigma)).
            let mu = -self.jitter_sigma * self.jitter_sigma / 2.0;
            mean * rng.lognormal(mu, self.jitter_sigma)
        } else {
            mean
        };
        // `t` is already in nanoseconds; rounding directly avoids the
        // secs round-trip (an `as u64` cast saturates degenerate inputs
        // to zero, matching `from_secs_f64`'s clamp).
        SimDuration::from_nanos(t.round() as u64)
    }
}

/// One entry in the router's forwarding table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouteEntry {
    /// Destination network address.
    pub network: Ipv4Addr,
    /// Prefix length in bits.
    pub prefix_len: u8,
    /// Egress port for matching packets.
    pub port: usize,
    /// Next-hop MAC address (resolved ARP entry).
    pub next_hop_mac: MacAddr,
}

impl RouteEntry {
    /// True if `addr` falls inside this route's prefix.
    pub fn matches(&self, addr: Ipv4Addr) -> bool {
        if self.prefix_len == 0 {
            return true;
        }
        if self.prefix_len > 32 {
            return false;
        }
        let mask = u32::MAX << (32 - u32::from(self.prefix_len));
        (u32::from(addr) & mask) == (u32::from(self.network) & mask)
    }
}

/// Forwarding statistics of a router.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RouterStats {
    /// Packets forwarded to an egress port.
    pub forwarded: u64,
    /// Packets dropped because the input ring was full.
    pub ring_drops: u64,
    /// Packets dropped because no route matched.
    pub no_route: u64,
    /// Packets dropped due to TTL expiry.
    pub ttl_expired: u64,
    /// Frames that were not well-formed IPv4 (parse failures).
    pub malformed: u64,
    /// Echo requests answered (the router's own IPs are pingable).
    pub echo_replied: u64,
    /// ARP who-has requests answered for the router's own addresses.
    pub arp_replied: u64,
    /// ICMP time-exceeded messages generated for expired TTLs.
    pub time_exceeded_sent: u64,
    /// Total nanoseconds the vCPU spent preempted (virtualized profile).
    pub preempted_ns: u64,
}

/// The Linux router element.
pub struct LinuxRouter {
    profile: ServiceProfile,
    routes: Vec<RouteEntry>,
    port_macs: Vec<MacAddr>,
    /// Per-port IP addresses; set them to make the router answer pings
    /// and emit ICMP time-exceeded (a Linux router does both).
    port_ips: Vec<Ipv4Addr>,
    ring: VecDeque<(usize, Frame)>,
    serving: bool,
    preempted: bool,
    /// Set while preempted: a service completion that fired during the
    /// pause is deferred until the vCPU resumes.
    deferred_completion: bool,
    /// Whether the service timeline is folded into arrival processing
    /// (no per-packet service timer). Decided on the first frame: only
    /// profiles without preemption, and only when every egress port
    /// supports future-dated cut-through transmission. `None` until then.
    folded: Option<bool>,
    /// Folded mode: completion instants of packets accepted but not yet
    /// fully serviced. Entries at or before the current instant are
    /// drained lazily; the length is the ring occupancy for tail-drop.
    completions: VecDeque<SimTime>,
    /// Folded mode: completion instant of the most recently accepted
    /// packet — the earliest time the next service can start.
    last_completion: SimTime,
    /// Folded mode: while processing a packet, the instant its outputs
    /// must leave the router (its service completion).
    tx_at: Option<SimTime>,
    rng: SimRng,
    /// Observable statistics.
    pub stats: RouterStats,
}

impl LinuxRouter {
    /// Creates a router with the given service profile and per-port MAC
    /// addresses (`port_macs[i]` is the MAC of port `i`).
    pub fn new(profile: ServiceProfile, port_macs: Vec<MacAddr>, rng: SimRng) -> LinuxRouter {
        LinuxRouter {
            profile,
            routes: Vec::new(),
            port_macs,
            port_ips: Vec::new(),
            ring: VecDeque::new(),
            serving: false,
            preempted: false,
            deferred_completion: false,
            folded: None,
            completions: VecDeque::new(),
            last_completion: SimTime::ZERO,
            tx_at: None,
            rng,
            stats: RouterStats::default(),
        }
    }

    /// Adds a forwarding table entry. Longest prefix wins; ties go to the
    /// earlier entry.
    pub fn add_route(&mut self, entry: RouteEntry) {
        self.routes.push(entry);
    }

    /// Assigns the router's own per-port IP addresses (`port_ips[i]` is
    /// port `i`'s address). With addresses configured, the router answers
    /// echo requests to them and reports TTL expiry with ICMP time
    /// exceeded, like the Linux kernel does.
    pub fn set_port_ips(&mut self, ips: Vec<Ipv4Addr>) {
        self.port_ips = ips;
    }

    /// The active service profile.
    pub fn profile(&self) -> &ServiceProfile {
        &self.profile
    }

    /// Transmits a frame produced by the forwarding path. In folded mode
    /// the frame leaves at the packet's service completion instant; in
    /// timer mode the caller already runs at that instant.
    fn emit(&self, port: usize, frame: Frame, ctx: &mut SimCtx<'_>) {
        match self.tx_at {
            Some(at) => ctx.transmit_at(port, frame, at),
            None => ctx.transmit(port, frame),
        };
    }

    fn lookup(&self, dst: Ipv4Addr) -> Option<RouteEntry> {
        self.routes
            .iter()
            .filter(|r| r.matches(dst))
            .max_by_key(|r| r.prefix_len)
            .copied()
    }

    fn begin_service(&mut self, ctx: &mut SimCtx<'_>) {
        if self.serving || self.preempted {
            return;
        }
        let Some((_, frame)) = self.ring.front() else {
            return;
        };
        let len = frame.bytes().len();
        self.serving = true;
        let service = self.profile.sample_service(len, &mut self.rng);
        ctx.set_timer(service, TOKEN_SERVICE_DONE);
    }

    fn finish_service(&mut self, ctx: &mut SimCtx<'_>) {
        self.serving = false;
        let Some((in_port, frame)) = self.ring.pop_front() else {
            return;
        };
        self.forward(in_port, frame, ctx);
        self.begin_service(ctx);
    }

    /// Emits an ICMP message from the router itself toward `dst`, routed
    /// through the forwarding table. Silently does nothing when the
    /// destination is unroutable or the source port has no address.
    fn send_icmp(
        &mut self,
        src_port_hint: usize,
        dst: Ipv4Addr,
        msg: IcmpMessage,
        ctx: &mut SimCtx<'_>,
    ) {
        let Some(route) = self.lookup(dst) else {
            return;
        };
        let src_ip = self
            .port_ips
            .get(src_port_hint)
            .or_else(|| self.port_ips.first())
            .copied();
        let Some(src_ip) = src_ip else {
            return;
        };
        let src_mac = self
            .port_macs
            .get(route.port)
            .copied()
            .unwrap_or(MacAddr::ZERO);
        let mut icmp_bytes = Vec::new();
        msg.emit(&mut icmp_bytes);
        let mut out = Vec::new();
        EthernetHeader {
            dst: route.next_hop_mac,
            src: src_mac,
            ethertype: EtherType::Ipv4,
        }
        .emit(&mut out);
        Ipv4Header::for_payload(src_ip, dst, Protocol::Icmp, 64, icmp_bytes.len()).emit(&mut out);
        out.extend_from_slice(&icmp_bytes);
        if out.len() < 60 {
            out.resize(60, 0); // Ethernet minimum frame padding
        }
        self.emit(route.port, Frame::from_bytes(out), ctx);
    }

    /// Answers a who-has for one of the router's addresses with is-at.
    fn handle_arp(&mut self, in_port: usize, rest: &[u8], ctx: &mut SimCtx<'_>) {
        let Ok(request) = ArpPacket::parse(rest) else {
            self.stats.malformed += 1;
            return;
        };
        if !self.port_ips.contains(&request.target_ip) {
            return; // not ours; a host never proxies ARP
        }
        let our_mac = self
            .port_macs
            .get(in_port)
            .copied()
            .unwrap_or(MacAddr::ZERO);
        let Some(reply) = request.reply_from(our_mac) else {
            return;
        };
        self.stats.arp_replied += 1;
        let mut out = Vec::new();
        EthernetHeader {
            dst: request.sender_mac,
            src: our_mac,
            ethertype: EtherType::Arp,
        }
        .emit(&mut out);
        reply.emit(&mut out);
        out.resize(out.len().max(60), 0);
        self.emit(in_port, Frame::from_bytes(out), ctx);
    }

    fn forward(&mut self, in_port: usize, frame: Frame, ctx: &mut SimCtx<'_>) {
        // Parse Ethernet + IPv4; rewrite TTL/checksum and MAC addresses.
        let (ip, ip_offset) = match EthernetHeader::parse(frame.bytes()) {
            Ok((eth, rest)) if eth.ethertype == EtherType::Ipv4 => match Ipv4Header::parse(rest) {
                Ok((ip, _)) => (ip, frame.bytes().len() - rest.len()),
                Err(_) => {
                    self.stats.malformed += 1;
                    return;
                }
            },
            Ok((eth, rest)) if eth.ethertype == EtherType::Arp => {
                self.handle_arp(in_port, rest, ctx);
                return;
            }
            _ => {
                self.stats.malformed += 1;
                return;
            }
        };
        // Traffic addressed to the router itself: answer pings.
        if self.port_ips.contains(&ip.dst) {
            if ip.protocol == Protocol::Icmp {
                let icmp_off = ip_offset + pos_packet::ipv4::HEADER_LEN;
                let icmp_end = ip_offset + usize::from(ip.total_len);
                if let Some(icmp_data) = frame
                    .bytes()
                    .get(icmp_off..icmp_end.min(frame.bytes().len()))
                {
                    if let Ok(msg) = IcmpMessage::parse(icmp_data) {
                        if let Some(reply) = msg.reply_to() {
                            self.stats.echo_replied += 1;
                            self.send_icmp(in_port, ip.src, reply, ctx);
                        }
                    }
                }
            }
            return; // locally terminated, never forwarded
        }
        if ip.forwarded().is_none() {
            self.stats.ttl_expired += 1;
            ctx.trace(TraceLevel::Debug, "TTL expired, packet dropped");
            // RFC 792: quote the IP header plus the first 8 payload bytes.
            let quote_end = (ip_offset + pos_packet::ipv4::HEADER_LEN + 8).min(frame.bytes().len());
            let original = frame.bytes()[ip_offset..quote_end].to_vec();
            if !self.port_ips.is_empty() {
                self.stats.time_exceeded_sent += 1;
                self.send_icmp(in_port, ip.src, IcmpMessage::TimeExceeded { original }, ctx);
            }
            return;
        }
        let Some(route) = self.lookup(ip.dst) else {
            self.stats.no_route += 1;
            ctx.trace(TraceLevel::Debug, format!("no route to {}", ip.dst));
            return;
        };
        let src_mac = self
            .port_macs
            .get(route.port)
            .copied()
            .unwrap_or(MacAddr::ZERO);

        // Rewrite the frame in place (copy-on-write — no copy at all for a
        // uniquely held frame, which is the unicast forwarding case): MAC
        // addresses, TTL decrement, and an RFC 1624 incremental checksum
        // update of the [TTL, protocol] word — no full header recompute.
        let mut frame = frame;
        let bytes = frame.bytes_mut();
        bytes[0..6].copy_from_slice(&route.next_hop_mac.octets());
        bytes[6..12].copy_from_slice(&src_mac.octets());
        let ttl_off = ip_offset + 8;
        let old_word = u16::from_be_bytes([bytes[ttl_off], bytes[ttl_off + 1]]);
        bytes[ttl_off] -= 1;
        let new_word = u16::from_be_bytes([bytes[ttl_off], bytes[ttl_off + 1]]);
        let csum_off = ip_offset + 10;
        let csum = u16::from_be_bytes([bytes[csum_off], bytes[csum_off + 1]]);
        let csum = pos_packet::checksum::update(csum, old_word, new_word);
        bytes[csum_off..csum_off + 2].copy_from_slice(&csum.to_be_bytes());

        self.stats.forwarded += 1;
        self.emit(route.port, frame, ctx);
    }

    fn schedule_next_preemption(&mut self, ctx: &mut SimCtx<'_>) {
        if let Some(p) = self.profile.preemption {
            let period = self.rng.exponential(p.period_mean.as_secs_f64());
            ctx.set_timer(SimDuration::from_secs_f64(period), TOKEN_PREEMPTION_BEGIN);
        }
    }
}

impl Element for LinuxRouter {
    fn on_start(&mut self, ctx: &mut SimCtx<'_>) {
        self.schedule_next_preemption(ctx);
    }

    fn on_frame(&mut self, port: usize, frame: Frame, ctx: &mut SimCtx<'_>) {
        // Decide once whether the service timeline can be folded into
        // arrival processing: the queue is FIFO and service times are
        // sampled in arrival order, so with no preemption process the
        // whole timeline is computable the moment a packet arrives —
        // no per-packet service timer needed, as long as every egress
        // port accepts future-dated (cut-through) transmissions.
        let folded = match self.folded {
            Some(f) => f,
            None => {
                let f = self.profile.preemption.is_none()
                    && (0..ctx.port_count()).all(|p| ctx.future_tx_capable(p));
                self.folded = Some(f);
                f
            }
        };
        if !folded {
            if self.ring.len() >= self.profile.ring_size {
                self.stats.ring_drops += 1;
                return;
            }
            self.ring.push_back((port, frame));
            self.begin_service(ctx);
            return;
        }

        // Folded path: drain completions that are in the past — those
        // packets have left the ring — then tail-drop on occupancy,
        // exactly like the eventful path does.
        let now = ctx.now();
        while self.completions.front().is_some_and(|&c| c <= now) {
            self.completions.pop_front();
        }
        if self.completions.len() >= self.profile.ring_size {
            self.stats.ring_drops += 1;
            return;
        }
        let service = self
            .profile
            .sample_service(frame.bytes().len(), &mut self.rng);
        let start = if self.last_completion > now {
            self.last_completion
        } else {
            now
        };
        let completion = start + service;
        self.completions.push_back(completion);
        self.last_completion = completion;
        self.tx_at = Some(completion);
        self.forward(port, frame, ctx);
        self.tx_at = None;
    }

    /// With no preemption process and an all-cut-through node, the router
    /// runs timeline-folded: every arrival is consumed immediately into
    /// timestamp arithmetic and future-dated transmissions, so frames may
    /// be delivered ahead of global event order (arrival order is
    /// preserved per ingress link, which is exact for the single-flow
    /// case-study topologies).
    fn inline_rx(&self, _port: usize, all_ports_cut_through: bool) -> bool {
        self.profile.preemption.is_none() && all_ports_cut_through
    }

    fn on_timer(&mut self, token: u64, ctx: &mut SimCtx<'_>) {
        match token {
            TOKEN_SERVICE_DONE => {
                if self.preempted {
                    // The packet "completed" while the vCPU was descheduled;
                    // its delivery waits for the preemption to end.
                    self.deferred_completion = true;
                } else {
                    self.finish_service(ctx);
                }
            }
            TOKEN_PREEMPTION_BEGIN => {
                let p = self
                    .profile
                    .preemption
                    .expect("preemption timer without a preemption model");
                self.preempted = true;
                let pause = self.rng.exponential(p.pause_mean.as_secs_f64());
                let pause = SimDuration::from_secs_f64(pause);
                self.stats.preempted_ns += pause.as_nanos();
                ctx.set_timer(pause, TOKEN_PREEMPTION_END);
            }
            TOKEN_PREEMPTION_END => {
                self.preempted = false;
                if self.deferred_completion {
                    self.deferred_completion = false;
                    self.finish_service(ctx);
                } else {
                    self.begin_service(ctx);
                }
                self.schedule_next_preemption(ctx);
            }
            other => {
                ctx.trace(TraceLevel::Warn, format!("unknown timer token {other}"));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{LinkConfig, NetSim, NodeId, PortConfig};
    use crate::sink::CountingSink;
    use pos_packet::builder::UdpFrameSpec;
    use pos_simkernel::SimTime;

    fn frame_spec() -> UdpFrameSpec {
        UdpFrameSpec {
            src_mac: MacAddr::testbed_host(1),
            dst_mac: MacAddr::testbed_host(10),
            src_ip: Ipv4Addr::new(10, 0, 0, 2),
            dst_ip: Ipv4Addr::new(10, 0, 1, 2),
            src_port: 1000,
            dst_port: 2000,
            ttl: 64,
        }
    }

    /// Sends `n` frames spaced `gap_ns` apart.
    struct PacedSource {
        n: u64,
        sent: u64,
        gap_ns: u64,
        wire_size: usize,
    }

    impl Element for PacedSource {
        fn on_start(&mut self, ctx: &mut SimCtx<'_>) {
            ctx.set_timer(SimDuration::ZERO, 0);
        }
        fn on_frame(&mut self, _: usize, _: Frame, _: &mut SimCtx<'_>) {}
        fn on_timer(&mut self, _: u64, ctx: &mut SimCtx<'_>) {
            if self.sent >= self.n {
                return;
            }
            self.sent += 1;
            let frame = frame_spec()
                .build_with_wire_size(self.wire_size, &[])
                .unwrap();
            ctx.transmit(0, frame);
            if self.sent < self.n {
                ctx.set_timer(SimDuration::from_nanos(self.gap_ns), 0);
            }
        }
    }

    fn router(profile: ServiceProfile, seed: u64) -> LinuxRouter {
        let mut r = LinuxRouter::new(
            profile,
            vec![MacAddr::testbed_host(10), MacAddr::testbed_host(11)],
            SimRng::new(seed).derive("router"),
        );
        r.add_route(RouteEntry {
            network: Ipv4Addr::new(10, 0, 1, 0),
            prefix_len: 24,
            port: 1,
            next_hop_mac: MacAddr::testbed_host(2),
        });
        r.add_route(RouteEntry {
            network: Ipv4Addr::new(10, 0, 0, 0),
            prefix_len: 24,
            port: 0,
            next_hop_mac: MacAddr::testbed_host(1),
        });
        r
    }

    /// Builds src -> router -> sink and runs `n` frames through at `gap_ns`.
    fn run_forwarding(
        profile: ServiceProfile,
        n: u64,
        gap_ns: u64,
        wire_size: usize,
    ) -> (NetSim, NodeId, NodeId) {
        let mut sim = NetSim::new(1);
        let src = sim.add_element(
            "loadgen",
            Box::new(PacedSource {
                n,
                sent: 0,
                gap_ns,
                wire_size,
            }),
            &[PortConfig::ten_gbe()],
        );
        let dut = sim.add_element(
            "dut",
            Box::new(router(profile, 1)),
            &[PortConfig::ten_gbe(), PortConfig::ten_gbe()],
        );
        let sink = sim.add_element(
            "sink",
            Box::new(CountingSink::new()),
            &[PortConfig::ten_gbe()],
        );
        sim.connect((src, 0), (dut, 0), LinkConfig::direct_cable());
        sim.connect((dut, 1), (sink, 0), LinkConfig::direct_cable());
        sim.run_until(SimTime::from_secs(30));
        (sim, dut, sink)
    }

    #[test]
    fn forwards_and_rewrites_headers() {
        /// Captures the first received frame for inspection.
        #[derive(Default)]
        struct CapturingSink {
            frames: Vec<Frame>,
        }
        impl Element for CapturingSink {
            fn on_frame(&mut self, _: usize, frame: Frame, _: &mut SimCtx<'_>) {
                self.frames.push(frame);
            }
        }

        let mut sim = NetSim::new(1);
        let src = sim.add_element(
            "src",
            Box::new(PacedSource {
                n: 1,
                sent: 0,
                gap_ns: 1000,
                wire_size: 64,
            }),
            &[PortConfig::ten_gbe()],
        );
        let dut = sim.add_element(
            "dut",
            Box::new(router(ServiceProfile::bare_metal(), 1)),
            &[PortConfig::ten_gbe(), PortConfig::ten_gbe()],
        );
        let sink = sim.add_element(
            "cap",
            Box::new(CapturingSink::default()),
            &[PortConfig::ten_gbe()],
        );
        sim.connect((src, 0), (dut, 0), LinkConfig::direct_cable());
        sim.connect((dut, 1), (sink, 0), LinkConfig::direct_cable());
        sim.run_to_idle();

        let cap = sim.element_as::<CapturingSink>(sink).unwrap();
        assert_eq!(cap.frames.len(), 1);
        let parsed = pos_packet::builder::parse_udp_frame(cap.frames[0].bytes()).unwrap();
        assert_eq!(parsed.ip.ttl, 63, "TTL decremented");
        assert_eq!(parsed.eth.src, MacAddr::testbed_host(11), "egress MAC");
        assert_eq!(parsed.eth.dst, MacAddr::testbed_host(2), "next-hop MAC");
        assert_eq!(parsed.udp.dst_port, 2000, "payload untouched");
        assert_eq!(cap.frames[0].wire_size(), 64, "size preserved");
    }

    #[test]
    fn below_saturation_no_loss_bare_metal() {
        // 1 Mpps of 64 B frames is well below the 1.75 Mpps limit.
        let n = 50_000;
        let (sim, dut, sink) = run_forwarding(ServiceProfile::bare_metal(), n, 1_000, 64);
        let stats = sim.element_as::<LinuxRouter>(dut).unwrap().stats;
        assert_eq!(stats.forwarded, n);
        assert_eq!(stats.ring_drops, 0);
        assert_eq!(sim.port_counters(sink, 0).rx_frames, n);
    }

    #[test]
    fn above_saturation_drops_bare_metal() {
        // 2.5 Mpps of 64 B frames exceeds the ~1.75 Mpps service limit.
        let n = 100_000;
        let (sim, dut, sink) = run_forwarding(ServiceProfile::bare_metal(), n, 400, 64);
        let stats = sim.element_as::<LinuxRouter>(dut).unwrap().stats;
        assert!(stats.ring_drops > 0, "overload must tail-drop");
        let delivered = sim.port_counters(sink, 0).rx_frames;
        let duration_s = (n * 400) as f64 * 1e-9;
        let rate_mpps = delivered as f64 / duration_s / 1e6;
        assert!(
            (1.55..=1.95).contains(&rate_mpps),
            "bare-metal 64 B saturation should be ≈1.75 Mpps, got {rate_mpps:.3}"
        );
    }

    #[test]
    fn large_packets_limited_by_line_rate_not_cpu() {
        // Offer 1500 B frames at the 0.822 Mpps line rate: the loadgen's
        // own NIC is the limiter; the router must keep up with everything
        // that actually arrives.
        let n = 20_000;
        let (sim, dut, sink) = run_forwarding(ServiceProfile::bare_metal(), n, 1_216, 1500);
        let stats = sim.element_as::<LinuxRouter>(dut).unwrap().stats;
        assert_eq!(stats.ring_drops, 0, "router CPU must not be the bottleneck");
        assert_eq!(sim.port_counters(sink, 0).rx_frames, n);
    }

    #[test]
    fn virtualized_saturates_around_40kpps() {
        let profile = ServiceProfile::virtualized();
        // Offer 30 kpps — below saturation: loss-free.
        let n = 3_000;
        let (sim, dut, _) = run_forwarding(profile, n, 33_333, 64);
        let stats = sim.element_as::<LinuxRouter>(dut).unwrap().stats;
        assert_eq!(stats.forwarded + stats.ring_drops, n);
        let loss = stats.ring_drops as f64 / n as f64;
        assert!(
            loss < 0.01,
            "30 kpps should be nearly loss-free, lost {loss}"
        );

        // Offer 100 kpps — far above: heavy loss.
        let (sim, dut, sink) = run_forwarding(profile, 10_000, 10_000, 64);
        let stats = sim.element_as::<LinuxRouter>(dut).unwrap().stats;
        assert!(stats.ring_drops > 0);
        let delivered = sim.port_counters(sink, 0).rx_frames as f64;
        let rate_kpps = delivered / (10_000.0 * 10_000.0 * 1e-9) / 1e3;
        assert!(
            (25.0..=55.0).contains(&rate_kpps),
            "virtualized saturation should be ≈40 kpps, got {rate_kpps:.1}"
        );
    }

    #[test]
    fn virtualized_is_packet_size_independent() {
        let profile = ServiceProfile::virtualized();
        let s64 = profile.saturation_pps(60);
        let s1500 = profile.saturation_pps(1496);
        let ratio = s64 / s1500;
        assert!(
            ratio < 1.1,
            "saturation must be nearly size-independent, ratio {ratio}"
        );
    }

    #[test]
    fn profile_saturation_math() {
        let bm = ServiceProfile::bare_metal();
        let pps = bm.saturation_pps(60); // 64 B wire = 60 B frame
        assert!((1.70e6..1.80e6).contains(&pps), "got {pps}");
        let vm = ServiceProfile::virtualized();
        let pps = vm.saturation_pps(60);
        assert!((35e3..45e3).contains(&pps), "got {pps}");
    }

    #[test]
    fn ttl_expiry_drops() {
        let mut sim = NetSim::new(1);
        struct Ttl1Source;
        impl Element for Ttl1Source {
            fn on_start(&mut self, ctx: &mut SimCtx<'_>) {
                let mut spec = frame_spec();
                spec.ttl = 1;
                ctx.transmit(0, spec.build_with_wire_size(64, &[]).unwrap());
            }
            fn on_frame(&mut self, _: usize, _: Frame, _: &mut SimCtx<'_>) {}
        }
        let src = sim.add_element("src", Box::new(Ttl1Source), &[PortConfig::ten_gbe()]);
        let dut = sim.add_element(
            "dut",
            Box::new(router(ServiceProfile::bare_metal(), 1)),
            &[PortConfig::ten_gbe(), PortConfig::ten_gbe()],
        );
        let sink = sim.add_element(
            "sink",
            Box::new(CountingSink::new()),
            &[PortConfig::ten_gbe()],
        );
        sim.connect((src, 0), (dut, 0), LinkConfig::direct_cable());
        sim.connect((dut, 1), (sink, 0), LinkConfig::direct_cable());
        sim.run_to_idle();
        let stats = sim.element_as::<LinuxRouter>(dut).unwrap().stats;
        assert_eq!(stats.ttl_expired, 1);
        assert_eq!(stats.forwarded, 0);
        assert_eq!(sim.port_counters(sink, 0).rx_frames, 0);
    }

    #[test]
    fn no_route_drops() {
        let mut r = router(ServiceProfile::bare_metal(), 1);
        r.routes.clear();
        assert!(r.lookup(Ipv4Addr::new(192, 168, 1, 1)).is_none());
    }

    #[test]
    fn longest_prefix_wins() {
        let mut r = router(ServiceProfile::bare_metal(), 1);
        r.add_route(RouteEntry {
            network: Ipv4Addr::new(10, 0, 1, 128),
            prefix_len: 25,
            port: 0,
            next_hop_mac: MacAddr::testbed_host(9),
        });
        let hit = r.lookup(Ipv4Addr::new(10, 0, 1, 200)).unwrap();
        assert_eq!(hit.prefix_len, 25, "more specific route must win");
        let hit = r.lookup(Ipv4Addr::new(10, 0, 1, 5)).unwrap();
        assert_eq!(hit.prefix_len, 24);
    }

    #[test]
    fn route_matching_edge_cases() {
        let default = RouteEntry {
            network: Ipv4Addr::new(0, 0, 0, 0),
            prefix_len: 0,
            port: 0,
            next_hop_mac: MacAddr::ZERO,
        };
        assert!(default.matches(Ipv4Addr::new(8, 8, 8, 8)));
        let host = RouteEntry {
            network: Ipv4Addr::new(10, 0, 0, 1),
            prefix_len: 32,
            port: 0,
            next_hop_mac: MacAddr::ZERO,
        };
        assert!(host.matches(Ipv4Addr::new(10, 0, 0, 1)));
        assert!(!host.matches(Ipv4Addr::new(10, 0, 0, 2)));
    }

    #[test]
    fn preemption_steals_time() {
        let p = ServiceProfile::virtualized().preemption.unwrap();
        let stolen = p.stolen_fraction();
        assert!((0.15..0.25).contains(&stolen), "got {stolen}");
    }

    #[test]
    fn non_ipv4_counted_malformed() {
        let mut sim = NetSim::new(1);
        struct ArpSource;
        impl Element for ArpSource {
            fn on_start(&mut self, ctx: &mut SimCtx<'_>) {
                let mut bytes = Vec::new();
                EthernetHeader {
                    dst: MacAddr::BROADCAST,
                    src: MacAddr::testbed_host(1),
                    ethertype: EtherType::Arp,
                }
                .emit(&mut bytes);
                bytes.resize(60, 0);
                ctx.transmit(0, Frame::from_bytes(bytes));
            }
            fn on_frame(&mut self, _: usize, _: Frame, _: &mut SimCtx<'_>) {}
        }
        let src = sim.add_element("src", Box::new(ArpSource), &[PortConfig::ten_gbe()]);
        let dut = sim.add_element(
            "dut",
            Box::new(router(ServiceProfile::bare_metal(), 1)),
            &[PortConfig::ten_gbe(), PortConfig::ten_gbe()],
        );
        sim.connect((src, 0), (dut, 0), LinkConfig::direct_cable());
        sim.run_to_idle();
        let stats = sim.element_as::<LinuxRouter>(dut).unwrap().stats;
        assert_eq!(stats.malformed, 1);
    }
}
