//! A netem-style impairment element: configurable delay, jitter, and
//! reordering.
//!
//! Real testbeds insert impairment nodes to emulate WAN paths (`tc netem`
//! on Linux). The element delays every frame by `delay ± jitter`; because
//! each frame draws its own jitter, frames can overtake each other —
//! exactly netem's reordering behavior — which downstream measurement
//! tooling must detect (the MoonGen receiver counts `reordered`).

use crate::engine::{Element, SimCtx};
use pos_packet::builder::Frame;
use pos_simkernel::{SimDuration, SimRng};
use std::collections::HashMap;

/// Impairment configuration.
#[derive(Debug, Clone, Copy)]
pub struct NetemConfig {
    /// Base one-way delay added to every frame.
    pub delay: SimDuration,
    /// Uniform jitter: each frame's delay is `delay ± jitter`.
    pub jitter: SimDuration,
}

/// Statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetemStats {
    /// Frames passed through.
    pub forwarded: u64,
}

/// The impairment element: two ports, frames entering port 0 leave port 1
/// and vice versa, after the configured delay.
pub struct NetemLine {
    config: NetemConfig,
    rng: SimRng,
    /// Frames parked until their delay elapses, keyed by timer token.
    pending: HashMap<u64, (usize, Frame)>,
    next_token: u64,
    /// Observable statistics.
    pub stats: NetemStats,
}

impl NetemLine {
    /// Creates an impairment line.
    ///
    /// # Panics
    /// Panics if `jitter > delay` — a negative total delay is not causal.
    pub fn new(config: NetemConfig, rng: SimRng) -> NetemLine {
        assert!(
            config.jitter <= config.delay,
            "jitter must not exceed the base delay"
        );
        NetemLine {
            config,
            rng,
            pending: HashMap::new(),
            next_token: 0,
            stats: NetemStats::default(),
        }
    }

    fn sample_delay(&mut self) -> SimDuration {
        let j = self.config.jitter.as_nanos();
        if j == 0 {
            return self.config.delay;
        }
        // Uniform in [delay - jitter, delay + jitter].
        let offset = self.rng.uniform_u64(2 * j + 1);
        self.config.delay - self.config.jitter + SimDuration::from_nanos(offset)
    }
}

impl Element for NetemLine {
    fn on_frame(&mut self, port: usize, frame: Frame, ctx: &mut SimCtx<'_>) {
        let out_port = 1 - port; // two-port pass-through
        let token = self.next_token;
        self.next_token += 1;
        self.pending.insert(token, (out_port, frame));
        let delay = self.sample_delay();
        ctx.set_timer(delay, token);
    }

    fn on_timer(&mut self, token: u64, ctx: &mut SimCtx<'_>) {
        if let Some((port, frame)) = self.pending.remove(&token) {
            self.stats.forwarded += 1;
            ctx.transmit(port, frame);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{LinkConfig, NetSim, PortConfig};
    use crate::sink::CountingSink;
    use pos_packet::builder::UdpFrameSpec;
    use pos_packet::MacAddr;
    use pos_simkernel::SimTime;
    use std::net::Ipv4Addr;

    struct Burst {
        n: u64,
        gap: SimDuration,
        sent: u64,
    }
    impl Element for Burst {
        fn on_start(&mut self, ctx: &mut SimCtx<'_>) {
            ctx.set_timer(SimDuration::ZERO, 0);
        }
        fn on_frame(&mut self, _: usize, _: Frame, _: &mut SimCtx<'_>) {}
        fn on_timer(&mut self, _: u64, ctx: &mut SimCtx<'_>) {
            if self.sent >= self.n {
                return;
            }
            self.sent += 1;
            let frame = UdpFrameSpec {
                src_mac: MacAddr::testbed_host(1),
                dst_mac: MacAddr::testbed_host(2),
                src_ip: Ipv4Addr::new(10, 0, 0, 1),
                dst_ip: Ipv4Addr::new(10, 0, 1, 1),
                src_port: 1,
                dst_port: 2,
                ttl: 64,
            }
            .build_with_wire_size(64, &[])
            .unwrap();
            ctx.transmit(0, frame);
            if self.sent < self.n {
                ctx.set_timer(self.gap, 0);
            }
        }
    }

    fn run(config: NetemConfig, n: u64, gap: SimDuration) -> (NetSim, usize) {
        let mut sim = NetSim::new(3);
        let src = sim.add_element(
            "src",
            Box::new(Burst { n, gap, sent: 0 }),
            &[PortConfig::ten_gbe()],
        );
        let netem = sim.add_element(
            "netem",
            Box::new(NetemLine::new(config, SimRng::new(3).derive("netem"))),
            &[PortConfig::ten_gbe(), PortConfig::ten_gbe()],
        );
        let dst = sim.add_element(
            "dst",
            Box::new(CountingSink::new()),
            &[PortConfig::ten_gbe()],
        );
        sim.connect((src, 0), (netem, 0), LinkConfig::direct_cable());
        sim.connect((netem, 1), (dst, 0), LinkConfig::direct_cable());
        sim.run_until(SimTime::from_secs(10));
        (sim, dst)
    }

    #[test]
    fn fixed_delay_shifts_arrival() {
        let cfg = NetemConfig {
            delay: SimDuration::from_millis(10),
            jitter: SimDuration::ZERO,
        };
        let (sim, dst) = run(cfg, 1, SimDuration::from_micros(1));
        let sink = sim.element_as::<CountingSink>(dst).unwrap();
        let arrival = sink.first_arrival.unwrap().as_nanos();
        // 68 ns serialization + 10 ns + 10 ms + 68 ns + 10 ns.
        assert_eq!(arrival, 68 + 10 + 10_000_000 + 68 + 10);
    }

    #[test]
    fn all_frames_pass_and_jitter_spreads_arrivals() {
        let cfg = NetemConfig {
            delay: SimDuration::from_millis(5),
            jitter: SimDuration::from_millis(2),
        };
        let (sim, dst) = run(cfg, 500, SimDuration::from_micros(100));
        let sink = sim.element_as::<CountingSink>(dst).unwrap();
        assert_eq!(sink.frames, 500, "impairment must not lose frames");
        let netem_stats = sim.element_as::<NetemLine>(1).unwrap().stats;
        assert_eq!(netem_stats.forwarded, 500);
    }

    #[test]
    fn jitter_larger_than_gap_causes_reordering() {
        // End-to-end: the MoonGen receiver must *count* the reorders.
        use pos_loadgen_compat::run_moongen_through_netem;
        let reordered = run_moongen_through_netem(
            NetemConfig {
                delay: SimDuration::from_millis(2),
                jitter: SimDuration::from_millis(1),
            },
            // 50 kpps → 20 µs between packets, jitter ±1 ms ≫ gap.
            50_000.0,
        );
        assert!(reordered > 0, "heavy jitter must reorder packets");
    }

    #[test]
    fn zero_jitter_never_reorders() {
        use pos_loadgen_compat::run_moongen_through_netem;
        let reordered = run_moongen_through_netem(
            NetemConfig {
                delay: SimDuration::from_millis(2),
                jitter: SimDuration::ZERO,
            },
            50_000.0,
        );
        assert_eq!(reordered, 0);
    }

    #[test]
    #[should_panic(expected = "jitter must not exceed")]
    fn acausal_config_rejected() {
        NetemLine::new(
            NetemConfig {
                delay: SimDuration::from_millis(1),
                jitter: SimDuration::from_millis(2),
            },
            SimRng::new(0),
        );
    }

    /// Local shim: pos-netsim cannot depend on pos-loadgen (layering), so
    /// the end-to-end reorder test builds a tiny probe-sequenced sender
    /// and receiver of its own.
    mod pos_loadgen_compat {
        use super::*;
        use pos_packet::probe::{Probe, PROBE_LEN};

        struct SeqSender {
            rate: f64,
            n: u32,
            sent: u32,
        }
        impl Element for SeqSender {
            fn on_start(&mut self, ctx: &mut SimCtx<'_>) {
                ctx.set_timer(SimDuration::ZERO, 0);
            }
            fn on_frame(&mut self, _: usize, _: Frame, _: &mut SimCtx<'_>) {}
            fn on_timer(&mut self, _: u64, ctx: &mut SimCtx<'_>) {
                if self.sent >= self.n {
                    return;
                }
                let mut prefix = [0u8; PROBE_LEN];
                Probe {
                    flow_id: 1,
                    seq: self.sent,
                    tx_ns: ctx.now().as_nanos(),
                }
                .write_to(&mut prefix);
                self.sent += 1;
                let frame = UdpFrameSpec {
                    src_mac: MacAddr::testbed_host(1),
                    dst_mac: MacAddr::testbed_host(2),
                    src_ip: Ipv4Addr::new(10, 0, 0, 1),
                    dst_ip: Ipv4Addr::new(10, 0, 1, 1),
                    src_port: 1,
                    dst_port: 2,
                    ttl: 64,
                }
                .build_with_wire_size(64, &prefix)
                .unwrap();
                ctx.transmit(0, frame);
                if self.sent < self.n {
                    ctx.set_timer(SimDuration::from_secs_f64(1.0 / self.rate), 0);
                }
            }
        }

        #[derive(Default)]
        struct SeqReceiver {
            highest: Option<u32>,
            reordered: u64,
        }
        impl Element for SeqReceiver {
            fn on_frame(&mut self, _: usize, frame: Frame, _: &mut SimCtx<'_>) {
                let parsed = pos_packet::builder::parse_udp_frame(frame.bytes()).unwrap();
                let probe = Probe::parse(parsed.payload).unwrap();
                match self.highest {
                    Some(prev) if probe.seq <= prev => self.reordered += 1,
                    _ => self.highest = Some(probe.seq),
                }
            }
        }

        pub fn run_moongen_through_netem(cfg: NetemConfig, rate: f64) -> u64 {
            let mut sim = NetSim::new(9);
            let src = sim.add_element(
                "src",
                Box::new(SeqSender {
                    rate,
                    n: 2_000,
                    sent: 0,
                }),
                &[PortConfig::ten_gbe()],
            );
            let netem = sim.add_element(
                "netem",
                Box::new(NetemLine::new(cfg, SimRng::new(9).derive("netem"))),
                &[PortConfig::ten_gbe(), PortConfig::ten_gbe()],
            );
            let dst = sim.add_element(
                "dst",
                Box::new(SeqReceiver::default()),
                &[PortConfig::ten_gbe()],
            );
            sim.connect((src, 0), (netem, 0), LinkConfig::direct_cable());
            sim.connect((netem, 1), (dst, 0), LinkConfig::direct_cable());
            sim.run_until(SimTime::from_secs(10));
            sim.element_as::<SeqReceiver>(dst).unwrap().reordered
        }
    }
}
