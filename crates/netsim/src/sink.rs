//! A terminating element that counts what it receives.

use crate::engine::{Element, SimCtx};
use pos_packet::builder::Frame;
use pos_simkernel::SimTime;

/// Counts received frames and bytes; remembers first/last arrival times so
/// callers can compute achieved rates.
#[derive(Debug, Default)]
pub struct CountingSink {
    /// Frames received.
    pub frames: u64,
    /// Wire bytes received.
    pub bytes: u64,
    /// Arrival time of the first frame.
    pub first_arrival: Option<SimTime>,
    /// Arrival time of the most recent frame.
    pub last_arrival: Option<SimTime>,
}

impl CountingSink {
    /// Creates an empty sink.
    pub fn new() -> CountingSink {
        CountingSink::default()
    }

    /// Average receive rate in frames per second between the first and last
    /// arrival; `None` with fewer than two frames.
    pub fn avg_rate_fps(&self) -> Option<f64> {
        let (first, last) = (self.first_arrival?, self.last_arrival?);
        if last <= first || self.frames < 2 {
            return None;
        }
        Some((self.frames - 1) as f64 / (last - first).as_secs_f64())
    }
}

impl Element for CountingSink {
    fn on_frame(&mut self, _port: usize, frame: Frame, ctx: &mut SimCtx<'_>) {
        self.frames += 1;
        self.bytes += frame.wire_size() as u64;
        let now = ctx.now();
        if self.first_arrival.is_none_or(|f| now < f) {
            self.first_arrival = Some(now);
        }
        if self.last_arrival.is_none_or(|l| now > l) {
            self.last_arrival = Some(now);
        }
    }

    /// Pure accounting over per-frame timestamps: safe to receive frames
    /// ahead of global event order.
    fn inline_rx(&self, _port: usize, _all_ports_cut_through: bool) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{LinkConfig, NetSim, PortConfig};
    use pos_packet::builder::UdpFrameSpec;
    use pos_packet::MacAddr;
    use std::net::Ipv4Addr;

    struct OneShot;
    impl Element for OneShot {
        fn on_start(&mut self, ctx: &mut SimCtx<'_>) {
            let frame = UdpFrameSpec {
                src_mac: MacAddr::testbed_host(1),
                dst_mac: MacAddr::testbed_host(2),
                src_ip: Ipv4Addr::new(10, 0, 0, 1),
                dst_ip: Ipv4Addr::new(10, 0, 1, 1),
                src_port: 1,
                dst_port: 2,
                ttl: 64,
            }
            .build_with_wire_size(128, &[])
            .unwrap();
            ctx.transmit(0, frame);
        }
        fn on_frame(&mut self, _: usize, _: Frame, _: &mut SimCtx<'_>) {}
    }

    #[test]
    fn sink_records_arrival_times() {
        let mut sim = NetSim::new(3);
        let src = sim.add_element("src", Box::new(OneShot), &[PortConfig::ten_gbe()]);
        let dst = sim.add_element(
            "dst",
            Box::new(CountingSink::new()),
            &[PortConfig::ten_gbe()],
        );
        sim.connect((src, 0), (dst, 0), LinkConfig::direct_cable());
        sim.run_to_idle();
        assert_eq!(sim.port_counters(dst, 0).rx_frames, 1);
        assert_eq!(sim.port_counters(dst, 0).rx_bytes, 128);
        let sink = sim.element_as::<CountingSink>(dst).unwrap();
        assert_eq!(sink.frames, 1);
        assert_eq!(sink.bytes, 128);
        assert!(sink.first_arrival.is_some());
        assert_eq!(sink.first_arrival, sink.last_arrival);
    }

    #[test]
    fn avg_rate_needs_two_frames() {
        let mut s = CountingSink::new();
        assert!(s.avg_rate_fps().is_none());
        s.frames = 1;
        s.first_arrival = Some(SimTime::ZERO);
        s.last_arrival = Some(SimTime::ZERO);
        assert!(s.avg_rate_fps().is_none());
        // Two frames, one second apart: 1 fps.
        s.frames = 2;
        s.last_arrival = Some(SimTime::from_secs(1));
        assert!((s.avg_rate_fps().unwrap() - 1.0).abs() < 1e-9);
    }
}
