//! The Linux bridge — vpos's virtual interconnect.
//!
//! §5 of the paper: *"We use Linux bridges for the connection between the
//! experiment VMs."* A Linux bridge is a software learning switch running
//! on the host: it learns source MACs, forwards known unicast to the
//! learned port, floods unknown destinations and broadcast, and charges a
//! per-packet CPU cost. The cost is small compared to the virtualized
//! router's, so — as the paper observes — the generator's rate remains
//! stable in vpos while the DuT VM is the bottleneck.

use crate::engine::{Element, SimCtx};
use pos_packet::builder::Frame;
use pos_packet::ethernet::EthernetHeader;
use pos_packet::MacAddr;
use pos_simkernel::{SimDuration, SimRng};
use std::collections::{HashMap, VecDeque};

const TOKEN_SERVICE_DONE: u64 = 1;

/// Bridge statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BridgeStats {
    /// Frames forwarded to a single learned port.
    pub unicast_forwarded: u64,
    /// Frames flooded to all other ports.
    pub flooded: u64,
    /// Frames dropped because the bridge queue was full.
    pub queue_drops: u64,
    /// Frames dropped because they arrived back on the learned port
    /// (hairpin suppressed).
    pub hairpin_drops: u64,
}

/// A software learning bridge with a per-packet service cost.
pub struct LinuxBridge {
    /// Per-packet service time, fixed part.
    base: SimDuration,
    /// Additional service per frame byte, in nanoseconds.
    per_byte_ns: f64,
    fdb: HashMap<MacAddr, usize>,
    queue: VecDeque<(usize, Frame)>,
    queue_cap: usize,
    serving: bool,
    rng: SimRng,
    /// Observable statistics.
    pub stats: BridgeStats,
}

impl LinuxBridge {
    /// A bridge with the default host-CPU cost model: ≈1.2 µs per packet
    /// (well under the 3.3 µs budget of the case study's 300 kpps peak).
    pub fn new(rng: SimRng) -> LinuxBridge {
        LinuxBridge::with_cost(SimDuration::from_nanos(1_100), 0.05, rng)
    }

    /// A bridge with an explicit cost model.
    pub fn with_cost(base: SimDuration, per_byte_ns: f64, rng: SimRng) -> LinuxBridge {
        LinuxBridge {
            base,
            per_byte_ns,
            fdb: HashMap::new(),
            queue: VecDeque::new(),
            queue_cap: 1_000,
            serving: false,
            rng,
            stats: BridgeStats::default(),
        }
    }

    /// Number of learned forwarding-database entries.
    pub fn fdb_len(&self) -> usize {
        self.fdb.len()
    }

    fn begin_service(&mut self, ctx: &mut SimCtx<'_>) {
        if self.serving {
            return;
        }
        let Some((_, frame)) = self.queue.front() else {
            return;
        };
        let len = frame.bytes().len() as f64;
        // ±10% uniform jitter on the service time.
        let jitter = 0.9 + 0.2 * self.rng.uniform_f64();
        let ns = (self.base.as_nanos() as f64 + self.per_byte_ns * len) * jitter;
        self.serving = true;
        ctx.set_timer(SimDuration::from_secs_f64(ns * 1e-9), TOKEN_SERVICE_DONE);
    }

    fn finish_service(&mut self, ctx: &mut SimCtx<'_>) {
        self.serving = false;
        let Some((in_port, frame)) = self.queue.pop_front() else {
            return;
        };
        // Learn the source MAC.
        if let Ok((eth, _)) = EthernetHeader::parse(frame.bytes()) {
            self.fdb.insert(eth.src, in_port);
            match self.fdb.get(&eth.dst) {
                Some(&out) if !eth.dst.is_multicast() => {
                    if out == in_port {
                        self.stats.hairpin_drops += 1;
                    } else {
                        self.stats.unicast_forwarded += 1;
                        ctx.transmit(out, frame);
                    }
                }
                _ => {
                    // Unknown unicast or group address: flood. Replication
                    // shares one buffer — each clone is a refcount bump.
                    self.stats.flooded += 1;
                    for port in 0..ctx.port_count() {
                        if port != in_port {
                            ctx.transmit(port, frame.clone());
                        }
                    }
                }
            }
        }
        self.begin_service(ctx);
    }
}

impl Element for LinuxBridge {
    fn on_frame(&mut self, port: usize, frame: Frame, ctx: &mut SimCtx<'_>) {
        if self.queue.len() >= self.queue_cap {
            self.stats.queue_drops += 1;
            return;
        }
        self.queue.push_back((port, frame));
        self.begin_service(ctx);
    }

    fn on_timer(&mut self, token: u64, ctx: &mut SimCtx<'_>) {
        if token == TOKEN_SERVICE_DONE {
            self.finish_service(ctx);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{LinkConfig, NetSim, NodeId, PortConfig};
    use crate::sink::CountingSink;
    use pos_packet::builder::UdpFrameSpec;
    use std::net::Ipv4Addr;

    fn frame(src: u8, dst: u8) -> Frame {
        UdpFrameSpec {
            src_mac: MacAddr::testbed_host(src),
            dst_mac: MacAddr::testbed_host(dst),
            src_ip: Ipv4Addr::new(10, 0, 0, src),
            dst_ip: Ipv4Addr::new(10, 0, 0, dst),
            src_port: 1,
            dst_port: 2,
            ttl: 64,
        }
        .build_with_wire_size(64, &[])
        .unwrap()
    }

    struct Script {
        frames: Vec<Frame>,
    }
    impl Element for Script {
        fn on_start(&mut self, ctx: &mut SimCtx<'_>) {
            for f in self.frames.drain(..) {
                ctx.transmit(0, f);
            }
        }
        fn on_frame(&mut self, _: usize, _: Frame, _: &mut SimCtx<'_>) {}
    }

    /// host1 and host2 behind a 3-port bridge; host3 observes flooding.
    fn bridged_sim(h1_frames: Vec<Frame>) -> (NetSim, NodeId, NodeId, NodeId) {
        let mut sim = NetSim::new(5);
        let h1 = sim.add_element(
            "h1",
            Box::new(Script { frames: h1_frames }),
            &[PortConfig::virtio()],
        );
        let h2 = sim.add_element("h2", Box::new(CountingSink::new()), &[PortConfig::virtio()]);
        let h3 = sim.add_element("h3", Box::new(CountingSink::new()), &[PortConfig::virtio()]);
        let br = sim.add_element(
            "br0",
            Box::new(LinuxBridge::new(SimRng::new(5).derive("br0"))),
            &[
                PortConfig::virtio(),
                PortConfig::virtio(),
                PortConfig::virtio(),
            ],
        );
        sim.connect((h1, 0), (br, 0), LinkConfig::memory_hop());
        sim.connect((h2, 0), (br, 1), LinkConfig::memory_hop());
        sim.connect((h3, 0), (br, 2), LinkConfig::memory_hop());
        (sim, br, h2, h3)
    }

    #[test]
    fn unknown_unicast_floods_then_learns() {
        // First frame h1->h2: unknown, flooded to h2 and h3. A reply
        // h2->h1 would teach the bridge; instead send a second h1->h2
        // frame — still flooded because h2's MAC was never seen as source.
        let (mut sim, br, h2, h3) = bridged_sim(vec![frame(1, 2), frame(1, 2)]);
        sim.run_to_idle();
        let stats = sim.element_as::<LinuxBridge>(br).unwrap().stats;
        assert_eq!(stats.flooded, 2);
        assert_eq!(sim.port_counters(h2, 0).rx_frames, 2);
        assert_eq!(sim.port_counters(h3, 0).rx_frames, 2, "flooding reaches h3");
        assert_eq!(sim.element_as::<LinuxBridge>(br).unwrap().fdb_len(), 1);
    }

    #[test]
    fn learned_unicast_does_not_flood() {
        let mut sim = NetSim::new(5);
        // h2 speaks first so the bridge learns it; then h1->h2 is unicast.
        let h2 = sim.add_element(
            "h2",
            Box::new(Script {
                frames: vec![frame(2, 99)],
            }),
            &[PortConfig::virtio()],
        );
        let h1 = sim.add_element(
            "h1",
            Box::new(Script {
                frames: vec![frame(1, 2)],
            }),
            &[PortConfig::virtio()],
        );
        let h3 = sim.add_element("h3", Box::new(CountingSink::new()), &[PortConfig::virtio()]);
        let br = sim.add_element(
            "br0",
            Box::new(LinuxBridge::new(SimRng::new(5).derive("br0"))),
            &[
                PortConfig::virtio(),
                PortConfig::virtio(),
                PortConfig::virtio(),
            ],
        );
        sim.connect((h2, 0), (br, 0), LinkConfig::memory_hop());
        sim.connect((h1, 0), (br, 1), LinkConfig::memory_hop());
        sim.connect((h3, 0), (br, 2), LinkConfig::memory_hop());
        sim.run_to_idle();
        let stats = sim.element_as::<LinuxBridge>(br).unwrap().stats;
        assert_eq!(stats.unicast_forwarded, 1, "h1->h2 must be unicast");
        // h3 saw only the initial flood of h2's frame, not h1->h2.
        assert_eq!(sim.port_counters(h3, 0).rx_frames, 1);
    }

    #[test]
    fn broadcast_always_floods() {
        let mut bcast = frame(1, 2);
        bcast.bytes_mut()[0..6].copy_from_slice(&MacAddr::BROADCAST.octets());
        let (mut sim, br, h2, h3) = bridged_sim(vec![bcast]);
        sim.run_to_idle();
        assert_eq!(sim.element_as::<LinuxBridge>(br).unwrap().stats.flooded, 1);
        assert_eq!(sim.port_counters(h2, 0).rx_frames, 1);
        assert_eq!(sim.port_counters(h3, 0).rx_frames, 1);
    }

    #[test]
    fn bridge_adds_latency_but_sustains_case_study_rates() {
        // 400 frames through the bridge: mean cost ≈1.1 µs each, so the
        // bridge sustains ≈900 kpps — far above the 300 kpps the case study
        // offers. Verify total time ≈ 400 × 1.1 µs, not rate-limited more.
        let frames: Vec<Frame> = (0..400).map(|_| frame(1, 2)).collect();
        let (mut sim, _, h2, _) = bridged_sim(frames);
        sim.run_to_idle();
        assert_eq!(sim.port_counters(h2, 0).rx_frames, 400);
        let total = sim.now().as_secs_f64();
        let per_frame_us = total * 1e6 / 400.0;
        assert!(
            (0.9..1.4).contains(&per_frame_us),
            "per-frame bridge cost {per_frame_us:.2} µs out of range"
        );
    }

    #[test]
    fn hairpin_suppressed() {
        // h1 sends a frame addressed to h1's own MAC: after learning, the
        // destination is the ingress port — the bridge must not hairpin.
        let (mut sim, br, h2, h3) = bridged_sim(vec![frame(1, 1)]);
        sim.run_to_idle();
        let stats = sim.element_as::<LinuxBridge>(br).unwrap().stats;
        assert_eq!(stats.hairpin_drops, 1);
        assert_eq!(sim.port_counters(h2, 0).rx_frames, 0);
        assert_eq!(sim.port_counters(h3, 0).rx_frames, 0);
    }
}
