//! Hardware switch models for the §7 topology discussion.
//!
//! The paper prefers direct cables between experiment hosts (strongest
//! isolation, R2) and quantifies the alternatives: an optical L1 switch
//! adds < 15 ns of constant delay; an L2 cut-through switch adds ≈ 300 ns.
//! These models let the `ablation_wiring` bench reproduce that comparison.

use crate::engine::{Element, SimCtx};
use pos_packet::builder::Frame;
use pos_packet::ethernet::EthernetHeader;
use pos_packet::MacAddr;
use pos_simkernel::SimDuration;
use std::collections::HashMap;

/// How the switch decides and delays.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SwitchKind {
    /// Optical L1 circuit switch: a static port-to-port light path. The
    /// paper cites < 15 ns added delay (Molex PXC).
    OpticalL1,
    /// L2 cut-through switch: MAC learning, forwarding begins after the
    /// header; ≈ 300 ns added delay (the FEC-killed-the-cut-through figure).
    CutThroughL2,
}

impl SwitchKind {
    /// The constant per-frame forwarding delay of this switch class.
    pub fn forwarding_delay(self) -> SimDuration {
        match self {
            SwitchKind::OpticalL1 => SimDuration::from_nanos(15),
            SwitchKind::CutThroughL2 => SimDuration::from_nanos(300),
        }
    }
}

/// Switch statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SwitchStats {
    /// Frames forwarded.
    pub forwarded: u64,
    /// Frames dropped for lack of a circuit / FDB entry and no flooding.
    pub dropped: u64,
    /// Frames flooded (L2 only).
    pub flooded: u64,
}

/// A hardware switch element.
///
/// Timers encode the pending frame: the frame is parked in `pending` and a
/// sequence token releases it after the forwarding delay.
pub struct HardwareSwitch {
    kind: SwitchKind,
    /// L1: static circuits, ingress port -> egress port.
    circuits: HashMap<usize, usize>,
    /// L2: learned MAC table.
    fdb: HashMap<MacAddr, usize>,
    pending: HashMap<u64, (usize, Frame)>,
    next_token: u64,
    /// Observable statistics.
    pub stats: SwitchStats,
}

impl HardwareSwitch {
    /// Creates a switch of the given kind.
    pub fn new(kind: SwitchKind) -> HardwareSwitch {
        HardwareSwitch {
            kind,
            circuits: HashMap::new(),
            fdb: HashMap::new(),
            pending: HashMap::new(),
            next_token: 0,
            stats: SwitchStats::default(),
        }
    }

    /// Programs a bidirectional L1 light path between two ports.
    ///
    /// # Panics
    /// Panics on an L2 switch — circuits are an L1 concept.
    pub fn add_circuit(&mut self, a: usize, b: usize) {
        assert_eq!(
            self.kind,
            SwitchKind::OpticalL1,
            "circuits can only be programmed on an optical L1 switch"
        );
        self.circuits.insert(a, b);
        self.circuits.insert(b, a);
    }

    /// The switch kind.
    pub fn kind(&self) -> SwitchKind {
        self.kind
    }
}

impl Element for HardwareSwitch {
    fn on_frame(&mut self, port: usize, frame: Frame, ctx: &mut SimCtx<'_>) {
        let token = self.next_token;
        self.next_token += 1;
        self.pending.insert(token, (port, frame));
        ctx.set_timer(self.kind.forwarding_delay(), token);
    }

    fn on_timer(&mut self, token: u64, ctx: &mut SimCtx<'_>) {
        let Some((in_port, frame)) = self.pending.remove(&token) else {
            return;
        };
        match self.kind {
            SwitchKind::OpticalL1 => match self.circuits.get(&in_port) {
                Some(&out) => {
                    self.stats.forwarded += 1;
                    ctx.transmit(out, frame);
                }
                None => self.stats.dropped += 1,
            },
            SwitchKind::CutThroughL2 => {
                if let Ok((eth, _)) = EthernetHeader::parse(frame.bytes()) {
                    self.fdb.insert(eth.src, in_port);
                    match self.fdb.get(&eth.dst) {
                        Some(&out) if !eth.dst.is_multicast() && out != in_port => {
                            self.stats.forwarded += 1;
                            ctx.transmit(out, frame);
                        }
                        Some(&out) if !eth.dst.is_multicast() && out == in_port => {
                            self.stats.dropped += 1;
                        }
                        _ => {
                            // Flood replication shares one buffer: each
                            // clone is a refcount bump, not a byte copy.
                            self.stats.flooded += 1;
                            for p in 0..ctx.port_count() {
                                if p != in_port {
                                    ctx.transmit(p, frame.clone());
                                }
                            }
                        }
                    }
                } else {
                    self.stats.dropped += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{LinkConfig, NetSim, NodeId, PortConfig};
    use crate::sink::CountingSink;
    use pos_packet::builder::UdpFrameSpec;
    use std::net::Ipv4Addr;

    fn frame() -> Frame {
        UdpFrameSpec {
            src_mac: MacAddr::testbed_host(1),
            dst_mac: MacAddr::testbed_host(2),
            src_ip: Ipv4Addr::new(10, 0, 0, 1),
            dst_ip: Ipv4Addr::new(10, 0, 0, 2),
            src_port: 1,
            dst_port: 2,
            ttl: 64,
        }
        .build_with_wire_size(64, &[])
        .unwrap()
    }

    struct OneShot;
    impl Element for OneShot {
        fn on_start(&mut self, ctx: &mut SimCtx<'_>) {
            ctx.transmit(0, frame());
        }
        fn on_frame(&mut self, _: usize, _: Frame, _: &mut SimCtx<'_>) {}
    }

    fn sim_through_switch(mut sw: HardwareSwitch, program_circuit: bool) -> (NetSim, NodeId, u64) {
        if program_circuit {
            sw.add_circuit(0, 1);
        }
        let mut sim = NetSim::new(2);
        let src = sim.add_element("src", Box::new(OneShot), &[PortConfig::ten_gbe()]);
        let dst = sim.add_element(
            "dst",
            Box::new(CountingSink::new()),
            &[PortConfig::ten_gbe()],
        );
        let node = sim.add_element(
            "switch",
            Box::new(sw),
            &[PortConfig::ten_gbe(), PortConfig::ten_gbe()],
        );
        sim.connect((src, 0), (node, 0), LinkConfig::direct_cable());
        sim.connect((node, 1), (dst, 0), LinkConfig::direct_cable());
        sim.run_to_idle();
        let arrival = sim.now().as_nanos();
        (sim, dst, arrival)
    }

    #[test]
    fn l1_circuit_forwards_with_15ns() {
        let (sim, dst, arrival) =
            sim_through_switch(HardwareSwitch::new(SwitchKind::OpticalL1), true);
        assert_eq!(sim.port_counters(dst, 0).rx_frames, 1);
        // 68 ns serialization + 10 ns cable + 15 ns switch + 68 + 10.
        assert_eq!(arrival, 68 + 10 + 15 + 68 + 10);
    }

    #[test]
    fn l2_cut_through_costs_300ns() {
        let (sim, dst, arrival) =
            sim_through_switch(HardwareSwitch::new(SwitchKind::CutThroughL2), false);
        assert_eq!(sim.port_counters(dst, 0).rx_frames, 1);
        assert_eq!(arrival, 68 + 10 + 300 + 68 + 10);
    }

    #[test]
    fn l1_without_circuit_drops() {
        let (sim, dst, _) = sim_through_switch(HardwareSwitch::new(SwitchKind::OpticalL1), false);
        assert_eq!(sim.port_counters(dst, 0).rx_frames, 0);
        let sw = sim.element_as::<HardwareSwitch>(2).unwrap();
        assert_eq!(sw.stats.dropped, 1);
    }

    #[test]
    fn l2_unknown_floods() {
        let (sim, _, _) = sim_through_switch(HardwareSwitch::new(SwitchKind::CutThroughL2), false);
        let sw = sim.element_as::<HardwareSwitch>(2).unwrap();
        assert_eq!(sw.stats.flooded, 1);
    }

    #[test]
    #[should_panic(expected = "optical L1")]
    fn circuits_on_l2_panic() {
        HardwareSwitch::new(SwitchKind::CutThroughL2).add_circuit(0, 1);
    }

    #[test]
    fn delay_ordering_matches_paper() {
        // direct (0) < L1 (15 ns) < L2 cut-through (300 ns)
        assert!(
            SwitchKind::OpticalL1.forwarding_delay() < SwitchKind::CutThroughL2.forwarding_delay()
        );
    }
}
