//! The event-driven simulation engine.
//!
//! Topology = elements × ports × links. The engine owns everything that is
//! physics (serialization at line rate, propagation delay, queue overflow,
//! fault injection); an [`Element`] implements everything that is logic
//! (forwarding decisions, service times, measurement).
//!
//! # Event flow
//!
//! `Element::transmit` → tx queue → (serialization delay) → fault injector
//! → (propagation delay) → peer port counters → `Element::on_frame`.
//!
//! Elements never see corrupted frames: like a real NIC, the receiving port
//! discards frames with a broken FCS and counts an `rx_error`.

use crate::fault::{FaultInjector, FaultOutcome};
pub use crate::port::PortConfig;
use crate::port::{Port, PortCounters};
use pos_packet::builder::Frame;
use pos_simkernel::{EventQueue, SimDuration, SimRng, SimTime, Trace, TraceLevel};
use std::collections::HashMap;

/// Index of an element in the simulation.
pub type NodeId = usize;

/// Events the engine processes.
#[derive(Debug)]
pub enum Event {
    /// A port finished serializing its in-flight frame.
    TxComplete {
        /// The transmitting element.
        node: NodeId,
        /// Its port index.
        port: usize,
    },
    /// A frame arrives at a port after crossing a link.
    FrameArrival {
        /// The receiving element.
        node: NodeId,
        /// Its port index.
        port: usize,
        /// The frame.
        frame: Frame,
        /// Whether fault injection corrupted the frame in flight (the
        /// receiving port discards it as an FCS error).
        corrupted: bool,
    },
    /// An element-requested timer fires.
    Timer {
        /// The element whose timer fired.
        node: NodeId,
        /// The token it was armed with.
        token: u64,
    },
}

/// Configuration of a link between two ports.
#[derive(Debug, Clone)]
pub struct LinkConfig {
    /// One-way propagation delay.
    pub propagation: SimDuration,
    /// Fault injection applied to frames in both directions.
    pub fault: crate::fault::FaultConfig,
}

impl LinkConfig {
    /// A short direct cable between experiment hosts — the pos testbed's
    /// preferred wiring (§4.2: "direct wiring between experiment hosts").
    /// 2 m of fiber ≈ 10 ns propagation.
    pub fn direct_cable() -> LinkConfig {
        LinkConfig {
            propagation: SimDuration::from_nanos(10),
            fault: crate::fault::FaultConfig::none(),
        }
    }

    /// A virtual "link" inside a hypervisor: a shared-memory hop, nominally
    /// instantaneous; we charge 1 ns to preserve event ordering.
    pub fn memory_hop() -> LinkConfig {
        LinkConfig {
            propagation: SimDuration::from_nanos(1),
            fault: crate::fault::FaultConfig::none(),
        }
    }

    /// Replaces the fault configuration.
    pub fn with_fault(mut self, fault: crate::fault::FaultConfig) -> LinkConfig {
        self.fault = fault;
        self
    }
}

struct Link {
    a: (NodeId, usize),
    b: (NodeId, usize),
    propagation: SimDuration,
    injector: FaultInjector,
}

/// Engine state an element may touch during a callback.
pub struct SimCtx<'a> {
    node: NodeId,
    shared: &'a mut Shared,
}

impl SimCtx<'_> {
    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.shared.queue.now()
    }

    /// Hands a frame to one of the element's own ports for transmission.
    /// Returns `false` if the transmit queue was full and the frame dropped.
    pub fn transmit(&mut self, port: usize, frame: Frame) -> bool {
        self.shared.start_tx(self.node, port, frame)
    }

    /// Schedules [`Element::on_timer`] with `token` after `delay`.
    pub fn set_timer(&mut self, delay: SimDuration, token: u64) {
        let at = self.now() + delay;
        self.shared.queue.schedule(
            at,
            Event::Timer {
                node: self.node,
                token,
            },
        );
    }

    /// Appends a line to the simulation trace.
    pub fn trace(&mut self, level: TraceLevel, message: impl Into<String>) {
        let now = self.now();
        let name = self.shared.names[self.node].clone();
        self.shared.trace.log(now, level, name, message);
    }

    /// Counters of one of the element's own ports.
    pub fn port_counters(&self, port: usize) -> PortCounters {
        self.shared.ports[self.node][port].counters
    }

    /// Number of ports this element has.
    pub fn port_count(&self) -> usize {
        self.shared.ports[self.node].len()
    }
}

/// Object-safe downcasting support, blanket-implemented for every type.
///
/// Lets callers retrieve concrete element state (counters, latency samples)
/// from the simulation after a run via [`NetSim::element_as`].
pub trait AsAny {
    /// `self` as [`std::any::Any`].
    fn as_any(&self) -> &dyn std::any::Any;
    /// `self` as mutable [`std::any::Any`].
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any;
}

impl<T: std::any::Any> AsAny for T {
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// A network element: anything that terminates or forwards frames.
pub trait Element: AsAny {
    /// Called once when the simulation starts; schedule initial timers here.
    fn on_start(&mut self, _ctx: &mut SimCtx<'_>) {}

    /// A frame arrived intact on `port`.
    fn on_frame(&mut self, port: usize, frame: Frame, ctx: &mut SimCtx<'_>);

    /// A timer set via [`SimCtx::set_timer`] fired.
    fn on_timer(&mut self, _token: u64, _ctx: &mut SimCtx<'_>) {}
}

struct Shared {
    queue: EventQueue<Event>,
    ports: Vec<Vec<Port>>,
    names: Vec<String>,
    links: Vec<Link>,
    /// port -> link carrying it.
    port_link: HashMap<(NodeId, usize), usize>,
    rng: SimRng,
    trace: Trace,
}

impl Shared {
    /// Enqueues or begins transmitting `frame` on `(node, port)`.
    fn start_tx(&mut self, node: NodeId, port: usize, frame: Frame) -> bool {
        let p = &mut self.ports[node][port];
        if p.is_busy() {
            if p.tx_queue.len() >= p.config.tx_queue_frames {
                p.counters.tx_queue_drops += 1;
                return false;
            }
            p.tx_queue.push_back(frame);
            return true;
        }
        self.begin_serialization(node, port, frame);
        true
    }

    fn begin_serialization(&mut self, node: NodeId, port: usize, frame: Frame) {
        let now = self.queue.now();
        let p = &mut self.ports[node][port];
        let ser = p.config.serialization_time(frame.wire_size());
        p.in_flight = Some(frame);
        p.busy_until = now + ser;
        self.queue
            .schedule(now + ser, Event::TxComplete { node, port });
    }

    /// Serialization finished: deliver across the link, start the next frame.
    fn complete_tx(&mut self, node: NodeId, port: usize) {
        let now = self.queue.now();
        let frame = {
            let p = &mut self.ports[node][port];
            let frame = p
                .in_flight
                .take()
                .expect("TxComplete for a port with no in-flight frame");
            p.counters.tx_frames += 1;
            p.counters.tx_bytes += frame.wire_size() as u64;
            frame
        };

        // Hand the frame to the link, if the port is wired to one.
        if let Some(&link_idx) = self.port_link.get(&(node, port)) {
            let link = &mut self.links[link_idx];
            let peer = if link.a == (node, port) {
                link.b
            } else {
                link.a
            };
            let outcome = link.injector.apply(now, frame.wire_size(), &mut self.rng);
            match outcome {
                FaultOutcome::Dropped => {
                    self.trace.log(
                        now,
                        TraceLevel::Debug,
                        self.names[node].clone(),
                        "fault injector dropped a frame",
                    );
                }
                deliver => {
                    let corrupted = deliver == FaultOutcome::Corrupted;
                    self.queue.schedule(
                        now + link.propagation,
                        Event::FrameArrival {
                            node: peer.0,
                            port: peer.1,
                            frame,
                            corrupted,
                        },
                    );
                }
            }
        } else {
            self.trace.log(
                now,
                TraceLevel::Warn,
                self.names[node].clone(),
                format!("frame transmitted on unconnected port {port}"),
            );
        }

        // Start serializing the next queued frame, if any.
        if let Some(next) = self.ports[node][port].tx_queue.pop_front() {
            self.begin_serialization(node, port, next);
        }
    }
}

/// The network simulation: elements, ports, links, and the event loop.
pub struct NetSim {
    elements: Vec<Option<Box<dyn Element>>>,
    shared: Shared,
    started: bool,
}

impl NetSim {
    /// Creates an empty simulation with a deterministic seed.
    pub fn new(seed: u64) -> NetSim {
        NetSim {
            elements: Vec::new(),
            shared: Shared {
                queue: EventQueue::new(),
                ports: Vec::new(),
                names: Vec::new(),
                links: Vec::new(),
                port_link: HashMap::new(),
                rng: SimRng::new(seed).derive("netsim"),
                trace: Trace::default(),
            },
            started: false,
        }
    }

    /// Adds an element with one port per entry of `ports`.
    pub fn add_element(
        &mut self,
        name: impl Into<String>,
        element: Box<dyn Element>,
        ports: &[PortConfig],
    ) -> NodeId {
        assert!(
            !self.started,
            "cannot add elements after the simulation started"
        );
        let id = self.elements.len();
        self.elements.push(Some(element));
        self.shared.names.push(name.into());
        self.shared
            .ports
            .push(ports.iter().map(|c| Port::new(*c)).collect());
        id
    }

    /// Wires two ports together with a full-duplex link.
    ///
    /// # Panics
    /// Panics if either port does not exist or is already wired — the pos
    /// testbed's direct cabling plugs each port into exactly one cable.
    pub fn connect(&mut self, a: (NodeId, usize), b: (NodeId, usize), config: LinkConfig) {
        for &(node, port) in &[a, b] {
            assert!(
                node < self.shared.ports.len() && port < self.shared.ports[node].len(),
                "connect: port {port} of node {node} does not exist"
            );
            assert!(
                !self.shared.port_link.contains_key(&(node, port)),
                "connect: port {port} of node {node} ({}) already wired",
                self.shared.names[node]
            );
        }
        let idx = self.shared.links.len();
        self.shared.links.push(Link {
            a,
            b,
            propagation: config.propagation,
            injector: FaultInjector::new(config.fault),
        });
        self.shared.port_link.insert(a, idx);
        self.shared.port_link.insert(b, idx);
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.shared.queue.now()
    }

    /// Counters of a port.
    pub fn port_counters(&self, node: NodeId, port: usize) -> PortCounters {
        self.shared.ports[node][port].counters
    }

    /// Fault injector statistics of the link wired to `(node, port)`:
    /// `(dropped, corrupted)`.
    pub fn link_fault_stats(&self, node: NodeId, port: usize) -> Option<(u64, u64)> {
        let idx = *self.shared.port_link.get(&(node, port))?;
        let link = &self.shared.links[idx];
        Some((link.injector.dropped, link.injector.corrupted))
    }

    /// Read access to an element (for extracting measurements afterwards).
    ///
    /// # Panics
    /// Panics if called re-entrantly for a node currently in a callback.
    pub fn element(&self, node: NodeId) -> &dyn Element {
        self.elements[node]
            .as_deref()
            .expect("element borrowed re-entrantly")
    }

    /// Mutable access to an element.
    pub fn element_mut(&mut self, node: NodeId) -> &mut (dyn Element + 'static) {
        self.elements[node]
            .as_deref_mut()
            .expect("element borrowed re-entrantly")
    }

    /// Downcasts an element to its concrete type, e.g. to read a sink's
    /// counters or a router's service statistics after a run.
    pub fn element_as<T: Element + 'static>(&self, node: NodeId) -> Option<&T> {
        self.element(node).as_any().downcast_ref::<T>()
    }

    /// Mutable variant of [`Self::element_as`].
    pub fn element_as_mut<T: Element + 'static>(&mut self, node: NodeId) -> Option<&mut T> {
        self.element_mut(node).as_any_mut().downcast_mut::<T>()
    }

    /// The simulation trace.
    pub fn trace(&self) -> &Trace {
        &self.shared.trace
    }

    /// Total number of processed events.
    pub fn events_processed(&self) -> u64 {
        self.shared.queue.events_processed()
    }

    fn start_if_needed(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        for node in 0..self.elements.len() {
            self.with_element(node, |el, ctx| el.on_start(ctx));
        }
    }

    /// Runs `f` with the element temporarily taken out of the table, so the
    /// callback can borrow engine state mutably without aliasing.
    fn with_element(&mut self, node: NodeId, f: impl FnOnce(&mut dyn Element, &mut SimCtx<'_>)) {
        let mut el = self.elements[node]
            .take()
            .expect("element borrowed re-entrantly");
        let mut ctx = SimCtx {
            node,
            shared: &mut self.shared,
        };
        f(el.as_mut(), &mut ctx);
        self.elements[node] = Some(el);
    }

    fn dispatch(&mut self, event: Event) {
        match event {
            Event::TxComplete { node, port } => self.shared.complete_tx(node, port),
            Event::FrameArrival {
                node,
                port,
                frame,
                corrupted,
            } => {
                let p = &mut self.shared.ports[node][port];
                if corrupted {
                    p.counters.rx_errors += 1;
                    return;
                }
                p.counters.rx_frames += 1;
                p.counters.rx_bytes += frame.wire_size() as u64;
                self.with_element(node, |el, ctx| el.on_frame(port, frame, ctx));
            }
            Event::Timer { node, token } => {
                self.with_element(node, |el, ctx| el.on_timer(token, ctx));
            }
        }
    }

    /// Processes events up to and including `deadline`; the clock does not
    /// advance past it. Returns the number of events processed.
    pub fn run_until(&mut self, deadline: SimTime) -> u64 {
        self.start_if_needed();
        let before = self.shared.queue.events_processed();
        while let Some((_, event)) = self.shared.queue.pop_until(deadline) {
            self.dispatch(event);
        }
        self.shared.queue.events_processed() - before
    }

    /// Runs until no events remain. Returns the number of events processed.
    /// Generators that re-arm forever will make this loop forever; prefer
    /// [`Self::run_until`] for open-loop traffic.
    pub fn run_to_idle(&mut self) -> u64 {
        self.run_until(SimTime::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::CountingSink;
    use pos_packet::builder::{Frame, UdpFrameSpec};
    use pos_packet::MacAddr;
    use std::net::Ipv4Addr;

    fn test_frame(wire_size: usize) -> Frame {
        UdpFrameSpec {
            src_mac: MacAddr::testbed_host(1),
            dst_mac: MacAddr::testbed_host(2),
            src_ip: Ipv4Addr::new(10, 0, 0, 1),
            dst_ip: Ipv4Addr::new(10, 0, 1, 1),
            src_port: 42,
            dst_port: 43,
            ttl: 64,
        }
        .build_with_wire_size(wire_size, &[])
        .unwrap()
    }

    /// Element that sends `n` frames back-to-back at start.
    struct Blaster {
        n: usize,
        wire_size: usize,
    }

    impl Element for Blaster {
        fn on_start(&mut self, ctx: &mut SimCtx<'_>) {
            for _ in 0..self.n {
                ctx.transmit(0, test_frame(self.wire_size));
            }
        }
        fn on_frame(&mut self, _port: usize, _frame: Frame, _ctx: &mut SimCtx<'_>) {}
    }

    fn two_node_sim(n: usize, wire_size: usize, queue: usize) -> (NetSim, NodeId, NodeId) {
        let mut sim = NetSim::new(7);
        let mut cfg = PortConfig::ten_gbe();
        cfg.tx_queue_frames = queue;
        let src = sim.add_element("src", Box::new(Blaster { n, wire_size }), &[cfg]);
        let dst = sim.add_element(
            "dst",
            Box::new(CountingSink::new()),
            &[PortConfig::ten_gbe()],
        );
        sim.connect((src, 0), (dst, 0), LinkConfig::direct_cable());
        (sim, src, dst)
    }

    #[test]
    fn frames_cross_the_link() {
        let (mut sim, src, dst) = two_node_sim(10, 64, 100);
        sim.run_to_idle();
        assert_eq!(sim.port_counters(src, 0).tx_frames, 10);
        assert_eq!(sim.port_counters(dst, 0).rx_frames, 10);
        assert_eq!(sim.port_counters(dst, 0).rx_bytes, 640);
    }

    #[test]
    fn serialization_paces_back_to_back_frames() {
        // 10 frames of 64 B at 10 Gbit/s: the last bit leaves at
        // 10 * 68 ns (rounded serialization); arrival 10 ns later.
        let (mut sim, _, _) = two_node_sim(10, 64, 100);
        sim.run_to_idle();
        assert_eq!(sim.now().as_nanos(), 10 * 68 + 10);
    }

    #[test]
    fn queue_overflow_drops_and_counts() {
        // Queue of 4 + 1 in flight = 5 accepted, 5 dropped.
        let (mut sim, src, dst) = two_node_sim(10, 64, 4);
        sim.run_to_idle();
        let c = sim.port_counters(src, 0);
        assert_eq!(c.tx_queue_drops, 5);
        assert_eq!(c.tx_frames, 5);
        assert_eq!(sim.port_counters(dst, 0).rx_frames, 5);
    }

    #[test]
    fn fault_injected_corruption_counts_rx_errors() {
        let mut sim = NetSim::new(7);
        let src = sim.add_element(
            "src",
            Box::new(Blaster {
                n: 1000,
                wire_size: 64,
            }),
            &[PortConfig {
                tx_queue_frames: 1000,
                ..PortConfig::ten_gbe()
            }],
        );
        let dst = sim.add_element(
            "dst",
            Box::new(CountingSink::new()),
            &[PortConfig::ten_gbe()],
        );
        let mut fault = crate::fault::FaultConfig::none();
        fault.corrupt_chance = 0.5;
        sim.connect(
            (src, 0),
            (dst, 0),
            LinkConfig::direct_cable().with_fault(fault),
        );
        sim.run_to_idle();
        let c = sim.port_counters(dst, 0);
        assert_eq!(c.rx_frames + c.rx_errors, 1000);
        assert!(
            c.rx_errors > 300,
            "expected ~500 errors, got {}",
            c.rx_errors
        );
        let (dropped, corrupted) = sim.link_fault_stats(src, 0).unwrap();
        assert_eq!(dropped, 0);
        assert_eq!(corrupted, c.rx_errors);
    }

    #[test]
    fn unconnected_port_traces_warning() {
        let mut sim = NetSim::new(7);
        let _ = sim.add_element(
            "lonely",
            Box::new(Blaster {
                n: 1,
                wire_size: 64,
            }),
            &[PortConfig::ten_gbe()],
        );
        sim.run_to_idle();
        assert!(sim
            .trace()
            .iter()
            .any(|e| e.message.contains("unconnected port")));
    }

    #[test]
    fn timers_fire_in_order() {
        struct TimerElement {
            fired: Vec<u64>,
        }
        impl Element for TimerElement {
            fn on_start(&mut self, ctx: &mut SimCtx<'_>) {
                ctx.set_timer(SimDuration::from_millis(2), 2);
                ctx.set_timer(SimDuration::from_millis(1), 1);
                ctx.set_timer(SimDuration::from_millis(3), 3);
            }
            fn on_frame(&mut self, _: usize, _: Frame, _: &mut SimCtx<'_>) {}
            fn on_timer(&mut self, token: u64, _: &mut SimCtx<'_>) {
                self.fired.push(token);
            }
        }
        let mut sim = NetSim::new(1);
        let n = sim.add_element("t", Box::new(TimerElement { fired: vec![] }), &[]);
        sim.run_to_idle();
        assert_eq!(sim.events_processed(), 3);
        let t = sim.element_as::<TimerElement>(n).unwrap();
        assert_eq!(t.fired, vec![1, 2, 3]);
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let (mut sim, _, dst) = two_node_sim(100, 1500, 200);
        // 1500 B at 10G = 1216 ns each; in 5000 ns about 4 frames arrive.
        sim.run_until(SimTime::from_nanos(5_000));
        let got = sim.port_counters(dst, 0).rx_frames;
        assert!((3..=5).contains(&got), "got {got}");
        sim.run_to_idle();
        assert_eq!(sim.port_counters(dst, 0).rx_frames, 100);
    }

    #[test]
    #[should_panic(expected = "already wired")]
    fn double_wiring_panics() {
        let mut sim = NetSim::new(1);
        let a = sim.add_element("a", Box::new(CountingSink::new()), &[PortConfig::ten_gbe()]);
        let b = sim.add_element(
            "b",
            Box::new(CountingSink::new()),
            &[PortConfig::ten_gbe(), PortConfig::ten_gbe()],
        );
        sim.connect((a, 0), (b, 0), LinkConfig::direct_cable());
        sim.connect((a, 0), (b, 1), LinkConfig::direct_cable());
    }

    #[test]
    #[should_panic(expected = "does not exist")]
    fn wiring_missing_port_panics() {
        let mut sim = NetSim::new(1);
        let a = sim.add_element("a", Box::new(CountingSink::new()), &[PortConfig::ten_gbe()]);
        sim.connect((a, 0), (a, 5), LinkConfig::direct_cable());
    }

    #[test]
    fn frame_conservation_under_random_faults() {
        // Invariant: every transmitted frame is accounted for exactly once:
        // received intact, discarded as an FCS error, or dropped by the
        // link's injector. Checked across a grid of fault configurations.
        for seed in 0..20u64 {
            let mut sim = NetSim::new(seed);
            let n = 2_000;
            let src = sim.add_element(
                "src",
                Box::new(Blaster { n, wire_size: 64 }),
                &[PortConfig {
                    tx_queue_frames: n,
                    ..PortConfig::ten_gbe()
                }],
            );
            let dst = sim.add_element(
                "dst",
                Box::new(CountingSink::new()),
                &[PortConfig::ten_gbe()],
            );
            let mut fault = crate::fault::FaultConfig::none();
            fault.drop_chance = (seed % 5) as f64 * 0.1;
            fault.corrupt_chance = (seed % 3) as f64 * 0.1;
            sim.connect(
                (src, 0),
                (dst, 0),
                LinkConfig::direct_cable().with_fault(fault),
            );
            sim.run_to_idle();
            let tx = sim.port_counters(src, 0);
            let rx = sim.port_counters(dst, 0);
            let (inj_dropped, inj_corrupted) = sim.link_fault_stats(src, 0).unwrap();
            assert_eq!(tx.tx_frames, n as u64, "seed {seed}: all frames serialized");
            assert_eq!(
                tx.tx_frames,
                rx.rx_frames + rx.rx_errors + inj_dropped,
                "seed {seed}: conservation violated"
            );
            assert_eq!(
                rx.rx_errors, inj_corrupted,
                "seed {seed}: corruption accounting"
            );
        }
    }

    #[test]
    fn determinism_same_seed_same_outcome() {
        let run = |seed: u64| -> (u64, u64) {
            let mut sim = NetSim::new(seed);
            let src = sim.add_element(
                "src",
                Box::new(Blaster {
                    n: 500,
                    wire_size: 64,
                }),
                &[PortConfig {
                    tx_queue_frames: 500,
                    ..PortConfig::ten_gbe()
                }],
            );
            let dst = sim.add_element(
                "dst",
                Box::new(CountingSink::new()),
                &[PortConfig::ten_gbe()],
            );
            let mut fault = crate::fault::FaultConfig::none();
            fault.drop_chance = 0.3;
            sim.connect(
                (src, 0),
                (dst, 0),
                LinkConfig::direct_cable().with_fault(fault),
            );
            sim.run_to_idle();
            let c = sim.port_counters(dst, 0);
            (c.rx_frames, sim.now().as_nanos())
        };
        assert_eq!(run(99), run(99));
        assert_ne!(run(99).0, run(100).0);
    }
}
