//! The event-driven simulation engine.
//!
//! Topology = elements × ports × links. The engine owns everything that is
//! physics (serialization at line rate, propagation delay, queue overflow,
//! fault injection); an [`Element`] implements everything that is logic
//! (forwarding decisions, service times, measurement).
//!
//! # Event flow
//!
//! `Element::transmit` → tx queue → (serialization delay) → fault injector
//! → (propagation delay) → peer port counters → `Element::on_frame`.
//!
//! Elements never see corrupted frames: like a real NIC, the receiving port
//! discards frames with a broken FCS and counts an `rx_error`.

use crate::fault::{FaultInjector, FaultOutcome};
pub use crate::port::PortConfig;
use crate::port::{Port, PortCounters};
use pos_packet::builder::Frame;
use pos_simkernel::{EventQueue, SimDuration, SimRng, SimTime, Trace, TraceLevel};
use std::sync::Arc;

/// Index of an element in the simulation.
pub type NodeId = usize;

/// Events the engine processes.
#[derive(Debug)]
pub enum Event {
    /// A port finished serializing its in-flight frame.
    TxComplete {
        /// The transmitting element.
        node: NodeId,
        /// Its port index.
        port: usize,
    },
    /// A frame arrives at a port after crossing a link.
    FrameArrival {
        /// The receiving element.
        node: NodeId,
        /// Its port index.
        port: usize,
        /// The frame.
        frame: Frame,
        /// Whether fault injection corrupted the frame in flight (the
        /// receiving port discards it as an FCS error).
        corrupted: bool,
    },
    /// An element-requested timer fires.
    Timer {
        /// The element whose timer fired.
        node: NodeId,
        /// The token it was armed with.
        token: u64,
    },
}

/// Configuration of a link between two ports.
#[derive(Debug, Clone)]
pub struct LinkConfig {
    /// One-way propagation delay.
    pub propagation: SimDuration,
    /// Fault injection applied to frames in both directions.
    pub fault: crate::fault::FaultConfig,
}

impl LinkConfig {
    /// A short direct cable between experiment hosts — the pos testbed's
    /// preferred wiring (§4.2: "direct wiring between experiment hosts").
    /// 2 m of fiber ≈ 10 ns propagation.
    pub fn direct_cable() -> LinkConfig {
        LinkConfig {
            propagation: SimDuration::from_nanos(10),
            fault: crate::fault::FaultConfig::none(),
        }
    }

    /// A virtual "link" inside a hypervisor: a shared-memory hop, nominally
    /// instantaneous; we charge 1 ns to preserve event ordering.
    pub fn memory_hop() -> LinkConfig {
        LinkConfig {
            propagation: SimDuration::from_nanos(1),
            fault: crate::fault::FaultConfig::none(),
        }
    }

    /// Replaces the fault configuration.
    pub fn with_fault(mut self, fault: crate::fault::FaultConfig) -> LinkConfig {
        self.fault = fault;
        self
    }
}

struct Link {
    a: (NodeId, usize),
    b: (NodeId, usize),
    propagation: SimDuration,
    injector: FaultInjector,
    /// True when the injector can never touch a frame (no fault mechanism
    /// configured). Such links deliver frames *cut-through*: the arrival is
    /// scheduled at transmit start and no `TxComplete` event is needed,
    /// halving the event count on the clean-path topologies that dominate
    /// benchmarks and campaigns.
    cut_through: bool,
    /// Frames arriving at endpoint `a` skip the event queue entirely and
    /// are delivered inline (see [`Element::inline_rx`]). Computed once at
    /// simulation start; only ever true on cut-through links.
    inline_a: bool,
    /// Same for endpoint `b`.
    inline_b: bool,
}

/// A frame accepted on a cut-through link whose receiver opted into
/// inline delivery: handed to the element from the drain loop with `at`
/// (its true arrival instant) as virtual time, never touching the queue.
struct InlineDelivery {
    node: NodeId,
    port: usize,
    frame: Frame,
    at: SimTime,
}

/// Engine state an element may touch during a callback.
pub struct SimCtx<'a> {
    node: NodeId,
    /// The element's view of the current instant. Equal to the event
    /// clock for event-driven callbacks; for inline frame deliveries it
    /// is the frame's true arrival time, which may lie ahead of the
    /// event clock.
    vnow: SimTime,
    shared: &'a mut Shared,
}

impl SimCtx<'_> {
    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.vnow
    }

    /// Hands a frame to one of the element's own ports for transmission.
    /// Returns `false` if the transmit queue was full and the frame dropped.
    pub fn transmit(&mut self, port: usize, frame: Frame) -> bool {
        self.shared.start_tx_at(self.node, port, frame, self.vnow)
    }

    /// Submits `frame` for transmission on `port` at the future instant
    /// `at`, returning whether it was accepted (queueing delay and
    /// tail-drop are resolved immediately). Only supported on ports whose
    /// link delivers cut-through (see [`Self::future_tx_capable`]); lets
    /// open-loop senders and timeline-folded servers emit a whole batch of
    /// paced frames from one event.
    ///
    /// # Panics
    /// Panics if `at` is in the past or the port's link does not deliver
    /// cut-through (fault injection needs completion-time events).
    pub fn transmit_at(&mut self, port: usize, frame: Frame, at: SimTime) -> bool {
        self.shared.start_tx_at(self.node, port, frame, at)
    }

    /// True when `port` is wired to a link that delivers cut-through (no
    /// fault injection), i.e. [`Self::transmit_at`] may be used on it.
    pub fn future_tx_capable(&self, port: usize) -> bool {
        let p = &self.shared.ports[self.node][port];
        matches!(p.link, Some(idx) if self.shared.links[idx].cut_through)
    }

    /// Schedules [`Element::on_timer`] with `token` after `delay`
    /// (relative to the element's view of the current instant).
    pub fn set_timer(&mut self, delay: SimDuration, token: u64) {
        let at = self.vnow + delay;
        self.shared.queue.schedule(
            at,
            Event::Timer {
                node: self.node,
                token,
            },
        );
    }

    /// Appends a line to the simulation trace. Below the active minimum
    /// level this returns before touching the element name or formatting
    /// anything — per-packet trace calls on a quiet sink cost one compare.
    pub fn trace(&mut self, level: TraceLevel, message: impl Into<String>) {
        if level < self.shared.trace.min_level() {
            return;
        }
        let now = self.now();
        let name = Arc::clone(&self.shared.names[self.node]);
        self.shared.trace.log(now, level, &*name, message);
    }

    /// Counters of one of the element's own ports.
    pub fn port_counters(&self, port: usize) -> PortCounters {
        self.shared.ports[self.node][port].counters
    }

    /// Number of ports this element has.
    pub fn port_count(&self) -> usize {
        self.shared.ports[self.node].len()
    }
}

/// Object-safe downcasting support, blanket-implemented for every type.
///
/// Lets callers retrieve concrete element state (counters, latency samples)
/// from the simulation after a run via [`NetSim::element_as`].
pub trait AsAny {
    /// `self` as [`std::any::Any`].
    fn as_any(&self) -> &dyn std::any::Any;
    /// `self` as mutable [`std::any::Any`].
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any;
}

impl<T: std::any::Any> AsAny for T {
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// A network element: anything that terminates or forwards frames.
pub trait Element: AsAny {
    /// Called once when the simulation starts; schedule initial timers here.
    fn on_start(&mut self, _ctx: &mut SimCtx<'_>) {}

    /// A frame arrived intact on `port`.
    fn on_frame(&mut self, port: usize, frame: Frame, ctx: &mut SimCtx<'_>);

    /// A timer set via [`SimCtx::set_timer`] fired.
    fn on_timer(&mut self, _token: u64, _ctx: &mut SimCtx<'_>) {}

    /// Whether frames arriving on `port` may be delivered *inline*: as
    /// soon as the sender commits the transmission, with the frame's true
    /// arrival instant as `ctx.now()`, instead of through a per-frame
    /// event at that instant. Inline delivery eliminates the event queue
    /// from the per-packet path — the dominant cost on clean topologies —
    /// but runs ahead of global event order, so it is only correct for
    /// handlers whose effects depend on nothing but their own state and
    /// the delivered frame + timestamp: pure measurement sinks, or
    /// servers whose outputs are future-dated transmissions
    /// ([`SimCtx::transmit_at`]). Arrival order is preserved per link but
    /// not across links. `all_ports_cut_through` reports whether every
    /// port of this element is wired fault-free — the precondition for
    /// timeline-folded servers. Queried once at simulation start; only
    /// honored on cut-through links. Default: never.
    fn inline_rx(&self, _port: usize, _all_ports_cut_through: bool) -> bool {
        false
    }
}

struct Shared {
    queue: EventQueue<Event>,
    ports: Vec<Vec<Port>>,
    /// Interned element names: trace lines bump a refcount, never copy.
    names: Vec<Arc<str>>,
    links: Vec<Link>,
    /// Frames awaiting inline delivery, in submission order. Drained by
    /// the run loop after every callback returns (never re-entrantly).
    pending_inline: std::collections::VecDeque<InlineDelivery>,
    /// Latest instant handed to any callback as virtual time — keeps
    /// [`NetSim::now`] meaningful when inline deliveries outrun the
    /// event clock.
    horizon: SimTime,
    rng: SimRng,
    trace: Trace,
}

impl Shared {
    /// Submits `frame` for transmission on `(node, port)` at instant `at`
    /// (which must be at or after the current instant).
    ///
    /// On a wired link with no fault injection the whole transmission is
    /// *cut-through*: the start instant, queueing delay, tail-drop decision
    /// and arrival are all computed here, no `TxComplete` event ever
    /// exists, and the port's "queue" is just the list of accepted start
    /// instants. Faulty or unconnected ports keep the eventful path — the
    /// fault injector's RNG draws (and the unconnected-port warning) must
    /// happen at completion time to preserve fault-injection outcomes —
    /// and reject future submissions.
    fn start_tx_at(&mut self, node: NodeId, port: usize, frame: Frame, at: SimTime) -> bool {
        debug_assert!(at >= self.queue.now(), "transmission submitted in the past");
        let cut_link = match self.ports[node][port].link {
            Some(idx) if self.links[idx].cut_through => Some(idx),
            _ => None,
        };
        if let Some(link_idx) = cut_link {
            let wire = frame.wire_size();
            let link = &self.links[link_idx];
            let (peer, inline) = if link.a == (node, port) {
                (link.b, link.inline_b)
            } else {
                (link.a, link.inline_a)
            };
            let propagation = link.propagation;
            let p = &mut self.ports[node][port];
            debug_assert!(p.in_flight.is_none() && p.tx_queue.is_empty());
            // Frames whose serialization began by `at` no longer occupy
            // the queue.
            while p.pending_starts.front().is_some_and(|&s| s <= at) {
                p.pending_starts.pop_front();
            }
            let start = if p.busy_until > at {
                if p.pending_starts.len() >= p.config.tx_queue_frames {
                    p.counters.tx_queue_drops += 1;
                    return false;
                }
                p.pending_starts.push_back(p.busy_until);
                p.busy_until
            } else {
                at
            };
            let done = start + p.config.serialization_time(wire);
            p.busy_until = done;
            p.counters.tx_frames += 1;
            p.counters.tx_bytes += wire as u64;
            if inline {
                self.pending_inline.push_back(InlineDelivery {
                    node: peer.0,
                    port: peer.1,
                    frame,
                    at: done + propagation,
                });
            } else {
                self.queue.schedule(
                    done + propagation,
                    Event::FrameArrival {
                        node: peer.0,
                        port: peer.1,
                        frame,
                        corrupted: false,
                    },
                );
            }
            return true;
        }
        assert!(
            at == self.queue.now(),
            "future transmission submitted on a port without cut-through delivery"
        );
        let p = &mut self.ports[node][port];
        if p.is_busy() {
            if p.tx_queue.len() >= p.config.tx_queue_frames {
                p.counters.tx_queue_drops += 1;
                return false;
            }
            p.tx_queue.push_back(frame);
            return true;
        }
        self.begin_serialization(node, port, frame);
        true
    }

    /// Starts serializing `frame` on an idle port along the eventful path
    /// (faulty link or unconnected port).
    fn begin_serialization(&mut self, node: NodeId, port: usize, frame: Frame) {
        let now = self.queue.now();
        let p = &mut self.ports[node][port];
        let ser = p.config.serialization_time(frame.wire_size());
        p.in_flight = Some(frame);
        p.busy_until = now + ser;
        self.queue
            .schedule(now + ser, Event::TxComplete { node, port });
    }

    /// Serialization finished: deliver across the link, start the next frame.
    fn complete_tx(&mut self, node: NodeId, port: usize) {
        let now = self.queue.now();
        let (frame, wired) = {
            let p = &mut self.ports[node][port];
            let frame = p
                .in_flight
                .take()
                .expect("TxComplete for a port with no in-flight frame");
            p.counters.tx_frames += 1;
            p.counters.tx_bytes += frame.wire_size() as u64;
            (frame, p.link)
        };

        // Hand the frame to the link, if the port is wired to one.
        if let Some(link_idx) = wired {
            let link = &mut self.links[link_idx];
            let peer = if link.a == (node, port) {
                link.b
            } else {
                link.a
            };
            let outcome = link.injector.apply(now, frame.wire_size(), &mut self.rng);
            match outcome {
                FaultOutcome::Dropped => {
                    self.trace.log(
                        now,
                        TraceLevel::Debug,
                        &*self.names[node],
                        "fault injector dropped a frame",
                    );
                }
                deliver => {
                    let corrupted = deliver == FaultOutcome::Corrupted;
                    self.queue.schedule(
                        now + link.propagation,
                        Event::FrameArrival {
                            node: peer.0,
                            port: peer.1,
                            frame,
                            corrupted,
                        },
                    );
                }
            }
        } else {
            self.trace.log(
                now,
                TraceLevel::Warn,
                &*self.names[node],
                format!("frame transmitted on unconnected port {port}"),
            );
        }

        // Start serializing the next queued frame, if any.
        if let Some(next) = self.ports[node][port].tx_queue.pop_front() {
            self.begin_serialization(node, port, next);
        }
    }
}

/// The network simulation: elements, ports, links, and the event loop.
pub struct NetSim {
    elements: Vec<Option<Box<dyn Element>>>,
    shared: Shared,
    started: bool,
    /// Reusable buffer for batch-draining one instant of the event queue.
    batch_buf: Vec<Event>,
    /// Scratch for inline deliveries due after the current run deadline;
    /// swapped back into `pending_inline` after each drain.
    deferred_inline: std::collections::VecDeque<InlineDelivery>,
}

impl NetSim {
    /// Creates an empty simulation with a deterministic seed.
    pub fn new(seed: u64) -> NetSim {
        NetSim {
            elements: Vec::new(),
            shared: Shared {
                queue: EventQueue::new(),
                ports: Vec::new(),
                names: Vec::new(),
                links: Vec::new(),
                pending_inline: std::collections::VecDeque::new(),
                horizon: SimTime::ZERO,
                rng: SimRng::new(seed).derive("netsim"),
                trace: Trace::default(),
            },
            started: false,
            batch_buf: Vec::new(),
            deferred_inline: std::collections::VecDeque::new(),
        }
    }

    /// Adds an element with one port per entry of `ports`.
    pub fn add_element(
        &mut self,
        name: impl Into<String>,
        element: Box<dyn Element>,
        ports: &[PortConfig],
    ) -> NodeId {
        assert!(
            !self.started,
            "cannot add elements after the simulation started"
        );
        let id = self.elements.len();
        self.elements.push(Some(element));
        self.shared.names.push(Arc::from(name.into()));
        self.shared
            .ports
            .push(ports.iter().map(|c| Port::new(*c)).collect());
        id
    }

    /// Wires two ports together with a full-duplex link.
    ///
    /// # Panics
    /// Panics if either port does not exist or is already wired — the pos
    /// testbed's direct cabling plugs each port into exactly one cable.
    pub fn connect(&mut self, a: (NodeId, usize), b: (NodeId, usize), config: LinkConfig) {
        for &(node, port) in &[a, b] {
            assert!(
                node < self.shared.ports.len() && port < self.shared.ports[node].len(),
                "connect: port {port} of node {node} does not exist"
            );
            assert!(
                self.shared.ports[node][port].link.is_none(),
                "connect: port {port} of node {node} ({}) already wired",
                self.shared.names[node]
            );
        }
        let idx = self.shared.links.len();
        let cut_through = config.fault.is_none();
        self.shared.links.push(Link {
            a,
            b,
            propagation: config.propagation,
            injector: FaultInjector::new(config.fault),
            cut_through,
            inline_a: false,
            inline_b: false,
        });
        self.shared.ports[a.0][a.1].link = Some(idx);
        self.shared.ports[b.0][b.1].link = Some(idx);
    }

    /// Current virtual time: the latest instant any callback has observed.
    /// With inline deliveries this can run ahead of the event clock.
    pub fn now(&self) -> SimTime {
        self.shared.queue.now().max(self.shared.horizon)
    }

    /// Counters of a port.
    pub fn port_counters(&self, node: NodeId, port: usize) -> PortCounters {
        self.shared.ports[node][port].counters
    }

    /// Fault injector statistics of the link wired to `(node, port)`:
    /// `(dropped, corrupted)`.
    pub fn link_fault_stats(&self, node: NodeId, port: usize) -> Option<(u64, u64)> {
        let idx = self.shared.ports.get(node)?.get(port)?.link?;
        let link = &self.shared.links[idx];
        Some((link.injector.dropped, link.injector.corrupted))
    }

    /// Read access to an element (for extracting measurements afterwards).
    ///
    /// # Panics
    /// Panics if called re-entrantly for a node currently in a callback.
    pub fn element(&self, node: NodeId) -> &dyn Element {
        self.elements[node]
            .as_deref()
            .expect("element borrowed re-entrantly")
    }

    /// Mutable access to an element.
    pub fn element_mut(&mut self, node: NodeId) -> &mut (dyn Element + 'static) {
        self.elements[node]
            .as_deref_mut()
            .expect("element borrowed re-entrantly")
    }

    /// Downcasts an element to its concrete type, e.g. to read a sink's
    /// counters or a router's service statistics after a run.
    pub fn element_as<T: Element + 'static>(&self, node: NodeId) -> Option<&T> {
        self.element(node).as_any().downcast_ref::<T>()
    }

    /// Mutable variant of [`Self::element_as`].
    pub fn element_as_mut<T: Element + 'static>(&mut self, node: NodeId) -> Option<&mut T> {
        self.element_mut(node).as_any_mut().downcast_mut::<T>()
    }

    /// The simulation trace.
    pub fn trace(&self) -> &Trace {
        &self.shared.trace
    }

    /// Total number of processed events.
    pub fn events_processed(&self) -> u64 {
        self.shared.queue.events_processed()
    }

    fn start_if_needed(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        // Wiring is complete: resolve which link endpoints deliver inline.
        // Only cut-through links qualify, and only when the receiving
        // element opts in for that port.
        let full_ct: Vec<bool> = (0..self.elements.len())
            .map(|n| {
                self.shared.ports[n]
                    .iter()
                    .all(|p| matches!(p.link, Some(i) if self.shared.links[i].cut_through))
            })
            .collect();
        for idx in 0..self.shared.links.len() {
            let (a, b, cut) = {
                let l = &self.shared.links[idx];
                (l.a, l.b, l.cut_through)
            };
            if !cut {
                continue;
            }
            let inline_of = |els: &[Option<Box<dyn Element>>], (node, port): (NodeId, usize)| {
                els[node]
                    .as_deref()
                    .expect("element present at start")
                    .inline_rx(port, full_ct[node])
            };
            self.shared.links[idx].inline_a = inline_of(&self.elements, a);
            self.shared.links[idx].inline_b = inline_of(&self.elements, b);
        }
        for node in 0..self.elements.len() {
            let now = self.shared.queue.now();
            self.with_element(node, now, |el, ctx| el.on_start(ctx));
        }
    }

    /// Runs `f` with the element temporarily taken out of the table, so the
    /// callback can borrow engine state mutably without aliasing. `vnow` is
    /// the virtual instant the callback observes as `ctx.now()`.
    fn with_element(
        &mut self,
        node: NodeId,
        vnow: SimTime,
        f: impl FnOnce(&mut dyn Element, &mut SimCtx<'_>),
    ) {
        let mut el = self.elements[node]
            .take()
            .expect("element borrowed re-entrantly");
        if vnow > self.shared.horizon {
            self.shared.horizon = vnow;
        }
        let mut ctx = SimCtx {
            node,
            vnow,
            shared: &mut self.shared,
        };
        f(el.as_mut(), &mut ctx);
        self.elements[node] = Some(el);
    }

    /// Delivers pending inline frames due by `deadline`; later ones stay
    /// pending for the next run. Deliveries may submit new transmissions,
    /// which append further entries — the loop runs until quiescent.
    fn drain_inline(&mut self, deadline: SimTime) {
        if self.shared.pending_inline.is_empty() {
            return;
        }
        while let Some(d) = self.shared.pending_inline.pop_front() {
            if d.at > deadline {
                self.deferred_inline.push_back(d);
                continue;
            }
            let InlineDelivery {
                node,
                port,
                frame,
                at,
            } = d;
            let p = &mut self.shared.ports[node][port];
            p.counters.rx_frames += 1;
            p.counters.rx_bytes += frame.wire_size() as u64;
            self.with_element(node, at, |el, ctx| el.on_frame(port, frame, ctx));
        }
        std::mem::swap(&mut self.shared.pending_inline, &mut self.deferred_inline);
    }

    fn dispatch(&mut self, event: Event) {
        match event {
            Event::TxComplete { node, port } => self.shared.complete_tx(node, port),
            Event::FrameArrival {
                node,
                port,
                frame,
                corrupted,
            } => {
                let p = &mut self.shared.ports[node][port];
                if corrupted {
                    p.counters.rx_errors += 1;
                    return;
                }
                p.counters.rx_frames += 1;
                p.counters.rx_bytes += frame.wire_size() as u64;
                let now = self.shared.queue.now();
                self.with_element(node, now, |el, ctx| el.on_frame(port, frame, ctx));
            }
            Event::Timer { node, token } => {
                let now = self.shared.queue.now();
                self.with_element(node, now, |el, ctx| el.on_timer(token, ctx));
            }
        }
    }

    /// Processes events up to and including `deadline`; the clock does not
    /// advance past it. Returns the number of events processed.
    ///
    /// Events are drained one whole instant at a time into a reusable
    /// buffer and dispatched from it — identical order to per-event
    /// popping (same-instant events scheduled during the batch carry
    /// higher seqs and form the next batch), without a queue operation
    /// per event.
    pub fn run_until(&mut self, deadline: SimTime) -> u64 {
        self.start_if_needed();
        let before = self.shared.queue.events_processed();
        self.drain_inline(deadline);
        let mut batch = std::mem::take(&mut self.batch_buf);
        while self
            .shared
            .queue
            .pop_instant_until(deadline, &mut batch)
            .is_some()
        {
            for event in batch.drain(..) {
                self.dispatch(event);
                self.drain_inline(deadline);
            }
        }
        self.batch_buf = batch;
        self.shared.queue.events_processed() - before
    }

    /// Runs until no events remain. Returns the number of events processed.
    /// Generators that re-arm forever will make this loop forever; prefer
    /// [`Self::run_until`] for open-loop traffic.
    pub fn run_to_idle(&mut self) -> u64 {
        self.run_until(SimTime::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::CountingSink;
    use pos_packet::builder::{Frame, UdpFrameSpec};
    use pos_packet::MacAddr;
    use std::net::Ipv4Addr;

    fn test_frame(wire_size: usize) -> Frame {
        UdpFrameSpec {
            src_mac: MacAddr::testbed_host(1),
            dst_mac: MacAddr::testbed_host(2),
            src_ip: Ipv4Addr::new(10, 0, 0, 1),
            dst_ip: Ipv4Addr::new(10, 0, 1, 1),
            src_port: 42,
            dst_port: 43,
            ttl: 64,
        }
        .build_with_wire_size(wire_size, &[])
        .unwrap()
    }

    /// Element that sends `n` frames back-to-back at start.
    struct Blaster {
        n: usize,
        wire_size: usize,
    }

    impl Element for Blaster {
        fn on_start(&mut self, ctx: &mut SimCtx<'_>) {
            for _ in 0..self.n {
                ctx.transmit(0, test_frame(self.wire_size));
            }
        }
        fn on_frame(&mut self, _port: usize, _frame: Frame, _ctx: &mut SimCtx<'_>) {}
    }

    fn two_node_sim(n: usize, wire_size: usize, queue: usize) -> (NetSim, NodeId, NodeId) {
        let mut sim = NetSim::new(7);
        let mut cfg = PortConfig::ten_gbe();
        cfg.tx_queue_frames = queue;
        let src = sim.add_element("src", Box::new(Blaster { n, wire_size }), &[cfg]);
        let dst = sim.add_element(
            "dst",
            Box::new(CountingSink::new()),
            &[PortConfig::ten_gbe()],
        );
        sim.connect((src, 0), (dst, 0), LinkConfig::direct_cable());
        (sim, src, dst)
    }

    #[test]
    fn frames_cross_the_link() {
        let (mut sim, src, dst) = two_node_sim(10, 64, 100);
        sim.run_to_idle();
        assert_eq!(sim.port_counters(src, 0).tx_frames, 10);
        assert_eq!(sim.port_counters(dst, 0).rx_frames, 10);
        assert_eq!(sim.port_counters(dst, 0).rx_bytes, 640);
    }

    #[test]
    fn serialization_paces_back_to_back_frames() {
        // 10 frames of 64 B at 10 Gbit/s: the last bit leaves at
        // 10 * 68 ns (rounded serialization); arrival 10 ns later.
        let (mut sim, _, _) = two_node_sim(10, 64, 100);
        sim.run_to_idle();
        assert_eq!(sim.now().as_nanos(), 10 * 68 + 10);
    }

    #[test]
    fn queue_overflow_drops_and_counts() {
        // Queue of 4 + 1 in flight = 5 accepted, 5 dropped.
        let (mut sim, src, dst) = two_node_sim(10, 64, 4);
        sim.run_to_idle();
        let c = sim.port_counters(src, 0);
        assert_eq!(c.tx_queue_drops, 5);
        assert_eq!(c.tx_frames, 5);
        assert_eq!(sim.port_counters(dst, 0).rx_frames, 5);
    }

    #[test]
    fn fault_injected_corruption_counts_rx_errors() {
        let mut sim = NetSim::new(7);
        let src = sim.add_element(
            "src",
            Box::new(Blaster {
                n: 1000,
                wire_size: 64,
            }),
            &[PortConfig {
                tx_queue_frames: 1000,
                ..PortConfig::ten_gbe()
            }],
        );
        let dst = sim.add_element(
            "dst",
            Box::new(CountingSink::new()),
            &[PortConfig::ten_gbe()],
        );
        let mut fault = crate::fault::FaultConfig::none();
        fault.corrupt_chance = 0.5;
        sim.connect(
            (src, 0),
            (dst, 0),
            LinkConfig::direct_cable().with_fault(fault),
        );
        sim.run_to_idle();
        let c = sim.port_counters(dst, 0);
        assert_eq!(c.rx_frames + c.rx_errors, 1000);
        assert!(
            c.rx_errors > 300,
            "expected ~500 errors, got {}",
            c.rx_errors
        );
        let (dropped, corrupted) = sim.link_fault_stats(src, 0).unwrap();
        assert_eq!(dropped, 0);
        assert_eq!(corrupted, c.rx_errors);
    }

    #[test]
    fn unconnected_port_traces_warning() {
        let mut sim = NetSim::new(7);
        let _ = sim.add_element(
            "lonely",
            Box::new(Blaster {
                n: 1,
                wire_size: 64,
            }),
            &[PortConfig::ten_gbe()],
        );
        sim.run_to_idle();
        assert!(sim
            .trace()
            .iter()
            .any(|e| e.message.contains("unconnected port")));
    }

    #[test]
    fn timers_fire_in_order() {
        struct TimerElement {
            fired: Vec<u64>,
        }
        impl Element for TimerElement {
            fn on_start(&mut self, ctx: &mut SimCtx<'_>) {
                ctx.set_timer(SimDuration::from_millis(2), 2);
                ctx.set_timer(SimDuration::from_millis(1), 1);
                ctx.set_timer(SimDuration::from_millis(3), 3);
            }
            fn on_frame(&mut self, _: usize, _: Frame, _: &mut SimCtx<'_>) {}
            fn on_timer(&mut self, token: u64, _: &mut SimCtx<'_>) {
                self.fired.push(token);
            }
        }
        let mut sim = NetSim::new(1);
        let n = sim.add_element("t", Box::new(TimerElement { fired: vec![] }), &[]);
        sim.run_to_idle();
        assert_eq!(sim.events_processed(), 3);
        let t = sim.element_as::<TimerElement>(n).unwrap();
        assert_eq!(t.fired, vec![1, 2, 3]);
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let (mut sim, _, dst) = two_node_sim(100, 1500, 200);
        // 1500 B at 10G = 1216 ns each; in 5000 ns about 4 frames arrive.
        sim.run_until(SimTime::from_nanos(5_000));
        let got = sim.port_counters(dst, 0).rx_frames;
        assert!((3..=5).contains(&got), "got {got}");
        sim.run_to_idle();
        assert_eq!(sim.port_counters(dst, 0).rx_frames, 100);
    }

    #[test]
    #[should_panic(expected = "already wired")]
    fn double_wiring_panics() {
        let mut sim = NetSim::new(1);
        let a = sim.add_element("a", Box::new(CountingSink::new()), &[PortConfig::ten_gbe()]);
        let b = sim.add_element(
            "b",
            Box::new(CountingSink::new()),
            &[PortConfig::ten_gbe(), PortConfig::ten_gbe()],
        );
        sim.connect((a, 0), (b, 0), LinkConfig::direct_cable());
        sim.connect((a, 0), (b, 1), LinkConfig::direct_cable());
    }

    #[test]
    #[should_panic(expected = "does not exist")]
    fn wiring_missing_port_panics() {
        let mut sim = NetSim::new(1);
        let a = sim.add_element("a", Box::new(CountingSink::new()), &[PortConfig::ten_gbe()]);
        sim.connect((a, 0), (a, 5), LinkConfig::direct_cable());
    }

    #[test]
    fn frame_conservation_under_random_faults() {
        // Invariant: every transmitted frame is accounted for exactly once:
        // received intact, discarded as an FCS error, or dropped by the
        // link's injector. Checked across a grid of fault configurations.
        for seed in 0..20u64 {
            let mut sim = NetSim::new(seed);
            let n = 2_000;
            let src = sim.add_element(
                "src",
                Box::new(Blaster { n, wire_size: 64 }),
                &[PortConfig {
                    tx_queue_frames: n,
                    ..PortConfig::ten_gbe()
                }],
            );
            let dst = sim.add_element(
                "dst",
                Box::new(CountingSink::new()),
                &[PortConfig::ten_gbe()],
            );
            let mut fault = crate::fault::FaultConfig::none();
            fault.drop_chance = (seed % 5) as f64 * 0.1;
            fault.corrupt_chance = (seed % 3) as f64 * 0.1;
            sim.connect(
                (src, 0),
                (dst, 0),
                LinkConfig::direct_cable().with_fault(fault),
            );
            sim.run_to_idle();
            let tx = sim.port_counters(src, 0);
            let rx = sim.port_counters(dst, 0);
            let (inj_dropped, inj_corrupted) = sim.link_fault_stats(src, 0).unwrap();
            assert_eq!(tx.tx_frames, n as u64, "seed {seed}: all frames serialized");
            assert_eq!(
                tx.tx_frames,
                rx.rx_frames + rx.rx_errors + inj_dropped,
                "seed {seed}: conservation violated"
            );
            assert_eq!(
                rx.rx_errors, inj_corrupted,
                "seed {seed}: corruption accounting"
            );
        }
    }

    #[test]
    fn determinism_same_seed_same_outcome() {
        let run = |seed: u64| -> (u64, u64) {
            let mut sim = NetSim::new(seed);
            let src = sim.add_element(
                "src",
                Box::new(Blaster {
                    n: 500,
                    wire_size: 64,
                }),
                &[PortConfig {
                    tx_queue_frames: 500,
                    ..PortConfig::ten_gbe()
                }],
            );
            let dst = sim.add_element(
                "dst",
                Box::new(CountingSink::new()),
                &[PortConfig::ten_gbe()],
            );
            let mut fault = crate::fault::FaultConfig::none();
            fault.drop_chance = 0.3;
            sim.connect(
                (src, 0),
                (dst, 0),
                LinkConfig::direct_cable().with_fault(fault),
            );
            sim.run_to_idle();
            let c = sim.port_counters(dst, 0);
            (c.rx_frames, sim.now().as_nanos())
        };
        assert_eq!(run(99), run(99));
        assert_ne!(run(99).0, run(100).0);
    }
}
