//! # pos-netsim
//!
//! Event-driven, packet-level models of the network elements in the pos
//! case study (§5 of the paper): NIC ports with line-rate serialization,
//! full-duplex links with optional fault injection, the Linux software
//! router DuT in its *bare-metal* and *virtualized* incarnations, the Linux
//! bridge interconnect of the vpos virtual testbed, and hardware switch
//! models for the §7 topology-automation discussion.
//!
//! The simulation engine ([`engine::NetSim`]) is deliberately simple:
//! elements exchange [`pos_packet::builder::Frame`]s through ports; the
//! engine owns serialization (line rate), propagation, queueing, loss
//! accounting and timers; elements own protocol logic and service times.
//! Everything is driven by the deterministic `pos-simkernel` event queue,
//! so a run is a pure function of (topology, element parameters, seed).
//!
//! ```
//! use pos_netsim::engine::{LinkConfig, NetSim, PortConfig};
//! use pos_netsim::sink::CountingSink;
//! use pos_simkernel::{SimDuration, SimTime};
//!
//! let mut sim = NetSim::new(42);
//! let a = sim.add_element("src", Box::new(CountingSink::new()), &[PortConfig::ten_gbe()]);
//! let b = sim.add_element("dst", Box::new(CountingSink::new()), &[PortConfig::ten_gbe()]);
//! sim.connect((a, 0), (b, 0), LinkConfig::direct_cable());
//! sim.run_until(SimTime::ZERO + SimDuration::from_secs(1));
//! ```

#![warn(missing_docs)]

pub mod bridge;
pub mod chaos;
pub mod engine;
pub mod fault;
pub mod netem;
pub mod ping;
pub mod port;
pub mod router;
pub mod sink;
pub mod switch;

pub use chaos::{CampaignConfig, ChaosEvent, ChaosPlan, ChaosPlanError};
pub use engine::{Element, Event, LinkConfig, NetSim, NodeId, PortConfig, SimCtx};
pub use fault::{FaultConfig, FaultConfigError};
pub use port::PortCounters;
pub use router::{LinuxRouter, RouteEntry, ServiceProfile};
