//! Deterministic chaos campaigns.
//!
//! The pos paper argues that experiment results are only trustworthy if the
//! whole experiment — including its failures — can be replayed. A chaos
//! campaign is therefore *data*, not a runtime dice roll: a [`ChaosPlan`]
//! is a serializable list of faults pinned to virtual-time instants, either
//! written by hand or generated from a seed. Replaying the same plan
//! against the same testbed seed reproduces every crash, outage, hang and
//! lossy-link window bit-for-bit, which lets the controller's recovery
//! machinery (watchdogs, backoff, quarantine) be regression-tested like any
//! other code path.
//!
//! The event vocabulary mirrors what the paper's real testbed can suffer:
//!
//! * hosts crash (kernel panic — a power cycle or reset revives them),
//! * hosts *wedge* (hung firmware — soft resets bounce off, only a full
//!   power cycle helps),
//! * management interfaces suffer outages (every IPMI/vendor-API/power-plug
//!   command fails for a window),
//! * commands hang (an SSH session that never returns — the controller's
//!   watchdog must reap it),
//! * links degrade (a [`FaultConfig`] applies to a host's experiment link
//!   for a window).

use crate::fault::FaultConfig;
use pos_simkernel::{SimDuration, SimRng, SimTime};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One fault, pinned to virtual time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ChaosEvent {
    /// The host's OS dies at `at`; a reset or power cycle revives it.
    HostCrash {
        /// Victim host.
        host: String,
        /// Instant of the crash.
        at: SimTime,
    },
    /// The host wedges at `at`: it is down *and* shrugs off soft resets,
    /// so only a full power cycle (off, dwell, on) brings it back.
    HostWedge {
        /// Victim host.
        host: String,
        /// Instant of the wedge.
        at: SimTime,
    },
    /// Every power-control command against the host fails during the
    /// window (management network outage, dead BMC, tripped PDU breaker).
    PowerOutage {
        /// Victim host.
        host: String,
        /// Start of the outage window.
        from: SimTime,
        /// End of the outage window (exclusive).
        until: SimTime,
    },
    /// Commands executed on the host during the window never return on
    /// their own; the controller's watchdog has to kill them.
    CommandHang {
        /// Victim host.
        host: String,
        /// Start of the hang window.
        from: SimTime,
        /// End of the hang window (exclusive).
        until: SimTime,
    },
    /// The host's experiment link misbehaves per `config` during the window.
    LinkFaults {
        /// Host whose measurement traffic crosses the degraded link.
        host: String,
        /// Start of the degradation window.
        from: SimTime,
        /// End of the degradation window (exclusive).
        until: SimTime,
        /// Fault behaviour of the link while the window is active.
        config: FaultConfig,
    },
}

impl ChaosEvent {
    /// The host this event targets.
    pub fn host(&self) -> &str {
        match self {
            ChaosEvent::HostCrash { host, .. }
            | ChaosEvent::HostWedge { host, .. }
            | ChaosEvent::PowerOutage { host, .. }
            | ChaosEvent::CommandHang { host, .. }
            | ChaosEvent::LinkFaults { host, .. } => host,
        }
    }

    /// When the event first takes effect.
    pub fn start(&self) -> SimTime {
        match self {
            ChaosEvent::HostCrash { at, .. } | ChaosEvent::HostWedge { at, .. } => *at,
            ChaosEvent::PowerOutage { from, .. }
            | ChaosEvent::CommandHang { from, .. }
            | ChaosEvent::LinkFaults { from, .. } => *from,
        }
    }

    /// Short kind name, used for stable sorting and display.
    fn kind(&self) -> &'static str {
        match self {
            ChaosEvent::HostCrash { .. } => "crash",
            ChaosEvent::HostWedge { .. } => "wedge",
            ChaosEvent::PowerOutage { .. } => "power-outage",
            ChaosEvent::CommandHang { .. } => "command-hang",
            ChaosEvent::LinkFaults { .. } => "link-faults",
        }
    }
}

impl fmt::Display for ChaosEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChaosEvent::HostCrash { host, at } => write!(f, "crash {host} at {at}"),
            ChaosEvent::HostWedge { host, at } => write!(f, "wedge {host} at {at}"),
            ChaosEvent::PowerOutage { host, from, until } => {
                write!(f, "power outage on {host} from {from} until {until}")
            }
            ChaosEvent::CommandHang { host, from, until } => {
                write!(f, "command hangs on {host} from {from} until {until}")
            }
            ChaosEvent::LinkFaults {
                host, from, until, ..
            } => write!(f, "link faults on {host} from {from} until {until}"),
        }
    }
}

/// Knobs for [`ChaosPlan::generate`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignConfig {
    /// Faults are scheduled uniformly inside `[warmup, warmup + horizon)`.
    pub horizon: SimDuration,
    /// No fault starts before this instant (lets hosts boot and set up).
    pub warmup: SimDuration,
    /// Number of host crashes to schedule.
    pub crashes: u32,
    /// Number of host wedges to schedule.
    pub wedges: u32,
    /// Number of management-interface outage windows to schedule.
    pub power_outages: u32,
    /// Number of command-hang windows to schedule.
    pub hangs: u32,
    /// Number of link-degradation windows to schedule.
    pub link_fault_windows: u32,
    /// Length of each outage/hang/degradation window.
    pub window: SimDuration,
    /// Link behaviour applied during degradation windows.
    pub link_fault: FaultConfig,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            horizon: SimDuration::from_mins(5),
            warmup: SimDuration::from_secs(100),
            crashes: 1,
            wedges: 0,
            power_outages: 0,
            hangs: 0,
            link_fault_windows: 0,
            window: SimDuration::from_secs(20),
            link_fault: FaultConfig {
                drop_chance: 0.2,
                ..FaultConfig::none()
            },
        }
    }
}

/// A replayable schedule of faults for one experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChaosPlan {
    /// Seed the plan was generated from (0 for hand-written plans).
    pub seed: u64,
    /// The faults, ordered by start time.
    pub events: Vec<ChaosEvent>,
}

impl ChaosPlan {
    /// An empty plan carrying a seed label.
    pub fn new(seed: u64) -> ChaosPlan {
        ChaosPlan {
            seed,
            events: Vec::new(),
        }
    }

    /// Appends an event (builder-style, for hand-written plans).
    pub fn with_event(mut self, event: ChaosEvent) -> ChaosPlan {
        self.events.push(event);
        self
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no faults are scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Generates a campaign from a seed. The draw order is fixed (kinds in
    /// declaration order, counts ascending), so the same `(seed, hosts,
    /// config)` triple yields the same plan on every machine — the plan can
    /// be regenerated instead of archived.
    pub fn generate(seed: u64, hosts: &[&str], cfg: &CampaignConfig) -> ChaosPlan {
        if hosts.is_empty() {
            return ChaosPlan::new(seed);
        }
        let mut rng = SimRng::new(seed).derive("chaos");
        let start = SimTime::ZERO + cfg.warmup;
        let span = cfg.horizon.as_nanos().max(1);
        let pick_host = |rng: &mut SimRng| -> String {
            hosts[rng.uniform_u64(hosts.len() as u64) as usize].to_owned()
        };
        let pick_at = |rng: &mut SimRng| -> SimTime {
            start + SimDuration::from_nanos(rng.uniform_u64(span))
        };

        let mut events = Vec::new();
        for _ in 0..cfg.crashes {
            let (host, at) = (pick_host(&mut rng), pick_at(&mut rng));
            events.push(ChaosEvent::HostCrash { host, at });
        }
        for _ in 0..cfg.wedges {
            let (host, at) = (pick_host(&mut rng), pick_at(&mut rng));
            events.push(ChaosEvent::HostWedge { host, at });
        }
        for _ in 0..cfg.power_outages {
            let (host, from) = (pick_host(&mut rng), pick_at(&mut rng));
            events.push(ChaosEvent::PowerOutage {
                host,
                from,
                until: from + cfg.window,
            });
        }
        for _ in 0..cfg.hangs {
            let (host, from) = (pick_host(&mut rng), pick_at(&mut rng));
            events.push(ChaosEvent::CommandHang {
                host,
                from,
                until: from + cfg.window,
            });
        }
        for _ in 0..cfg.link_fault_windows {
            let (host, from) = (pick_host(&mut rng), pick_at(&mut rng));
            events.push(ChaosEvent::LinkFaults {
                host,
                from,
                until: from + cfg.window,
                config: cfg.link_fault,
            });
        }
        // Draw order above is already deterministic; sorting by start time
        // makes the plan readable and the ordering contract explicit.
        events.sort_by(|a, b| {
            (a.start(), a.kind(), a.host().to_owned()).cmp(&(
                b.start(),
                b.kind(),
                b.host().to_owned(),
            ))
        });
        ChaosPlan { seed, events }
    }

    /// Validates every event: non-empty host names, well-ordered windows,
    /// and in-range fault probabilities (via [`FaultConfig::validate`]).
    pub fn validate(&self) -> Result<(), ChaosPlanError> {
        for (i, event) in self.events.iter().enumerate() {
            if event.host().is_empty() {
                return Err(ChaosPlanError {
                    event: i,
                    reason: "empty host name".to_owned(),
                });
            }
            match event {
                ChaosEvent::PowerOutage { from, until, .. }
                | ChaosEvent::CommandHang { from, until, .. }
                | ChaosEvent::LinkFaults { from, until, .. } => {
                    if until <= from {
                        return Err(ChaosPlanError {
                            event: i,
                            reason: format!(
                                "window ends ({until}) at or before it starts ({from})"
                            ),
                        });
                    }
                }
                ChaosEvent::HostCrash { .. } | ChaosEvent::HostWedge { .. } => {}
            }
            if let ChaosEvent::LinkFaults { config, .. } = event {
                config.validate().map_err(|e| ChaosPlanError {
                    event: i,
                    reason: e.to_string(),
                })?;
            }
        }
        Ok(())
    }

    /// Serializes the plan as pretty JSON (for archiving next to results).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("ChaosPlan serializes")
    }

    /// Parses and validates a plan from JSON. Validation is not optional:
    /// a deserialized plan with NaN probabilities or inverted windows is
    /// rejected here, before it can poison a simulation.
    pub fn from_json(json: &str) -> Result<ChaosPlan, ChaosPlanError> {
        let plan: ChaosPlan = serde_json::from_str(json).map_err(|e| ChaosPlanError {
            event: usize::MAX,
            reason: format!("parse error: {e}"),
        })?;
        plan.validate()?;
        Ok(plan)
    }
}

/// A [`ChaosPlan`] that failed validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaosPlanError {
    /// Index of the offending event (`usize::MAX` for parse errors).
    pub event: usize,
    /// What is wrong with it.
    pub reason: String,
}

impl fmt::Display for ChaosPlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.event == usize::MAX {
            write!(f, "invalid chaos plan: {}", self.reason)
        } else {
            write!(
                f,
                "invalid chaos plan: event {}: {}",
                self.event, self.reason
            )
        }
    }
}

impl std::error::Error for ChaosPlanError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn hosts() -> Vec<&'static str> {
        vec!["vriga", "vtartu"]
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = CampaignConfig {
            crashes: 2,
            wedges: 1,
            power_outages: 1,
            hangs: 1,
            link_fault_windows: 1,
            ..CampaignConfig::default()
        };
        let a = ChaosPlan::generate(0xC0FFEE, &hosts(), &cfg);
        let b = ChaosPlan::generate(0xC0FFEE, &hosts(), &cfg);
        assert_eq!(a, b);
        assert_eq!(a.len(), 6);
        let c = ChaosPlan::generate(0xBEEF, &hosts(), &cfg);
        assert_ne!(a, c, "different seeds should differ");
    }

    #[test]
    fn generated_events_respect_warmup_and_horizon() {
        let cfg = CampaignConfig {
            crashes: 16,
            ..CampaignConfig::default()
        };
        let plan = ChaosPlan::generate(7, &hosts(), &cfg);
        let start = SimTime::ZERO + cfg.warmup;
        let end = start + cfg.horizon;
        for e in &plan.events {
            assert!(e.start() >= start && e.start() < end, "{e} outside window");
        }
        assert!(plan.validate().is_ok());
    }

    #[test]
    fn events_are_sorted_by_start_time() {
        let cfg = CampaignConfig {
            crashes: 8,
            hangs: 4,
            ..CampaignConfig::default()
        };
        let plan = ChaosPlan::generate(11, &hosts(), &cfg);
        for w in plan.events.windows(2) {
            assert!(w[0].start() <= w[1].start());
        }
    }

    #[test]
    fn validate_rejects_inverted_window() {
        let plan = ChaosPlan::new(0).with_event(ChaosEvent::PowerOutage {
            host: "vriga".into(),
            from: SimTime::from_secs(10),
            until: SimTime::from_secs(5),
        });
        let err = plan.validate().unwrap_err();
        assert_eq!(err.event, 0);
        assert!(err.reason.contains("before it starts"));
    }

    #[test]
    fn validate_rejects_empty_host_and_bad_fault_config() {
        let plan = ChaosPlan::new(0).with_event(ChaosEvent::HostCrash {
            host: String::new(),
            at: SimTime::from_secs(1),
        });
        assert!(plan.validate().is_err());

        let plan = ChaosPlan::new(0).with_event(ChaosEvent::LinkFaults {
            host: "vriga".into(),
            from: SimTime::from_secs(1),
            until: SimTime::from_secs(2),
            config: FaultConfig {
                drop_chance: f64::NAN,
                ..FaultConfig::none()
            },
        });
        let err = plan.validate().unwrap_err();
        assert!(err.reason.contains("NaN"), "{err}");
    }

    #[test]
    fn json_roundtrip_validates_on_load() {
        let cfg = CampaignConfig {
            crashes: 1,
            link_fault_windows: 1,
            ..CampaignConfig::default()
        };
        let plan = ChaosPlan::generate(99, &hosts(), &cfg);
        let json = plan.to_json();
        let back = ChaosPlan::from_json(&json).unwrap();
        assert_eq!(plan, back);

        // A tampered plan with an out-of-range probability is refused.
        let bad = json.replace("0.2", "2.5");
        assert!(ChaosPlan::from_json(&bad).is_err());
    }
}
