//! NIC ports: line-rate serialization, transmit queues, and counters.

use pos_packet::builder::Frame;
use pos_packet::wire_bits;
use pos_simkernel::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Static configuration of a NIC port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PortConfig {
    /// Line rate in bits per second.
    pub rate_bps: u64,
    /// Transmit queue capacity in frames (hardware descriptor ring).
    pub tx_queue_frames: usize,
}

impl PortConfig {
    /// A 10 Gbit/s port, like the Intel 82599 in the paper's DuT.
    pub fn ten_gbe() -> PortConfig {
        PortConfig {
            rate_bps: 10_000_000_000,
            tx_queue_frames: 512,
        }
    }

    /// A 1 Gbit/s port.
    pub fn one_gbe() -> PortConfig {
        PortConfig {
            rate_bps: 1_000_000_000,
            tx_queue_frames: 256,
        }
    }

    /// A virtio-style paravirtual port: no serial line; the "wire" is a
    /// memory copy, so the effective rate is high and the queue deep.
    pub fn virtio() -> PortConfig {
        PortConfig {
            rate_bps: 40_000_000_000,
            tx_queue_frames: 1024,
        }
    }

    /// Serialization time of a frame of `wire_size` bytes at this rate.
    pub fn serialization_time(&self, wire_size: usize) -> SimDuration {
        let bits = wire_bits(wire_size);
        // ceil(bits * 1e9 / rate) nanoseconds; u128 avoids overflow.
        let ns = (u128::from(bits) * 1_000_000_000).div_ceil(u128::from(self.rate_bps));
        SimDuration::from_nanos(ns as u64)
    }
}

/// Traffic counters of one port, in both directions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PortCounters {
    /// Frames fully serialized onto the wire.
    pub tx_frames: u64,
    /// Wire bytes transmitted (FCS included, preamble/IFG excluded).
    pub tx_bytes: u64,
    /// Frames dropped because the transmit queue was full.
    pub tx_queue_drops: u64,
    /// Frames received intact.
    pub rx_frames: u64,
    /// Wire bytes received.
    pub rx_bytes: u64,
    /// Frames discarded due to a bad FCS (fault-injected corruption).
    pub rx_errors: u64,
}

/// Runtime state of a NIC port.
#[derive(Debug)]
pub struct Port {
    /// Static configuration.
    pub config: PortConfig,
    /// Pending frames awaiting serialization.
    pub(crate) tx_queue: VecDeque<Frame>,
    /// The frame currently being serialized, if any.
    pub(crate) in_flight: Option<Frame>,
    /// When the in-flight frame finishes serialization.
    pub(crate) busy_until: SimTime,
    /// Index of the link this port is wired to, if any — stored on the
    /// port so the per-frame delivery path needs no map lookup.
    pub(crate) link: Option<usize>,
    /// Start instants of cut-through transmissions that are accepted but
    /// not yet serializing (the "queue" of the eventless TX path). Entries
    /// at or before the current instant are popped lazily; the length is
    /// the queue occupancy used for tail-drop decisions.
    pub(crate) pending_starts: VecDeque<SimTime>,
    /// Counters.
    pub counters: PortCounters,
}

impl Port {
    /// Creates an idle port.
    pub fn new(config: PortConfig) -> Port {
        Port {
            config,
            tx_queue: VecDeque::new(),
            in_flight: None,
            busy_until: SimTime::ZERO,
            link: None,
            pending_starts: VecDeque::new(),
            counters: PortCounters::default(),
        }
    }

    /// True while a frame is being serialized.
    pub fn is_busy(&self) -> bool {
        self.in_flight.is_some()
    }

    /// Frames waiting in the transmit queue (eventful path) plus accepted
    /// cut-through transmissions that have not started serializing.
    pub fn queued(&self) -> usize {
        self.tx_queue.len() + self.pending_starts.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serialization_time_64b_at_10g() {
        // (64+20)*8 = 672 bits at 10 Gbit/s = 67.2 ns, rounded up to 68.
        let t = PortConfig::ten_gbe().serialization_time(64);
        assert_eq!(t, SimDuration::from_nanos(68));
    }

    #[test]
    fn serialization_time_1500b_at_10g() {
        // (1500+20)*8 = 12160 bits = 1216 ns exactly.
        let t = PortConfig::ten_gbe().serialization_time(1500);
        assert_eq!(t, SimDuration::from_nanos(1216));
    }

    #[test]
    fn serialization_scales_with_rate() {
        let g1 = PortConfig::one_gbe().serialization_time(1500);
        let g10 = PortConfig::ten_gbe().serialization_time(1500);
        assert_eq!(g1.as_nanos(), g10.as_nanos() * 10);
    }

    #[test]
    fn new_port_is_idle() {
        let p = Port::new(PortConfig::ten_gbe());
        assert!(!p.is_busy());
        assert_eq!(p.queued(), 0);
        assert_eq!(p.counters, PortCounters::default());
    }
}
