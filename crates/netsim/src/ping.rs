//! An ICMP echo prober — the `ping` every setup script runs before
//! trusting a freshly wired topology.

use crate::engine::{Element, SimCtx};
use pos_packet::arp::{ArpOp, ArpPacket};
use pos_packet::builder::Frame;
use pos_packet::ethernet::{EtherType, EthernetHeader};
use pos_packet::icmp::IcmpMessage;
use pos_packet::ipv4::{Ipv4Header, Protocol};
use pos_packet::MacAddr;
use pos_simkernel::{SimDuration, SimTime};
use std::net::Ipv4Addr;

const TOKEN_SEND: u64 = 1;

/// Outcome of one probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeReply {
    /// An echo reply arrived after the given round-trip time.
    Echo {
        /// Round-trip time in nanoseconds.
        rtt_ns: u64,
    },
    /// A router on the path reported TTL expiry (traceroute's signal).
    TimeExceeded {
        /// The reporting router's address.
        from: Ipv4Addr,
        /// Round-trip time in nanoseconds.
        rtt_ns: u64,
    },
}

/// Configuration of the prober.
#[derive(Debug, Clone, Copy)]
pub struct PingConfig {
    /// The prober's own IP address.
    pub src_ip: Ipv4Addr,
    /// The prober's MAC.
    pub src_mac: MacAddr,
    /// First-hop MAC (the directly wired peer / gateway).
    pub gateway_mac: MacAddr,
    /// The address to probe.
    pub target: Ipv4Addr,
    /// Number of probes.
    pub count: u16,
    /// Spacing between probes.
    pub interval: SimDuration,
    /// IPv4 TTL of the probes (lower it for traceroute-style probing).
    pub ttl: u8,
    /// When set, resolve the gateway's MAC by ARPing this address first
    /// (ignore [`Self::gateway_mac`]); probes start after the is-at
    /// arrives — like a host with a cold neighbor cache.
    pub resolve_gateway: Option<Ipv4Addr>,
}

/// The prober element (single port).
pub struct PingProbe {
    config: PingConfig,
    sent: u16,
    departures: Vec<(u16, SimTime)>,
    /// Replies in arrival order, indexed by sequence number.
    pub replies: Vec<(u16, ProbeReply)>,
    /// The gateway MAC learned via ARP, when resolution was requested.
    pub resolved_mac: Option<MacAddr>,
}

impl PingProbe {
    /// Creates a prober.
    pub fn new(config: PingConfig) -> PingProbe {
        PingProbe {
            config,
            sent: 0,
            departures: Vec::new(),
            replies: Vec::new(),
            resolved_mac: None,
        }
    }

    /// The next-hop MAC probes are addressed to.
    fn gateway(&self) -> MacAddr {
        self.resolved_mac.unwrap_or(self.config.gateway_mac)
    }

    fn send_arp_request(&mut self, gateway_ip: Ipv4Addr, ctx: &mut SimCtx<'_>) {
        let mut out = Vec::new();
        EthernetHeader {
            dst: MacAddr::BROADCAST,
            src: self.config.src_mac,
            ethertype: EtherType::Arp,
        }
        .emit(&mut out);
        ArpPacket::request(self.config.src_mac, self.config.src_ip, gateway_ip).emit(&mut out);
        out.resize(out.len().max(60), 0);
        ctx.transmit(0, Frame::from_bytes(out));
    }

    /// Fraction of probes answered by an echo reply.
    pub fn success_rate(&self) -> f64 {
        if self.config.count == 0 {
            return 0.0;
        }
        let echoes = self
            .replies
            .iter()
            .filter(|(_, r)| matches!(r, ProbeReply::Echo { .. }))
            .count();
        echoes as f64 / f64::from(self.config.count)
    }

    fn send_probe(&mut self, ctx: &mut SimCtx<'_>) {
        let seq = self.sent;
        self.sent += 1;
        let mut icmp = Vec::new();
        IcmpMessage::EchoRequest {
            ident: 0x7053, // "pos"
            seq,
            payload: b"pos connectivity probe".to_vec(),
        }
        .emit(&mut icmp);
        let mut out = Vec::new();
        EthernetHeader {
            dst: self.gateway(),
            src: self.config.src_mac,
            ethertype: EtherType::Ipv4,
        }
        .emit(&mut out);
        Ipv4Header {
            src: self.config.src_ip,
            dst: self.config.target,
            protocol: Protocol::Icmp,
            ttl: self.config.ttl,
            ident: seq,
            total_len: (pos_packet::ipv4::HEADER_LEN + icmp.len()) as u16,
            dont_frag: true,
        }
        .emit(&mut out);
        out.extend_from_slice(&icmp);
        if out.len() < 60 {
            out.resize(60, 0);
        }
        self.departures.push((seq, ctx.now()));
        ctx.transmit(0, Frame::from_bytes(out));
        if self.sent < self.config.count {
            ctx.set_timer(self.config.interval, TOKEN_SEND);
        }
    }

    fn rtt_of(&self, seq: u16, now: SimTime) -> Option<u64> {
        self.departures
            .iter()
            .find(|(s, _)| *s == seq)
            .map(|(_, at)| (now - *at).as_nanos())
    }
}

impl Element for PingProbe {
    fn on_start(&mut self, ctx: &mut SimCtx<'_>) {
        if let Some(gateway_ip) = self.config.resolve_gateway {
            self.send_arp_request(gateway_ip, ctx);
        } else if self.config.count > 0 {
            ctx.set_timer(SimDuration::ZERO, TOKEN_SEND);
        }
    }

    fn on_frame(&mut self, _port: usize, frame: Frame, ctx: &mut SimCtx<'_>) {
        let Ok((eth, rest)) = EthernetHeader::parse(frame.bytes()) else {
            return;
        };
        if eth.ethertype == EtherType::Arp {
            if let Ok(pkt) = ArpPacket::parse(rest) {
                if pkt.op == ArpOp::Reply
                    && Some(pkt.sender_ip) == self.config.resolve_gateway
                    && self.resolved_mac.is_none()
                {
                    self.resolved_mac = Some(pkt.sender_mac);
                    if self.config.count > 0 {
                        ctx.set_timer(SimDuration::ZERO, TOKEN_SEND);
                    }
                }
            }
            return;
        }
        if eth.ethertype != EtherType::Ipv4 {
            return;
        }
        let Ok((ip, payload)) = Ipv4Header::parse(rest) else {
            return;
        };
        if ip.protocol != Protocol::Icmp {
            return;
        }
        let Ok(msg) = IcmpMessage::parse(payload) else {
            return;
        };
        let now = ctx.now();
        match msg {
            IcmpMessage::EchoReply {
                ident: 0x7053, seq, ..
            } => {
                if let Some(rtt_ns) = self.rtt_of(seq, now) {
                    self.replies.push((seq, ProbeReply::Echo { rtt_ns }));
                }
            }
            // The quoted original datagram's ident field carries our
            // sequence number (we set it when sending).
            IcmpMessage::TimeExceeded { original } if original.len() >= 6 => {
                let seq = u16::from_be_bytes([original[4], original[5]]);
                if let Some(rtt_ns) = self.rtt_of(seq, now) {
                    self.replies.push((
                        seq,
                        ProbeReply::TimeExceeded {
                            from: ip.src,
                            rtt_ns,
                        },
                    ));
                }
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, token: u64, ctx: &mut SimCtx<'_>) {
        if token == TOKEN_SEND && self.sent < self.config.count {
            self.send_probe(ctx);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{LinkConfig, NetSim, NodeId, PortConfig};
    use crate::router::{LinuxRouter, RouteEntry, ServiceProfile};
    use pos_simkernel::SimRng;

    /// Builds: probe (10.0.0.2) — router1 (10.0.0.1 / 10.0.1.1)
    ///          [— router2 (10.0.1.2 / 10.0.2.1) when `hops == 2`].
    fn chain(hops: usize, target: Ipv4Addr, ttl: u8) -> (NetSim, NodeId) {
        assert!((1..=2).contains(&hops));
        let mut sim = NetSim::new(0xAB);
        let probe = sim.add_element(
            "probe",
            Box::new(PingProbe::new(PingConfig {
                src_ip: Ipv4Addr::new(10, 0, 0, 2),
                src_mac: MacAddr::testbed_host(1),
                gateway_mac: MacAddr::testbed_host(10),
                target,
                count: 4,
                interval: SimDuration::from_millis(10),
                ttl,
                resolve_gateway: None,
            })),
            &[PortConfig::ten_gbe()],
        );
        let mut r1 = LinuxRouter::new(
            ServiceProfile::bare_metal(),
            vec![MacAddr::testbed_host(10), MacAddr::testbed_host(11)],
            SimRng::new(1).derive("r1"),
        );
        r1.set_port_ips(vec![Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 1, 1)]);
        r1.add_route(RouteEntry {
            network: Ipv4Addr::new(10, 0, 0, 0),
            prefix_len: 24,
            port: 0,
            next_hop_mac: MacAddr::testbed_host(1),
        });
        r1.add_route(RouteEntry {
            network: Ipv4Addr::new(10, 0, 0, 0),
            prefix_len: 8,
            port: 1,
            next_hop_mac: MacAddr::testbed_host(20),
        });
        let r1 = sim.add_element(
            "r1",
            Box::new(r1),
            &[PortConfig::ten_gbe(), PortConfig::ten_gbe()],
        );
        sim.connect((probe, 0), (r1, 0), LinkConfig::direct_cable());
        if hops == 2 {
            let mut r2 = LinuxRouter::new(
                ServiceProfile::bare_metal(),
                vec![MacAddr::testbed_host(20), MacAddr::testbed_host(21)],
                SimRng::new(1).derive("r2"),
            );
            r2.set_port_ips(vec![Ipv4Addr::new(10, 0, 1, 2), Ipv4Addr::new(10, 0, 2, 1)]);
            r2.add_route(RouteEntry {
                network: Ipv4Addr::new(10, 0, 0, 0),
                prefix_len: 16,
                port: 0,
                next_hop_mac: MacAddr::testbed_host(11),
            });
            let r2 = sim.add_element(
                "r2",
                Box::new(r2),
                &[PortConfig::ten_gbe(), PortConfig::ten_gbe()],
            );
            sim.connect((r1, 1), (r2, 0), LinkConfig::direct_cable());
        }
        (sim, probe)
    }

    #[test]
    fn ping_directly_attached_router() {
        let (mut sim, probe) = chain(1, Ipv4Addr::new(10, 0, 0, 1), 64);
        sim.run_until(SimTime::from_secs(1));
        let p = sim.element_as::<PingProbe>(probe).unwrap();
        assert_eq!(p.replies.len(), 4, "all probes answered");
        assert_eq!(p.success_rate(), 1.0);
        for (_, r) in &p.replies {
            match r {
                ProbeReply::Echo { rtt_ns } => {
                    // Serialization + cable + service + return path: ~1.3 µs.
                    assert!(*rtt_ns < 5_000, "rtt {rtt_ns} ns");
                }
                other => panic!("expected echo, got {other:?}"),
            }
        }
    }

    #[test]
    fn ping_second_hop_address() {
        let (mut sim, probe) = chain(2, Ipv4Addr::new(10, 0, 1, 2), 64);
        sim.run_until(SimTime::from_secs(1));
        let p = sim.element_as::<PingProbe>(probe).unwrap();
        assert_eq!(p.success_rate(), 1.0, "replies cross the first router");
    }

    #[test]
    fn traceroute_ttl1_reports_first_router() {
        // Probe the *second* hop with TTL 1: router1 must answer with
        // time-exceeded from its ingress address.
        let (mut sim, probe) = chain(2, Ipv4Addr::new(10, 0, 1, 2), 1);
        sim.run_until(SimTime::from_secs(1));
        let p = sim.element_as::<PingProbe>(probe).unwrap();
        assert_eq!(p.replies.len(), 4);
        assert_eq!(p.success_rate(), 0.0, "no echo reply at TTL 1");
        for (_, r) in &p.replies {
            match r {
                ProbeReply::TimeExceeded { from, .. } => {
                    assert_eq!(*from, Ipv4Addr::new(10, 0, 0, 1), "hop 1 identifies itself");
                }
                other => panic!("expected time-exceeded, got {other:?}"),
            }
        }
        // And the router accounted for it.
        let stats = sim.element_as::<LinuxRouter>(1).unwrap().stats;
        assert_eq!(stats.ttl_expired, 4);
        assert_eq!(stats.time_exceeded_sent, 4);
    }

    #[test]
    fn traceroute_ttl2_reaches_second_router() {
        let (mut sim, probe) = chain(2, Ipv4Addr::new(10, 0, 1, 2), 2);
        sim.run_until(SimTime::from_secs(1));
        let p = sim.element_as::<PingProbe>(probe).unwrap();
        // TTL 2 suffices for the directly attached address of router2.
        assert_eq!(p.success_rate(), 1.0);
    }

    #[test]
    fn unreachable_target_gets_no_answer() {
        let (mut sim, probe) = chain(1, Ipv4Addr::new(192, 168, 99, 99), 64);
        sim.run_until(SimTime::from_secs(1));
        let p = sim.element_as::<PingProbe>(probe).unwrap();
        assert!(p.replies.is_empty(), "no route, no reply");
        assert_eq!(p.success_rate(), 0.0);
    }

    #[test]
    fn arp_resolution_then_ping() {
        // Cold cache: gateway MAC unknown (ZERO); the probe must resolve
        // it via who-has/is-at before any echo flows.
        let mut sim = NetSim::new(0xA2);
        let probe = sim.add_element(
            "probe",
            Box::new(PingProbe::new(PingConfig {
                src_ip: Ipv4Addr::new(10, 0, 0, 2),
                src_mac: MacAddr::testbed_host(1),
                gateway_mac: MacAddr::ZERO,
                target: Ipv4Addr::new(10, 0, 0, 1),
                count: 3,
                interval: SimDuration::from_millis(5),
                ttl: 64,
                resolve_gateway: Some(Ipv4Addr::new(10, 0, 0, 1)),
            })),
            &[PortConfig::ten_gbe()],
        );
        let mut r = LinuxRouter::new(
            ServiceProfile::bare_metal(),
            vec![MacAddr::testbed_host(10)],
            SimRng::new(2).derive("r"),
        );
        r.set_port_ips(vec![Ipv4Addr::new(10, 0, 0, 1)]);
        r.add_route(RouteEntry {
            network: Ipv4Addr::new(10, 0, 0, 0),
            prefix_len: 24,
            port: 0,
            next_hop_mac: MacAddr::testbed_host(1),
        });
        let r = sim.add_element("r", Box::new(r), &[PortConfig::ten_gbe()]);
        sim.connect((probe, 0), (r, 0), LinkConfig::direct_cable());
        sim.run_until(SimTime::from_secs(1));

        let p = sim.element_as::<PingProbe>(probe).unwrap();
        assert_eq!(
            p.resolved_mac,
            Some(MacAddr::testbed_host(10)),
            "is-at learned the router's MAC"
        );
        assert_eq!(p.success_rate(), 1.0, "pings flow after resolution");
        let stats = sim.element_as::<LinuxRouter>(r).unwrap().stats;
        assert_eq!(stats.arp_replied, 1);
        assert_eq!(stats.echo_replied, 3);
    }

    #[test]
    fn arp_for_unowned_address_stays_unresolved() {
        let mut sim = NetSim::new(0xA3);
        let probe = sim.add_element(
            "probe",
            Box::new(PingProbe::new(PingConfig {
                src_ip: Ipv4Addr::new(10, 0, 0, 2),
                src_mac: MacAddr::testbed_host(1),
                gateway_mac: MacAddr::ZERO,
                target: Ipv4Addr::new(10, 0, 0, 99),
                count: 3,
                interval: SimDuration::from_millis(5),
                ttl: 64,
                resolve_gateway: Some(Ipv4Addr::new(10, 0, 0, 99)),
            })),
            &[PortConfig::ten_gbe()],
        );
        let mut r = LinuxRouter::new(
            ServiceProfile::bare_metal(),
            vec![MacAddr::testbed_host(10)],
            SimRng::new(2).derive("r"),
        );
        r.set_port_ips(vec![Ipv4Addr::new(10, 0, 0, 1)]); // not .99
        let r = sim.add_element("r", Box::new(r), &[PortConfig::ten_gbe()]);
        sim.connect((probe, 0), (r, 0), LinkConfig::direct_cable());
        sim.run_until(SimTime::from_secs(1));
        let p = sim.element_as::<PingProbe>(probe).unwrap();
        assert!(p.resolved_mac.is_none(), "nobody owns .99");
        assert!(p.replies.is_empty(), "no echo without resolution");
        let stats = sim.element_as::<LinuxRouter>(r).unwrap().stats;
        assert_eq!(stats.arp_replied, 0);
    }

    #[test]
    fn router_without_ips_is_silent() {
        let mut sim = NetSim::new(1);
        let probe = sim.add_element(
            "probe",
            Box::new(PingProbe::new(PingConfig {
                src_ip: Ipv4Addr::new(10, 0, 0, 2),
                src_mac: MacAddr::testbed_host(1),
                gateway_mac: MacAddr::testbed_host(10),
                target: Ipv4Addr::new(10, 0, 0, 1),
                count: 2,
                interval: SimDuration::from_millis(1),
                ttl: 64,
                resolve_gateway: None,
            })),
            &[PortConfig::ten_gbe()],
        );
        let r = LinuxRouter::new(
            ServiceProfile::bare_metal(),
            vec![MacAddr::testbed_host(10)],
            SimRng::new(1),
        );
        let r = sim.add_element("r", Box::new(r), &[PortConfig::ten_gbe()]);
        sim.connect((probe, 0), (r, 0), LinkConfig::direct_cable());
        sim.run_until(SimTime::from_secs(1));
        let p = sim.element_as::<PingProbe>(probe).unwrap();
        assert!(p.replies.is_empty(), "no IPs configured -> not pingable");
    }
}
