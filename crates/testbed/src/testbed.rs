//! The testbed aggregate: hosts + images + calendar + topology + clock.
//!
//! This is the machine room the pos controller (in `pos-core`) operates.
//! All operations consume *virtual* time; nothing here reads a wall clock
//! or an unseeded RNG, so a sequence of operations is perfectly
//! repeatable.

use crate::calendar::Calendar;
use crate::exec::{split_command_line, CommandResult, ExecError};
use crate::host::{default_sysctls, HardwareSpec, Host, PowerState};
use crate::image::{ImageId, ImageStore};
use crate::power::{InitInterface, PowerError};
use crate::topology::Topology;
use pos_simkernel::{SimDuration, SimRng, SimTime, Trace, TraceLevel};
use std::collections::BTreeMap;
use std::rc::Rc;

/// Signature of a registered command handler.
///
/// Handlers receive the whole testbed (so e.g. a generator command can
/// inspect the topology and the peer host's configuration), the executing
/// host's name, and the argument vector including the command name.
pub type CommandHandler = Rc<dyn Fn(&mut Testbed, &str, &[String]) -> CommandResult>;

/// A pending out-of-band failure: the host crashes (or wedges) at `at`.
#[derive(Debug, Clone)]
struct ScheduledCrash {
    at: SimTime,
    host: String,
    wedge: bool,
}

/// A `[from, until)` window during which something on `host` misbehaves.
#[derive(Debug, Clone)]
struct FaultWindow {
    host: String,
    from: SimTime,
    until: SimTime,
}

impl FaultWindow {
    fn contains(&self, host: &str, at: SimTime) -> bool {
        self.host == host && self.from <= at && at < self.until
    }
}

/// A window during which a host's experiment link drops/corrupts frames.
#[derive(Debug, Clone)]
struct LinkDegradation {
    window: FaultWindow,
    drop_chance: f64,
    corrupt_chance: f64,
}

/// The simulated testbed.
pub struct Testbed {
    now: SimTime,
    hosts: BTreeMap<String, Host>,
    /// Available live images.
    pub images: ImageStore,
    /// The multi-user reservation calendar.
    pub calendar: Calendar,
    /// The wiring plan.
    pub topology: Topology,
    commands: BTreeMap<String, CommandHandler>,
    rng: SimRng,
    /// Controller-visible event log.
    pub trace: Trace,
    root_seed: u64,
    /// Watchdog budget for in-band commands; `None` disables the watchdog.
    command_timeout: Option<SimDuration>,
    scheduled_crashes: Vec<ScheduledCrash>,
    power_fault_windows: Vec<FaultWindow>,
    hang_windows: Vec<FaultWindow>,
    link_degradations: Vec<LinkDegradation>,
}

impl Testbed {
    /// Creates an empty testbed with the standard image set.
    pub fn new(seed: u64) -> Testbed {
        Testbed {
            now: SimTime::ZERO,
            hosts: BTreeMap::new(),
            images: ImageStore::with_standard_images(),
            calendar: Calendar::new(),
            topology: Topology::new(),
            commands: BTreeMap::new(),
            rng: SimRng::new(seed).derive("testbed"),
            trace: Trace::default(),
            root_seed: seed,
            command_timeout: None,
            scheduled_crashes: Vec::new(),
            power_fault_windows: Vec::new(),
            hang_windows: Vec::new(),
            link_degradations: Vec::new(),
        }
    }

    /// The seed this testbed was created with.
    pub fn seed(&self) -> u64 {
        self.root_seed
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Advances the clock by `d` (operations call this internally; external
    /// callers use it to account for work done outside the testbed, e.g. a
    /// packet-level measurement).
    pub fn advance(&mut self, d: SimDuration) {
        self.now += d;
    }

    /// Sets the clock to an absolute instant — **controller use only**.
    ///
    /// Experiment hosts execute their script segments *concurrently*
    /// between synchronization barriers, but this testbed has a single
    /// clock. The controller therefore runs each host's segment in its own
    /// "lane": it remembers the barrier instant, replays every lane from
    /// that instant (rewinding with this method), and finally sets the
    /// clock to the *latest* lane end — which is exactly when a barrier
    /// completes. Any other use of backwards time travel voids
    /// repeatability guarantees.
    pub fn set_now(&mut self, t: SimTime) {
        self.now = t;
    }

    /// Adds a host. Panics on duplicate names — inventory is static.
    pub fn add_host(
        &mut self,
        name: impl Into<String>,
        spec: HardwareSpec,
        init: InitInterface,
    ) -> &mut Host {
        let name = name.into();
        assert!(
            !self.hosts.contains_key(&name),
            "duplicate host name {name}"
        );
        self.hosts
            .entry(name.clone())
            .or_insert_with(|| Host::new(name, spec, init))
    }

    /// Looks a host up.
    pub fn host(&self, name: &str) -> Option<&Host> {
        self.hosts.get(name)
    }

    /// Looks a host up mutably.
    pub fn host_mut(&mut self, name: &str) -> Option<&mut Host> {
        self.hosts.get_mut(name)
    }

    /// Names of all hosts, sorted.
    pub fn host_names(&self) -> Vec<String> {
        self.hosts.keys().cloned().collect()
    }

    /// Registers (or replaces) a command handler available on every host.
    pub fn register_command(&mut self, name: impl Into<String>, handler: CommandHandler) {
        self.commands.insert(name.into(), handler);
    }

    // ------------------------------------------------------------------
    // Chaos hooks (armed by the controller from a chaos plan)
    // ------------------------------------------------------------------

    /// Sets the per-command watchdog budget. A command that would run (or
    /// hang) longer than this is killed and surfaces as
    /// [`ExecError::Timeout`]. `None` disables the watchdog.
    pub fn set_command_timeout(&mut self, timeout: Option<SimDuration>) {
        self.command_timeout = timeout;
    }

    /// The active watchdog budget.
    pub fn command_timeout(&self) -> Option<SimDuration> {
        self.command_timeout
    }

    /// Schedules an out-of-band host failure at `at`. With `wedge` the host
    /// additionally refuses soft resets until fully power-cycled.
    pub fn schedule_crash(&mut self, host: &str, at: SimTime, wedge: bool) {
        self.scheduled_crashes.push(ScheduledCrash {
            at,
            host: host.to_owned(),
            wedge,
        });
    }

    /// Declares a window during which every power command against `host`
    /// fails (management network outage, dead BMC, tripped breaker).
    pub fn add_power_fault_window(&mut self, host: &str, from: SimTime, until: SimTime) {
        self.power_fault_windows.push(FaultWindow {
            host: host.to_owned(),
            from,
            until,
        });
    }

    /// Declares a window during which commands on `host` hang instead of
    /// returning — the watchdog (if armed) reaps them.
    pub fn add_hang_window(&mut self, host: &str, from: SimTime, until: SimTime) {
        self.hang_windows.push(FaultWindow {
            host: host.to_owned(),
            from,
            until,
        });
    }

    /// Declares a window during which `host`'s experiment link drops and
    /// corrupts frames with the given probabilities.
    pub fn add_link_degradation(
        &mut self,
        host: &str,
        from: SimTime,
        until: SimTime,
        drop_chance: f64,
        corrupt_chance: f64,
    ) {
        self.link_degradations.push(LinkDegradation {
            window: FaultWindow {
                host: host.to_owned(),
                from,
                until,
            },
            drop_chance,
            corrupt_chance,
        });
    }

    /// The `(drop_chance, corrupt_chance)` affecting `host`'s experiment
    /// link at `at`, if any degradation window is active. Overlapping
    /// windows combine by taking the worse probability per field.
    pub fn link_degradation(&self, host: &str, at: SimTime) -> Option<(f64, f64)> {
        let mut hit = None;
        for d in &self.link_degradations {
            if d.window.contains(host, at) {
                let (drop, corrupt) = hit.unwrap_or((0.0f64, 0.0f64));
                hit = Some((drop.max(d.drop_chance), corrupt.max(d.corrupt_chance)));
            }
        }
        hit
    }

    /// Fires every scheduled crash whose instant has passed. Events are
    /// consumed regardless of host state: a crash aimed at a host that is
    /// already down is a no-op, and consuming it prevents the absurdity of
    /// a stale event re-killing the host after its recovery reboot.
    fn apply_due_crashes(&mut self) {
        let now = self.now;
        let mut due = Vec::new();
        self.scheduled_crashes.retain(|c| {
            if c.at <= now {
                due.push(c.clone());
                false
            } else {
                true
            }
        });
        for c in due {
            let Some(h) = self.hosts.get_mut(&c.host) else {
                continue;
            };
            if !h.is_up() {
                continue;
            }
            if c.wedge {
                h.inject_wedge();
            } else {
                h.inject_crash();
            }
            self.trace.log(
                now,
                TraceLevel::Warn,
                c.host.clone(),
                if c.wedge {
                    format!("chaos: host wedged at {} (firmware hang)", c.at)
                } else {
                    format!("chaos: host crashed at {} (kernel panic)", c.at)
                },
            );
        }
    }

    fn in_power_fault_window(&self, host: &str) -> bool {
        self.power_fault_windows
            .iter()
            .any(|w| w.contains(host, self.now))
    }

    /// End of the latest hang window covering `host` right now, if any.
    fn hang_until(&self, host: &str) -> Option<SimTime> {
        self.hang_windows
            .iter()
            .filter(|w| w.contains(host, self.now))
            .map(|w| w.until)
            .max()
    }

    // ------------------------------------------------------------------
    // Initialization interface (out-of-band power control)
    // ------------------------------------------------------------------

    fn power_preamble(&mut self, host: &str) -> Result<InitInterface, PowerError> {
        self.apply_due_crashes();
        let h = self
            .hosts
            .get(host)
            .ok_or_else(|| PowerError::UnknownHost { host: host.into() })?;
        let iface = h.init_interface;
        self.advance(iface.command_latency());
        if self.in_power_fault_window(host) {
            self.trace.log(
                self.now,
                TraceLevel::Warn,
                host.to_owned(),
                format!("{iface}: management outage (chaos window), command failed"),
            );
            return Err(PowerError::TransientFailure { interface: iface });
        }
        if self.rng.chance(iface.transient_failure_chance()) {
            self.trace.log(
                self.now,
                TraceLevel::Warn,
                host.to_owned(),
                format!("{iface}: transient management failure"),
            );
            return Err(PowerError::TransientFailure { interface: iface });
        }
        Ok(iface)
    }

    /// Selects the live image for a host's next boot.
    pub fn select_image(&mut self, host: &str, image: ImageId) -> Result<(), PowerError> {
        let h = self
            .hosts
            .get_mut(host)
            .ok_or_else(|| PowerError::UnknownHost { host: host.into() })?;
        h.selected_image = Some(image);
        Ok(())
    }

    /// Sets kernel boot parameters for a host's next boot.
    pub fn set_boot_params(&mut self, host: &str, params: &[String]) -> Result<(), PowerError> {
        let h = self
            .hosts
            .get_mut(host)
            .ok_or_else(|| PowerError::UnknownHost { host: host.into() })?;
        h.boot_params = params.to_vec();
        Ok(())
    }

    /// Powers a host on; it starts booting its selected live image.
    pub fn power_on(&mut self, host: &str) -> Result<(), PowerError> {
        let iface = self.power_preamble(host)?;
        let now = self.now;
        let boot = iface.boot_time(&mut self.rng);
        let h = self.hosts.get_mut(host).expect("checked in preamble");
        let image = h
            .selected_image
            .ok_or_else(|| PowerError::NoImageSelected { host: host.into() })?;
        h.power = PowerState::Booting {
            ready_at: now + boot,
            image,
        };
        self.trace.log(
            now,
            TraceLevel::Info,
            host.to_owned(),
            format!("powering on, image {image}, ready in {boot}"),
        );
        Ok(())
    }

    /// Powers a host off (works from any state — it is a plug pull).
    pub fn power_off(&mut self, host: &str) -> Result<(), PowerError> {
        let iface = self.power_preamble(host)?;
        self.advance(iface.off_on_dwell());
        let now = self.now;
        let h = self.hosts.get_mut(host).expect("checked in preamble");
        h.power = PowerState::Off;
        // A full power cycle un-wedges stuck firmware; a soft reset cannot.
        h.wedged = false;
        self.trace
            .log(now, TraceLevel::Info, host.to_owned(), "powered off");
        Ok(())
    }

    /// Hard-resets a host out of band: the R3 recovery path. Equivalent to
    /// a power cycle and reboot of the selected image. Fails on interfaces
    /// without a reset command (power plugs need off + dwell + on).
    pub fn reset(&mut self, host: &str) -> Result<(), PowerError> {
        let iface = self.power_preamble(host)?;
        if !iface.supports_reset() {
            return Err(PowerError::Unsupported {
                interface: iface,
                operation: "reset",
            });
        }
        if self.hosts.get(host).map(|h| h.wedged).unwrap_or(false) {
            self.trace.log(
                self.now,
                TraceLevel::Warn,
                host.to_owned(),
                format!("{iface}: reset accepted but host stays wedged (power cycle required)"),
            );
            return Err(PowerError::TransientFailure { interface: iface });
        }
        let now = self.now;
        let boot = iface.boot_time(&mut self.rng);
        let h = self.hosts.get_mut(host).expect("checked in preamble");
        let image = h
            .selected_image
            .ok_or_else(|| PowerError::NoImageSelected { host: host.into() })?;
        h.power = PowerState::Booting {
            ready_at: now + boot,
            image,
        };
        self.trace.log(
            now,
            TraceLevel::Info,
            host.to_owned(),
            format!("hard reset, rebooting image {image}"),
        );
        Ok(())
    }

    /// Blocks (in virtual time) until the host finishes booting, then
    /// applies the live-image clean slate. No-op if the host is already up.
    pub fn wait_booted(&mut self, host: &str) -> Result<(), ExecError> {
        let h = self
            .hosts
            .get_mut(host)
            .ok_or_else(|| ExecError::UnknownHost { host: host.into() })?;
        match h.power {
            PowerState::On { .. } => Ok(()),
            PowerState::Booting { ready_at, image } => {
                h.apply_clean_slate(image);
                let boots = h.boots;
                if ready_at > self.now {
                    self.now = ready_at;
                }
                self.trace.log(
                    self.now,
                    TraceLevel::Info,
                    host.to_owned(),
                    format!("boot #{boots} complete (clean slate)"),
                );
                Ok(())
            }
            other => Err(ExecError::HostUnreachable {
                host: host.into(),
                state: format!("{other:?}"),
            }),
        }
    }

    // ------------------------------------------------------------------
    // Configuration interface (in-band command execution)
    // ------------------------------------------------------------------

    /// Uploads a file to a host (SCP-style). Requires the host to be up.
    pub fn upload(&mut self, host: &str, path: &str, contents: &[u8]) -> Result<(), ExecError> {
        self.apply_due_crashes();
        let h = self.reachable_host_mut(host)?;
        if !h.config_interface.has_shell() {
            return Err(ExecError::BadCommandLine {
                reason: format!(
                    "cannot upload files to {host}: {} devices have no filesystem access",
                    h.config_interface
                ),
            });
        }
        h.fs.insert(path.to_owned(), contents.to_vec());
        self.advance(SimDuration::from_millis(50));
        Ok(())
    }

    /// Reads a file back from a host.
    pub fn download(&mut self, host: &str, path: &str) -> Result<Vec<u8>, ExecError> {
        self.apply_due_crashes();
        let h = self.reachable_host_mut(host)?;
        h.fs.get(path).cloned().ok_or(ExecError::BadCommandLine {
            reason: format!("{path}: no such file"),
        })
    }

    fn reachable_host_mut(&mut self, host: &str) -> Result<&mut Host, ExecError> {
        let h = self
            .hosts
            .get_mut(host)
            .ok_or_else(|| ExecError::UnknownHost { host: host.into() })?;
        if !h.is_up() {
            return Err(ExecError::HostUnreachable {
                host: host.into(),
                state: format!("{:?}", h.power),
            });
        }
        Ok(h)
    }

    /// Executes a command line on a host via its configuration interface.
    ///
    /// Dispatch order: registered handlers, then builtins. An unknown
    /// command yields exit code 127 (shell convention), not an `Err` —
    /// experiment scripts decide how to react to failing commands.
    pub fn exec(&mut self, host: &str, command_line: &str) -> Result<CommandResult, ExecError> {
        self.apply_due_crashes();
        let iface = self.reachable_host_mut(host)?.config_interface;
        let argv = split_command_line(command_line)?;
        // Connection + dispatch overhead of the configuration interface.
        self.advance(iface.command_overhead());

        // Chaos hang window: the session stalls instead of dispatching. If
        // a watchdog is armed and the window outlives its budget, the
        // command is killed; otherwise the session stalls until the window
        // passes and the command then runs normally.
        if let Some(until) = self.hang_until(host) {
            match self.command_timeout {
                Some(budget) if self.now + budget < until => {
                    self.advance(budget);
                    return self.watchdog_fired(host, command_line, budget);
                }
                _ => {
                    let stall = until.saturating_duration_since(self.now);
                    self.advance(stall);
                    self.trace.log(
                        self.now,
                        TraceLevel::Warn,
                        host.to_owned(),
                        format!("exec `{command_line}` stalled {stall} (chaos hang window)"),
                    );
                }
            }
        }

        let result = if let Some(handler) = self.commands.get(&argv[0]).cloned() {
            handler(self, host, &argv)
        } else if iface.has_shell() {
            self.builtin(host, &argv)
        } else {
            CommandResult::fail(
                126,
                format!(
                    "{}: no shell on this device ({iface} management API);                      only registered management commands are available",
                    argv[0]
                ),
            )
        };

        // Watchdog: a command that would outlive its budget is killed at
        // the budget boundary — its output never arrives.
        if let Some(budget) = self.command_timeout {
            if result.duration > budget {
                self.advance(budget);
                return self.watchdog_fired(host, command_line, budget);
            }
        }
        self.advance(result.duration);

        // Console capture: pos uploads all output to the controller (§4.4).
        let now = self.now;
        if let Some(h) = self.hosts.get_mut(host) {
            h.console.push(format!("$ {command_line}"));
            if !result.stdout.is_empty() {
                h.console.push(result.stdout.clone());
            }
            if !result.stderr.is_empty() {
                h.console.push(format!("stderr: {}", result.stderr));
            }
            if !result.success() {
                h.console.push(format!("exit code: {}", result.exit_code));
            }
        }
        self.trace.log(
            now,
            if result.success() {
                TraceLevel::Debug
            } else {
                TraceLevel::Warn
            },
            host.to_owned(),
            format!("exec `{command_line}` -> {}", result.exit_code),
        );
        Ok(result)
    }

    /// Records a watchdog kill on the console and trace, then surfaces it
    /// as [`ExecError::Timeout`]. The clock has already been advanced by
    /// the exhausted budget.
    fn watchdog_fired(
        &mut self,
        host: &str,
        command_line: &str,
        budget: SimDuration,
    ) -> Result<CommandResult, ExecError> {
        let now = self.now;
        if let Some(h) = self.hosts.get_mut(host) {
            h.console.push(format!("$ {command_line}"));
            h.console
                .push(format!("watchdog: command killed after {budget}"));
        }
        self.trace.log(
            now,
            TraceLevel::Warn,
            host.to_owned(),
            format!("exec `{command_line}` exceeded watchdog budget {budget}, killed"),
        );
        Err(ExecError::Timeout {
            host: host.into(),
            command: command_line.into(),
            after: budget,
        })
    }

    /// The built-in command set every live image ships.
    fn builtin(&mut self, host: &str, argv: &[String]) -> CommandResult {
        let h = self.hosts.get_mut(host).expect("reachability checked");
        match argv[0].as_str() {
            "true" => CommandResult::ok(""),
            "false" => CommandResult::fail(1, ""),
            "echo" => CommandResult::ok(argv[1..].join(" ")),
            "sleep" => match argv.get(1).and_then(|s| s.parse::<f64>().ok()) {
                Some(secs) if secs >= 0.0 => {
                    CommandResult::ok("").with_duration(SimDuration::from_secs_f64(secs))
                }
                _ => CommandResult::fail(1, "sleep: invalid time interval"),
            },
            "hostname" => match argv.get(1) {
                Some(name) => {
                    h.sysctls.insert("kernel.hostname".into(), name.clone());
                    CommandResult::ok("")
                }
                None => {
                    let name = h
                        .sysctls
                        .get("kernel.hostname")
                        .cloned()
                        .unwrap_or_default();
                    if name.is_empty() {
                        CommandResult::ok(h.name.clone())
                    } else {
                        CommandResult::ok(name)
                    }
                }
            },
            "uname" => {
                let image = h.running_image();
                let kernel = image
                    .and_then(|id| self.images.get(id))
                    .map(|i| i.kernel.clone())
                    .unwrap_or_else(|| "unknown".into());
                CommandResult::ok(format!("Linux {} {kernel} pos-sim x86_64", h.name))
            }
            "sysctl" => {
                // sysctl key | sysctl -w key=value | sysctl key=value
                let args: Vec<&String> = argv[1..].iter().filter(|a| *a != "-w").collect();
                match args.as_slice() {
                    [kv] if kv.contains('=') => {
                        let (k, v) = kv.split_once('=').expect("checked");
                        if h.sysctls.contains_key(k)
                            || k.starts_with("net.")
                            || k.starts_with("kernel.")
                        {
                            h.sysctls.insert(k.trim().into(), v.trim().into());
                            CommandResult::ok(format!("{} = {}", k.trim(), v.trim()))
                        } else {
                            CommandResult::fail(255, format!("sysctl: cannot stat {k}"))
                        }
                    }
                    [k] => match h.sysctls.get(k.as_str()) {
                        Some(v) => CommandResult::ok(format!("{k} = {v}")),
                        None => CommandResult::fail(255, format!("sysctl: cannot stat {k}")),
                    },
                    _ => CommandResult::fail(1, "usage: sysctl [-w] key[=value]"),
                }
            }
            "ip" => {
                // ip addr add CIDR dev IF  |  ip link set IF up/down
                let args: Vec<&str> = argv[1..].iter().map(|s| s.as_str()).collect();
                match args.as_slice() {
                    ["addr", "add", cidr, "dev", ifname] => {
                        h.netconf.insert(format!("addr:{ifname}"), cidr.to_string());
                        CommandResult::ok("")
                    }
                    ["link", "set", ifname, updown @ ("up" | "down")] => {
                        h.netconf
                            .insert(format!("link:{ifname}"), updown.to_string());
                        CommandResult::ok("")
                    }
                    ["addr", "show"] => {
                        let mut out = String::new();
                        for (k, v) in &h.netconf {
                            out.push_str(&format!("{k} {v}\n"));
                        }
                        CommandResult::ok(out)
                    }
                    _ => CommandResult::fail(2, format!("ip: unsupported arguments {args:?}")),
                }
            }
            "lspci" | "pos-hardware-info" => CommandResult::ok(h.spec.render()),
            "cat" => match argv.get(1) {
                Some(path) => match h.fs.get(path.as_str()) {
                    Some(data) => CommandResult::ok(String::from_utf8_lossy(data).into_owned()),
                    None => CommandResult::fail(1, format!("cat: {path}: No such file")),
                },
                None => CommandResult::fail(1, "cat: missing operand"),
            },
            "pos_set_var" => match (argv.get(1), argv.get(2)) {
                (Some(k), Some(v)) => {
                    h.vars.insert(k.clone(), v.clone());
                    CommandResult::ok("")
                }
                _ => CommandResult::fail(1, "usage: pos_set_var NAME VALUE"),
            },
            "pos_get_var" => match argv.get(1) {
                Some(k) => match h.vars.get(k) {
                    Some(v) => CommandResult::ok(v.clone()),
                    None => CommandResult::fail(1, format!("pos_get_var: {k} not set")),
                },
                None => CommandResult::fail(1, "usage: pos_get_var NAME"),
            },
            other => CommandResult::fail(127, format!("{other}: command not found")),
        }
    }

    /// Deploys pos's utility tools and the experiment variables to a host
    /// (the "pos deploys a set of utility tools" step of §4.4).
    pub fn deploy_tools(
        &mut self,
        host: &str,
        vars: &BTreeMap<String, String>,
    ) -> Result<(), ExecError> {
        // Shell hosts get the utility binaries; management-API devices
        // (no filesystem) still receive variables through their API.
        if self.reachable_host_mut(host)?.config_interface.has_shell() {
            self.upload(host, "/usr/local/bin/pos", b"#!posutils\n")?;
        }
        let h = self.reachable_host_mut(host)?;
        for (k, v) in vars {
            h.vars.insert(k.clone(), v.clone());
        }
        Ok(())
    }

    /// Fresh per-purpose RNG stream tied to the testbed seed.
    pub fn derive_rng(&self, label: &str) -> SimRng {
        SimRng::new(self.root_seed).derive(label)
    }

    /// Re-derives the *shared* management RNG stream from the root seed
    /// under a new `label`, discarding the current stream position.
    ///
    /// `Testbed::new` labels the stream `"testbed"`. A parallel campaign
    /// scheduler gives every worker-lane replica its own sub-stream (e.g.
    /// `"testbed/lane1"`) so that out-of-band power jitter on one lane
    /// cannot perturb another lane's draws. Lane 0 keeps the default label,
    /// which makes a one-lane schedule consume exactly the sequential
    /// controller's stream. Call this only before any draw has been
    /// consumed; re-labelling mid-campaign voids repeatability.
    pub fn rederive_management_rng(&mut self, label: &str) {
        self.rng = SimRng::new(self.root_seed).derive(label);
    }

    /// Position of the *shared* management RNG stream (the one consumed by
    /// out-of-band power commands). Recorded into the campaign journal so
    /// a resumed controller can realign the stream after skipping
    /// already-completed runs.
    pub fn rng_cursor(&self) -> u64 {
        self.rng.draws()
    }

    /// Fast-forwards the shared management RNG stream to a recorded
    /// cursor. Panics if the stream is already past it (see
    /// [`SimRng::skip_to`]).
    pub fn rng_seek(&mut self, cursor: u64) {
        self.rng.skip_to(cursor);
    }

    /// Discards scheduled crash/wedge events whose instant is already in
    /// the past *without firing them*. A resumed controller fast-forwards
    /// virtual time over a completed run; when that run journaled a
    /// successful recovery, the chaos events inside its window were
    /// consumed (host detected down, rebooted, setup re-run) in the
    /// interrupted session — replaying them against the fresh testbed
    /// would double-fire.
    pub fn discard_due_faults(&mut self) {
        let now = self.now;
        self.scheduled_crashes.retain(|c| c.at > now);
    }

    /// Restores image-default sysctls on a host (used by tests to model
    /// drift without a reboot).
    pub fn reset_sysctls_to_default(&mut self, host: &str) {
        if let Some(h) = self.hosts.get_mut(host) {
            h.sysctls = default_sysctls();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn testbed_with_host() -> (Testbed, ImageId) {
        let mut tb = Testbed::new(42);
        tb.add_host("vtartu", HardwareSpec::paper_dut(), InitInterface::Ipmi);
        let img = tb.images.latest("debian-buster").unwrap().id;
        (tb, img)
    }

    /// Boots the host, retrying transient IPMI failures like a controller.
    fn boot(tb: &mut Testbed, host: &str, img: ImageId) {
        tb.select_image(host, img).unwrap();
        for _ in 0..10 {
            match tb.power_on(host) {
                Ok(()) => break,
                Err(PowerError::TransientFailure { .. }) => continue,
                Err(e) => panic!("unexpected power error: {e}"),
            }
        }
        tb.wait_booted(host).unwrap();
    }

    #[test]
    fn boot_cycle_takes_virtual_time_and_cleans_state() {
        let (mut tb, img) = testbed_with_host();
        let t0 = tb.now();
        boot(&mut tb, "vtartu", img);
        let boot_time = (tb.now() - t0).as_secs_f64();
        assert!(
            (70.0..90.0).contains(&boot_time),
            "IPMI boot ≈70-85 s, got {boot_time}"
        );
        assert!(tb.host("vtartu").unwrap().is_up());
        assert_eq!(tb.host("vtartu").unwrap().running_image(), Some(img));
    }

    #[test]
    fn exec_before_boot_is_unreachable() {
        let (mut tb, _) = testbed_with_host();
        let err = tb.exec("vtartu", "echo hi").unwrap_err();
        assert!(matches!(err, ExecError::HostUnreachable { .. }));
        let err = tb.exec("nosuchhost", "echo hi").unwrap_err();
        assert!(matches!(err, ExecError::UnknownHost { .. }));
    }

    #[test]
    fn power_on_without_image_fails() {
        let (mut tb, _) = testbed_with_host();
        // Retry around possible transient failures to reach the real error.
        let err = loop {
            match tb.power_on("vtartu") {
                Err(PowerError::TransientFailure { .. }) => continue,
                other => break other.unwrap_err(),
            }
        };
        assert!(matches!(err, PowerError::NoImageSelected { .. }));
    }

    #[test]
    fn builtins_work() {
        let (mut tb, img) = testbed_with_host();
        boot(&mut tb, "vtartu", img);
        assert_eq!(
            tb.exec("vtartu", "echo hello world").unwrap().stdout,
            "hello world"
        );
        assert!(tb.exec("vtartu", "true").unwrap().success());
        assert!(!tb.exec("vtartu", "false").unwrap().success());
        assert_eq!(tb.exec("vtartu", "hostname").unwrap().stdout, "vtartu");
        tb.exec("vtartu", "hostname router1").unwrap();
        assert_eq!(tb.exec("vtartu", "hostname").unwrap().stdout, "router1");
        let uname = tb.exec("vtartu", "uname -a").unwrap().stdout;
        assert!(uname.contains("4.19"), "kernel from the image: {uname}");
        assert_eq!(tb.exec("vtartu", "nosuchcmd").unwrap().exit_code, 127);
    }

    #[test]
    fn sleep_advances_virtual_time() {
        let (mut tb, img) = testbed_with_host();
        boot(&mut tb, "vtartu", img);
        let t0 = tb.now();
        tb.exec("vtartu", "sleep 30").unwrap();
        let dt = (tb.now() - t0).as_secs_f64();
        assert!((30.0..30.5).contains(&dt), "got {dt}");
        assert!(!tb.exec("vtartu", "sleep -1").unwrap().success());
        assert!(!tb.exec("vtartu", "sleep abc").unwrap().success());
    }

    #[test]
    fn sysctl_and_ip_configure_host_state() {
        let (mut tb, img) = testbed_with_host();
        boot(&mut tb, "vtartu", img);
        // Image default: forwarding off.
        assert_eq!(
            tb.exec("vtartu", "sysctl net.ipv4.ip_forward")
                .unwrap()
                .stdout,
            "net.ipv4.ip_forward = 0"
        );
        tb.exec("vtartu", "sysctl -w net.ipv4.ip_forward=1")
            .unwrap();
        assert_eq!(
            tb.host("vtartu").unwrap().sysctls["net.ipv4.ip_forward"],
            "1"
        );
        assert!(!tb.exec("vtartu", "sysctl no.such.key").unwrap().success());

        tb.exec("vtartu", "ip addr add 10.0.0.1/24 dev eno1")
            .unwrap();
        tb.exec("vtartu", "ip link set eno1 up").unwrap();
        let show = tb.exec("vtartu", "ip addr show").unwrap().stdout;
        assert!(show.contains("addr:eno1 10.0.0.1/24"));
        assert!(show.contains("link:eno1 up"));
    }

    #[test]
    fn reboot_wipes_configuration() {
        let (mut tb, img) = testbed_with_host();
        boot(&mut tb, "vtartu", img);
        tb.exec("vtartu", "sysctl -w net.ipv4.ip_forward=1")
            .unwrap();
        tb.upload("vtartu", "/root/setup.sh", b"echo setup")
            .unwrap();
        // Reboot via reset; retry transients.
        loop {
            match tb.reset("vtartu") {
                Ok(()) => break,
                Err(PowerError::TransientFailure { .. }) => continue,
                Err(e) => panic!("{e}"),
            }
        }
        tb.wait_booted("vtartu").unwrap();
        let h = tb.host("vtartu").unwrap();
        assert_eq!(
            h.sysctls["net.ipv4.ip_forward"], "0",
            "clean slate restored"
        );
        assert!(h.fs.is_empty(), "uploaded files wiped");
        assert_eq!(h.boots, 2);
    }

    #[test]
    fn crash_recovery_via_reset() {
        let (mut tb, img) = testbed_with_host();
        boot(&mut tb, "vtartu", img);
        tb.host_mut("vtartu").unwrap().inject_crash();
        assert!(matches!(
            tb.exec("vtartu", "echo hi").unwrap_err(),
            ExecError::HostUnreachable { .. }
        ));
        // The R3 path: out-of-band reset still works.
        loop {
            match tb.reset("vtartu") {
                Ok(()) => break,
                Err(PowerError::TransientFailure { .. }) => continue,
                Err(e) => panic!("{e}"),
            }
        }
        tb.wait_booted("vtartu").unwrap();
        assert!(tb.exec("vtartu", "echo back").unwrap().success());
    }

    #[test]
    fn power_plug_cannot_reset_but_can_cycle() {
        let mut tb = Testbed::new(7);
        tb.add_host(
            "plugged",
            HardwareSpec::paper_dut(),
            InitInterface::PowerPlug,
        );
        let img = tb.images.latest("debian-buster").unwrap().id;
        tb.select_image("plugged", img).unwrap();
        let err = loop {
            match tb.reset("plugged") {
                Err(PowerError::TransientFailure { .. }) => continue,
                other => break other.unwrap_err(),
            }
        };
        assert!(matches!(
            err,
            PowerError::Unsupported {
                operation: "reset",
                ..
            }
        ));
        // Cycle instead: off (with dwell) then on.
        let t0 = tb.now();
        while tb.power_off("plugged").is_err() {}
        assert!((tb.now() - t0).as_secs_f64() >= 10.0, "dwell time enforced");
        while tb.power_on("plugged").is_err() {}
        tb.wait_booted("plugged").unwrap();
        assert!(tb.host("plugged").unwrap().is_up());
    }

    #[test]
    fn registered_commands_shadow_builtins_and_see_testbed() {
        let (mut tb, img) = testbed_with_host();
        boot(&mut tb, "vtartu", img);
        tb.register_command(
            "count-hosts",
            Rc::new(|tb, _host, _argv| CommandResult::ok(tb.host_names().len().to_string())),
        );
        assert_eq!(tb.exec("vtartu", "count-hosts").unwrap().stdout, "1");
    }

    #[test]
    fn console_captures_all_output() {
        let (mut tb, img) = testbed_with_host();
        boot(&mut tb, "vtartu", img);
        tb.exec("vtartu", "echo captured-line").unwrap();
        tb.exec("vtartu", "false").unwrap();
        let console = &tb.host("vtartu").unwrap().console;
        assert!(console.iter().any(|l| l == "$ echo captured-line"));
        assert!(console.iter().any(|l| l == "captured-line"));
        assert!(console.iter().any(|l| l.contains("exit code: 1")));
    }

    #[test]
    fn upload_download_roundtrip() {
        let (mut tb, img) = testbed_with_host();
        boot(&mut tb, "vtartu", img);
        tb.upload("vtartu", "/root/measure.sh", b"moongen --rate $pkt_rate")
            .unwrap();
        let back = tb.download("vtartu", "/root/measure.sh").unwrap();
        assert_eq!(back, b"moongen --rate $pkt_rate");
        assert!(tb.download("vtartu", "/root/missing").is_err());
        let cat = tb.exec("vtartu", "cat /root/measure.sh").unwrap();
        assert!(cat.stdout.contains("moongen"));
    }

    #[test]
    fn deploy_tools_installs_vars() {
        let (mut tb, img) = testbed_with_host();
        boot(&mut tb, "vtartu", img);
        let mut vars = BTreeMap::new();
        vars.insert("pkt_sz".to_string(), "64".to_string());
        tb.deploy_tools("vtartu", &vars).unwrap();
        assert_eq!(
            tb.exec("vtartu", "pos_get_var pkt_sz").unwrap().stdout,
            "64"
        );
        assert!(!tb.exec("vtartu", "pos_get_var missing").unwrap().success());
        tb.exec("vtartu", "pos_set_var done 1").unwrap();
        assert_eq!(tb.exec("vtartu", "pos_get_var done").unwrap().stdout, "1");
    }

    #[test]
    fn determinism_same_seed_same_boot_times() {
        let run = |seed| {
            let mut tb = Testbed::new(seed);
            tb.add_host("h", HardwareSpec::paper_dut(), InitInterface::Ipmi);
            let img = tb.images.latest("debian-buster").unwrap().id;
            tb.select_image("h", img).unwrap();
            while tb.power_on("h").is_err() {}
            tb.wait_booted("h").unwrap();
            tb.now().as_nanos()
        };
        assert_eq!(run(1), run(1));
        assert_ne!(run(1), run(2));
    }

    #[test]
    fn management_api_devices_have_no_shell() {
        let mut tb = Testbed::new(9);
        let spec = HardwareSpec {
            kind: crate::host::DeviceKind::Switch,
            cpu_model: "Tofino management CPU".into(),
            cores: 4,
            memory_gib: 8,
            nics: vec![],
        };
        tb.add_host("tofino", spec, InitInterface::VendorManagement);
        assert_eq!(
            tb.host("tofino").unwrap().config_interface,
            crate::config_iface::ConfigInterface::Snmp
        );
        let img = tb.images.latest("debian-buster").unwrap().id;
        tb.select_image("tofino", img).unwrap();
        while tb.power_on("tofino").is_err() {}
        tb.wait_booted("tofino").unwrap();

        // Shell builtins do not exist on an SNMP-managed device...
        let r = tb.exec("tofino", "echo hi").unwrap();
        assert_eq!(r.exit_code, 126);
        assert!(r.stderr.contains("no shell"));
        assert!(tb.upload("tofino", "/x", b"y").is_err());

        // ...but registered management commands do (R1: the device is
        // integrated through its own API).
        tb.register_command(
            "switch-configure",
            Rc::new(|_tb, _host, argv| {
                CommandResult::ok(format!("configured {}", argv[1..].join(" ")))
            }),
        );
        let r = tb.exec("tofino", "switch-configure port 1 up").unwrap();
        assert!(r.success());
        assert_eq!(r.stdout, "configured port 1 up");

        // And variable deployment still works through the API.
        let mut vars = BTreeMap::new();
        vars.insert("mode".to_string(), "forwarding".to_string());
        tb.deploy_tools("tofino", &vars).unwrap();
        assert_eq!(tb.host("tofino").unwrap().vars["mode"], "forwarding");
    }

    #[test]
    fn serial_console_is_slower_than_ssh() {
        let mut tb = Testbed::new(10);
        tb.add_host("a", HardwareSpec::paper_dut(), InitInterface::Ipmi);
        tb.add_host("b", HardwareSpec::paper_dut(), InitInterface::Ipmi);
        tb.host_mut("b").unwrap().config_interface =
            crate::config_iface::ConfigInterface::SerialConsole;
        let img = tb.images.latest("debian-buster").unwrap().id;
        for h in ["a", "b"] {
            tb.select_image(h, img).unwrap();
            while tb.power_on(h).is_err() {}
            tb.wait_booted(h).unwrap();
        }
        let t0 = tb.now();
        tb.exec("a", "true").unwrap();
        let ssh_cost = tb.now() - t0;
        let t0 = tb.now();
        tb.exec("b", "true").unwrap();
        let serial_cost = tb.now() - t0;
        assert!(serial_cost.as_nanos() > ssh_cost.as_nanos() * 3);
    }

    #[test]
    #[should_panic(expected = "duplicate host name")]
    fn duplicate_hosts_rejected() {
        let mut tb = Testbed::new(1);
        tb.add_host("h", HardwareSpec::paper_dut(), InitInterface::Ipmi);
        tb.add_host("h", HardwareSpec::paper_dut(), InitInterface::Ipmi);
    }

    #[test]
    fn scheduled_crash_fires_at_next_command() {
        let (mut tb, img) = testbed_with_host();
        boot(&mut tb, "vtartu", img);
        tb.schedule_crash("vtartu", tb.now() + SimDuration::from_secs(5), false);
        assert!(tb.exec("vtartu", "true").unwrap().success(), "not due yet");
        tb.advance(SimDuration::from_secs(10));
        let err = tb.exec("vtartu", "true").unwrap_err();
        assert!(matches!(err, ExecError::HostUnreachable { .. }));
        // The event is consumed: after recovery the host stays up.
        loop {
            match tb.reset("vtartu") {
                Ok(()) => break,
                Err(PowerError::TransientFailure { .. }) => continue,
                Err(e) => panic!("{e}"),
            }
        }
        tb.wait_booted("vtartu").unwrap();
        assert!(tb.exec("vtartu", "true").unwrap().success());
    }

    #[test]
    fn wedged_host_needs_full_power_cycle() {
        let (mut tb, img) = testbed_with_host();
        boot(&mut tb, "vtartu", img);
        tb.schedule_crash("vtartu", tb.now(), true);
        assert!(tb.exec("vtartu", "true").is_err());
        // Soft resets bounce off a wedged host (IPMI supports reset, but
        // the stuck firmware ignores it).
        for _ in 0..20 {
            assert!(tb.reset("vtartu").is_err());
        }
        // A full cycle clears the wedge.
        while tb.power_off("vtartu").is_err() {}
        while tb.power_on("vtartu").is_err() {}
        tb.wait_booted("vtartu").unwrap();
        assert!(tb.exec("vtartu", "true").unwrap().success());
        assert!(!tb.host("vtartu").unwrap().wedged);
    }

    #[test]
    fn power_fault_window_fails_management_commands() {
        let (mut tb, img) = testbed_with_host();
        boot(&mut tb, "vtartu", img);
        let from = tb.now();
        let until = from + SimDuration::from_secs(60);
        tb.add_power_fault_window("vtartu", from, until);
        assert!(matches!(
            tb.reset("vtartu"),
            Err(PowerError::TransientFailure { .. })
        ));
        // Past the window, power control works again.
        tb.advance(SimDuration::from_secs(120));
        loop {
            match tb.reset("vtartu") {
                Ok(()) => break,
                Err(PowerError::TransientFailure { .. }) => continue,
                Err(e) => panic!("{e}"),
            }
        }
        tb.wait_booted("vtartu").unwrap();
    }

    #[test]
    fn watchdog_kills_overlong_command() {
        let (mut tb, img) = testbed_with_host();
        boot(&mut tb, "vtartu", img);
        tb.set_command_timeout(Some(SimDuration::from_secs(10)));
        let t0 = tb.now();
        let err = tb.exec("vtartu", "sleep 3600").unwrap_err();
        match err {
            ExecError::Timeout { after, .. } => assert_eq!(after, SimDuration::from_secs(10)),
            other => panic!("expected Timeout, got {other:?}"),
        }
        // Only the budget elapsed, not the hour.
        let dt = (tb.now() - t0).as_secs_f64();
        assert!((10.0..11.0).contains(&dt), "got {dt}");
        // Within budget, commands still work.
        assert!(tb.exec("vtartu", "sleep 5").unwrap().success());
    }

    #[test]
    fn hang_window_stalls_or_times_out() {
        let (mut tb, img) = testbed_with_host();
        boot(&mut tb, "vtartu", img);
        let from = tb.now();
        tb.add_hang_window("vtartu", from, from + SimDuration::from_secs(30));

        // Without a watchdog the session stalls until the window passes,
        // then the command completes.
        let t0 = tb.now();
        assert!(tb.exec("vtartu", "true").unwrap().success());
        assert!((tb.now() - t0).as_secs_f64() >= 29.0, "stalled past window");

        // With a watchdog shorter than the window, the command is reaped.
        tb.add_hang_window("vtartu", tb.now(), tb.now() + SimDuration::from_secs(300));
        tb.set_command_timeout(Some(SimDuration::from_secs(20)));
        let t0 = tb.now();
        assert!(matches!(
            tb.exec("vtartu", "true").unwrap_err(),
            ExecError::Timeout { .. }
        ));
        let dt = (tb.now() - t0).as_secs_f64();
        assert!((20.0..21.0).contains(&dt), "killed at budget, got {dt}");
    }

    #[test]
    fn link_degradation_windows_combine() {
        let mut tb = Testbed::new(3);
        tb.add_host("g", HardwareSpec::paper_dut(), InitInterface::Ipmi);
        let t = |s| SimTime::from_secs(s);
        tb.add_link_degradation("g", t(10), t(20), 0.1, 0.0);
        tb.add_link_degradation("g", t(15), t(25), 0.3, 0.05);
        assert_eq!(tb.link_degradation("g", t(5)), None);
        assert_eq!(tb.link_degradation("g", t(12)), Some((0.1, 0.0)));
        assert_eq!(tb.link_degradation("g", t(17)), Some((0.3, 0.05)));
        assert_eq!(tb.link_degradation("g", t(22)), Some((0.3, 0.05)));
        assert_eq!(
            tb.link_degradation("g", t(25)),
            None,
            "window end exclusive"
        );
        assert_eq!(tb.link_degradation("other", t(12)), None);
    }
}
