//! vpos — the virtual clone of a testbed.
//!
//! §5: *"The virtual testbed runs on the hardware and OS of the previously
//! described DuT, using KVM as a hypervisor. The VMs running the
//! experiment are pinned to fixed CPU cores."* and §8: *"We operate a
//! virtual testbed as a service [...] the virtualized experiments can be
//! executed on any pos-driven testbed."*
//!
//! [`clone_virtual`] builds, from an existing hardware testbed, a new
//! testbed whose hosts are VM replicas: same names, same wiring, same
//! image store — but VM hardware, hypervisor power control, and instant
//! cheap boots. Experiment specs run unchanged on either; that is the
//! paper's develop-on-vpos, run-on-pos workflow.

use crate::host::{DeviceKind, HardwareSpec};
use crate::power::InitInterface;
use crate::testbed::Testbed;

/// Options for the virtual clone.
#[derive(Debug, Clone, Copy)]
pub struct CloneOptions {
    /// vCPUs per VM.
    pub vcpus: u32,
    /// Memory per VM in GiB.
    pub memory_gib: u32,
    /// Exact seed for the clone instead of deriving one from the
    /// hardware testbed's. Used when rebuilding a vpos testbed whose
    /// final seed is already known — e.g. resuming a journaled campaign,
    /// where `CampaignStarted` records the clone's (derived) seed.
    pub seed: Option<u64>,
}

impl Default for CloneOptions {
    fn default() -> Self {
        CloneOptions {
            vcpus: 4,
            memory_gib: 8,
            seed: None,
        }
    }
}

/// Builds the vpos clone of `hardware`: every experiment host becomes a
/// KVM guest with virtio NICs (same port count), controlled through the
/// hypervisor; the wiring plan and image store are copied verbatim. The
/// clone gets its own derived seed so its stochastic detail differs from
/// the hardware testbed's — as two real testbeds' would — while staying
/// fully reproducible.
pub fn clone_virtual(hardware: &Testbed, options: CloneOptions) -> Testbed {
    // Seed derivation keeps the clone deterministic but distinct.
    let seed = options.seed.unwrap_or_else(|| {
        pos_simkernel::SimRng::new(hardware.seed())
            .derive("vpos-clone")
            .next_raw()
    });
    let mut vtb = Testbed::new(seed);
    vtb.images = hardware.images.clone();
    vtb.topology = hardware.topology.clone();
    for name in hardware.host_names() {
        let src = hardware.host(&name).expect("listed host exists");
        let spec = HardwareSpec {
            kind: DeviceKind::VirtualMachine,
            cpu_model: format!("QEMU Virtual CPU (pinned, host: {})", src.spec.cpu_model),
            cores: options.vcpus,
            memory_gib: options.memory_gib,
            nics: src
                .spec
                .nics
                .iter()
                .map(|n| crate::host::NicSpec {
                    model: "virtio-net".into(),
                    ports: n.ports,
                    speed_bps: 40_000_000_000,
                })
                .collect(),
        };
        vtb.add_host(name, spec, InitInterface::Hypervisor);
    }
    vtb
}

/// A pool of virtual clone testbeds of one hardware testbed.
///
/// A parallel campaign scheduler that cannot get enough disjoint
/// bare-metal host sets from the calendar falls back to vpos replicas.
/// The pool hands them out and takes them back: a released replica is
/// reused (already-copied images, VM inventory) instead of being rebuilt,
/// which is the virtual analogue of keeping an allocation warm between
/// campaigns. Replica seeds are derived from the hardware seed and the
/// replica's pool index, so the pool's output is reproducible regardless
/// of acquire/release interleaving.
pub struct ClonePool {
    options: CloneOptions,
    idle: Vec<Testbed>,
    spawned: usize,
}

impl ClonePool {
    /// An empty pool; `options.seed` (if set) seeds replica 0 only, later
    /// replicas always get derived per-index seeds.
    pub fn new(options: CloneOptions) -> ClonePool {
        ClonePool {
            options,
            idle: Vec::new(),
            spawned: 0,
        }
    }

    /// Hands out a replica of `hardware`: the most recently released one
    /// if any is idle, a freshly built clone otherwise.
    ///
    /// Command handlers are never cloned (they are host-side state, see
    /// [`clone_virtual`]); the caller re-registers its command set on a
    /// fresh replica.
    pub fn acquire(&mut self, hardware: &Testbed) -> Testbed {
        if let Some(tb) = self.idle.pop() {
            return tb;
        }
        let index = self.spawned;
        self.spawned += 1;
        let mut options = self.options;
        if index > 0 || options.seed.is_none() {
            options.seed = Some(
                pos_simkernel::SimRng::new(hardware.seed())
                    .derive(&format!("vpos-clone/{index}"))
                    .next_raw(),
            );
        }
        clone_virtual(hardware, options)
    }

    /// Returns a replica to the pool for reuse.
    pub fn release(&mut self, replica: Testbed) {
        self.idle.push(replica);
    }

    /// How many distinct replicas this pool has ever built.
    pub fn spawned(&self) -> usize {
        self.spawned
    }

    /// How many replicas are idle right now.
    pub fn idle(&self) -> usize {
        self.idle.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::PortId;

    fn hardware() -> Testbed {
        let mut tb = Testbed::new(0xBEEF);
        tb.add_host("vriga", HardwareSpec::paper_dut(), InitInterface::Ipmi);
        tb.add_host("vtartu", HardwareSpec::paper_dut(), InitInterface::Ipmi);
        tb.topology
            .wire(PortId::new("vriga", 0), PortId::new("vtartu", 0))
            .unwrap();
        tb.topology
            .wire(PortId::new("vtartu", 1), PortId::new("vriga", 1))
            .unwrap();
        tb
    }

    #[test]
    fn clone_preserves_names_and_wiring() {
        let hw = hardware();
        let v = clone_virtual(&hw, CloneOptions::default());
        assert_eq!(v.host_names(), hw.host_names());
        assert_eq!(v.topology.cable_count(), 2);
        assert_eq!(
            v.topology.peer(&PortId::new("vriga", 0)),
            Some(&PortId::new("vtartu", 0))
        );
        assert_eq!(v.images.len(), hw.images.len());
    }

    #[test]
    fn clone_hosts_are_vms_with_hypervisor_control() {
        let v = clone_virtual(&hardware(), CloneOptions::default());
        for name in v.host_names() {
            let h = v.host(&name).unwrap();
            assert_eq!(h.spec.kind, DeviceKind::VirtualMachine);
            assert_eq!(h.init_interface, InitInterface::Hypervisor);
            assert!(h.spec.cpu_model.contains("QEMU"));
            assert_eq!(h.spec.nics[0].model, "virtio-net");
        }
        // Port counts survive the cloning (experiment specs depend on them).
        assert_eq!(
            v.host("vtartu").unwrap().spec.total_ports(),
            hardware().host("vtartu").unwrap().spec.total_ports()
        );
    }

    #[test]
    fn clone_boots_fast() {
        let mut v = clone_virtual(&hardware(), CloneOptions::default());
        let img = v.images.latest("debian-buster").unwrap().id;
        v.select_image("vriga", img).unwrap();
        let t0 = v.now();
        while v.power_on("vriga").is_err() {}
        v.wait_booted("vriga").unwrap();
        let boot = (v.now() - t0).as_secs_f64();
        assert!(boot < 15.0, "VM boot should take seconds, took {boot}");
    }

    #[test]
    fn clone_pool_reuses_released_replicas() {
        let hw = hardware();
        let mut pool = ClonePool::new(CloneOptions::default());
        let a = pool.acquire(&hw);
        let b = pool.acquire(&hw);
        assert_eq!(pool.spawned(), 2);
        assert_ne!(a.seed(), b.seed(), "replicas get distinct derived seeds");
        let a_seed = a.seed();
        pool.release(a);
        assert_eq!(pool.idle(), 1);
        let c = pool.acquire(&hw);
        assert_eq!(c.seed(), a_seed, "released replica is reused, not rebuilt");
        assert_eq!(pool.spawned(), 2);

        // Per-index seeds are reproducible across pools.
        let mut pool2 = ClonePool::new(CloneOptions::default());
        assert_eq!(pool2.acquire(&hw).seed(), a_seed);
        assert_eq!(pool2.acquire(&hw).seed(), b.seed());
    }

    #[test]
    fn clone_pool_exact_seed_applies_to_first_replica_only() {
        let hw = hardware();
        let mut pool = ClonePool::new(CloneOptions {
            seed: Some(0x5EED),
            ..CloneOptions::default()
        });
        assert_eq!(pool.acquire(&hw).seed(), 0x5EED);
        assert_ne!(pool.acquire(&hw).seed(), 0x5EED);
    }

    #[test]
    fn clone_seed_is_derived_and_deterministic() {
        let hw = hardware();
        let a = clone_virtual(&hw, CloneOptions::default());
        let b = clone_virtual(&hw, CloneOptions::default());
        assert_eq!(a.seed(), b.seed(), "cloning is deterministic");
        assert_ne!(a.seed(), hw.seed(), "but distinct from the hardware seed");
    }
}
