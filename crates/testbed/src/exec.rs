//! Command execution over the configuration interface.
//!
//! §4.2: *"For a typical Linux server, we use SSH as the configuration
//! interface."* Experiment scripts are sequences of command lines; the
//! testbed tokenizes them shell-style and dispatches to a command registry
//! (builtins live in [`crate::testbed`]; experiment-specific commands like
//! `moongen` are registered by higher layers).

use pos_simkernel::SimDuration;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Outcome of one executed command.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CommandResult {
    /// Process exit code; 0 is success.
    pub exit_code: i32,
    /// Captured standard output.
    pub stdout: String,
    /// Captured standard error.
    pub stderr: String,
    /// Virtual time the command consumed.
    pub duration: SimDuration,
}

impl CommandResult {
    /// A successful result with the given stdout.
    pub fn ok(stdout: impl Into<String>) -> CommandResult {
        CommandResult {
            exit_code: 0,
            stdout: stdout.into(),
            stderr: String::new(),
            duration: SimDuration::from_millis(1),
        }
    }

    /// A failure with the given exit code and stderr.
    pub fn fail(exit_code: i32, stderr: impl Into<String>) -> CommandResult {
        CommandResult {
            exit_code,
            stdout: String::new(),
            stderr: stderr.into(),
            duration: SimDuration::from_millis(1),
        }
    }

    /// Sets the consumed duration.
    pub fn with_duration(mut self, d: SimDuration) -> CommandResult {
        self.duration = d;
        self
    }

    /// True on exit code zero.
    pub fn success(&self) -> bool {
        self.exit_code == 0
    }
}

/// Errors raised by the execution layer itself (not by the command).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// The host does not exist in the testbed.
    UnknownHost {
        /// Requested host name.
        host: String,
    },
    /// The host is not reachable (off, booting, or crashed) — SSH times out.
    HostUnreachable {
        /// The host.
        host: String,
        /// Its power state, stringified.
        state: String,
    },
    /// The command line was empty or unparseable.
    BadCommandLine {
        /// What was wrong.
        reason: String,
    },
    /// No handler is registered for the command.
    CommandNotFound {
        /// The command name.
        command: String,
    },
    /// The command exceeded the controller's watchdog budget and was
    /// killed. The session is gone; the host may or may not be healthy.
    Timeout {
        /// The host.
        host: String,
        /// The command line that hung.
        command: String,
        /// The watchdog budget that was exhausted.
        after: SimDuration,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::UnknownHost { host } => write!(f, "unknown host {host}"),
            ExecError::HostUnreachable { host, state } => {
                write!(f, "host {host} unreachable (state: {state})")
            }
            ExecError::BadCommandLine { reason } => write!(f, "bad command line: {reason}"),
            ExecError::CommandNotFound { command } => {
                write!(f, "{command}: command not found")
            }
            ExecError::Timeout {
                host,
                command,
                after,
            } => {
                write!(f, "command `{command}` on {host} timed out after {after}")
            }
        }
    }
}

impl std::error::Error for ExecError {}

/// Splits a command line into tokens, honoring single and double quotes
/// and backslash escapes outside single quotes (a small, predictable
/// subset of POSIX shell word splitting — no globbing, no expansion).
pub fn split_command_line(line: &str) -> Result<Vec<String>, ExecError> {
    let mut tokens = Vec::new();
    let mut current = String::new();
    let mut in_token = false;
    let mut chars = line.chars().peekable();

    while let Some(c) = chars.next() {
        match c {
            '\'' => {
                in_token = true;
                loop {
                    match chars.next() {
                        Some('\'') => break,
                        Some(ch) => current.push(ch),
                        None => {
                            return Err(ExecError::BadCommandLine {
                                reason: "unterminated single quote".into(),
                            })
                        }
                    }
                }
            }
            '"' => {
                in_token = true;
                loop {
                    match chars.next() {
                        Some('"') => break,
                        Some('\\') => match chars.next() {
                            Some(e) => current.push(e),
                            None => {
                                return Err(ExecError::BadCommandLine {
                                    reason: "trailing backslash in double quote".into(),
                                })
                            }
                        },
                        Some(ch) => current.push(ch),
                        None => {
                            return Err(ExecError::BadCommandLine {
                                reason: "unterminated double quote".into(),
                            })
                        }
                    }
                }
            }
            '\\' => {
                in_token = true;
                match chars.next() {
                    Some(e) => current.push(e),
                    None => {
                        return Err(ExecError::BadCommandLine {
                            reason: "trailing backslash".into(),
                        })
                    }
                }
            }
            c if c.is_whitespace() => {
                if in_token {
                    tokens.push(std::mem::take(&mut current));
                    in_token = false;
                }
            }
            c => {
                in_token = true;
                current.push(c);
            }
        }
    }
    if in_token {
        tokens.push(current);
    }
    if tokens.is_empty() {
        return Err(ExecError::BadCommandLine {
            reason: "empty command".into(),
        });
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn splits_simple_words() {
        assert_eq!(
            split_command_line("ip addr add 10.0.0.2/24 dev eno1").unwrap(),
            vec!["ip", "addr", "add", "10.0.0.2/24", "dev", "eno1"]
        );
    }

    #[test]
    fn quotes_group_words() {
        assert_eq!(
            split_command_line(r#"echo "hello world" 'single quoted'"#).unwrap(),
            vec!["echo", "hello world", "single quoted"]
        );
    }

    #[test]
    fn escapes_work_outside_single_quotes() {
        assert_eq!(
            split_command_line(r"echo a\ b").unwrap(),
            vec!["echo", "a b"]
        );
        assert_eq!(
            split_command_line(r#"echo "a\"b""#).unwrap(),
            vec!["echo", "a\"b"]
        );
    }

    #[test]
    fn empty_quotes_produce_empty_token() {
        assert_eq!(split_command_line(r#"cmd """#).unwrap(), vec!["cmd", ""]);
    }

    #[test]
    fn unterminated_quotes_rejected() {
        assert!(split_command_line("echo 'oops").is_err());
        assert!(split_command_line("echo \"oops").is_err());
        assert!(split_command_line("echo oops\\").is_err());
    }

    #[test]
    fn empty_line_rejected() {
        assert!(split_command_line("").is_err());
        assert!(split_command_line("   \t ").is_err());
    }

    #[test]
    fn extra_whitespace_collapsed() {
        assert_eq!(
            split_command_line("  a   b\t\tc  ").unwrap(),
            vec!["a", "b", "c"]
        );
    }

    #[test]
    fn command_result_helpers() {
        let r = CommandResult::ok("out");
        assert!(r.success());
        assert_eq!(r.stdout, "out");
        let r = CommandResult::fail(2, "bad").with_duration(SimDuration::from_secs(1));
        assert!(!r.success());
        assert_eq!(r.duration, SimDuration::from_secs(1));
    }

    proptest! {
        /// Tokenizing never panics on arbitrary input.
        #[test]
        fn prop_tokenizer_total(line in ".{0,200}") {
            let _ = split_command_line(&line);
        }

        /// Round-trip: quoting each token with single quotes re-tokenizes
        /// to the same tokens (for tokens without single quotes).
        #[test]
        fn prop_quote_roundtrip(tokens in proptest::collection::vec("[a-zA-Z0-9 _./-]{1,10}", 1..8)) {
            let line = tokens
                .iter()
                .map(|t| format!("'{t}'"))
                .collect::<Vec<_>>()
                .join(" ");
            prop_assert_eq!(split_command_line(&line).unwrap(), tokens);
        }
    }
}
