//! Live-boot OS images with snapshot versioning.
//!
//! §4.2: *"pos relies on live-boot images. Such images enforce
//! repeatability, as the OS repeatedly starts from a well-defined state."*
//! and: *"Utilizing the Debian snapshot project, we can create live images
//! with specific version numbers for the kernel and the installed
//! packages."*
//!
//! An [`Image`] is therefore identified by (distribution, snapshot date)
//! and carries a content digest; booting it is a pure function of that
//! identity — the host's state after boot depends on nothing else.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Opaque image identifier inside an [`ImageStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ImageId(pub u32);

impl fmt::Display for ImageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "img-{}", self.0)
    }
}

/// A versioned live-boot image.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Image {
    /// Store-assigned identifier.
    pub id: ImageId,
    /// Distribution name, e.g. `debian-buster`.
    pub name: String,
    /// Kernel version shipped in the image, e.g. `4.19`.
    pub kernel: String,
    /// Debian-snapshot-style date pin, e.g. `2020-10-01T00:00:00Z`.
    pub snapshot: String,
    /// Deterministic digest over the image contents; two images with the
    /// same digest boot byte-identical systems.
    pub digest: u64,
}

impl Image {
    /// Human-readable one-line description (used in captured metadata).
    pub fn describe(&self) -> String {
        format!(
            "{} (kernel {}, snapshot {}, digest {:016x})",
            self.name, self.kernel, self.snapshot, self.digest
        )
    }
}

/// Registry of available live images.
#[derive(Debug, Default, Clone)]
pub struct ImageStore {
    images: BTreeMap<ImageId, Image>,
    next_id: u32,
}

impl ImageStore {
    /// An empty store.
    pub fn new() -> ImageStore {
        ImageStore::default()
    }

    /// A store preloaded with the images of the paper's testbed.
    pub fn with_standard_images() -> ImageStore {
        let mut store = ImageStore::new();
        store.register("debian-buster", "4.19", "2020-10-01T00:00:00Z");
        store.register("debian-buster", "4.19", "2020-06-15T00:00:00Z");
        store.register("debian-bullseye", "5.10", "2021-09-01T00:00:00Z");
        store
    }

    /// Registers an image; the digest is derived deterministically from the
    /// identifying fields.
    pub fn register(
        &mut self,
        name: impl Into<String>,
        kernel: impl Into<String>,
        snapshot: impl Into<String>,
    ) -> ImageId {
        let (name, kernel, snapshot) = (name.into(), kernel.into(), snapshot.into());
        let id = ImageId(self.next_id);
        self.next_id += 1;
        let digest = fnv64(format!("{name}\x1f{kernel}\x1f{snapshot}").as_bytes());
        self.images.insert(
            id,
            Image {
                id,
                name,
                kernel,
                snapshot,
                digest,
            },
        );
        id
    }

    /// Looks an image up by id.
    pub fn get(&self, id: ImageId) -> Option<&Image> {
        self.images.get(&id)
    }

    /// Finds the image with `name` at exactly `snapshot`.
    pub fn find(&self, name: &str, snapshot: &str) -> Option<&Image> {
        self.images
            .values()
            .find(|i| i.name == name && i.snapshot == snapshot)
    }

    /// Finds the newest snapshot of `name` (lexicographic on the ISO date).
    pub fn latest(&self, name: &str) -> Option<&Image> {
        self.images
            .values()
            .filter(|i| i.name == name)
            .max_by(|a, b| a.snapshot.cmp(&b.snapshot))
    }

    /// All registered images.
    pub fn iter(&self) -> impl Iterator<Item = &Image> {
        self.images.values()
    }

    /// Number of registered images.
    pub fn len(&self) -> usize {
        self.images.len()
    }

    /// True if no images are registered.
    pub fn is_empty(&self) -> bool {
        self.images.is_empty()
    }
}

fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_lookup() {
        let mut s = ImageStore::new();
        let id = s.register("debian-buster", "4.19", "2020-10-01T00:00:00Z");
        let img = s.get(id).unwrap();
        assert_eq!(img.name, "debian-buster");
        assert_eq!(img.kernel, "4.19");
        assert!(s.find("debian-buster", "2020-10-01T00:00:00Z").is_some());
        assert!(s.find("debian-buster", "1999-01-01T00:00:00Z").is_none());
    }

    #[test]
    fn digest_is_deterministic_and_version_sensitive() {
        let mut a = ImageStore::new();
        let mut b = ImageStore::new();
        let ia = a.register("debian-buster", "4.19", "2020-10-01T00:00:00Z");
        let ib = b.register("debian-buster", "4.19", "2020-10-01T00:00:00Z");
        assert_eq!(a.get(ia).unwrap().digest, b.get(ib).unwrap().digest);
        let ic = b.register("debian-buster", "4.19", "2020-10-02T00:00:00Z");
        assert_ne!(
            b.get(ib).unwrap().digest,
            b.get(ic).unwrap().digest,
            "a different snapshot is a different image"
        );
    }

    #[test]
    fn latest_picks_newest_snapshot() {
        let s = ImageStore::with_standard_images();
        let latest = s.latest("debian-buster").unwrap();
        assert_eq!(latest.snapshot, "2020-10-01T00:00:00Z");
        assert!(s.latest("arch").is_none());
    }

    #[test]
    fn standard_store_contents() {
        let s = ImageStore::with_standard_images();
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        assert_eq!(s.iter().count(), 3);
    }

    #[test]
    fn describe_mentions_identity() {
        let s = ImageStore::with_standard_images();
        let d = s.latest("debian-buster").unwrap().describe();
        assert!(d.contains("debian-buster"));
        assert!(d.contains("4.19"));
        assert!(d.contains("2020-10-01"));
    }
}
