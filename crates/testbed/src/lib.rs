//! # pos-testbed
//!
//! The simulated testbed that the pos controller (in `pos-core`) drives.
//! It models everything §4.2 of the paper requires from the physical
//! infrastructure:
//!
//! * **Hosts** ([`host`]) — heterogeneous experiment devices (bare-metal
//!   servers, VMs, switches; R1) with power state, a live-booted OS image,
//!   a small in-memory filesystem for deployed scripts, and a console.
//! * **Initialization interfaces** ([`power`]) — IPMI, vendor management
//!   (vPro-style), remotely switchable power plugs, and hypervisor control,
//!   all able to reset a wedged host out of band (R3).
//! * **Configuration interfaces** ([`exec`]) — SSH-style command execution
//!   with a shell-like tokenizer and an extensible command registry.
//! * **Live images** ([`image`]) — versioned, snapshot-pinned OS images;
//!   booting one always yields the same pristine state (R3, R4).
//! * **Calendar** ([`calendar`]) — multi-user temporal reservation of
//!   hosts, with conflict rejection (§4.4 setup phase).
//! * **Topology** ([`topology`]) — direct cables between host ports (R2).
//!
//! Time is *virtual*: the testbed owns a clock that advances as operations
//! (boots, command runs, sleeps) consume time. Packet-level measurements
//! run in their own `pos-netsim` simulations and report the virtual
//! duration they consumed, which the caller adds to this clock.

#![warn(missing_docs)]

pub mod calendar;
pub mod config_iface;
pub mod exec;
pub mod host;
pub mod image;
pub mod power;
pub mod testbed;
pub mod topology;
pub mod vtestbed;

pub use calendar::{Calendar, Reservation, ReservationError, ReservationId};
pub use config_iface::ConfigInterface;
pub use exec::{split_command_line, CommandResult, ExecError};
pub use host::{DeviceKind, HardwareSpec, Host, NicSpec, PowerState};
pub use image::{Image, ImageId, ImageStore};
pub use power::{InitInterface, PowerError};
pub use testbed::Testbed;
pub use topology::{PortId, Topology, TopologyError};
pub use vtestbed::{clone_virtual, CloneOptions, ClonePool};
