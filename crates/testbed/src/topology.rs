//! The physical wiring plan.
//!
//! §4.2: *"To prevent any influence of switches or hubs on the observed
//! results (R2), our testbed employs direct wiring between experiment
//! hosts."* A topology is a set of point-to-point cables between host
//! ports; each port carries at most one cable. §7 notes the limitation:
//! cables are physical, so the topology cannot be changed programmatically
//! — [`Topology::rewire`] exists but represents a human with a fiber in
//! hand, which is why the controller never calls it during an experiment.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// One end of a cable: a named host and a port index.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PortId {
    /// Host name.
    pub host: String,
    /// Port index on that host.
    pub port: usize,
}

impl PortId {
    /// Convenience constructor.
    pub fn new(host: impl Into<String>, port: usize) -> PortId {
        PortId {
            host: host.into(),
            port,
        }
    }
}

impl fmt::Display for PortId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.host, self.port)
    }
}

/// Errors when editing the wiring plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// A port already carries a cable.
    PortInUse {
        /// The occupied port.
        port: PortId,
    },
    /// Both cable ends are the same port.
    SelfLoop {
        /// The port.
        port: PortId,
    },
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::PortInUse { port } => write!(f, "port {port} already wired"),
            TopologyError::SelfLoop { port } => write!(f, "cannot cable port {port} to itself"),
        }
    }
}

impl std::error::Error for TopologyError {}

/// The set of cables.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Topology {
    /// port -> peer port; symmetric.
    wiring: BTreeMap<PortId, PortId>,
}

impl Topology {
    /// An empty (unwired) topology.
    pub fn new() -> Topology {
        Topology::default()
    }

    /// Runs a cable between two ports.
    pub fn wire(&mut self, a: PortId, b: PortId) -> Result<(), TopologyError> {
        if a == b {
            return Err(TopologyError::SelfLoop { port: a });
        }
        for p in [&a, &b] {
            if self.wiring.contains_key(p) {
                return Err(TopologyError::PortInUse { port: p.clone() });
            }
        }
        self.wiring.insert(a.clone(), b.clone());
        self.wiring.insert(b, a);
        Ok(())
    }

    /// Removes the cable at `port` (both ends). Returns the former peer.
    pub fn unwire(&mut self, port: &PortId) -> Option<PortId> {
        let peer = self.wiring.remove(port)?;
        self.wiring.remove(&peer);
        Some(peer)
    }

    /// Replaces whatever is at both ports with a new cable — the "human
    /// with a fiber" operation of §7.
    pub fn rewire(&mut self, a: PortId, b: PortId) -> Result<(), TopologyError> {
        if a == b {
            return Err(TopologyError::SelfLoop { port: a });
        }
        self.unwire(&a);
        self.unwire(&b);
        self.wire(a, b)
    }

    /// The peer of `port`, if wired.
    pub fn peer(&self, port: &PortId) -> Option<&PortId> {
        self.wiring.get(port)
    }

    /// True if the two named hosts share at least one cable.
    pub fn are_connected(&self, a: &str, b: &str) -> bool {
        self.wiring.iter().any(|(x, y)| x.host == a && y.host == b)
    }

    /// All cables, each reported once (lexicographically smaller end first).
    pub fn cables(&self) -> Vec<(PortId, PortId)> {
        self.wiring
            .iter()
            .filter(|(a, b)| a <= b)
            .map(|(a, b)| (a.clone(), b.clone()))
            .collect()
    }

    /// Number of cables.
    pub fn cable_count(&self) -> usize {
        self.wiring.len() / 2
    }

    /// Renders the wiring as captured topology metadata.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (a, b) in self.cables() {
            out.push_str(&format!("{a} <-> {b}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn wire_and_query() {
        let mut t = Topology::new();
        t.wire(PortId::new("loadgen", 0), PortId::new("dut", 0))
            .unwrap();
        t.wire(PortId::new("dut", 1), PortId::new("loadgen", 1))
            .unwrap();
        assert_eq!(t.cable_count(), 2);
        assert_eq!(
            t.peer(&PortId::new("dut", 0)),
            Some(&PortId::new("loadgen", 0))
        );
        assert!(t.are_connected("loadgen", "dut"));
        assert!(t.are_connected("dut", "loadgen"));
        assert!(!t.are_connected("dut", "other"));
    }

    #[test]
    fn port_reuse_rejected() {
        let mut t = Topology::new();
        t.wire(PortId::new("a", 0), PortId::new("b", 0)).unwrap();
        let err = t
            .wire(PortId::new("a", 0), PortId::new("c", 0))
            .unwrap_err();
        assert_eq!(
            err,
            TopologyError::PortInUse {
                port: PortId::new("a", 0)
            }
        );
    }

    #[test]
    fn self_loop_rejected() {
        let mut t = Topology::new();
        let err = t
            .wire(PortId::new("a", 0), PortId::new("a", 0))
            .unwrap_err();
        assert!(matches!(err, TopologyError::SelfLoop { .. }));
    }

    #[test]
    fn unwire_removes_both_directions() {
        let mut t = Topology::new();
        t.wire(PortId::new("a", 0), PortId::new("b", 0)).unwrap();
        assert_eq!(t.unwire(&PortId::new("b", 0)), Some(PortId::new("a", 0)));
        assert_eq!(t.cable_count(), 0);
        assert!(t.peer(&PortId::new("a", 0)).is_none());
        assert!(t.unwire(&PortId::new("a", 0)).is_none());
    }

    #[test]
    fn rewire_replaces_existing_cables() {
        let mut t = Topology::new();
        t.wire(PortId::new("a", 0), PortId::new("b", 0)).unwrap();
        t.wire(PortId::new("c", 0), PortId::new("d", 0)).unwrap();
        // Move the cable: a:0 now goes to c:0; b:0 and d:0 end up bare.
        t.rewire(PortId::new("a", 0), PortId::new("c", 0)).unwrap();
        assert_eq!(t.peer(&PortId::new("a", 0)), Some(&PortId::new("c", 0)));
        assert!(t.peer(&PortId::new("b", 0)).is_none());
        assert!(t.peer(&PortId::new("d", 0)).is_none());
        assert_eq!(t.cable_count(), 1);
    }

    #[test]
    fn render_lists_each_cable_once() {
        let mut t = Topology::new();
        t.wire(PortId::new("loadgen", 0), PortId::new("dut", 0))
            .unwrap();
        let s = t.render();
        assert_eq!(s.lines().count(), 1);
        assert!(s.contains("dut:0 <-> loadgen:0"));
    }

    proptest! {
        /// Wiring is always symmetric and each port appears at most once.
        #[test]
        fn prop_wiring_invariants(ops in proptest::collection::vec((0u8..6, 0usize..4, 0u8..6, 0usize..4), 0..40)) {
            let mut t = Topology::new();
            for (ha, pa, hb, pb) in ops {
                let a = PortId::new(format!("h{ha}"), pa);
                let b = PortId::new(format!("h{hb}"), pb);
                let _ = t.wire(a, b); // errors are fine; invariants must hold regardless
            }
            for (a, b) in t.cables() {
                prop_assert_eq!(t.peer(&a), Some(&b));
                prop_assert_eq!(t.peer(&b), Some(&a));
                prop_assert_ne!(a, b);
            }
        }
    }
}
