//! Configuration interfaces.
//!
//! §4.2: *"For a typical Linux server, we use SSH as the configuration
//! interface. IPMI and SSH are given only as examples; thus, they can be
//! replaced with different protocols, depending on the APIs provided by
//! the experiment hosts. pos supports configuration and initialization
//! APIs for devices via SNMP or HTTP."*
//!
//! The variants differ in two observable ways: per-command latency, and
//! whether the device offers a shell at all. A switch managed via SNMP or
//! HTTP executes only *registered* management commands (the pluggable
//! API-backed handlers); shell builtins like `echo` or `sysctl` do not
//! exist there.

use pos_simkernel::SimDuration;
use serde::{Deserialize, Serialize};
use std::fmt;

/// How the controller talks to a booted device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ConfigInterface {
    /// SSH to a Linux userland — the common case.
    Ssh,
    /// A serial console: same shell, much slower round trips.
    SerialConsole,
    /// SNMP management API — no shell.
    Snmp,
    /// HTTP/REST management API — no shell.
    Http,
}

impl fmt::Display for ConfigInterface {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ConfigInterface::Ssh => "ssh",
            ConfigInterface::SerialConsole => "serial",
            ConfigInterface::Snmp => "snmp",
            ConfigInterface::Http => "http",
        };
        f.write_str(s)
    }
}

impl ConfigInterface {
    /// Connection + dispatch overhead per command.
    pub fn command_overhead(self) -> SimDuration {
        match self {
            ConfigInterface::Ssh => SimDuration::from_millis(20),
            ConfigInterface::SerialConsole => SimDuration::from_millis(150),
            ConfigInterface::Snmp => SimDuration::from_millis(5),
            ConfigInterface::Http => SimDuration::from_millis(10),
        }
    }

    /// Whether the device exposes a shell (builtin commands, file
    /// upload). Management-API devices do not.
    pub fn has_shell(self) -> bool {
        matches!(self, ConfigInterface::Ssh | ConfigInterface::SerialConsole)
    }

    /// The natural interface for a device kind.
    pub fn default_for(kind: crate::host::DeviceKind) -> ConfigInterface {
        match kind {
            crate::host::DeviceKind::BareMetal
            | crate::host::DeviceKind::VirtualMachine
            | crate::host::DeviceKind::HardwareLoadGen => ConfigInterface::Ssh,
            crate::host::DeviceKind::Switch => ConfigInterface::Snmp,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host::DeviceKind;

    #[test]
    fn shell_availability() {
        assert!(ConfigInterface::Ssh.has_shell());
        assert!(ConfigInterface::SerialConsole.has_shell());
        assert!(!ConfigInterface::Snmp.has_shell());
        assert!(!ConfigInterface::Http.has_shell());
    }

    #[test]
    fn serial_is_slowest() {
        let serial = ConfigInterface::SerialConsole.command_overhead();
        for other in [
            ConfigInterface::Ssh,
            ConfigInterface::Snmp,
            ConfigInterface::Http,
        ] {
            assert!(serial > other.command_overhead());
        }
    }

    #[test]
    fn defaults_match_device_kinds() {
        assert_eq!(
            ConfigInterface::default_for(DeviceKind::BareMetal),
            ConfigInterface::Ssh
        );
        assert_eq!(
            ConfigInterface::default_for(DeviceKind::Switch),
            ConfigInterface::Snmp
        );
    }

    #[test]
    fn display_names() {
        assert_eq!(ConfigInterface::Ssh.to_string(), "ssh");
        assert_eq!(ConfigInterface::Snmp.to_string(), "snmp");
    }
}
