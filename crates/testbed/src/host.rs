//! Experiment hosts.
//!
//! A host is a device in the testbed: a bare-metal server, a VM of the
//! virtual testbed, or an appliance (hardware load generator, switch with
//! a management API). Its *entire* mutable state — filesystem, variables,
//! sysctl settings, network configuration — is wiped by a (re)boot, which
//! is exactly the live-image clean-slate guarantee the paper builds on.

use crate::config_iface::ConfigInterface;
use crate::image::ImageId;
use crate::power::InitInterface;
use pos_simkernel::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// What kind of device a host is (heterogeneity, R1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeviceKind {
    /// An off-the-shelf server, bootable via live images.
    BareMetal,
    /// A virtual machine of the vpos testbed.
    VirtualMachine,
    /// A hardware packet generator (e.g. an OSNT NetFPGA host).
    HardwareLoadGen,
    /// A switch with ASIC forwarding and a management API (e.g. Tofino).
    Switch,
}

impl DeviceKind {
    /// Short name for metadata.
    pub fn name(self) -> &'static str {
        match self {
            DeviceKind::BareMetal => "bare-metal",
            DeviceKind::VirtualMachine => "vm",
            DeviceKind::HardwareLoadGen => "hw-loadgen",
            DeviceKind::Switch => "switch",
        }
    }
}

/// One NIC of a host.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NicSpec {
    /// Device model string (shows up in `lspci`).
    pub model: String,
    /// Number of ports.
    pub ports: usize,
    /// Per-port line rate in bits per second.
    pub speed_bps: u64,
}

/// Static hardware description of a host — the "device hardware
/// information" pos captures into every experiment's artifacts (§4.4).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HardwareSpec {
    /// Device class.
    pub kind: DeviceKind,
    /// CPU model string.
    pub cpu_model: String,
    /// Number of physical cores.
    pub cores: u32,
    /// Memory in GiB.
    pub memory_gib: u32,
    /// Installed NICs.
    pub nics: Vec<NicSpec>,
}

impl HardwareSpec {
    /// The paper's DuT: two Xeon Silver 4214 CPUs and a dual-port Intel
    /// 82599 10 GbE NIC.
    pub fn paper_dut() -> HardwareSpec {
        HardwareSpec {
            kind: DeviceKind::BareMetal,
            cpu_model: "Intel Xeon Silver 4214 (2 sockets)".into(),
            cores: 24,
            memory_gib: 192,
            nics: vec![NicSpec {
                model: "Intel 82599ES 10-Gigabit SFI/SFP+".into(),
                ports: 2,
                speed_bps: 10_000_000_000,
            }],
        }
    }

    /// A vpos virtual machine: pinned vCPUs, virtio NICs.
    pub fn vpos_vm() -> HardwareSpec {
        HardwareSpec {
            kind: DeviceKind::VirtualMachine,
            cpu_model: "QEMU Virtual CPU (pinned)".into(),
            cores: 4,
            memory_gib: 8,
            nics: vec![NicSpec {
                model: "virtio-net".into(),
                ports: 2,
                speed_bps: 40_000_000_000,
            }],
        }
    }

    /// Total number of network ports across all NICs.
    pub fn total_ports(&self) -> usize {
        self.nics.iter().map(|n| n.ports).sum()
    }

    /// An `lspci`-flavored hardware listing.
    pub fn render(&self) -> String {
        let mut out = format!(
            "kind: {}\ncpu: {} ({} cores)\nmemory: {} GiB\n",
            self.kind.name(),
            self.cpu_model,
            self.cores,
            self.memory_gib
        );
        for (i, nic) in self.nics.iter().enumerate() {
            out.push_str(&format!(
                "nic{}: {} ({} ports, {} Gbit/s)\n",
                i,
                nic.model,
                nic.ports,
                nic.speed_bps / 1_000_000_000
            ));
        }
        out
    }
}

/// Host power/boot lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PowerState {
    /// Powered down.
    Off,
    /// Firmware + live image boot in progress; ready at the given instant.
    Booting {
        /// When the boot completes.
        ready_at: SimTime,
        /// The image being booted.
        image: ImageId,
    },
    /// Up and reachable via the configuration interface.
    On {
        /// The live image the host is running.
        image: ImageId,
    },
    /// Wedged: unreachable in-band, recoverable only via the
    /// initialization interface (the R3 scenario).
    Crashed,
}

/// A testbed host.
#[derive(Debug, Clone)]
pub struct Host {
    /// Unique host name (e.g. `vriga`, `vtartu` from Appendix A).
    pub name: String,
    /// Static hardware description.
    pub spec: HardwareSpec,
    /// Out-of-band initialization interface.
    pub init_interface: InitInterface,
    /// In-band configuration interface (defaults per device kind).
    pub config_interface: ConfigInterface,
    /// Power/boot state.
    pub power: PowerState,
    /// Image selected for the next boot.
    pub selected_image: Option<ImageId>,
    /// Kernel boot parameters for the next boot.
    pub boot_params: Vec<String>,
    /// In-memory filesystem: path -> contents. Wiped on boot.
    pub fs: BTreeMap<String, Vec<u8>>,
    /// pos-deployed variables. Wiped on boot.
    pub vars: BTreeMap<String, String>,
    /// Kernel tunables (`sysctl`). Wiped on boot to image defaults.
    pub sysctls: BTreeMap<String, String>,
    /// Network interface configuration applied via `ip`. Wiped on boot.
    pub netconf: BTreeMap<String, String>,
    /// Console output since power-on.
    pub console: Vec<String>,
    /// Monotone count of completed boots (diagnostic).
    pub boots: u64,
    /// Firmware hang: soft resets bounce off until the host is fully
    /// power-cycled (off, dwell, on).
    pub wedged: bool,
}

impl Host {
    /// Creates a powered-off host.
    pub fn new(name: impl Into<String>, spec: HardwareSpec, init: InitInterface) -> Host {
        let config_interface = ConfigInterface::default_for(spec.kind);
        Host {
            name: name.into(),
            spec,
            init_interface: init,
            config_interface,
            power: PowerState::Off,
            selected_image: None,
            boot_params: Vec::new(),
            fs: BTreeMap::new(),
            vars: BTreeMap::new(),
            sysctls: BTreeMap::new(),
            netconf: BTreeMap::new(),
            console: Vec::new(),
            boots: 0,
            wedged: false,
        }
    }

    /// True when the host answers on its configuration interface.
    pub fn is_up(&self) -> bool {
        matches!(self.power, PowerState::On { .. })
    }

    /// The image currently running, if the host is up.
    pub fn running_image(&self) -> Option<ImageId> {
        match self.power {
            PowerState::On { image } => Some(image),
            _ => None,
        }
    }

    /// Applies the live-image clean slate: every piece of mutable state is
    /// reset to the image's pristine defaults.
    pub(crate) fn apply_clean_slate(&mut self, image: ImageId) {
        self.fs.clear();
        self.vars.clear();
        self.netconf.clear();
        self.console.clear();
        self.sysctls = default_sysctls();
        self.power = PowerState::On { image };
        self.boots += 1;
        self.wedged = false;
    }

    /// Simulates a crash: the host stops responding in-band.
    pub fn inject_crash(&mut self) {
        self.power = PowerState::Crashed;
    }

    /// Simulates a firmware wedge: down in-band, *and* soft resets fail
    /// until the host is power-cycled.
    pub fn inject_wedge(&mut self) {
        self.power = PowerState::Crashed;
        self.wedged = true;
    }
}

/// Image-default kernel tunables. Notably `net.ipv4.ip_forward=0`: a Linux
/// live image does *not* route until the setup script enables it.
pub(crate) fn default_sysctls() -> BTreeMap<String, String> {
    let mut m = BTreeMap::new();
    m.insert("net.ipv4.ip_forward".into(), "0".into());
    m.insert("net.ipv4.conf.all.rp_filter".into(), "1".into());
    m.insert("kernel.hostname".into(), String::new());
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    fn host() -> Host {
        Host::new("vtartu", HardwareSpec::paper_dut(), InitInterface::Ipmi)
    }

    #[test]
    fn new_host_is_off_and_empty() {
        let h = host();
        assert_eq!(h.power, PowerState::Off);
        assert!(!h.is_up());
        assert!(h.running_image().is_none());
        assert_eq!(h.boots, 0);
    }

    #[test]
    fn clean_slate_wipes_everything() {
        let mut h = host();
        h.fs.insert("/root/leftover.sh".into(), b"echo dirty".to_vec());
        h.vars.insert("pkt_sz".into(), "64".into());
        h.sysctls.insert("net.ipv4.ip_forward".into(), "1".into());
        h.netconf.insert("eno1".into(), "10.0.0.2/24".into());
        h.console.push("old output".into());

        h.apply_clean_slate(ImageId(0));
        assert!(h.fs.is_empty());
        assert!(h.vars.is_empty());
        assert!(h.netconf.is_empty());
        assert!(h.console.is_empty());
        assert_eq!(
            h.sysctls["net.ipv4.ip_forward"], "0",
            "routing off by default"
        );
        assert!(h.is_up());
        assert_eq!(h.boots, 1);
    }

    #[test]
    fn crash_takes_host_down() {
        let mut h = host();
        h.apply_clean_slate(ImageId(0));
        assert!(h.is_up());
        h.inject_crash();
        assert!(!h.is_up());
        assert_eq!(h.power, PowerState::Crashed);
    }

    #[test]
    fn paper_dut_spec_matches_section5() {
        let spec = HardwareSpec::paper_dut();
        assert_eq!(spec.kind, DeviceKind::BareMetal);
        assert_eq!(spec.total_ports(), 2);
        assert_eq!(spec.nics[0].speed_bps, 10_000_000_000);
        let rendered = spec.render();
        assert!(rendered.contains("Xeon Silver 4214"));
        assert!(rendered.contains("82599"));
        assert!(rendered.contains("10 Gbit/s"));
    }

    #[test]
    fn device_kind_names() {
        assert_eq!(DeviceKind::BareMetal.name(), "bare-metal");
        assert_eq!(DeviceKind::VirtualMachine.name(), "vm");
        assert_eq!(DeviceKind::HardwareLoadGen.name(), "hw-loadgen");
        assert_eq!(DeviceKind::Switch.name(), "switch");
    }
}
