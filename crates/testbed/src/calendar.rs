//! The multi-user reservation calendar.
//!
//! §4.4: *"As we operate a multi-user testbed, we use an integrated
//! calendar to temporally separate the experimental devices between users.
//! Only if the calendar indicates that the devices are free for the planned
//! duration of the experiment, the allocation can be created. [...] using
//! a node in more than one experiment at the same time is prohibited."*

use pos_simkernel::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a reservation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ReservationId(pub u64);

/// A time slice of a set of hosts, held by one user.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Reservation {
    /// Identifier.
    pub id: ReservationId,
    /// Owning user.
    pub user: String,
    /// Reserved host names.
    pub hosts: Vec<String>,
    /// Start of the slice (inclusive).
    pub start: SimTime,
    /// End of the slice (exclusive).
    pub end: SimTime,
}

impl Reservation {
    /// True if this reservation covers `host` at any instant of `[start, end)`.
    fn overlaps(&self, host: &str, start: SimTime, end: SimTime) -> bool {
        self.hosts.iter().any(|h| h == host) && start < self.end && self.start < end
    }
}

/// Why a reservation could not be created.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReservationError {
    /// A host is already reserved in the requested window.
    Conflict {
        /// The contended host.
        host: String,
        /// The existing reservation's owner.
        holder: String,
        /// When the conflicting reservation ends.
        until: SimTime,
    },
    /// The request was empty or zero-length.
    BadRequest {
        /// Explanation.
        reason: String,
    },
}

impl fmt::Display for ReservationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReservationError::Conflict {
                host,
                holder,
                until,
            } => {
                write!(f, "host {host} reserved by {holder} until {until}")
            }
            ReservationError::BadRequest { reason } => write!(f, "bad reservation: {reason}"),
        }
    }
}

impl std::error::Error for ReservationError {}

/// The calendar: all current and future reservations.
#[derive(Debug, Clone, Default)]
pub struct Calendar {
    reservations: Vec<Reservation>,
    next_id: u64,
}

impl Calendar {
    /// An empty calendar.
    pub fn new() -> Calendar {
        Calendar::default()
    }

    /// Creates a reservation for `hosts` over `[start, start + duration)`.
    pub fn reserve(
        &mut self,
        user: impl Into<String>,
        hosts: &[String],
        start: SimTime,
        duration: SimDuration,
    ) -> Result<ReservationId, ReservationError> {
        if hosts.is_empty() {
            return Err(ReservationError::BadRequest {
                reason: "no hosts requested".into(),
            });
        }
        if duration == SimDuration::ZERO {
            return Err(ReservationError::BadRequest {
                reason: "zero-length reservation".into(),
            });
        }
        let mut sorted = hosts.to_vec();
        sorted.sort();
        sorted.dedup();
        if sorted.len() != hosts.len() {
            return Err(ReservationError::BadRequest {
                reason: "duplicate hosts in request".into(),
            });
        }
        let end = start + duration;
        for host in &sorted {
            if let Some(existing) = self
                .reservations
                .iter()
                .find(|r| r.overlaps(host, start, end))
            {
                return Err(ReservationError::Conflict {
                    host: host.clone(),
                    holder: existing.user.clone(),
                    until: existing.end,
                });
            }
        }
        let id = ReservationId(self.next_id);
        self.next_id += 1;
        self.reservations.push(Reservation {
            id,
            user: user.into(),
            hosts: sorted,
            start,
            end,
        });
        Ok(id)
    }

    /// Creates one reservation per host set in `host_sets`, all covering
    /// `[start, start + duration)`, atomically: either every set is
    /// reserved or the calendar is left exactly as it was.
    ///
    /// This is the allocation primitive of a parallel campaign scheduler —
    /// each worker lane needs its own disjoint host set for the same
    /// window. Host sets must be pairwise disjoint; a host appearing in
    /// two sets is rejected as a `BadRequest` (reserving it twice in the
    /// same window would be double-booking by construction).
    pub fn reserve_batch(
        &mut self,
        user: impl Into<String>,
        host_sets: &[Vec<String>],
        start: SimTime,
        duration: SimDuration,
    ) -> Result<Vec<ReservationId>, ReservationError> {
        if host_sets.is_empty() {
            return Err(ReservationError::BadRequest {
                reason: "no host sets requested".into(),
            });
        }
        let mut all: Vec<&String> = host_sets.iter().flatten().collect();
        all.sort();
        if all.windows(2).any(|w| w[0] == w[1]) {
            return Err(ReservationError::BadRequest {
                reason: "host sets in a batch must be pairwise disjoint".into(),
            });
        }
        let user = user.into();
        let mut ids = Vec::with_capacity(host_sets.len());
        for set in host_sets {
            match self.reserve(user.clone(), set, start, duration) {
                Ok(id) => ids.push(id),
                Err(e) => {
                    // Roll back: all-or-nothing semantics.
                    for id in ids {
                        self.release(id);
                    }
                    return Err(e);
                }
            }
        }
        Ok(ids)
    }

    /// Releases a reservation early. Returns the reservation if it existed.
    pub fn release(&mut self, id: ReservationId) -> Option<Reservation> {
        let idx = self.reservations.iter().position(|r| r.id == id)?;
        Some(self.reservations.remove(idx))
    }

    /// True if `host` is unreserved over the whole window.
    pub fn is_free(&self, host: &str, start: SimTime, end: SimTime) -> bool {
        !self
            .reservations
            .iter()
            .any(|r| r.overlaps(host, start, end))
    }

    /// The user currently holding `host` at instant `at`, if any.
    pub fn holder_at(&self, host: &str, at: SimTime) -> Option<&Reservation> {
        self.reservations
            .iter()
            .find(|r| r.hosts.iter().any(|h| h == host) && r.start <= at && at < r.end)
    }

    /// Earliest instant `>= earliest` at which *all* `hosts` are free for
    /// `duration`. Scans reservation boundaries, so it always terminates.
    pub fn find_free_slot(
        &self,
        hosts: &[String],
        duration: SimDuration,
        earliest: SimTime,
    ) -> SimTime {
        // Candidate starts: `earliest` and every reservation end after it.
        let mut candidates: Vec<SimTime> = vec![earliest];
        candidates.extend(
            self.reservations
                .iter()
                .filter(|r| r.end > earliest && r.hosts.iter().any(|h| hosts.contains(h)))
                .map(|r| r.end),
        );
        candidates.sort();
        for start in candidates {
            let end = start + duration;
            if hosts.iter().all(|h| self.is_free(h, start, end)) {
                return start;
            }
        }
        unreachable!("the instant after the last reservation is always free")
    }

    /// All reservations, in creation order.
    pub fn reservations(&self) -> &[Reservation] {
        &self.reservations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn hosts(names: &[&str]) -> Vec<String> {
        names.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn reserve_then_conflict() {
        let mut c = Calendar::new();
        let id = c
            .reserve(
                "alice",
                &hosts(&["vriga", "vtartu"]),
                SimTime::ZERO,
                SimDuration::from_hours(3),
            )
            .unwrap();
        // Bob wants vtartu inside Alice's window: rejected with context.
        let err = c
            .reserve(
                "bob",
                &hosts(&["vtartu"]),
                SimTime::from_secs(600),
                SimDuration::from_hours(1),
            )
            .unwrap_err();
        match err {
            ReservationError::Conflict {
                host,
                holder,
                until,
            } => {
                assert_eq!(host, "vtartu");
                assert_eq!(holder, "alice");
                assert_eq!(until, SimTime::ZERO + SimDuration::from_hours(3));
            }
            other => panic!("unexpected error {other:?}"),
        }
        // A different host in the same window is fine: parallel experiments.
        c.reserve(
            "bob",
            &hosts(&["vvilnius"]),
            SimTime::ZERO,
            SimDuration::from_hours(1),
        )
        .unwrap();
        assert_eq!(c.reservations().len(), 2);
        let _ = id;
    }

    #[test]
    fn back_to_back_reservations_do_not_conflict() {
        let mut c = Calendar::new();
        c.reserve(
            "alice",
            &hosts(&["dut"]),
            SimTime::ZERO,
            SimDuration::from_hours(1),
        )
        .unwrap();
        // End is exclusive: bob can start exactly when alice ends.
        c.reserve(
            "bob",
            &hosts(&["dut"]),
            SimTime::ZERO + SimDuration::from_hours(1),
            SimDuration::from_hours(1),
        )
        .unwrap();
    }

    #[test]
    fn release_frees_the_slot() {
        let mut c = Calendar::new();
        let id = c
            .reserve(
                "alice",
                &hosts(&["dut"]),
                SimTime::ZERO,
                SimDuration::from_hours(3),
            )
            .unwrap();
        assert!(!c.is_free("dut", SimTime::ZERO, SimTime::from_secs(1)));
        let released = c.release(id).unwrap();
        assert_eq!(released.user, "alice");
        assert!(c.is_free("dut", SimTime::ZERO, SimTime::from_secs(1)));
        assert!(c.release(id).is_none(), "double release returns None");
    }

    #[test]
    fn holder_at_reports_current_user() {
        let mut c = Calendar::new();
        c.reserve(
            "alice",
            &hosts(&["dut"]),
            SimTime::from_secs(100),
            SimDuration::from_secs(100),
        )
        .unwrap();
        assert!(c.holder_at("dut", SimTime::from_secs(50)).is_none());
        assert_eq!(
            c.holder_at("dut", SimTime::from_secs(150)).unwrap().user,
            "alice"
        );
        assert!(
            c.holder_at("dut", SimTime::from_secs(200)).is_none(),
            "end exclusive"
        );
    }

    #[test]
    fn bad_requests_rejected() {
        let mut c = Calendar::new();
        assert!(matches!(
            c.reserve("a", &[], SimTime::ZERO, SimDuration::from_secs(1)),
            Err(ReservationError::BadRequest { .. })
        ));
        assert!(matches!(
            c.reserve("a", &hosts(&["x"]), SimTime::ZERO, SimDuration::ZERO),
            Err(ReservationError::BadRequest { .. })
        ));
        assert!(matches!(
            c.reserve(
                "a",
                &hosts(&["x", "x"]),
                SimTime::ZERO,
                SimDuration::from_secs(1)
            ),
            Err(ReservationError::BadRequest { .. })
        ));
    }

    #[test]
    fn find_free_slot_skips_busy_windows() {
        let mut c = Calendar::new();
        c.reserve(
            "alice",
            &hosts(&["dut"]),
            SimTime::ZERO,
            SimDuration::from_hours(2),
        )
        .unwrap();
        c.reserve(
            "bob",
            &hosts(&["dut"]),
            SimTime::ZERO + SimDuration::from_hours(2),
            SimDuration::from_hours(1),
        )
        .unwrap();
        let slot = c.find_free_slot(
            &hosts(&["dut", "loadgen"]),
            SimDuration::from_hours(3),
            SimTime::ZERO,
        );
        assert_eq!(slot, SimTime::ZERO + SimDuration::from_hours(3));
        // And the found slot is actually reservable.
        c.reserve(
            "carol",
            &hosts(&["dut", "loadgen"]),
            slot,
            SimDuration::from_hours(3),
        )
        .unwrap();
    }

    #[test]
    fn find_free_slot_fits_gap_between_reservations() {
        let mut c = Calendar::new();
        c.reserve(
            "alice",
            &hosts(&["dut"]),
            SimTime::ZERO,
            SimDuration::from_hours(1),
        )
        .unwrap();
        c.reserve(
            "bob",
            &hosts(&["dut"]),
            SimTime::ZERO + SimDuration::from_hours(4),
            SimDuration::from_hours(1),
        )
        .unwrap();
        // A 2h experiment fits in the 1h-4h gap.
        let slot = c.find_free_slot(&hosts(&["dut"]), SimDuration::from_hours(2), SimTime::ZERO);
        assert_eq!(slot, SimTime::ZERO + SimDuration::from_hours(1));
    }

    #[test]
    fn reserve_batch_is_all_or_nothing() {
        let mut c = Calendar::new();
        c.reserve(
            "bob",
            &hosts(&["dut@r2"]),
            SimTime::ZERO,
            SimDuration::from_hours(1),
        )
        .unwrap();
        let before = c.reservations().to_vec();
        // The third set collides with bob: nothing may stick.
        let err = c
            .reserve_batch(
                "alice",
                &[
                    hosts(&["dut@r0", "gen@r0"]),
                    hosts(&["dut@r1", "gen@r1"]),
                    hosts(&["dut@r2"]),
                ],
                SimTime::ZERO,
                SimDuration::from_hours(2),
            )
            .unwrap_err();
        assert!(matches!(err, ReservationError::Conflict { .. }));
        assert_eq!(c.reservations(), &before[..], "failed batch must roll back");
        // Without the collision the whole batch lands.
        let ids = c
            .reserve_batch(
                "alice",
                &[hosts(&["dut@r0", "gen@r0"]), hosts(&["dut@r1", "gen@r1"])],
                SimTime::ZERO,
                SimDuration::from_hours(2),
            )
            .unwrap();
        assert_eq!(ids.len(), 2);
        assert_eq!(c.reservations().len(), before.len() + 2);
    }

    #[test]
    fn reserve_batch_rejects_overlapping_sets() {
        let mut c = Calendar::new();
        let err = c
            .reserve_batch(
                "alice",
                &[hosts(&["dut", "gen"]), hosts(&["dut"])],
                SimTime::ZERO,
                SimDuration::from_hours(1),
            )
            .unwrap_err();
        assert!(matches!(err, ReservationError::BadRequest { .. }));
        assert!(c.reservations().is_empty());
        assert!(matches!(
            c.reserve_batch("alice", &[], SimTime::ZERO, SimDuration::from_hours(1)),
            Err(ReservationError::BadRequest { .. })
        ));
    }

    proptest! {
        /// However reservations are created, no two ever overlap on a host.
        #[test]
        fn prop_no_double_booking(
            requests in proptest::collection::vec(
                (0u8..4, 0u64..100, 1u64..50, 0u8..3), 0..30
            )
        ) {
            let mut c = Calendar::new();
            for (host_n, start, dur, user_n) in requests {
                let _ = c.reserve(
                    format!("user{user_n}"),
                    &[format!("host{host_n}")],
                    SimTime::from_secs(start),
                    SimDuration::from_secs(dur),
                );
            }
            let rs = c.reservations();
            for (i, a) in rs.iter().enumerate() {
                for b in rs.iter().skip(i + 1) {
                    for h in &a.hosts {
                        prop_assert!(
                            !b.overlaps(h, a.start, a.end),
                            "reservations {:?} and {:?} overlap on {h}", a.id, b.id
                        );
                    }
                }
            }
        }

        /// Batch reservations keep the no-double-booking invariant and are
        /// atomic: a failed batch leaves the calendar untouched.
        #[test]
        fn prop_batch_reservations_atomic_and_disjoint(
            batches in proptest::collection::vec(
                (proptest::collection::vec(
                    proptest::collection::vec(0u8..6, 1..3), 1..4
                ), 0u64..50, 1u64..30, 0u8..3), 0..12
            )
        ) {
            let mut c = Calendar::new();
            for (sets, start, dur, user_n) in batches {
                let host_sets: Vec<Vec<String>> = sets
                    .iter()
                    .map(|s| s.iter().map(|h| format!("host{h}")).collect())
                    .collect();
                let before = c.reservations().len();
                match c.reserve_batch(
                    format!("user{user_n}"),
                    &host_sets,
                    SimTime::from_secs(start),
                    SimDuration::from_secs(dur),
                ) {
                    Ok(ids) => prop_assert_eq!(before + ids.len(), c.reservations().len()),
                    Err(_) => prop_assert_eq!(before, c.reservations().len(), "failed batch must roll back"),
                }
            }
            let rs = c.reservations();
            for (i, a) in rs.iter().enumerate() {
                for b in rs.iter().skip(i + 1) {
                    for h in &a.hosts {
                        prop_assert!(
                            !b.overlaps(h, a.start, a.end),
                            "reservations {:?} and {:?} overlap on {h}", a.id, b.id
                        );
                    }
                }
            }
        }

        /// Half-open interval semantics: a reservation ending at T never
        /// conflicts with one starting at T on the same host, and
        /// `find_free_slot` exploits exactly that adjacency.
        #[test]
        fn prop_adjacent_intervals_never_conflict(
            start in 0u64..1000,
            dur_a in 1u64..500,
            dur_b in 1u64..500,
            host_n in 0u8..4,
        ) {
            let mut c = Calendar::new();
            let host = vec![format!("host{host_n}")];
            let a_start = SimTime::from_secs(start);
            c.reserve("alice", &host, a_start, SimDuration::from_secs(dur_a)).unwrap();
            let a_end = a_start + SimDuration::from_secs(dur_a);
            // end == start must not conflict (end is exclusive).
            c.reserve("bob", &host, a_end, SimDuration::from_secs(dur_b)).unwrap();
            // And the slot finder agrees: asked for a window at least as
            // long as the tail gap, it lands exactly on a boundary, and the
            // returned slot is actually reservable.
            let slot = c.find_free_slot(&host, SimDuration::from_secs(dur_b), SimTime::ZERO);
            let reserved = c.reserve("carol", &host, slot, SimDuration::from_secs(dur_b));
            prop_assert!(reserved.is_ok(), "find_free_slot returned an unreservable slot: {reserved:?}");
        }
    }
}
