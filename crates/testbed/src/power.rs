//! Out-of-band initialization interfaces.
//!
//! §4.2: *"An example of the former used by pos to reset and boot servers
//! is IPMI. Our testbed controller does not depend on the availability of
//! IPMI: alternatives are other management APIs, such as Intel's vPro or
//! AMD's Pro features, or a remotely switchable power plug that triggers a
//! device reboot."* The defining property of every variant: it works even
//! when the host's OS is wedged (R3).
//!
//! The variants differ in capability and timing:
//!
//! | interface | hard reset | power cycle time | boot time |
//! |---|---|---|---|
//! | IPMI | yes | seconds | ~70 s firmware + image |
//! | vendor management (vPro-like) | yes | seconds | ~70 s |
//! | power plug | off/on only (reset = off, wait, on) | ~10 s mandatory off time | ~70 s |
//! | hypervisor | yes | instant | ~10 s |

use pos_simkernel::{SimDuration, SimRng};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The management API a host's initialization goes through.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InitInterface {
    /// Baseboard management controller speaking IPMI.
    Ipmi,
    /// Intel vPro / AMD Pro style vendor management.
    VendorManagement,
    /// A remotely switchable power plug; no reset command — the controller
    /// must power off, wait for capacitors to drain, and power on.
    PowerPlug,
    /// Hypervisor API controlling a vpos VM.
    Hypervisor,
}

impl fmt::Display for InitInterface {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            InitInterface::Ipmi => "ipmi",
            InitInterface::VendorManagement => "vendor-mgmt",
            InitInterface::PowerPlug => "power-plug",
            InitInterface::Hypervisor => "hypervisor",
        };
        f.write_str(s)
    }
}

impl InitInterface {
    /// Whether the interface has a direct hard-reset command.
    pub fn supports_reset(self) -> bool {
        !matches!(self, InitInterface::PowerPlug)
    }

    /// Latency of a power-state command (on/off/reset request itself).
    pub fn command_latency(self) -> SimDuration {
        match self {
            InitInterface::Ipmi | InitInterface::VendorManagement => SimDuration::from_secs(2),
            InitInterface::PowerPlug => SimDuration::from_secs(1),
            InitInterface::Hypervisor => SimDuration::from_millis(100),
        }
    }

    /// Mandatory dwell time between power-off and power-on.
    pub fn off_on_dwell(self) -> SimDuration {
        match self {
            InitInterface::PowerPlug => SimDuration::from_secs(10),
            _ => SimDuration::ZERO,
        }
    }

    /// Time from power-on until the live image is fully booted, with a
    /// deterministic-per-seed jitter (firmware POST times vary).
    pub fn boot_time(self, rng: &mut SimRng) -> SimDuration {
        let (base_s, jitter_s) = match self {
            InitInterface::Ipmi | InitInterface::VendorManagement | InitInterface::PowerPlug => {
                (70.0, 15.0)
            }
            InitInterface::Hypervisor => (10.0, 2.0),
        };
        let t = base_s + jitter_s * rng.uniform_f64();
        SimDuration::from_secs_f64(t)
    }

    /// Probability that a single management command transiently fails
    /// (BMCs are notoriously flaky; the controller retries).
    pub fn transient_failure_chance(self) -> f64 {
        match self {
            InitInterface::Ipmi => 0.02,
            InitInterface::VendorManagement => 0.01,
            InitInterface::PowerPlug => 0.005,
            InitInterface::Hypervisor => 0.0,
        }
    }
}

/// Errors from power operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PowerError {
    /// The management endpoint did not answer; retrying usually helps.
    TransientFailure {
        /// The interface that failed.
        interface: InitInterface,
    },
    /// The interface cannot perform the requested operation.
    Unsupported {
        /// The interface.
        interface: InitInterface,
        /// The operation, e.g. `"reset"`.
        operation: &'static str,
    },
    /// No image was selected before the boot was requested.
    NoImageSelected {
        /// The affected host.
        host: String,
    },
    /// The named host does not exist.
    UnknownHost {
        /// The requested name.
        host: String,
    },
}

impl fmt::Display for PowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PowerError::TransientFailure { interface } => {
                write!(f, "{interface}: transient management failure")
            }
            PowerError::Unsupported {
                interface,
                operation,
            } => write!(f, "{interface}: operation '{operation}' not supported"),
            PowerError::NoImageSelected { host } => {
                write!(f, "host {host}: no live image selected before boot")
            }
            PowerError::UnknownHost { host } => write!(f, "unknown host {host}"),
        }
    }
}

impl std::error::Error for PowerError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reset_capability() {
        assert!(InitInterface::Ipmi.supports_reset());
        assert!(InitInterface::VendorManagement.supports_reset());
        assert!(InitInterface::Hypervisor.supports_reset());
        assert!(!InitInterface::PowerPlug.supports_reset());
    }

    #[test]
    fn boot_time_ranges() {
        let mut rng = SimRng::new(1);
        for _ in 0..100 {
            let t = InitInterface::Ipmi.boot_time(&mut rng).as_secs_f64();
            assert!((70.0..85.0).contains(&t), "got {t}");
            let t = InitInterface::Hypervisor.boot_time(&mut rng).as_secs_f64();
            assert!((10.0..12.0).contains(&t), "got {t}");
        }
    }

    #[test]
    fn vm_boot_is_much_faster_than_metal() {
        let mut rng = SimRng::new(2);
        let vm = InitInterface::Hypervisor.boot_time(&mut rng);
        let metal = InitInterface::Ipmi.boot_time(&mut rng);
        assert!(metal.as_nanos() > vm.as_nanos() * 4);
    }

    #[test]
    fn power_plug_needs_dwell() {
        assert!(InitInterface::PowerPlug.off_on_dwell() > SimDuration::ZERO);
        assert_eq!(InitInterface::Ipmi.off_on_dwell(), SimDuration::ZERO);
    }

    #[test]
    fn display_names() {
        assert_eq!(InitInterface::Ipmi.to_string(), "ipmi");
        assert_eq!(InitInterface::PowerPlug.to_string(), "power-plug");
    }

    #[test]
    fn errors_display() {
        let e = PowerError::Unsupported {
            interface: InitInterface::PowerPlug,
            operation: "reset",
        };
        assert_eq!(e.to_string(), "power-plug: operation 'reset' not supported");
        let e = PowerError::NoImageSelected {
            host: "vtartu".into(),
        };
        assert!(e.to_string().contains("vtartu"));
    }
}
