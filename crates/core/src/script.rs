//! Experiment scripts.
//!
//! §4.3: *"the scripts define the individual steps of the experiment [...]
//! a script can be any executable, e.g., python or bash, that can be
//! executed on the target device. The script contains the sequence of
//! commands to execute."*
//!
//! A pos script here is a line-oriented text: one command per line, `#`
//! comments, and the pos utility `pos_sync <name>` marking a named
//! synchronization barrier across all experiment hosts (§4.4: the utility
//! tools "synchronize hosts using barriers"). Variables are substituted at
//! execution time, per measurement run.

use crate::vars::Variables;
use serde::{Deserialize, Serialize};

/// One step of a script.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Step {
    /// A command line to execute on the host.
    Command(String),
    /// A named barrier: execution pauses until every participating host
    /// reaches a barrier with the same name.
    Barrier(String),
}

/// A parsed experiment script.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct Script {
    /// The steps, in order.
    pub steps: Vec<Step>,
    /// The original source text (kept verbatim — it is an artifact that
    /// gets published).
    pub source: String,
}

impl Script {
    /// Parses script text.
    pub fn parse(source: &str) -> Script {
        let mut steps = Vec::new();
        for line in source.lines() {
            let trimmed = line.trim();
            if trimmed.is_empty() || trimmed.starts_with('#') {
                continue;
            }
            if let Some(rest) = trimmed.strip_prefix("pos_sync") {
                let name = rest.trim();
                let name = if name.is_empty() { "default" } else { name };
                steps.push(Step::Barrier(name.to_owned()));
            } else {
                steps.push(Step::Command(trimmed.to_owned()));
            }
        }
        Script {
            steps,
            source: source.to_owned(),
        }
    }

    /// Number of steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// True when the script has no steps.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Names of barriers, in order of appearance.
    pub fn barrier_names(&self) -> Vec<&str> {
        self.steps
            .iter()
            .filter_map(|s| match s {
                Step::Barrier(n) => Some(n.as_str()),
                _ => None,
            })
            .collect()
    }

    /// Splits the script into *segments*: runs of commands separated by
    /// barriers. A script with barriers `b1, b2` yields segments
    /// `[cmds, b1], [cmds, b2], [cmds, None]` — the final segment has no
    /// trailing barrier.
    pub fn segments(&self) -> Vec<(Vec<&str>, Option<&str>)> {
        let mut out = Vec::new();
        let mut current: Vec<&str> = Vec::new();
        for step in &self.steps {
            match step {
                Step::Command(c) => current.push(c.as_str()),
                Step::Barrier(b) => {
                    out.push((std::mem::take(&mut current), Some(b.as_str())));
                }
            }
        }
        out.push((current, None));
        out
    }

    /// Substitutes variables into every command, producing the concrete
    /// per-run command list (barriers are unaffected).
    pub fn instantiate(&self, vars: &Variables) -> Vec<Step> {
        self.steps
            .iter()
            .map(|s| match s {
                Step::Command(c) => Step::Command(vars.substitute(c)),
                b => b.clone(),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DUT_SETUP: &str = r#"
# DuT setup: bring up ports and enable routing
ip addr add $dut_ip0/24 dev $PORT0
ip addr add $dut_ip1/24 dev $PORT1
ip link set $PORT0 up
ip link set $PORT1 up
sysctl -w net.ipv4.ip_forward=1
pos_sync setup_done
"#;

    #[test]
    fn parses_commands_comments_barriers() {
        let s = Script::parse(DUT_SETUP);
        assert_eq!(s.len(), 6);
        assert_eq!(s.barrier_names(), vec!["setup_done"]);
        assert!(matches!(&s.steps[0], Step::Command(c) if c.starts_with("ip addr add")));
        assert!(matches!(&s.steps[5], Step::Barrier(b) if b == "setup_done"));
    }

    #[test]
    fn source_is_preserved_verbatim() {
        let s = Script::parse(DUT_SETUP);
        assert_eq!(
            s.source, DUT_SETUP,
            "the publishable artifact is the source"
        );
    }

    #[test]
    fn unnamed_sync_gets_default_name() {
        let s = Script::parse("echo a\npos_sync\necho b");
        assert_eq!(s.barrier_names(), vec!["default"]);
    }

    #[test]
    fn empty_script() {
        let s = Script::parse("# only a comment\n\n");
        assert!(s.is_empty());
        assert_eq!(s.segments().len(), 1);
        assert!(s.segments()[0].0.is_empty());
    }

    #[test]
    fn segments_split_on_barriers() {
        let s = Script::parse("a\nb\npos_sync s1\nc\npos_sync s2\nd");
        let segs = s.segments();
        assert_eq!(segs.len(), 3);
        assert_eq!(segs[0], (vec!["a", "b"], Some("s1")));
        assert_eq!(segs[1], (vec!["c"], Some("s2")));
        assert_eq!(segs[2], (vec!["d"], None));
    }

    #[test]
    fn trailing_barrier_yields_empty_final_segment() {
        let s = Script::parse("a\npos_sync done");
        let segs = s.segments();
        assert_eq!(segs.len(), 2);
        assert_eq!(segs[1], (vec![], None));
    }

    #[test]
    fn instantiate_substitutes_only_commands() {
        let vars = Variables::new()
            .with("PORT0", "eno1")
            .with("PORT1", "eno2")
            .with("dut_ip0", "10.0.0.1")
            .with("dut_ip1", "10.0.1.1");
        let steps = Script::parse(DUT_SETUP).instantiate(&vars);
        assert_eq!(
            steps[0],
            Step::Command("ip addr add 10.0.0.1/24 dev eno1".into())
        );
        assert_eq!(steps[5], Step::Barrier("setup_done".into()));
    }

    #[test]
    fn measurement_script_with_loop_vars() {
        let script =
            Script::parse("moongen --rate $pkt_rate --size $pkt_sz --time 10\npos_sync run_done");
        let vars = Variables::new()
            .with("pkt_rate", 10_000i64)
            .with("pkt_sz", 64i64);
        let steps = script.instantiate(&vars);
        assert_eq!(
            steps[0],
            Step::Command("moongen --rate 10000 --size 64 --time 10".into())
        );
    }
}
