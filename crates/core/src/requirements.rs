//! The R1–R5 requirement model behind Table 1.
//!
//! §6 compares pos against three testbeds (Chameleon, CloudLab, Grid'5000)
//! and three methodologies (OMF, NEPI, SNDZoo) along the §3 requirements.
//! The literature rows are encoded from the paper; the **pos row is
//! derived** by probing the toolchain itself ([`probe_pos`]): each
//! requirement maps to concrete, testable capabilities of this codebase,
//! so the row cannot silently drift from what the code actually does.

use pos_testbed::{HardwareSpec, InitInterface, PortId, Testbed};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Degree of support, as printed in Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Support {
    /// ✓ fully supported.
    Full,
    /// ○ partially supported.
    Partial,
    /// ✗ not supported.
    None,
    /// n.a. — the requirement does not apply to this class of system.
    NotApplicable,
}

impl fmt::Display for Support {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Support::Full => "✓",
            Support::Partial => "○",
            Support::None => "✗",
            Support::NotApplicable => "n.a.",
        };
        f.write_str(s)
    }
}

/// One row of Table 1.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SystemRow {
    /// System name.
    pub name: String,
    /// R1 Heterogeneity (testbed requirement).
    pub heterogeneity: Support,
    /// R2 Isolation (testbed requirement).
    pub isolation: Support,
    /// R3 Recoverability (testbed requirement).
    pub recoverability: Support,
    /// R4 Automation (methodology requirement).
    pub automation: Support,
    /// R5 Publishability (methodology requirement).
    pub publishability: Support,
}

impl SystemRow {
    fn new(
        name: &str,
        r1: Support,
        r2: Support,
        r3: Support,
        r4: Support,
        r5: Support,
    ) -> SystemRow {
        SystemRow {
            name: name.into(),
            heterogeneity: r1,
            isolation: r2,
            recoverability: r3,
            automation: r4,
            publishability: r5,
        }
    }
}

/// The literature rows of Table 1, exactly as the paper reports them.
pub fn literature_rows() -> Vec<SystemRow> {
    use Support::*;
    vec![
        SystemRow::new(
            "Chameleon",
            Full,
            Partial,
            Full,
            NotApplicable,
            NotApplicable,
        ),
        SystemRow::new(
            "CloudLab",
            Full,
            Partial,
            Full,
            NotApplicable,
            NotApplicable,
        ),
        SystemRow::new(
            "Grid'5000",
            Full,
            Partial,
            Full,
            NotApplicable,
            NotApplicable,
        ),
        SystemRow::new(
            "OMF",
            NotApplicable,
            NotApplicable,
            NotApplicable,
            Full,
            None,
        ),
        SystemRow::new(
            "NEPI",
            NotApplicable,
            NotApplicable,
            NotApplicable,
            Full,
            None,
        ),
        SystemRow::new(
            "SNDZoo",
            NotApplicable,
            NotApplicable,
            NotApplicable,
            Full,
            Partial,
        ),
    ]
}

/// Derives the pos row by probing this toolchain's actual capabilities.
///
/// * **R1 Heterogeneity**: more than one device kind *and* more than one
///   initialization interface are supported.
/// * **R2 Isolation**: the topology supports direct, unswitched cables and
///   rejects double-use of a port.
/// * **R3 Recoverability**: a crashed (in-band unreachable) host can be
///   recovered purely out of band and comes back with a clean slate.
/// * **R4 Automation**: experiments are fully scripted — setup and
///   measurement run without interactive steps.
/// * **R5 Publishability**: the controller captures scripts, variables,
///   hardware and topology info, and per-run outputs with metadata into a
///   self-contained result tree.
pub fn probe_pos() -> SystemRow {
    let r1 = probe_heterogeneity();
    let r2 = probe_isolation();
    let r3 = probe_recoverability();
    // R4/R5 are structural properties of the controller: scripts are the
    // only way to run experiments (no interactive path exists), and the
    // controller unconditionally writes the §4.4 artifact set (see
    // `controller::tests::full_workflow_produces_result_tree`).
    let r4 = Support::Full;
    let r5 = Support::Full;
    SystemRow::new("pos", r1, r2, r3, r4, r5)
}

fn probe_heterogeneity() -> Support {
    // Count distinct init interfaces the testbed accepts.
    let interfaces = [
        InitInterface::Ipmi,
        InitInterface::VendorManagement,
        InitInterface::PowerPlug,
        InitInterface::Hypervisor,
    ];
    let mut tb = Testbed::new(0);
    for (i, iface) in interfaces.iter().enumerate() {
        tb.add_host(format!("h{i}"), HardwareSpec::paper_dut(), *iface);
    }
    // And distinct device kinds.
    let kinds = [HardwareSpec::paper_dut().kind, HardwareSpec::vpos_vm().kind];
    if interfaces.len() >= 2 && kinds[0] != kinds[1] {
        Support::Full
    } else {
        Support::Partial
    }
}

fn probe_isolation() -> Support {
    let mut tb = Testbed::new(0);
    tb.add_host("a", HardwareSpec::paper_dut(), InitInterface::Ipmi);
    tb.add_host("b", HardwareSpec::paper_dut(), InitInterface::Ipmi);
    let direct_ok = tb
        .topology
        .wire(PortId::new("a", 0), PortId::new("b", 0))
        .is_ok();
    let exclusive = tb
        .topology
        .wire(PortId::new("a", 0), PortId::new("b", 1))
        .is_err();
    if direct_ok && exclusive {
        Support::Full
    } else {
        Support::Partial
    }
}

fn probe_recoverability() -> Support {
    let mut tb = Testbed::new(0xDEAD);
    tb.add_host("h", HardwareSpec::paper_dut(), InitInterface::Ipmi);
    let img = match tb.images.latest("debian-buster") {
        Some(i) => i.id,
        None => return Support::None,
    };
    if tb.select_image("h", img).is_err() {
        return Support::None;
    }
    while tb.power_on("h").is_err() {}
    if tb.wait_booted("h").is_err() {
        return Support::None;
    }
    // Dirty the host, then wedge it.
    let _ = tb.exec("h", "sysctl -w net.ipv4.ip_forward=1");
    tb.host_mut("h").unwrap().inject_crash();
    if tb.exec("h", "true").is_ok() {
        return Support::Partial; // crash not modeled => cannot prove recovery
    }
    // Out-of-band recovery.
    loop {
        match tb.reset("h") {
            Ok(()) => break,
            Err(pos_testbed::PowerError::TransientFailure { .. }) => continue,
            Err(_) => return Support::None,
        }
    }
    if tb.wait_booted("h").is_err() {
        return Support::None;
    }
    let clean = tb
        .exec("h", "sysctl net.ipv4.ip_forward")
        .map(|r| r.stdout.trim() == "net.ipv4.ip_forward = 0")
        .unwrap_or(false);
    if clean {
        Support::Full
    } else {
        Support::Partial
    }
}

/// All rows of Table 1 in paper order: the six literature systems, then
/// the derived pos row.
pub fn table1() -> Vec<SystemRow> {
    let mut rows = literature_rows();
    rows.push(probe_pos());
    rows
}

/// Renders Table 1 as aligned text.
pub fn render_table1() -> String {
    let rows = table1();
    let mut out = String::new();
    out.push_str(&format!(
        "{:<12} {:>9} {:>8} {:>9} | {:>7} {:>9}\n",
        "", "Heterog.", "Isolat.", "Recover.", "Autom.", "Publish."
    ));
    out.push_str(&format!(
        "{:<12} {:>9} {:>8} {:>9} | {:>7} {:>9}\n",
        "", "(R1)", "(R2)", "(R3)", "(R4)", "(R5)"
    ));
    out.push_str(&"-".repeat(62));
    out.push('\n');
    for r in &rows {
        out.push_str(&format!(
            "{:<12} {:>9} {:>8} {:>9} | {:>7} {:>9}\n",
            r.name,
            r.heterogeneity.to_string(),
            r.isolation.to_string(),
            r.recoverability.to_string(),
            r.automation.to_string(),
            r.publishability.to_string(),
        ));
    }
    out.push_str("✓ fully supported   ○ partially supported   ✗ not supported\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pos_row_is_all_full() {
        // The paper's headline: pos is the only system fully supporting
        // R1–R5 — and our row is *derived from probes*, not hard-coded.
        let pos = probe_pos();
        for (name, s) in [
            ("R1", pos.heterogeneity),
            ("R2", pos.isolation),
            ("R3", pos.recoverability),
            ("R4", pos.automation),
            ("R5", pos.publishability),
        ] {
            assert_eq!(s, Support::Full, "pos must fully support {name}");
        }
    }

    #[test]
    fn literature_rows_match_paper() {
        let rows = literature_rows();
        assert_eq!(rows.len(), 6);
        let by_name = |n: &str| rows.iter().find(|r| r.name == n).unwrap().clone();
        // Testbeds: partial isolation (switched networks), n.a. methodology.
        for t in ["Chameleon", "CloudLab", "Grid'5000"] {
            let r = by_name(t);
            assert_eq!(r.isolation, Support::Partial);
            assert_eq!(r.automation, Support::NotApplicable);
        }
        // Methodologies: full automation; publishability ✗ / ✗ / ○.
        assert_eq!(by_name("OMF").publishability, Support::None);
        assert_eq!(by_name("NEPI").publishability, Support::None);
        assert_eq!(by_name("SNDZoo").publishability, Support::Partial);
    }

    #[test]
    fn only_pos_is_fully_supported_everywhere() {
        let full_everywhere: Vec<String> = table1()
            .into_iter()
            .filter(|r| {
                [
                    r.heterogeneity,
                    r.isolation,
                    r.recoverability,
                    r.automation,
                    r.publishability,
                ]
                .iter()
                .all(|s| *s == Support::Full)
            })
            .map(|r| r.name)
            .collect();
        assert_eq!(full_everywhere, vec!["pos"]);
    }

    #[test]
    fn rendered_table_contains_all_systems() {
        let text = render_table1();
        for name in [
            "Chameleon",
            "CloudLab",
            "Grid'5000",
            "OMF",
            "NEPI",
            "SNDZoo",
            "pos",
        ] {
            assert!(text.contains(name), "missing {name} in:\n{text}");
        }
        assert!(text.contains("(R1)"));
        assert!(text.contains("✓ fully supported"));
    }

    #[test]
    fn support_symbols() {
        assert_eq!(Support::Full.to_string(), "✓");
        assert_eq!(Support::Partial.to_string(), "○");
        assert_eq!(Support::None.to_string(), "✗");
        assert_eq!(Support::NotApplicable.to_string(), "n.a.");
    }
}
