//! Experiment variables.
//!
//! §4.3: *"The user-programmable experiment scripts distinguish two
//! different file types: script and parameter files. This idea is inspired
//! by HTML and CSS [...] For instance, a script file defines the
//! initialization of a network port with the name `$PORT`, the variable
//! file assigns `$PORT` the value `eno1`."*
//!
//! Three kinds of variables exist (§4.3): *global* (all hosts), *local*
//! (one host), and *loop* (all hosts, changing between measurement runs).
//! All three are [`Variables`] maps; their kind is a property of where the
//! controller loads them from and how it applies them.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// A variable value: a scalar or a list of scalars (lists are meaningful
/// only for loop variables, where they enumerate the instances to sweep).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(untagged)]
pub enum VarValue {
    /// Boolean flag.
    Bool(bool),
    /// Integer parameter (e.g. `pkt_sz: 64`).
    Int(i64),
    /// Floating-point parameter.
    Float(f64),
    /// String parameter (e.g. `port: eno1`).
    Str(String),
    /// List of scalars (loop variables only).
    List(Vec<VarValue>),
}

impl VarValue {
    /// Renders the value the way it substitutes into a script.
    pub fn render(&self) -> String {
        match self {
            VarValue::Bool(b) => b.to_string(),
            VarValue::Int(i) => i.to_string(),
            VarValue::Float(f) => {
                // Integral floats print without a trailing ".0" so scripts
                // see `1000` rather than `1000.0`.
                if f.fract() == 0.0 && f.is_finite() && f.abs() < 1e15 {
                    format!("{}", *f as i64)
                } else {
                    f.to_string()
                }
            }
            VarValue::Str(s) => s.clone(),
            VarValue::List(items) => items
                .iter()
                .map(VarValue::render)
                .collect::<Vec<_>>()
                .join(","),
        }
    }

    /// The scalar instances of this value: one for scalars, the items for
    /// lists (the §4.4 rule "each parameter can represent either a single
    /// value or a list of values").
    pub fn instances(&self) -> Vec<VarValue> {
        match self {
            VarValue::List(items) => items.clone(),
            scalar => vec![scalar.clone()],
        }
    }

    /// True for a list value.
    pub fn is_list(&self) -> bool {
        matches!(self, VarValue::List(_))
    }

    /// Interprets the value as f64 where possible.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            VarValue::Int(i) => Some(*i as f64),
            VarValue::Float(f) => Some(*f),
            VarValue::Str(s) => s.parse().ok(),
            _ => None,
        }
    }

    /// Interprets the value as i64 where possible.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            VarValue::Int(i) => Some(*i),
            VarValue::Float(f) if f.fract() == 0.0 => Some(*f as i64),
            VarValue::Str(s) => s.parse().ok(),
            _ => None,
        }
    }
}

impl fmt::Display for VarValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

impl From<i64> for VarValue {
    fn from(v: i64) -> Self {
        VarValue::Int(v)
    }
}
impl From<f64> for VarValue {
    fn from(v: f64) -> Self {
        VarValue::Float(v)
    }
}
impl From<&str> for VarValue {
    fn from(v: &str) -> Self {
        VarValue::Str(v.into())
    }
}
impl From<String> for VarValue {
    fn from(v: String) -> Self {
        VarValue::Str(v)
    }
}
impl From<bool> for VarValue {
    fn from(v: bool) -> Self {
        VarValue::Bool(v)
    }
}
impl<T: Into<VarValue>> From<Vec<T>> for VarValue {
    fn from(v: Vec<T>) -> Self {
        VarValue::List(v.into_iter().map(Into::into).collect())
    }
}

/// An ordered name → value map, loadable from a YAML parameter file.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Variables(pub BTreeMap<String, VarValue>);

impl Variables {
    /// An empty set.
    pub fn new() -> Variables {
        Variables::default()
    }

    /// Inserts a variable (builder style).
    pub fn with(mut self, name: impl Into<String>, value: impl Into<VarValue>) -> Variables {
        self.0.insert(name.into(), value.into());
        self
    }

    /// Inserts a variable.
    pub fn set(&mut self, name: impl Into<String>, value: impl Into<VarValue>) {
        self.0.insert(name.into(), value.into());
    }

    /// Looks a variable up.
    pub fn get(&self, name: &str) -> Option<&VarValue> {
        self.0.get(name)
    }

    /// Number of variables.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Parses a YAML parameter file (e.g. `loop-variables.yml`).
    pub fn from_yaml(text: &str) -> Result<Variables, serde_yaml::Error> {
        if text.trim().is_empty() {
            return Ok(Variables::new());
        }
        serde_yaml::from_str(text)
    }

    /// Renders back to YAML.
    pub fn to_yaml(&self) -> String {
        serde_yaml::to_string(&self.0).expect("BTreeMap of VarValue always serializes")
    }

    /// Merges `other` over `self` (entries in `other` win). Returns the
    /// merged set; used to stack global < local < loop precedence.
    pub fn merged_with(&self, other: &Variables) -> Variables {
        let mut out = self.clone();
        for (k, v) in &other.0 {
            out.0.insert(k.clone(), v.clone());
        }
        out
    }

    /// Substitutes `$name` and `${name}` occurrences in `text`.
    ///
    /// Longest-name-first matching for the bare `$name` form, so `$rate`
    /// does not eat the prefix of `$rate_limit`. Unknown variables are left
    /// untouched (scripts may use shell-level variables of their own).
    pub fn substitute(&self, text: &str) -> String {
        let mut names: Vec<&String> = self.0.keys().collect();
        names.sort_by_key(|n| std::cmp::Reverse(n.len()));
        let mut out = String::with_capacity(text.len());
        let bytes = text.as_bytes();
        let mut i = 0;
        'outer: while i < bytes.len() {
            if bytes[i] == b'$' {
                // ${name}
                if i + 1 < bytes.len() && bytes[i + 1] == b'{' {
                    if let Some(end) = text[i + 2..].find('}') {
                        let name = &text[i + 2..i + 2 + end];
                        if let Some(v) = self.0.get(name) {
                            out.push_str(&v.render());
                            i += 2 + end + 1;
                            continue 'outer;
                        }
                    }
                } else {
                    // $name, longest match wins
                    for name in &names {
                        let rest = &text[i + 1..];
                        if rest.starts_with(name.as_str()) {
                            // Next char must not extend the identifier.
                            let after = rest[name.len()..].chars().next();
                            let extends = after
                                .map(|c| c.is_alphanumeric() || c == '_')
                                .unwrap_or(false);
                            if !extends {
                                out.push_str(&self.0[*name].render());
                                i += 1 + name.len();
                                continue 'outer;
                            }
                        }
                    }
                }
            }
            let ch = text[i..].chars().next().expect("in bounds");
            out.push(ch);
            i += ch.len_utf8();
        }
        out
    }

    /// Iterates entries in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &VarValue)> {
        self.0.iter()
    }

    /// The entries rendered as plain strings (for deployment to hosts).
    pub fn rendered(&self) -> BTreeMap<String, String> {
        self.0
            .iter()
            .map(|(k, v)| (k.clone(), v.render()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn yaml_roundtrip_with_lists() {
        // The Appendix-A loop variable file: sizes and rates.
        let yaml = "pkt_sz: [64, 1500]\npkt_rate: [10000, 20000, 30000]\n";
        let vars = Variables::from_yaml(yaml).unwrap();
        assert_eq!(
            vars.get("pkt_sz"),
            Some(&VarValue::List(vec![
                VarValue::Int(64),
                VarValue::Int(1500)
            ]))
        );
        let back = Variables::from_yaml(&vars.to_yaml()).unwrap();
        assert_eq!(back, vars);
    }

    #[test]
    fn yaml_scalar_kinds() {
        let vars =
            Variables::from_yaml("port: eno1\ncount: 5\nratio: 0.5\nenabled: true\n").unwrap();
        assert_eq!(vars.get("port"), Some(&VarValue::Str("eno1".into())));
        assert_eq!(vars.get("count"), Some(&VarValue::Int(5)));
        assert_eq!(vars.get("ratio"), Some(&VarValue::Float(0.5)));
        assert_eq!(vars.get("enabled"), Some(&VarValue::Bool(true)));
    }

    #[test]
    fn empty_yaml_is_empty_vars() {
        assert!(Variables::from_yaml("").unwrap().is_empty());
        assert!(Variables::from_yaml("  \n").unwrap().is_empty());
    }

    #[test]
    fn substitution_basic() {
        let vars = Variables::new()
            .with("PORT", "eno1")
            .with("pkt_rate", 10_000i64);
        assert_eq!(
            vars.substitute("ip link set $PORT up # rate $pkt_rate"),
            "ip link set eno1 up # rate 10000"
        );
        assert_eq!(vars.substitute("x=${PORT}y"), "x=eno1y");
    }

    #[test]
    fn substitution_longest_name_wins() {
        let vars = Variables::new().with("rate", 1i64).with("rate_limit", 2i64);
        assert_eq!(vars.substitute("$rate_limit vs $rate"), "2 vs 1");
    }

    #[test]
    fn substitution_does_not_split_identifiers() {
        let vars = Variables::new().with("rate", 1i64);
        // $ratelimit is a *different* identifier, untouched.
        assert_eq!(vars.substitute("$ratelimit"), "$ratelimit");
    }

    #[test]
    fn substitution_unknown_left_alone() {
        let vars = Variables::new().with("a", 1i64);
        assert_eq!(vars.substitute("$b ${c} $a"), "$b ${c} 1");
    }

    #[test]
    fn substitution_handles_unicode() {
        let vars = Variables::new().with("x", "µ");
        assert_eq!(vars.substitute("1$x s — Ω"), "1µ s — Ω");
    }

    #[test]
    fn render_formats() {
        assert_eq!(VarValue::Int(64).render(), "64");
        assert_eq!(VarValue::Float(1000.0).render(), "1000");
        assert_eq!(VarValue::Float(0.5).render(), "0.5");
        assert_eq!(VarValue::Bool(false).render(), "false");
        assert_eq!(
            VarValue::List(vec![64.into(), 1500.into()]).render(),
            "64,1500"
        );
    }

    #[test]
    fn instances_of_scalar_and_list() {
        assert_eq!(VarValue::Int(1).instances(), vec![VarValue::Int(1)]);
        let l = VarValue::List(vec![1i64.into(), 2i64.into()]);
        assert_eq!(l.instances().len(), 2);
        assert!(l.is_list());
    }

    #[test]
    fn merge_precedence() {
        let global = Variables::new().with("a", 1i64).with("b", 1i64);
        let local = Variables::new().with("b", 2i64).with("c", 2i64);
        let merged = global.merged_with(&local);
        assert_eq!(merged.get("a"), Some(&VarValue::Int(1)));
        assert_eq!(merged.get("b"), Some(&VarValue::Int(2)), "local wins");
        assert_eq!(merged.get("c"), Some(&VarValue::Int(2)));
    }

    #[test]
    fn numeric_coercions() {
        assert_eq!(VarValue::Int(64).as_f64(), Some(64.0));
        assert_eq!(VarValue::Str("1500".into()).as_i64(), Some(1500));
        assert_eq!(VarValue::Float(2.0).as_i64(), Some(2));
        assert_eq!(VarValue::Float(2.5).as_i64(), None);
        assert_eq!(VarValue::Bool(true).as_f64(), None);
    }

    proptest! {
        /// Substitution never panics and never loses non-variable text.
        #[test]
        fn prop_substitution_total(text in ".{0,100}") {
            let vars = Variables::new().with("a", 1i64).with("bb", "x");
            let _ = vars.substitute(&text);
        }

        /// YAML roundtrip for arbitrary string variables.
        #[test]
        fn prop_yaml_roundtrip(entries in proptest::collection::btree_map("[a-z_]{1,10}", 0i64..10_000, 0..8)) {
            let mut vars = Variables::new();
            for (k, v) in &entries {
                vars.set(k.clone(), *v);
            }
            let back = Variables::from_yaml(&vars.to_yaml()).unwrap();
            prop_assert_eq!(back, vars);
        }
    }
}
