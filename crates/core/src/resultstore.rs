//! The structured on-disk result tree.
//!
//! §4.4: *"This enforced central collection of artifacts, including the
//! output of the utility tools, executed scripts, variables, device
//! hardware and topology information, guarantees publishability (R5)."*
//! and: *"pos creates separate result files for each measurement run.
//! Additionally, pos creates metadata for each run, i.e., the loop
//! parameters of a specific run."*
//!
//! Layout (mirrors `/srv/testbed/results/user/default/[timestamp]/` from
//! Appendix A):
//!
//! ```text
//! <root>/<user>/<experiment>/<vt-timestamp>/
//!   experiment/                 # the publishable inputs
//!     experiment.yml
//!     global-variables.yml
//!     loop-variables.yml
//!     <role>/setup.sh  <role>/measurement.sh  <role>/local-variables.yml
//!   hardware/<host>.txt         # captured device information
//!   topology.txt
//!   controller.log
//!   run-0000/
//!     metadata.json             # RunMetadata
//!     loop-params.yml
//!     <role>_measurement.log    # captured stdout
//!     <role>_measurement.err    # captured stderr (if any)
//!     <role>_measurement.status # exit code
//! ```

use crate::loopvars::RunParams;
use pos_simkernel::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Per-run metadata, serialized as `metadata.json`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunMetadata {
    /// Zero-based run index in cross-product order.
    pub index: usize,
    /// Compact `k=v,...` label of the loop parameters.
    pub label: String,
    /// Loop parameter values, rendered as strings.
    pub params: BTreeMap<String, String>,
    /// Virtual start time of the run, nanoseconds.
    pub started_ns: u64,
    /// Virtual end time of the run, nanoseconds.
    pub finished_ns: u64,
    /// How many attempts the run took (1 = first try).
    pub attempts: u32,
    /// Whether the final attempt succeeded.
    pub success: bool,
    /// role -> host assignment.
    pub hosts: BTreeMap<String, String>,
}

/// A handle to one experiment's result directory.
#[derive(Debug, Clone)]
pub struct ResultStore {
    dir: PathBuf,
}

impl ResultStore {
    /// Creates the directory for a new experiment execution under
    /// `root/user/experiment/vt-<seconds>`; appends `-N` on collision so
    /// re-running the same experiment never overwrites previous results.
    pub fn create(
        root: &Path,
        user: &str,
        experiment: &str,
        started: SimTime,
    ) -> io::Result<ResultStore> {
        let base = root
            .join(user)
            .join(experiment)
            .join(format!("vt-{:010}", started.as_nanos() / 1_000_000_000));
        let mut dir = base.clone();
        let mut n = 0;
        while dir.exists() {
            n += 1;
            dir = PathBuf::from(format!("{}-{n}", base.display()));
        }
        fs::create_dir_all(&dir)?;
        Ok(ResultStore { dir })
    }

    /// Opens an existing experiment directory (for evaluation/publishing).
    pub fn open(dir: impl Into<PathBuf>) -> ResultStore {
        ResultStore { dir: dir.into() }
    }

    /// The experiment directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Writes a file relative to the experiment directory, creating parent
    /// directories as needed.
    pub fn write(&self, rel: &str, contents: impl AsRef<[u8]>) -> io::Result<()> {
        let path = self.dir.join(rel);
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)?;
        }
        fs::write(path, contents)
    }

    /// Reads a file relative to the experiment directory.
    pub fn read(&self, rel: &str) -> io::Result<Vec<u8>> {
        fs::read(self.dir.join(rel))
    }

    /// Reads a file as UTF-8 text.
    pub fn read_text(&self, rel: &str) -> io::Result<String> {
        fs::read_to_string(self.dir.join(rel))
    }

    /// Directory of run `index` (`run-0000` style), created on demand.
    pub fn run_dir(&self, index: usize) -> io::Result<PathBuf> {
        let dir = self.dir.join(format!("run-{index:04}"));
        fs::create_dir_all(&dir)?;
        Ok(dir)
    }

    /// Writes a run's metadata (both JSON and the YAML loop-params view).
    pub fn write_run_metadata(&self, meta: &RunMetadata) -> io::Result<()> {
        let dir = self.run_dir(meta.index)?;
        let json = serde_json::to_string_pretty(meta).expect("metadata serializes");
        fs::write(dir.join("metadata.json"), json)?;
        let yaml = serde_yaml::to_string(&meta.params).expect("params serialize");
        fs::write(dir.join("loop-params.yml"), yaml)
    }

    /// Writes one captured output artifact of a run.
    pub fn write_run_output(
        &self,
        index: usize,
        role: &str,
        stdout: &str,
        stderr: &str,
        exit_code: i32,
    ) -> io::Result<()> {
        let dir = self.run_dir(index)?;
        fs::write(dir.join(format!("{role}_measurement.log")), stdout)?;
        if !stderr.is_empty() {
            fs::write(dir.join(format!("{role}_measurement.err")), stderr)?;
        }
        fs::write(
            dir.join(format!("{role}_measurement.status")),
            format!("{exit_code}\n"),
        )
    }

    /// Lists run directories in index order.
    pub fn list_runs(&self) -> io::Result<Vec<PathBuf>> {
        let mut runs: Vec<PathBuf> = fs::read_dir(&self.dir)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| {
                p.is_dir()
                    && p.file_name()
                        .and_then(|n| n.to_str())
                        .map(|n| n.starts_with("run-"))
                        .unwrap_or(false)
            })
            .collect();
        runs.sort();
        Ok(runs)
    }

    /// Loads the metadata of a run directory.
    pub fn read_run_metadata(run_dir: &Path) -> io::Result<RunMetadata> {
        let text = fs::read_to_string(run_dir.join("metadata.json"))?;
        serde_json::from_str(&text).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }
}

/// Builds a [`RunMetadata`] from run parameters and timing.
pub fn run_metadata(
    params: &RunParams,
    started: SimTime,
    finished: SimTime,
    attempts: u32,
    success: bool,
    hosts: BTreeMap<String, String>,
) -> RunMetadata {
    RunMetadata {
        index: params.index,
        label: params.label(),
        params: params
            .values
            .iter()
            .map(|(k, v)| (k.clone(), v.render()))
            .collect(),
        started_ns: started.as_nanos(),
        finished_ns: finished.as_nanos(),
        attempts,
        success,
        hosts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vars::VarValue;

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("pos-test-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn params() -> RunParams {
        let mut values = BTreeMap::new();
        values.insert("pkt_sz".to_string(), VarValue::Int(64));
        values.insert("pkt_rate".to_string(), VarValue::Int(10_000));
        RunParams { index: 3, values }
    }

    #[test]
    fn create_builds_nested_unique_dirs() {
        let root = tmpdir("create");
        let a = ResultStore::create(&root, "alice", "router", SimTime::from_secs(100)).unwrap();
        let b = ResultStore::create(&root, "alice", "router", SimTime::from_secs(100)).unwrap();
        assert_ne!(a.dir(), b.dir(), "same timestamp must not collide");
        assert!(a.dir().starts_with(root.join("alice").join("router")));
        assert!(a.dir().to_str().unwrap().contains("vt-0000000100"));
    }

    #[test]
    fn write_read_roundtrip_with_subdirs() {
        let root = tmpdir("rw");
        let store = ResultStore::create(&root, "u", "e", SimTime::ZERO).unwrap();
        store.write("experiment/dut/setup.sh", "sysctl -w x=1\n").unwrap();
        assert_eq!(
            store.read_text("experiment/dut/setup.sh").unwrap(),
            "sysctl -w x=1\n"
        );
        assert!(store.read("missing").is_err());
    }

    #[test]
    fn run_metadata_roundtrip() {
        let root = tmpdir("meta");
        let store = ResultStore::create(&root, "u", "e", SimTime::ZERO).unwrap();
        let mut hosts = BTreeMap::new();
        hosts.insert("dut".to_string(), "vtartu".to_string());
        let meta = run_metadata(
            &params(),
            SimTime::from_secs(10),
            SimTime::from_secs(25),
            2,
            true,
            hosts,
        );
        store.write_run_metadata(&meta).unwrap();
        let runs = store.list_runs().unwrap();
        assert_eq!(runs.len(), 1);
        assert!(runs[0].ends_with("run-0003"));
        let back = ResultStore::read_run_metadata(&runs[0]).unwrap();
        assert_eq!(back, meta);
        assert_eq!(back.params["pkt_sz"], "64");
        assert_eq!(back.label, "pkt_rate=10000,pkt_sz=64");
        // The YAML view exists too.
        let yaml = fs::read_to_string(runs[0].join("loop-params.yml")).unwrap();
        assert!(yaml.contains("pkt_sz: '64'") || yaml.contains("pkt_sz: \"64\"") || yaml.contains("pkt_sz: 64"));
    }

    #[test]
    fn run_outputs_written_per_role() {
        let root = tmpdir("outputs");
        let store = ResultStore::create(&root, "u", "e", SimTime::ZERO).unwrap();
        store
            .write_run_output(0, "loadgen", "TX: 100 packets\n", "", 0)
            .unwrap();
        store
            .write_run_output(0, "dut", "", "oops\n", 1)
            .unwrap();
        let dir = store.run_dir(0).unwrap();
        assert!(dir.join("loadgen_measurement.log").exists());
        assert!(
            !dir.join("loadgen_measurement.err").exists(),
            "empty stderr writes no file"
        );
        assert!(dir.join("dut_measurement.err").exists());
        assert_eq!(
            fs::read_to_string(dir.join("dut_measurement.status")).unwrap(),
            "1\n"
        );
    }

    #[test]
    fn list_runs_sorted_and_filtered() {
        let root = tmpdir("list");
        let store = ResultStore::create(&root, "u", "e", SimTime::ZERO).unwrap();
        for i in [5usize, 0, 11] {
            store.run_dir(i).unwrap();
        }
        store.write("hardware/h.txt", "x").unwrap(); // non-run dir ignored
        let runs = store.list_runs().unwrap();
        let names: Vec<String> = runs
            .iter()
            .map(|p| p.file_name().unwrap().to_str().unwrap().to_owned())
            .collect();
        assert_eq!(names, vec!["run-0000", "run-0005", "run-0011"]);
    }
}
