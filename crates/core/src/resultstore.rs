//! The structured on-disk result tree.
//!
//! §4.4: *"This enforced central collection of artifacts, including the
//! output of the utility tools, executed scripts, variables, device
//! hardware and topology information, guarantees publishability (R5)."*
//! and: *"pos creates separate result files for each measurement run.
//! Additionally, pos creates metadata for each run, i.e., the loop
//! parameters of a specific run."*
//!
//! Layout (mirrors `/srv/testbed/results/user/default/[timestamp]/` from
//! Appendix A):
//!
//! ```text
//! <root>/<user>/<experiment>/<vt-timestamp>/
//!   experiment/                 # the publishable inputs
//!     experiment.yml
//!     global-variables.yml
//!     loop-variables.yml
//!     <role>/setup.sh  <role>/measurement.sh  <role>/local-variables.yml
//!   hardware/<host>.txt         # captured device information
//!   topology.txt
//!   controller.log
//!   journal.log                 # append-only campaign journal
//!   run-0000/
//!     metadata.json             # RunMetadata
//!     loop-params.yml
//!     <role>_measurement.log    # captured stdout
//!     <role>_measurement.err    # captured stderr (if any)
//!     <role>_measurement.status # exit code
//!     checksums.json            # per-file SHA-256 manifest, written last
//! ```
//!
//! ## Crash consistency
//!
//! Every artifact is written atomically: to a temporary sibling first,
//! fsynced, then renamed over the target (and the directory entry synced).
//! A reader therefore never observes a half-written file — after a crash
//! an artifact either exists with complete content or not at all.
//!
//! A run becomes *durable* when its `checksums.json` manifest lands: the
//! manifest names every artifact of the run with its SHA-256, and the
//! SHA-256 of the manifest bytes themselves (the *run digest*) is what the
//! campaign journal records in `RunCompleted`. Verification is therefore
//! two-level: journal digest → manifest bytes → per-file hashes.

use crate::hash::sha256_hex;
use crate::loopvars::RunParams;
use crate::vfs::Vfs;
use pos_simkernel::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Name of the per-run checksum manifest.
pub const MANIFEST_FILE: &str = "checksums.json";

/// Atomically writes `contents` to `path`: temp sibling → fsync → rename
/// → parent directory fsync. Readers never see partial content; a crash
/// leaves either the old file or the new one.
///
/// Convenience wrapper over [`Vfs::atomic_write`] on the real VFS, for
/// callers outside a campaign (reports, ledgers) that still want the
/// same durability discipline.
pub fn atomic_write(path: &Path, contents: &[u8]) -> io::Result<()> {
    Vfs::real().atomic_write(path, contents)
}

/// Serializes a value as pretty JSON, surfacing failure as a typed
/// [`io::Error`] instead of aborting the process.
fn to_json_pretty<T: Serialize>(value: &T) -> io::Result<String> {
    serde_json::to_string_pretty(value).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

/// Deterministic digest of an artifact subtree.
///
/// Every regular file under `dir` — journal files (`journal*`) excluded,
/// because they record *how* a tree was produced, not *what* it holds —
/// contributes `rel-path NUL length NUL bytes` to one SHA-256, in
/// lexicographic relative-path order. Two subtrees digest equal exactly
/// when their canonical artifacts are byte-identical, which is what the
/// DAG journal's `NodeFinished` records and `pos dag resume` verify.
pub fn tree_digest(dir: &Path) -> io::Result<String> {
    fn walk(root: &Path, dir: &Path, hash: &mut crate::hash::Sha256) -> io::Result<()> {
        let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
            .map(|e| e.map(|e| e.path()))
            .collect::<io::Result<_>>()?;
        entries.sort();
        for path in entries {
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if path.is_dir() {
                walk(root, &path, hash)?;
            } else if !name.starts_with("journal") {
                let rel = path
                    .strip_prefix(root)
                    .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
                let bytes = fs::read(&path)?;
                hash.update(rel.to_string_lossy().as_bytes());
                hash.update(&[0]);
                hash.update(&(bytes.len() as u64).to_be_bytes());
                hash.update(&[0]);
                hash.update(&bytes);
            }
        }
        Ok(())
    }
    let mut hash = crate::hash::Sha256::new();
    walk(dir, dir, &mut hash)?;
    let mut out = String::with_capacity(64);
    for b in hash.finalize() {
        out.push_str(&format!("{b:02x}"));
    }
    Ok(out)
}

/// Per-run metadata, serialized as `metadata.json`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunMetadata {
    /// Zero-based run index in cross-product order.
    pub index: usize,
    /// Compact `k=v,...` label of the loop parameters.
    pub label: String,
    /// Loop parameter values, rendered as strings.
    pub params: BTreeMap<String, String>,
    /// Virtual start time of the run, nanoseconds.
    pub started_ns: u64,
    /// Virtual end time of the run, nanoseconds.
    pub finished_ns: u64,
    /// How many attempts the run took (1 = first try).
    pub attempts: u32,
    /// Whether the final attempt succeeded.
    pub success: bool,
    /// role -> host assignment.
    pub hosts: BTreeMap<String, String>,
}

/// The per-run checksum manifest (`checksums.json`): file name → SHA-256.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunManifest {
    /// Every artifact of the run (except the manifest itself), hex SHA-256.
    pub files: BTreeMap<String, String>,
}

/// Result of checking a run directory against its manifest.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunVerification {
    /// Files the manifest lists that are absent on disk.
    pub missing: Vec<String>,
    /// Files whose content no longer matches the manifest hash.
    pub corrupt: Vec<String>,
    /// Files on disk the manifest does not know about.
    pub extra: Vec<String>,
}

impl RunVerification {
    /// True when the run directory matches its manifest exactly.
    pub fn is_clean(&self) -> bool {
        self.missing.is_empty() && self.corrupt.is_empty() && self.extra.is_empty()
    }
}

/// Result of scanning the run directories of a result tree.
#[derive(Debug, Default)]
pub struct RunScan {
    /// Runs with readable metadata, in index order.
    pub runs: Vec<(PathBuf, RunMetadata)>,
    /// One line per run directory that was skipped (missing or unreadable
    /// metadata) — surfaced so degraded trees evaluate loudly, not not at
    /// all.
    pub diagnostics: Vec<String>,
}

/// A handle to one experiment's result directory.
#[derive(Debug, Clone)]
pub struct ResultStore {
    dir: PathBuf,
    vfs: Vfs,
}

impl ResultStore {
    /// Creates the directory for a new experiment execution under
    /// `root/user/experiment/vt-<seconds>`; appends `-N` on collision so
    /// re-running the same experiment never overwrites previous results.
    pub fn create(
        root: &Path,
        user: &str,
        experiment: &str,
        started: SimTime,
    ) -> io::Result<ResultStore> {
        let base = root
            .join(user)
            .join(experiment)
            .join(format!("vt-{:010}", started.as_nanos() / 1_000_000_000));
        let mut dir = base.clone();
        let mut n = 0;
        while dir.exists() {
            n += 1;
            dir = PathBuf::from(format!("{}-{n}", base.display()));
        }
        fs::create_dir_all(&dir)?;
        Ok(ResultStore {
            dir,
            vfs: Vfs::real(),
        })
    }

    /// Opens an existing experiment directory (for evaluation/publishing).
    pub fn open(dir: impl Into<PathBuf>) -> ResultStore {
        ResultStore {
            dir: dir.into(),
            vfs: Vfs::real(),
        }
    }

    /// Routes this store's durable writes through `vfs`, so injected
    /// storage faults hit result artifacts the same way they hit the
    /// journal.
    pub fn with_vfs(mut self, vfs: Vfs) -> ResultStore {
        self.vfs = vfs;
        self
    }

    /// The experiment directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Atomically writes a file relative to the experiment directory,
    /// creating parent directories as needed.
    pub fn write(&self, rel: &str, contents: impl AsRef<[u8]>) -> io::Result<()> {
        self.vfs
            .atomic_write(&self.dir.join(rel), contents.as_ref())
    }

    /// Reads a file relative to the experiment directory.
    pub fn read(&self, rel: &str) -> io::Result<Vec<u8>> {
        fs::read(self.dir.join(rel))
    }

    /// Reads a file as UTF-8 text.
    pub fn read_text(&self, rel: &str) -> io::Result<String> {
        fs::read_to_string(self.dir.join(rel))
    }

    /// Directory of run `index` (`run-0000` style), created on demand.
    pub fn run_dir(&self, index: usize) -> io::Result<PathBuf> {
        let dir = self.dir.join(format!("run-{index:04}"));
        fs::create_dir_all(&dir)?;
        Ok(dir)
    }

    /// Removes run `index`'s directory and everything in it. Resume uses
    /// this to clear partial artifacts of an interrupted run before
    /// re-executing it, so convergence does not depend on what exactly the
    /// crash left behind.
    pub fn wipe_run(&self, index: usize) -> io::Result<()> {
        let dir = self.dir.join(format!("run-{index:04}"));
        match fs::remove_dir_all(&dir) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e),
        }
    }

    /// Writes an arbitrary artifact into run `index`'s directory
    /// (collected `/srv/results/` files, pcap dumps, ...).
    pub fn write_run_file(
        &self,
        index: usize,
        name: &str,
        contents: impl AsRef<[u8]>,
    ) -> io::Result<()> {
        let dir = self.run_dir(index)?;
        self.vfs.atomic_write(&dir.join(name), contents.as_ref())
    }

    /// Writes a run's metadata (both JSON and the YAML loop-params view).
    pub fn write_run_metadata(&self, meta: &RunMetadata) -> io::Result<()> {
        let dir = self.run_dir(meta.index)?;
        let json = to_json_pretty(meta)?;
        self.vfs
            .atomic_write(&dir.join("metadata.json"), json.as_bytes())?;
        let yaml = serde_yaml::to_string(&meta.params)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        self.vfs
            .atomic_write(&dir.join("loop-params.yml"), yaml.as_bytes())
    }

    /// Writes one captured output artifact of a run.
    pub fn write_run_output(
        &self,
        index: usize,
        role: &str,
        stdout: &str,
        stderr: &str,
        exit_code: i32,
    ) -> io::Result<()> {
        let dir = self.run_dir(index)?;
        self.vfs.atomic_write(
            &dir.join(format!("{role}_measurement.log")),
            stdout.as_bytes(),
        )?;
        if !stderr.is_empty() {
            self.vfs.atomic_write(
                &dir.join(format!("{role}_measurement.err")),
                stderr.as_bytes(),
            )?;
        }
        self.vfs.atomic_write(
            &dir.join(format!("{role}_measurement.status")),
            format!("{exit_code}\n").as_bytes(),
        )
    }

    /// Seals run `index`: hashes every artifact in its directory into
    /// `checksums.json` (written atomically, last) and returns the *run
    /// digest* — the SHA-256 of the manifest bytes. The digest goes into
    /// the campaign journal's `RunCompleted` record; a run without a
    /// manifest is by definition incomplete.
    pub fn finalize_run(&self, index: usize) -> io::Result<String> {
        let dir = self.run_dir(index)?;
        let mut files = BTreeMap::new();
        for entry in fs::read_dir(&dir)? {
            let entry = entry?;
            let name = entry.file_name().to_string_lossy().into_owned();
            if name == MANIFEST_FILE || !entry.file_type()?.is_file() {
                continue;
            }
            files.insert(name, sha256_hex(&fs::read(entry.path())?));
        }
        let manifest = RunManifest { files };
        let json = to_json_pretty(&manifest)?;
        self.vfs
            .atomic_write(&dir.join(MANIFEST_FILE), json.as_bytes())?;
        Ok(sha256_hex(json.as_bytes()))
    }

    /// The run digest of an already-sealed run directory (SHA-256 of its
    /// manifest bytes). Errors if the manifest is missing.
    pub fn run_digest(run_dir: &Path) -> io::Result<String> {
        Ok(sha256_hex(&fs::read(run_dir.join(MANIFEST_FILE))?))
    }

    /// Checks a sealed run directory against its manifest: every listed
    /// file present and byte-identical, no unlisted files. Errors only if
    /// the manifest itself is missing or unparseable.
    pub fn verify_run(run_dir: &Path) -> io::Result<RunVerification> {
        let text = fs::read_to_string(run_dir.join(MANIFEST_FILE))?;
        let manifest: RunManifest = serde_json::from_str(&text)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        let mut v = RunVerification::default();
        for (name, want) in &manifest.files {
            match fs::read(run_dir.join(name)) {
                Ok(bytes) => {
                    if &sha256_hex(&bytes) != want {
                        v.corrupt.push(name.clone());
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::NotFound => v.missing.push(name.clone()),
                Err(e) => return Err(e),
            }
        }
        for entry in fs::read_dir(run_dir)? {
            let entry = entry?;
            let name = entry.file_name().to_string_lossy().into_owned();
            if name != MANIFEST_FILE
                && entry.file_type()?.is_file()
                && !manifest.files.contains_key(&name)
            {
                v.extra.push(name);
            }
        }
        v.extra.sort();
        Ok(v)
    }

    /// Lists run directories in index order.
    pub fn list_runs(&self) -> io::Result<Vec<PathBuf>> {
        let mut runs: Vec<PathBuf> = fs::read_dir(&self.dir)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| {
                p.is_dir()
                    && p.file_name()
                        .and_then(|n| n.to_str())
                        .map(|n| n.starts_with("run-"))
                        .unwrap_or(false)
            })
            .collect();
        runs.sort();
        Ok(runs)
    }

    /// Scans all run directories, loading metadata where possible and
    /// collecting a diagnostic line for every directory that had to be
    /// skipped (no metadata, unparseable metadata). A partially-written
    /// or corrupted tree thus still evaluates — degraded and loud — which
    /// is what an interrupted campaign leaves behind before `pos resume`
    /// repairs it.
    pub fn scan_runs(&self) -> io::Result<RunScan> {
        let mut scan = RunScan::default();
        for dir in self.list_runs()? {
            match Self::read_run_metadata(&dir) {
                Ok(meta) => scan.runs.push((dir, meta)),
                Err(e) => scan.diagnostics.push(format!(
                    "{}: skipped ({e})",
                    dir.file_name()
                        .map(|n| n.to_string_lossy().into_owned())
                        .unwrap_or_else(|| dir.display().to_string())
                )),
            }
        }
        Ok(scan)
    }

    /// Loads the metadata of a run directory.
    pub fn read_run_metadata(run_dir: &Path) -> io::Result<RunMetadata> {
        let text = fs::read_to_string(run_dir.join("metadata.json"))?;
        serde_json::from_str(&text).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }
}

/// Builds a [`RunMetadata`] from run parameters and timing.
pub fn run_metadata(
    params: &RunParams,
    started: SimTime,
    finished: SimTime,
    attempts: u32,
    success: bool,
    hosts: BTreeMap<String, String>,
) -> RunMetadata {
    RunMetadata {
        index: params.index,
        label: params.label(),
        params: params
            .values
            .iter()
            .map(|(k, v)| (k.clone(), v.render()))
            .collect(),
        started_ns: started.as_nanos(),
        finished_ns: finished.as_nanos(),
        attempts,
        success,
        hosts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vars::VarValue;

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("pos-test-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn params() -> RunParams {
        let mut values = BTreeMap::new();
        values.insert("pkt_sz".to_string(), VarValue::Int(64));
        values.insert("pkt_rate".to_string(), VarValue::Int(10_000));
        RunParams { index: 3, values }
    }

    #[test]
    fn create_builds_nested_unique_dirs() {
        let root = tmpdir("create");
        let a = ResultStore::create(&root, "alice", "router", SimTime::from_secs(100)).unwrap();
        let b = ResultStore::create(&root, "alice", "router", SimTime::from_secs(100)).unwrap();
        assert_ne!(a.dir(), b.dir(), "same timestamp must not collide");
        assert!(a.dir().starts_with(root.join("alice").join("router")));
        assert!(a.dir().to_str().unwrap().contains("vt-0000000100"));
    }

    #[test]
    fn write_read_roundtrip_with_subdirs() {
        let root = tmpdir("rw");
        let store = ResultStore::create(&root, "u", "e", SimTime::ZERO).unwrap();
        store
            .write("experiment/dut/setup.sh", "sysctl -w x=1\n")
            .unwrap();
        assert_eq!(
            store.read_text("experiment/dut/setup.sh").unwrap(),
            "sysctl -w x=1\n"
        );
        assert!(store.read("missing").is_err());
    }

    #[test]
    fn atomic_write_replaces_and_leaves_no_temp() {
        let root = tmpdir("atomic");
        let path = root.join("artifact.txt");
        atomic_write(&path, b"v1").unwrap();
        atomic_write(&path, b"v2").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"v2");
        let leftovers: Vec<_> = fs::read_dir(&root)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().ends_with(".tmp"))
            .collect();
        assert!(leftovers.is_empty(), "temp files must not survive");
    }

    #[test]
    fn run_metadata_roundtrip() {
        let root = tmpdir("meta");
        let store = ResultStore::create(&root, "u", "e", SimTime::ZERO).unwrap();
        let mut hosts = BTreeMap::new();
        hosts.insert("dut".to_string(), "vtartu".to_string());
        let meta = run_metadata(
            &params(),
            SimTime::from_secs(10),
            SimTime::from_secs(25),
            2,
            true,
            hosts,
        );
        store.write_run_metadata(&meta).unwrap();
        let runs = store.list_runs().unwrap();
        assert_eq!(runs.len(), 1);
        assert!(runs[0].ends_with("run-0003"));
        let back = ResultStore::read_run_metadata(&runs[0]).unwrap();
        assert_eq!(back, meta);
        assert_eq!(back.params["pkt_sz"], "64");
        assert_eq!(back.label, "pkt_rate=10000,pkt_sz=64");
        // The YAML view exists too.
        let yaml = fs::read_to_string(runs[0].join("loop-params.yml")).unwrap();
        assert!(
            yaml.contains("pkt_sz: '64'")
                || yaml.contains("pkt_sz: \"64\"")
                || yaml.contains("pkt_sz: 64")
        );
    }

    #[test]
    fn run_outputs_written_per_role() {
        let root = tmpdir("outputs");
        let store = ResultStore::create(&root, "u", "e", SimTime::ZERO).unwrap();
        store
            .write_run_output(0, "loadgen", "TX: 100 packets\n", "", 0)
            .unwrap();
        store.write_run_output(0, "dut", "", "oops\n", 1).unwrap();
        let dir = store.run_dir(0).unwrap();
        assert!(dir.join("loadgen_measurement.log").exists());
        assert!(
            !dir.join("loadgen_measurement.err").exists(),
            "empty stderr writes no file"
        );
        assert!(dir.join("dut_measurement.err").exists());
        assert_eq!(
            fs::read_to_string(dir.join("dut_measurement.status")).unwrap(),
            "1\n"
        );
    }

    #[test]
    fn list_runs_sorted_and_filtered() {
        let root = tmpdir("list");
        let store = ResultStore::create(&root, "u", "e", SimTime::ZERO).unwrap();
        for i in [5usize, 0, 11] {
            store.run_dir(i).unwrap();
        }
        store.write("hardware/h.txt", "x").unwrap(); // non-run dir ignored
        let runs = store.list_runs().unwrap();
        let names: Vec<String> = runs
            .iter()
            .map(|p| p.file_name().unwrap().to_str().unwrap().to_owned())
            .collect();
        assert_eq!(names, vec!["run-0000", "run-0005", "run-0011"]);
    }

    #[test]
    fn finalize_then_verify_clean() {
        let root = tmpdir("seal");
        let store = ResultStore::create(&root, "u", "e", SimTime::ZERO).unwrap();
        store
            .write_run_output(0, "loadgen", "RX: 5 packets\n", "", 0)
            .unwrap();
        let digest = store.finalize_run(0).unwrap();
        assert_eq!(digest.len(), 64);
        let dir = store.run_dir(0).unwrap();
        assert_eq!(ResultStore::run_digest(&dir).unwrap(), digest);
        let v = ResultStore::verify_run(&dir).unwrap();
        assert!(v.is_clean(), "{v:?}");
        // Sealing twice is idempotent: same digest.
        assert_eq!(store.finalize_run(0).unwrap(), digest);
    }

    #[test]
    fn verify_detects_missing_corrupt_and_extra() {
        let root = tmpdir("verify");
        let store = ResultStore::create(&root, "u", "e", SimTime::ZERO).unwrap();
        store
            .write_run_output(0, "loadgen", "RX: 5 packets\n", "", 0)
            .unwrap();
        store
            .write_run_file(0, "dut_capture.pcap", b"pcap")
            .unwrap();
        store.finalize_run(0).unwrap();
        let dir = store.run_dir(0).unwrap();
        // Flip one byte, remove one file, add one file.
        let target = dir.join("loadgen_measurement.log");
        let mut bytes = fs::read(&target).unwrap();
        bytes[0] ^= 0x01;
        fs::write(&target, bytes).unwrap();
        fs::remove_file(dir.join("dut_capture.pcap")).unwrap();
        fs::write(dir.join("stray.txt"), "x").unwrap();
        let v = ResultStore::verify_run(&dir).unwrap();
        assert_eq!(v.corrupt, vec!["loadgen_measurement.log"]);
        assert_eq!(v.missing, vec!["dut_capture.pcap"]);
        assert_eq!(v.extra, vec!["stray.txt"]);
        assert!(!v.is_clean());
    }

    #[test]
    fn scan_runs_skips_and_reports_corrupt_dirs() {
        let root = tmpdir("scan");
        let store = ResultStore::create(&root, "u", "e", SimTime::ZERO).unwrap();
        let meta = run_metadata(
            &params(),
            SimTime::ZERO,
            SimTime::from_secs(1),
            1,
            true,
            BTreeMap::new(),
        );
        store.write_run_metadata(&meta).unwrap();
        // run-0000: no metadata at all; run-0001: garbage metadata.
        store.run_dir(0).unwrap();
        store.write("run-0001/metadata.json", "{not json").unwrap();
        let scan = store.scan_runs().unwrap();
        assert_eq!(scan.runs.len(), 1);
        assert_eq!(scan.runs[0].1.index, 3);
        assert_eq!(scan.diagnostics.len(), 2, "{:?}", scan.diagnostics);
        assert!(scan.diagnostics[0].starts_with("run-0000"));
        assert!(scan.diagnostics[1].starts_with("run-0001"));
    }

    #[test]
    fn wipe_run_removes_dir_and_tolerates_absence() {
        let root = tmpdir("wipe");
        let store = ResultStore::create(&root, "u", "e", SimTime::ZERO).unwrap();
        store.write_run_output(2, "dut", "x", "", 0).unwrap();
        let dir = root.join("u/e/vt-0000000000/run-0002");
        assert!(dir.exists());
        store.wipe_run(2).unwrap();
        assert!(!dir.exists());
        store.wipe_run(2).unwrap(); // idempotent
    }
}
