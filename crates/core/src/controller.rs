//! The pos experiment controller: the §4.4 workflow.
//!
//! ```text
//! setup phase        allocate → load variables → set images/boot params →
//!                    reboot (out of band) → deploy tools → setup scripts
//! measurement phase  for every loop-variable combination (queued one
//!                    after another): measurement scripts, output captured
//! evaluation phase   handled by pos-eval on the written result tree
//! ```
//!
//! Concurrency model: all experiment hosts execute their script segments
//! *in parallel* between named barriers. The controller replays each
//! host's segment in its own time lane (see [`Testbed::set_now`]) and
//! completes the barrier at the latest lane end.
//!
//! Recovery (R3): a host that stops answering in-band is re-initialized
//! out of band (reset, or power-cycle for plugs), its live image rebooted,
//! tools redeployed, and its setup script re-run; the interrupted
//! measurement run is then retried from scratch.
//!
//! Hardening: every in-band command runs under a watchdog
//! ([`RunOptions::command_timeout`]), every out-of-band retry waits out a
//! deterministic exponential backoff, and every host moves through an
//! explicit health state machine ([`HostHealth`]) — a host whose recovery
//! keeps failing is *quarantined* and, with
//! [`RunOptions::continue_on_run_failure`], the sweep degrades gracefully
//! instead of aborting: affected runs are recorded as structured failures
//! and the rest of the cross product still executes. Chaos campaigns
//! ([`pos_netsim::ChaosPlan`]) exercise all of this deterministically via
//! [`Controller::apply_chaos`].

use crate::experiment::{ExperimentSpec, SpecError};
use crate::journal::{Journal, JournalError, JournalRecord, JOURNAL_FILE};
use crate::loopvars::{cross_product_size, expand_cross_product, RunParams};
use crate::resultstore::{run_metadata, ResultStore};
use crate::script::Step;
use crate::vars::Variables;
use crate::vfs::Vfs;
use pos_netsim::{ChaosEvent, ChaosPlan};
use pos_simkernel::{Backoff, SimDuration, SimTime, TraceLevel};
use pos_testbed::{CommandResult, ExecError, PowerError, Testbed};
use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// A shared cancellation flag checked at run boundaries.
///
/// `pos serve` hands one of these to every campaign it dispatches; when
/// a drain turns urgent (second SIGTERM) the daemon trips the token and
/// the controller checkpoints at the next journal boundary instead of
/// finishing the campaign — the same consistent-prefix contract as an
/// ENOSPC checkpoint, so `pos resume` completes the campaign later.
/// Cloning shares the flag.
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, untripped token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Trips the token; every campaign holding a clone checkpoints at
    /// its next run boundary.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::SeqCst);
    }

    /// Whether the token has been tripped.
    pub fn is_canceled(&self) -> bool {
        self.0.load(Ordering::SeqCst)
    }
}

/// Options for one experiment execution.
#[derive(Debug, Clone)]
pub struct RunOptions {
    /// Root of the result tree (`/srv/testbed/results` in the paper).
    pub result_root: PathBuf,
    /// Retries per measurement run after a failure or crash.
    pub max_run_retries: u32,
    /// Retries for flaky out-of-band management commands.
    pub max_power_retries: u32,
    /// Keep going and record failed runs instead of aborting.
    pub continue_on_run_failure: bool,
    /// Refuse to start if the cross product exceeds this many runs.
    pub max_runs: usize,
    /// Execute the whole cross product this many times (≥ 1). Repetitions
    /// appear as a synthetic `repetition` loop variable in run metadata,
    /// so the evaluation can aggregate across them (mean ± CI).
    pub repetitions: u32,
    /// Watchdog budget per in-band command; a command that hangs (or runs)
    /// longer is killed and handled like a crashed host. `None` disables
    /// the watchdog.
    pub command_timeout: Option<SimDuration>,
    /// First delay of the exponential retry backoff.
    pub backoff_base: SimDuration,
    /// Upper bound of the exponential retry backoff.
    pub backoff_cap: SimDuration,
    /// Deterministic crash injection for the crash-consistency harness:
    /// the journal append with this zero-based sequence number fails with
    /// an I/O error, aborting the campaign exactly at that record
    /// boundary. `None` disables injection. Like the chaos plans, the
    /// fault is data — the same knob reproduces the same interruption.
    pub journal_crash_after: Option<u64>,
    /// With [`Self::journal_crash_after`] set, the failing append first
    /// writes half of its frame — a *torn write*, the on-disk artifact of
    /// a machine crash mid-`write(2)` rather than a clean process kill.
    pub journal_torn_write: bool,
    /// Testbed flavor label journaled in `CampaignStarted` (`"pos"` or
    /// `"vpos"`). A resume refuses a flavor mismatch: the flavors boot
    /// differently, so the wrong one cannot replay the recorded timeline.
    pub testbed_flavor: String,
    /// The durable-I/O layer every journal append and result-store write
    /// of the campaign goes through. [`Vfs::real`] by default; a
    /// [`Vfs::faulty`] handle turns disk failures (ENOSPC, torn writes,
    /// failing fsyncs) into deterministic, replayable inputs.
    pub vfs: Vfs,
    /// Cooperative cancellation, checked before each run executes. When
    /// tripped, the campaign stops at the current journal boundary with
    /// [`ControllerError::Canceled`] — a checkpoint, not a failure: the
    /// journaled prefix is consistent and resume completes the campaign.
    pub cancel: CancelToken,
}

impl RunOptions {
    /// Defaults rooted at the given directory.
    pub fn new(result_root: impl Into<PathBuf>) -> RunOptions {
        RunOptions {
            result_root: result_root.into(),
            max_run_retries: 2,
            max_power_retries: 5,
            continue_on_run_failure: false,
            max_runs: crate::loopvars::RUN_COUNT_WARNING_THRESHOLD,
            repetitions: 1,
            // An hour of virtual time: far beyond any sane command in the
            // case study, so only genuine hangs trip it.
            command_timeout: Some(SimDuration::from_hours(1)),
            backoff_base: SimDuration::from_millis(500),
            backoff_cap: SimDuration::from_secs(64),
            journal_crash_after: None,
            journal_torn_write: false,
            testbed_flavor: "pos".into(),
            vfs: Vfs::real(),
            cancel: CancelToken::new(),
        }
    }
}

/// Progress callback events (the paper's progress bar).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Progress {
    /// A host finished booting.
    HostReady {
        /// The booted host.
        host: String,
    },
    /// The setup phase completed.
    SetupDone,
    /// A measurement run finished.
    RunDone {
        /// Zero-based index.
        index: usize,
        /// Total number of runs.
        total: usize,
        /// Whether the run succeeded.
        success: bool,
        /// The run's result directory — complete at this point, so an
        /// asynchronous evaluation (§4.4: "either after all runs have been
        /// completed or asynchronously during their runtime") can process
        /// it while the next run executes.
        dir: PathBuf,
    },
    /// Resume verified a run completed by an earlier session (artifacts
    /// match their journaled digest) and skipped re-executing it.
    RunSkipped {
        /// Zero-based index.
        index: usize,
        /// Total number of runs.
        total: usize,
    },
    /// A flaky out-of-band power command is being retried after a backoff.
    PowerRetry {
        /// The host being power-managed.
        host: String,
        /// Retry number (1-based).
        attempt: u32,
        /// Backoff delay waited before this retry.
        delay: SimDuration,
    },
    /// A failed measurement attempt is being retried after a backoff.
    RunRetry {
        /// The run's zero-based index.
        index: usize,
        /// The attempt that just failed (1-based).
        attempt: u32,
        /// Backoff delay waited before the next attempt.
        delay: SimDuration,
    },
    /// A host stopped responding and out-of-band recovery started.
    HostRecovering {
        /// The suspect host.
        host: String,
    },
    /// A host completed recovery (rebooted, tools redeployed, setup re-run).
    HostRecovered {
        /// The recovered host.
        host: String,
    },
    /// A host's recovery failed beyond the retry budget; it is out of the
    /// experiment and every run depending on it fails fast.
    HostQuarantined {
        /// The quarantined host.
        host: String,
    },
}

/// Lock-free accumulator bridging [`Progress`] events into counters a
/// concurrent observer can snapshot.
///
/// The controller's progress callback runs on the campaign's thread; a
/// daemon serving `GET /status` must read progress from another thread
/// without stalling the campaign. The bridge: hand the campaign a
/// closure over an `Arc<ProgressCounters>` that calls [`observe`], and
/// let the status endpoint call [`snapshot`] whenever it likes — every
/// field is a relaxed atomic, so neither side blocks the other.
///
/// [`observe`]: ProgressCounters::observe
/// [`snapshot`]: ProgressCounters::snapshot
#[derive(Debug, Default)]
pub struct ProgressCounters {
    hosts_ready: AtomicU64,
    setups_done: AtomicU64,
    runs_done: AtomicU64,
    runs_failed: AtomicU64,
    runs_skipped: AtomicU64,
    power_retries: AtomicU64,
    run_retries: AtomicU64,
    recoveries_started: AtomicU64,
    recoveries_completed: AtomicU64,
    hosts_quarantined: AtomicU64,
}

/// One coherent-enough reading of a [`ProgressCounters`] accumulator.
///
/// Serializable so a daemon can embed it verbatim in a status response.
#[derive(Debug, Clone, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct ProgressSnapshot {
    /// Hosts that finished booting.
    pub hosts_ready: u64,
    /// Setup phases completed.
    pub setups_done: u64,
    /// Measurement runs finished (success or failure).
    pub runs_done: u64,
    /// Measurement runs that finished failed.
    pub runs_failed: u64,
    /// Resume-verified runs skipped without re-execution.
    pub runs_skipped: u64,
    /// Out-of-band power command retries.
    pub power_retries: u64,
    /// Failed measurement attempts retried after a backoff.
    pub run_retries: u64,
    /// Host recoveries started.
    pub recoveries_started: u64,
    /// Host recoveries completed.
    pub recoveries_completed: u64,
    /// Hosts quarantined past their recovery budget.
    pub hosts_quarantined: u64,
}

impl ProgressCounters {
    /// A zeroed accumulator.
    pub fn new() -> ProgressCounters {
        ProgressCounters::default()
    }

    /// Folds one progress event into the counters.
    pub fn observe(&self, event: &Progress) {
        let bump = |c: &AtomicU64| {
            c.fetch_add(1, Ordering::Relaxed);
        };
        match event {
            Progress::HostReady { .. } => bump(&self.hosts_ready),
            Progress::SetupDone => bump(&self.setups_done),
            Progress::RunDone { success, .. } => {
                bump(&self.runs_done);
                if !success {
                    bump(&self.runs_failed);
                }
            }
            Progress::RunSkipped { .. } => bump(&self.runs_skipped),
            Progress::PowerRetry { .. } => bump(&self.power_retries),
            Progress::RunRetry { .. } => bump(&self.run_retries),
            Progress::HostRecovering { .. } => bump(&self.recoveries_started),
            Progress::HostRecovered { .. } => bump(&self.recoveries_completed),
            Progress::HostQuarantined { .. } => bump(&self.hosts_quarantined),
        }
    }

    /// Reads every counter (relaxed — counters may be mid-update, but
    /// each value is a real count that was current at some instant).
    pub fn snapshot(&self) -> ProgressSnapshot {
        let read = |c: &AtomicU64| c.load(Ordering::Relaxed);
        ProgressSnapshot {
            hosts_ready: read(&self.hosts_ready),
            setups_done: read(&self.setups_done),
            runs_done: read(&self.runs_done),
            runs_failed: read(&self.runs_failed),
            runs_skipped: read(&self.runs_skipped),
            power_retries: read(&self.power_retries),
            run_retries: read(&self.run_retries),
            recoveries_started: read(&self.recoveries_started),
            recoveries_completed: read(&self.recoveries_completed),
            hosts_quarantined: read(&self.hosts_quarantined),
        }
    }
}

/// Controller-side health state of one host.
///
/// ```text
/// Healthy ──(unreachable/timeout)──▶ Suspect ──▶ Reinitializing
///    ▲                                                │     │
///    └──────────────(recovery ok)────────────────────┘     └──(recovery
///                                                               failed)──▶ Quarantined
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HostHealth {
    /// Responding normally.
    Healthy,
    /// Stopped responding; recovery not yet started.
    Suspect,
    /// Out-of-band recovery in progress.
    Reinitializing,
    /// Recovery failed beyond the retry budget; excluded from the
    /// experiment until a human (or a new experiment) intervenes.
    Quarantined,
}

impl fmt::Display for HostHealth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            HostHealth::Healthy => "healthy",
            HostHealth::Suspect => "suspect",
            HostHealth::Reinitializing => "reinitializing",
            HostHealth::Quarantined => "quarantined",
        })
    }
}

/// Record of one executed measurement run.
#[derive(Debug, Clone)]
pub struct RunRecord {
    /// The loop parameters.
    pub params: RunParams,
    /// Captured result per role (stdout of its measurement script).
    pub outputs: BTreeMap<String, CommandResult>,
    /// Attempts used.
    pub attempts: u32,
    /// Final success.
    pub success: bool,
    /// How many out-of-band recoveries this run triggered.
    pub recoveries: u32,
    /// Warn-and-above trace lines captured while this run executed: the
    /// structured fault story of a degraded run (crashes, watchdog kills,
    /// retries, quarantines), preserved even when the sweep continues.
    pub fault_trace: Vec<String>,
}

/// Everything an experiment execution produced.
#[derive(Debug)]
pub struct ExperimentOutcome {
    /// Where the result tree was written.
    pub result_dir: PathBuf,
    /// All runs in cross-product order.
    pub runs: Vec<RunRecord>,
    /// Virtual start of the experiment.
    pub started: SimTime,
    /// Virtual end of the experiment.
    pub finished: SimTime,
    /// Total out-of-band recoveries across all runs.
    pub recoveries: u32,
    /// Indices of runs that exhausted their retry budget (only populated
    /// under [`RunOptions::continue_on_run_failure`]; otherwise the first
    /// such run aborts the experiment).
    pub failed_runs: Vec<usize>,
    /// Hosts quarantined during the experiment, in quarantine order.
    pub quarantined_hosts: Vec<String>,
    /// Runs quarantined as *poison* by a lane supervisor (a run that
    /// killed enough consecutive worker lanes); always a subset of
    /// [`Self::failed_runs`]. Empty for sequential campaigns.
    pub quarantined_runs: Vec<usize>,
    /// Total virtual time spent in out-of-band recovery (from detection to
    /// the host being back in service with its setup re-applied).
    pub total_recovery_time: SimDuration,
}

impl ExperimentOutcome {
    /// Number of successful runs.
    pub fn successes(&self) -> usize {
        self.runs.iter().filter(|r| r.success).count()
    }

    /// A deterministic, line-oriented digest of the outcome. Two runs of
    /// the same experiment with the same seeds (testbed and chaos plan)
    /// produce byte-identical summaries — the repeatability check the
    /// chaos tests pin down.
    pub fn summary(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "runs: {}\nsuccesses: {}\nfailed_runs: {:?}\nrecoveries: {}\n",
            self.runs.len(),
            self.successes(),
            self.failed_runs,
            self.recoveries,
        ));
        s.push_str(&format!(
            "quarantined_hosts: {:?}\nquarantined_runs: {:?}\ntotal_recovery_time_ns: {}\n",
            self.quarantined_hosts,
            self.quarantined_runs,
            self.total_recovery_time.as_nanos(),
        ));
        s.push_str(&format!(
            "started_ns: {}\nfinished_ns: {}\n",
            self.started.as_nanos(),
            self.finished.as_nanos(),
        ));
        for r in &self.runs {
            s.push_str(&format!(
                "run {:04} [{}] attempts={} success={} recoveries={} faults={}\n",
                r.params.index,
                r.params.label(),
                r.attempts,
                r.success,
                r.recoveries,
                r.fault_trace.len(),
            ));
        }
        s
    }
}

/// Why an experiment could not complete.
#[derive(Debug)]
pub enum ControllerError {
    /// The spec failed validation.
    Spec(SpecError),
    /// A role references a host the testbed does not have.
    UnknownHost {
        /// The missing host name.
        host: String,
    },
    /// A role references an image the store does not have.
    UnknownImage {
        /// The image name.
        name: String,
        /// The requested snapshot pin, if any.
        snapshot: Option<String>,
    },
    /// The calendar rejected the allocation.
    Allocation(pos_testbed::ReservationError),
    /// The cross product is too large (the §4.4 warning, enforced).
    TooManyRuns {
        /// Number of runs the expansion would produce.
        runs: usize,
        /// The configured limit.
        limit: usize,
    },
    /// Out-of-band management kept failing.
    PowerFailed {
        /// The unmanageable host.
        host: String,
        /// The final error.
        error: PowerError,
    },
    /// A setup script command failed: the experiment cannot proceed.
    SetupFailed {
        /// The role whose setup failed.
        role: String,
        /// The failing command line.
        command: String,
        /// Its captured result.
        result: CommandResult,
    },
    /// A measurement run failed beyond its retry budget.
    RunFailed {
        /// The failing run's index.
        index: usize,
        /// Attempts consumed.
        attempts: u32,
    },
    /// Talking to a host failed unrecoverably.
    Exec(ExecError),
    /// Result tree I/O failed.
    Io(std::io::Error),
    /// A chaos plan failed validation.
    Chaos {
        /// What the plan validator rejected.
        reason: String,
    },
    /// The campaign journal could not be replayed.
    Journal(JournalError),
    /// A resume request is inconsistent with the journaled campaign
    /// (wrong seed, mutated spec, missing start record, ...).
    Resume {
        /// Why the resume was refused.
        reason: String,
    },
    /// The campaign's [`CancelToken`] was tripped and the controller
    /// checkpointed at a journal boundary. Not a failure: the journaled
    /// prefix is consistent and `pos resume` completes the campaign.
    Canceled {
        /// Runs with durable records when the checkpoint was taken.
        completed_runs: usize,
    },
    /// A testbed could not be constructed from a validated description —
    /// the hosts, wiring, or clone topology is inconsistent.
    Topology {
        /// What failed to wire up.
        reason: String,
    },
}

impl fmt::Display for ControllerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ControllerError::Spec(e) => write!(f, "invalid experiment: {e}"),
            ControllerError::UnknownHost { host } => write!(f, "unknown host {host}"),
            ControllerError::UnknownImage { name, snapshot } => {
                write!(f, "unknown image {name} (snapshot {snapshot:?})")
            }
            ControllerError::Allocation(e) => write!(f, "allocation failed: {e}"),
            ControllerError::TooManyRuns { runs, limit } => write!(
                f,
                "cross product yields {runs} runs, over the limit of {limit} \
                 (exponential growth — prune the loop variables)"
            ),
            ControllerError::PowerFailed { host, error } => {
                write!(f, "power control of {host} failed: {error}")
            }
            ControllerError::SetupFailed {
                role,
                command,
                result,
            } => write!(
                f,
                "setup of {role} failed at `{command}` (exit {}): {}",
                result.exit_code, result.stderr
            ),
            ControllerError::RunFailed { index, attempts } => {
                write!(f, "run {index} failed after {attempts} attempts")
            }
            ControllerError::Exec(e) => write!(f, "execution error: {e}"),
            ControllerError::Io(e) => write!(f, "result store error: {e}"),
            ControllerError::Chaos { reason } => write!(f, "chaos plan rejected: {reason}"),
            ControllerError::Journal(e) => write!(f, "campaign journal error: {e}"),
            ControllerError::Resume { reason } => write!(f, "cannot resume: {reason}"),
            ControllerError::Canceled { completed_runs } => write!(
                f,
                "campaign canceled at a journal boundary after {completed_runs} \
                 durable runs (checkpoint — `pos resume` completes it)"
            ),
            ControllerError::Topology { reason } => {
                write!(f, "testbed construction failed: {reason}")
            }
        }
    }
}

impl std::error::Error for ControllerError {}

impl ControllerError {
    /// True when the campaign stopped because the storage medium filled
    /// up (ENOSPC) — real or injected. The CLI downgrades this from a
    /// hard error to a *degraded* outcome (exit code 3): the write-ahead
    /// journal already checkpointed the campaign at the last consistent
    /// record boundary, so `pos resume` completes it once space returns.
    pub fn is_storage_full(&self) -> bool {
        match self {
            ControllerError::Io(e) => crate::vfs::is_storage_full(e),
            ControllerError::Journal(JournalError::Io(e)) => crate::vfs::is_storage_full(e),
            _ => false,
        }
    }

    /// True when the campaign stopped at a *consistent checkpoint* — a
    /// journal boundary from which `pos resume` completes it — rather
    /// than a genuine failure. Covers both checkpoint causes: storage
    /// full ([`Self::is_storage_full`]) and cooperative cancellation
    /// ([`ControllerError::Canceled`]).
    pub fn is_checkpoint(&self) -> bool {
        self.is_storage_full() || matches!(self, ControllerError::Canceled { .. })
    }
}

impl From<std::io::Error> for ControllerError {
    fn from(e: std::io::Error) -> Self {
        ControllerError::Io(e)
    }
}

/// The controller's handle on its testbed: borrowed in the classic
/// embedded form ([`Controller::new`]), owned when a scheduler gives each
/// worker lane its own long-lived replica ([`Controller::owning`]).
enum TbRef<'t> {
    Borrowed(&'t mut Testbed),
    Owned(Box<Testbed>),
}

impl std::ops::Deref for TbRef<'_> {
    type Target = Testbed;
    fn deref(&self) -> &Testbed {
        match self {
            TbRef::Borrowed(tb) => tb,
            TbRef::Owned(tb) => tb,
        }
    }
}

impl std::ops::DerefMut for TbRef<'_> {
    fn deref_mut(&mut self) -> &mut Testbed {
        match self {
            TbRef::Borrowed(tb) => tb,
            TbRef::Owned(tb) => tb,
        }
    }
}

/// Installed progress callback (the paper's progress bar).
type ProgressFn = Box<dyn FnMut(&Progress)>;

/// The pos controller bound to one testbed.
pub struct Controller<'t> {
    tb: TbRef<'t>,
    progress: Option<ProgressFn>,
    health: BTreeMap<String, HostHealth>,
}

impl<'t> Controller<'t> {
    /// Creates a controller driving `tb`.
    pub fn new(tb: &'t mut Testbed) -> Controller<'t> {
        Controller {
            tb: TbRef::Borrowed(tb),
            progress: None,
            health: BTreeMap::new(),
        }
    }

    /// Creates a controller that *owns* its testbed — the worker-lane
    /// form. A parallel scheduler keeps one owning controller per lane so
    /// lane-local state (virtual clock, host health, trace, management
    /// RNG position) persists across the runs dispatched to that lane.
    pub fn owning(tb: Testbed) -> Controller<'static> {
        Controller {
            tb: TbRef::Owned(Box::new(tb)),
            progress: None,
            health: BTreeMap::new(),
        }
    }

    /// The underlying testbed.
    pub fn testbed(&self) -> &Testbed {
        &self.tb
    }

    /// The underlying testbed, mutably. Schedulers use this to pin a
    /// lane's virtual clock to a run's canonical start instant before
    /// dispatching the run (see `pos-sched`).
    pub fn testbed_mut(&mut self) -> &mut Testbed {
        &mut self.tb
    }

    /// Installs a progress callback.
    pub fn with_progress(mut self, f: impl FnMut(&Progress) + 'static) -> Self {
        self.progress = Some(Box::new(f));
        self
    }

    fn emit(&mut self, p: Progress) {
        if let Some(cb) = self.progress.as_mut() {
            cb(&p);
        }
    }

    /// This controller's view of a host's health.
    pub fn host_health(&self, host: &str) -> HostHealth {
        self.health
            .get(host)
            .copied()
            .unwrap_or(HostHealth::Healthy)
    }

    /// Logs to the testbed trace at the current virtual instant.
    fn log_now(
        &mut self,
        level: TraceLevel,
        component: impl Into<String>,
        message: impl Into<String>,
    ) {
        let now = self.tb.now();
        self.tb.trace.log(now, level, component, message);
    }

    fn set_health(&mut self, host: &str, health: HostHealth) {
        if self.host_health(host) != health {
            self.log_now(
                TraceLevel::Info,
                "controller",
                format!("health: {host} -> {health}"),
            );
        }
        self.health.insert(host.to_owned(), health);
    }

    /// Arms a validated chaos plan on the testbed: crashes and wedges are
    /// scheduled, outage/hang/link-degradation windows declared. The plan
    /// is data — replaying the same plan against the same testbed seed
    /// reproduces the same faults.
    pub fn apply_chaos(&mut self, plan: &ChaosPlan) -> Result<(), ControllerError> {
        plan.validate().map_err(|e| ControllerError::Chaos {
            reason: e.to_string(),
        })?;
        for event in &plan.events {
            match event {
                ChaosEvent::HostCrash { host, at } => self.tb.schedule_crash(host, *at, false),
                ChaosEvent::HostWedge { host, at } => self.tb.schedule_crash(host, *at, true),
                ChaosEvent::PowerOutage { host, from, until } => {
                    self.tb.add_power_fault_window(host, *from, *until)
                }
                ChaosEvent::CommandHang { host, from, until } => {
                    self.tb.add_hang_window(host, *from, *until)
                }
                ChaosEvent::LinkFaults {
                    host,
                    from,
                    until,
                    config,
                } => self.tb.add_link_degradation(
                    host,
                    *from,
                    *until,
                    config.drop_chance,
                    config.corrupt_chance,
                ),
            }
        }
        self.log_now(
            TraceLevel::Info,
            "controller",
            format!(
                "chaos: armed {} events from plan seed {:#x}",
                plan.len(),
                plan.seed
            ),
        );
        Ok(())
    }

    /// A backoff schedule for retries concerning `label`, seeded from the
    /// testbed root seed so the delay sequence replays with the experiment.
    fn backoff(&self, opts: &RunOptions, label: &str) -> Backoff {
        Backoff::new(
            opts.backoff_base,
            opts.backoff_cap,
            self.tb.derive_rng(&format!("backoff/{label}")),
        )
    }

    fn power_with_retries(
        &mut self,
        host: &str,
        retries: u32,
        opts: &RunOptions,
        op: impl Fn(&mut Testbed, &str) -> Result<(), PowerError>,
    ) -> Result<(), ControllerError> {
        let mut backoff = self.backoff(opts, &format!("power/{host}"));
        let mut last = None;
        for attempt in 0..=retries {
            match op(&mut self.tb, host) {
                Ok(()) => return Ok(()),
                Err(e @ PowerError::TransientFailure { .. }) => {
                    last = Some(e);
                    if attempt < retries {
                        let delay = backoff.next_delay();
                        self.tb.advance(delay);
                        self.log_now(
                            TraceLevel::Debug,
                            "controller",
                            format!(
                                "power retry {} for {host} after {delay} backoff",
                                attempt + 1
                            ),
                        );
                        self.emit(Progress::PowerRetry {
                            host: host.into(),
                            attempt: attempt + 1,
                            delay,
                        });
                    }
                }
                Err(e) => {
                    return Err(ControllerError::PowerFailed {
                        host: host.into(),
                        error: e,
                    })
                }
            }
        }
        Err(ControllerError::PowerFailed {
            host: host.into(),
            error: last.expect("loop ran at least once"),
        })
    }

    /// Reboots a host out of band into its selected image: reset when the
    /// interface supports it, power-cycle otherwise. A reset that keeps
    /// failing escalates to a full power cycle — that is what un-wedges
    /// stuck firmware a soft reset bounces off.
    fn reinitialize(&mut self, host: &str, opts: &RunOptions) -> Result<(), ControllerError> {
        let supports_reset = self
            .tb
            .host(host)
            .map(|h| h.init_interface.supports_reset())
            .ok_or_else(|| ControllerError::UnknownHost { host: host.into() })?;
        if supports_reset {
            match self.power_with_retries(host, opts.max_power_retries, opts, |tb, h| tb.reset(h)) {
                Ok(()) => {}
                Err(ControllerError::PowerFailed {
                    error: PowerError::TransientFailure { .. },
                    ..
                }) => {
                    self.log_now(
                        TraceLevel::Warn,
                        "controller",
                        format!("{host}: reset failed repeatedly, escalating to power cycle"),
                    );
                    self.power_cycle(host, opts)?;
                }
                Err(e) => return Err(e),
            }
        } else {
            self.power_cycle(host, opts)?;
        }
        self.tb.wait_booted(host).map_err(ControllerError::Exec)?;
        Ok(())
    }

    fn power_cycle(&mut self, host: &str, opts: &RunOptions) -> Result<(), ControllerError> {
        self.power_with_retries(host, opts.max_power_retries, opts, |tb, h| tb.power_off(h))?;
        self.power_with_retries(host, opts.max_power_retries, opts, |tb, h| tb.power_on(h))
    }

    /// Full recovery of one crashed host: out-of-band reboot into its live
    /// image, tools and variables redeployed, and its setup script re-run
    /// so the clean slate is configured again. Any failure here means the
    /// host could not be brought back.
    fn recover_host(
        &mut self,
        host: &str,
        spec: &ExperimentSpec,
        run: &RunParams,
        opts: &RunOptions,
    ) -> Result<(), ControllerError> {
        self.reinitialize(host, opts)?;
        let role_idx = spec
            .roles
            .iter()
            .position(|r| r.host == host)
            .expect("crashed host belongs to the experiment");
        let vars = Self::role_vars(spec, role_idx, Some(run));
        self.tb
            .deploy_tools(host, &vars.rendered())
            .map_err(ControllerError::Exec)?;
        for step in spec.roles[role_idx].setup.instantiate(&vars) {
            if let Step::Command(c) = step {
                let r = self.tb.exec(host, &c).map_err(ControllerError::Exec)?;
                if !r.success() {
                    return Err(ControllerError::SetupFailed {
                        role: spec.roles[role_idx].role.clone(),
                        command: c,
                        result: r,
                    });
                }
            }
        }
        Ok(())
    }

    /// Variables a role sees: global < local < loop precedence.
    fn role_vars(spec: &ExperimentSpec, role_idx: usize, run: Option<&RunParams>) -> Variables {
        let role = &spec.roles[role_idx];
        let mut v = spec.global_vars.merged_with(&role.local_vars);
        if let Some(run) = run {
            v = v.merged_with(&run.as_variables());
        }
        v
    }

    /// Executes one script phase on all roles in lockstep: between
    /// barriers, every role's segment runs in its own time lane; the
    /// barrier completes at the latest lane end. Returns the captured
    /// stdout of all commands per role.
    fn run_scripts_lockstep(
        &mut self,
        spec: &ExperimentSpec,
        phase: &str,
        run: Option<&RunParams>,
    ) -> Result<BTreeMap<String, CommandResult>, Box<ScriptFailure>> {
        // Instantiate all scripts up front.
        let instantiated: Vec<Vec<Step>> = spec
            .roles
            .iter()
            .enumerate()
            .map(|(i, role)| {
                let vars = Self::role_vars(spec, i, run);
                let script = if phase == "setup" {
                    &role.setup
                } else {
                    &role.measurement
                };
                script.instantiate(&vars)
            })
            .collect();

        // Split into segments; validation guarantees equal barrier counts.
        let segmented: Vec<Vec<Vec<String>>> = instantiated
            .iter()
            .map(|steps| {
                let mut segs: Vec<Vec<String>> = vec![Vec::new()];
                for s in steps {
                    match s {
                        Step::Command(c) => segs.last_mut().expect("non-empty").push(c.clone()),
                        Step::Barrier(_) => segs.push(Vec::new()),
                    }
                }
                segs
            })
            .collect();
        let n_segments = segmented.iter().map(Vec::len).max().unwrap_or(1);

        let mut aggregated: BTreeMap<String, CommandResult> = BTreeMap::new();
        for seg_idx in 0..n_segments {
            let barrier_start = self.tb.now();
            let mut barrier_end = barrier_start;
            for (role_idx, role) in spec.roles.iter().enumerate() {
                let Some(commands) = segmented[role_idx].get(seg_idx) else {
                    continue;
                };
                // This role's lane starts at the barrier instant.
                self.tb.set_now(barrier_start);
                for cmd in commands {
                    let result = self.tb.exec(&role.host, cmd).map_err(|e| {
                        Box::new(ScriptFailure {
                            role: role.role.clone(),
                            command: cmd.clone(),
                            result: None,
                            exec: Some(e),
                        })
                    })?;
                    let entry = aggregated.entry(role.role.clone()).or_insert_with(|| {
                        CommandResult::ok("").with_duration(pos_simkernel::SimDuration::ZERO)
                    });
                    if !result.stdout.is_empty() {
                        entry.stdout.push_str(&result.stdout);
                        if !result.stdout.ends_with('\n') {
                            entry.stdout.push('\n');
                        }
                    }
                    if !result.stderr.is_empty() {
                        entry.stderr.push_str(&result.stderr);
                        if !result.stderr.ends_with('\n') {
                            entry.stderr.push('\n');
                        }
                    }
                    if !result.success() {
                        entry.exit_code = result.exit_code;
                        return Err(Box::new(ScriptFailure {
                            role: role.role.clone(),
                            command: cmd.clone(),
                            result: Some(result),
                            exec: None,
                        }));
                    }
                }
                if self.tb.now() > barrier_end {
                    barrier_end = self.tb.now();
                }
            }
            // Barrier completes when the slowest lane arrives.
            self.tb.set_now(barrier_end);
        }
        Ok(aggregated)
    }

    /// Validates the spec, folds repetitions into a synthetic loop
    /// variable, checks hosts exist, and expands the cross product.
    fn prepare(
        &self,
        spec: &ExperimentSpec,
        opts: &RunOptions,
    ) -> Result<(ExperimentSpec, Vec<RunParams>), ControllerError> {
        spec.validate().map_err(ControllerError::Spec)?;
        // Repetitions become an explicit loop variable: visible in every
        // run's metadata, ordinary for the evaluation phase.
        let mut spec = spec.clone();
        if opts.repetitions > 1 {
            let reps: Vec<crate::vars::VarValue> =
                (0..i64::from(opts.repetitions)).map(Into::into).collect();
            spec.loop_vars
                .set("repetition", crate::vars::VarValue::List(reps));
        }
        for role in &spec.roles {
            if self.tb.host(&role.host).is_none() {
                return Err(ControllerError::UnknownHost {
                    host: role.host.clone(),
                });
            }
        }
        let runs = {
            let n = cross_product_size(&spec.loop_vars).unwrap_or(usize::MAX);
            if n > opts.max_runs {
                return Err(ControllerError::TooManyRuns {
                    runs: n,
                    limit: opts.max_runs,
                });
            }
            expand_cross_product(&spec.loop_vars)
        };
        Ok((spec, runs))
    }

    /// Validates `spec` against this controller's testbed, folds
    /// repetitions into a synthetic loop variable, and expands the cross
    /// product — the read-only front half of [`Self::run_experiment`],
    /// exposed for schedulers that shard the run list across lanes.
    pub fn prepare_campaign(
        &self,
        spec: &ExperimentSpec,
        opts: &RunOptions,
    ) -> Result<(ExperimentSpec, Vec<RunParams>), ControllerError> {
        self.prepare(spec, opts)
    }

    /// Runs a complete experiment: setup phase, all measurement runs, and
    /// result capture. The result tree is left on disk for the evaluation
    /// and publication phases.
    ///
    /// Every lifecycle transition is journaled write-ahead into the
    /// result tree's `journal.log`; an interrupted campaign can be picked
    /// up with [`Self::resume_experiment`].
    pub fn run_experiment(
        &mut self,
        spec: &ExperimentSpec,
        opts: &RunOptions,
    ) -> Result<ExperimentOutcome, ControllerError> {
        let (spec, runs) = self.prepare(spec, opts)?;
        // Every in-band command from here on runs under the watchdog.
        self.tb.set_command_timeout(opts.command_timeout);
        let started = self.tb.now();
        let store = ResultStore::create(&opts.result_root, &spec.user, &spec.name, started)?
            .with_vfs(opts.vfs.clone());
        let mut journal = Journal::create_with(store.dir().join(JOURNAL_FILE), opts.vfs.clone())?;
        journal.arm_crash(opts.journal_crash_after, opts.journal_torn_write);
        journal.append(&JournalRecord::CampaignStarted {
            seed: self.tb.seed(),
            spec_digest: spec.digest(),
            total_runs: runs.len(),
            testbed: opts.testbed_flavor.clone(),
            started_ns: started.as_nanos(),
        })?;
        self.execute_campaign(&spec, opts, store, journal, runs, ResumeState::default())
    }

    /// Resumes an interrupted campaign from its result tree.
    ///
    /// The journal is replayed (a torn tail from a crash mid-append is
    /// tolerated; corruption is not), the campaign's identity is checked
    /// — same testbed flavor and seed, same spec digest, same
    /// cross-product size —
    /// and every journaled-complete run is verified on disk against its
    /// recorded digest. Verified runs are skipped; everything else
    /// (incomplete runs, runs whose artifacts fail verification) is wiped
    /// and re-executed.
    ///
    /// Determinism contract: resuming on a fresh testbed with the
    /// original seed replays the setup phase identically, fast-forwards
    /// the virtual clock and the shared management RNG stream over each
    /// skipped run (discarding chaos events the original session already
    /// consumed), and therefore produces a result tree byte-identical to
    /// an uninterrupted execution — `journal.log` excepted, since the
    /// journal *is* the record of the interruption.
    ///
    /// `spec` should be the stored effective spec, e.g. loaded via
    /// [`ExperimentSpec::from_dir`] from `<result-dir>/experiment/`.
    pub fn resume_experiment(
        &mut self,
        result_dir: &Path,
        spec: &ExperimentSpec,
        opts: &RunOptions,
    ) -> Result<ExperimentOutcome, ControllerError> {
        let (spec, runs) = self.prepare(spec, opts)?;
        self.tb.set_command_timeout(opts.command_timeout);

        let store = ResultStore::open(result_dir).with_vfs(opts.vfs.clone());
        let journal_path = store.dir().join(JOURNAL_FILE);
        let replay = Journal::replay(&journal_path).map_err(ControllerError::Journal)?;
        let (seed, spec_digest, total_runs, testbed) = match replay.campaign_start() {
            Some(JournalRecord::CampaignStarted {
                seed,
                spec_digest,
                total_runs,
                testbed,
                ..
            }) => (*seed, spec_digest.clone(), *total_runs, testbed.clone()),
            _ => {
                return Err(ControllerError::Resume {
                    reason: "journal has no CampaignStarted record".into(),
                })
            }
        };
        if testbed != opts.testbed_flavor {
            return Err(ControllerError::Resume {
                reason: format!(
                    "campaign ran on the `{testbed}` testbed, resume is using `{}`",
                    opts.testbed_flavor
                ),
            });
        }
        if seed != self.tb.seed() {
            return Err(ControllerError::Resume {
                reason: format!(
                    "campaign ran on testbed seed {seed:#x}, this testbed uses {:#x}",
                    self.tb.seed()
                ),
            });
        }
        if spec_digest != spec.digest() {
            return Err(ControllerError::Resume {
                reason: "experiment spec changed since the campaign started \
                         (digest mismatch)"
                    .into(),
            });
        }
        if total_runs != runs.len() {
            return Err(ControllerError::Resume {
                reason: format!(
                    "campaign planned {total_runs} runs, spec now expands to {}",
                    runs.len()
                ),
            });
        }
        if replay.torn_tail {
            self.log_now(
                TraceLevel::Debug,
                "controller",
                format!(
                    "resume: journal has a torn tail ({} bytes), discarded",
                    replay.torn_bytes
                ),
            );
        }

        // Last RunCompleted record wins per index (a run re-executed by an
        // earlier resume appends a fresh record).
        let mut last_completed: BTreeMap<usize, usize> = BTreeMap::new();
        for (pos, rec) in replay.records.iter().enumerate() {
            if let JournalRecord::RunCompleted { index, .. } = rec {
                last_completed.insert(*index, pos);
            }
        }
        let last_completed_pos = last_completed.values().copied().max();

        let mut state = ResumeState::default();
        for (&index, &pos) in &last_completed {
            let JournalRecord::RunCompleted {
                success,
                attempts,
                recoveries,
                recovery_time_ns,
                finished_ns,
                rng_cursor,
                digest,
                fault_trace,
                ..
            } = &replay.records[pos]
            else {
                unreachable!("positions index RunCompleted records");
            };
            // Two-level verification: journaled digest → manifest bytes →
            // per-file hashes. Anything off demotes the run to incomplete
            // and it is re-executed from scratch.
            let run_dir = store.dir().join(format!("run-{index:04}"));
            let digest_ok = ResultStore::run_digest(&run_dir)
                .map(|d| &d == digest)
                .unwrap_or(false);
            let files_ok = digest_ok
                && ResultStore::verify_run(&run_dir)
                    .map(|v| v.is_clean())
                    .unwrap_or(false);
            if files_ok {
                state.completed.insert(
                    index,
                    CompletedRun {
                        success: *success,
                        attempts: *attempts,
                        recoveries: *recoveries,
                        recovery_time_ns: *recovery_time_ns,
                        finished_ns: *finished_ns,
                        rng_cursor: *rng_cursor,
                        fault_trace: fault_trace.clone(),
                    },
                );
            } else {
                self.log_now(
                    TraceLevel::Debug,
                    "controller",
                    format!("resume: run {index} failed verification, re-executing"),
                );
            }
        }

        // Quarantines recorded before the last durable run are part of
        // history the skipped runs already depend on; later ones belong
        // to the trailing incomplete run and are re-derived by
        // re-executing it.
        if let Some(limit) = last_completed_pos {
            for rec in &replay.records[..limit] {
                if let JournalRecord::HostQuarantined { host, .. } = rec {
                    if !state.quarantined.contains(host) {
                        state.quarantined.push(host.clone());
                    }
                }
            }
        }

        let mut journal = Journal::open_append_with(&journal_path, opts.vfs.clone())?;
        journal.arm_crash(opts.journal_crash_after, opts.journal_torn_write);
        journal.append(&JournalRecord::CampaignResumed {
            resumed_ns: self.tb.now().as_nanos(),
            verified_runs: state.completed.len(),
        })?;
        self.execute_campaign(&spec, opts, store, journal, runs, state)
    }

    /// The §4.4 setup phase alone: calendar allocation, publishable
    /// inputs, image selection and reboot, tool deployment, hardware
    /// capture, setup scripts in lockstep.
    ///
    /// With `store: None` the same virtual-time story plays out (boots,
    /// deployments, hardware probes) but nothing is persisted — the form a
    /// parallel scheduler uses for worker lanes beyond lane 0, whose
    /// replica testbeds must follow the identical setup timeline while
    /// only the canonical lane writes the shared result tree.
    /// `planned_runs` is the campaign's total run count (it appears in the
    /// allocation trace line, which must match across lanes).
    pub fn setup_campaign(
        &mut self,
        spec: &ExperimentSpec,
        opts: &RunOptions,
        store: Option<&ResultStore>,
        planned_runs: usize,
    ) -> Result<CampaignSetup, ControllerError> {
        let started = self.tb.now();
        let hosts = spec.hosts();
        let reservation = self
            .tb
            .calendar
            .reserve(
                spec.user.clone(),
                &hosts,
                started,
                pos_simkernel::SimDuration::from_secs(spec.planned_duration_secs),
            )
            .map_err(ControllerError::Allocation)?;

        self.tb.trace.log(
            started,
            TraceLevel::Info,
            "controller",
            format!(
                "experiment {} allocated {:?}, {} runs planned",
                spec.name, hosts, planned_runs
            ),
        );

        // Persist the publishable inputs before anything runs.
        if let Some(store) = store {
            store.write("experiment/experiment.yml", spec.to_yaml())?;
            store.write(
                "experiment/global-variables.yml",
                spec.global_vars.to_yaml(),
            )?;
            store.write("experiment/loop-variables.yml", spec.loop_vars.to_yaml())?;
            for role in &spec.roles {
                store.write(
                    &format!("experiment/{}/setup.sh", role.role),
                    &role.setup.source,
                )?;
                store.write(
                    &format!("experiment/{}/measurement.sh", role.role),
                    &role.measurement.source,
                )?;
                store.write(
                    &format!("experiment/{}/local-variables.yml", role.role),
                    role.local_vars.to_yaml(),
                )?;
            }
            store.write("topology.txt", self.tb.topology.render())?;
        }

        // Image selection, boot parameters, reboot.
        for role in &spec.roles {
            let image = match &role.image_snapshot {
                Some(snap) => self.tb.images.find(&role.image_name, snap),
                None => self.tb.images.latest(&role.image_name),
            }
            .ok_or_else(|| ControllerError::UnknownImage {
                name: role.image_name.clone(),
                snapshot: role.image_snapshot.clone(),
            })?
            .id;
            self.tb.select_image(&role.host, image).map_err(|error| {
                ControllerError::PowerFailed {
                    host: role.host.clone(),
                    error,
                }
            })?;
            self.tb
                .set_boot_params(&role.host, &role.boot_params)
                .map_err(|error| ControllerError::PowerFailed {
                    host: role.host.clone(),
                    error,
                })?;
            self.power_with_retries(&role.host, opts.max_power_retries, opts, |tb, h| {
                tb.power_on(h)
            })?;
        }
        // All boots proceed concurrently; waiting aligns to the slowest.
        for role in &spec.roles {
            self.tb
                .wait_booted(&role.host)
                .map_err(ControllerError::Exec)?;
            let host = role.host.clone();
            self.emit(Progress::HostReady { host });
        }

        // Deploy utility tools and variables; capture hardware info.
        for (i, role) in spec.roles.iter().enumerate() {
            let vars = Self::role_vars(spec, i, None);
            self.tb
                .deploy_tools(&role.host, &vars.rendered())
                .map_err(ControllerError::Exec)?;
            let hw = self
                .tb
                .exec(&role.host, "pos-hardware-info")
                .map_err(ControllerError::Exec)?;
            if let Some(store) = store {
                store.write(&format!("hardware/{}.txt", role.host), hw.stdout)?;
            }
        }

        // Setup scripts, in lockstep.
        self.run_scripts_lockstep(spec, "setup", None)
            .map_err(|f| f.into_setup_error())?;
        self.emit(Progress::SetupDone);
        Ok(CampaignSetup {
            reservation,
            started,
        })
    }

    /// The shared campaign body: setup phase, measurement loop (skipping
    /// resume-verified runs), wrap-up. `resume` is empty for a fresh run.
    fn execute_campaign(
        &mut self,
        spec: &ExperimentSpec,
        opts: &RunOptions,
        store: ResultStore,
        mut journal: Journal,
        runs: Vec<RunParams>,
        resume: ResumeState,
    ) -> Result<ExperimentOutcome, ControllerError> {
        // -------------------------------------------------- setup phase
        let setup = self.setup_campaign(spec, opts, Some(&store), runs.len())?;
        let CampaignSetup {
            reservation,
            started,
        } = setup;

        // -------------------------------------------- measurement phase
        let total = runs.len();
        let mut records = Vec::with_capacity(total);
        let mut total_recoveries = 0u32;
        let mut failed_runs: Vec<usize> = Vec::new();
        let mut quarantined_hosts: Vec<String> = Vec::new();
        let mut total_recovery_time = SimDuration::ZERO;
        // Quarantines journaled before the last durable run are history
        // the skipped runs executed under; restore them silently (no Info
        // log — the uninterrupted session logged the transition at fault
        // time, and resumed controller.log must stay byte-stable).
        for host in &resume.quarantined {
            self.health.insert(host.clone(), HostHealth::Quarantined);
            self.log_now(
                TraceLevel::Debug,
                "controller",
                format!("resume: {host} restored as quarantined"),
            );
            quarantined_hosts.push(host.clone());
        }
        for run in &runs {
            if let Some(done) = resume.completed.get(&run.index) {
                // Verified complete by an earlier session: fast-forward
                // the virtual clock to the recorded run end and seek the
                // shared management RNG stream to its recorded cursor —
                // the timeline continues exactly as if this session had
                // executed the run itself. Chaos events due inside the
                // skipped window: a journaled recovery means the original
                // session consumed them (host rebooted, setup re-run), so
                // they are discarded; with no recovery a crash in the
                // window went *undetected* — the host died mid-run with
                // nothing touching it — and the event is left scheduled,
                // so it fires at the next executed command exactly where
                // the original session first observed it.
                self.tb.set_now(SimTime::from_nanos(done.finished_ns));
                if done.recoveries > 0 {
                    self.tb.discard_due_faults();
                }
                self.tb.rng_seek(done.rng_cursor);
                self.log_now(
                    TraceLevel::Debug,
                    "controller",
                    format!("resume: run {} verified, skipped", run.index),
                );
                total_recoveries += done.recoveries;
                total_recovery_time += SimDuration::from_nanos(done.recovery_time_ns);
                if !done.success {
                    failed_runs.push(run.index);
                }
                let run_dir = store.run_dir(run.index)?;
                let outputs = Self::reload_run_outputs(spec, &run_dir)?;
                self.emit(Progress::RunSkipped {
                    index: run.index,
                    total,
                });
                records.push(RunRecord {
                    params: run.clone(),
                    outputs,
                    attempts: done.attempts,
                    success: done.success,
                    recoveries: done.recoveries,
                    fault_trace: done.fault_trace.clone(),
                });
                continue;
            }
            // Cooperative checkpoint: an urgent drain trips the token and
            // the campaign stops *here*, between runs — every journaled
            // record is consistent, so resume picks up at this exact run.
            if opts.cancel.is_canceled() {
                return Err(ControllerError::Canceled {
                    completed_runs: records.len(),
                });
            }
            let step = self.execute_one_run(spec, opts, &store, &mut journal, run, total)?;
            total_recoveries += step.recoveries;
            total_recovery_time += step.recovery_time;
            quarantined_hosts.extend(step.quarantined);
            if !step.record.success {
                failed_runs.push(run.index);
            }
            records.push(step.record);
        }

        // ------------------------------------------------------ wrap-up
        // controller.log is rendered Info-and-above: the deterministic
        // campaign story. (Debug chatter would differ between a resumed
        // and an uninterrupted session, breaking byte-identical trees.)
        // It lands *before* CampaignFinished, so a finished journal
        // implies a complete tree.
        let finished = self.tb.now();
        store.write(
            "controller.log",
            self.tb.trace.render_min_level(TraceLevel::Info),
        )?;
        journal.append(&JournalRecord::CampaignFinished {
            finished_ns: finished.as_nanos(),
            succeeded: records.iter().filter(|r| r.success).count(),
            failed: failed_runs.len(),
        })?;
        self.tb.calendar.release(reservation);
        Ok(ExperimentOutcome {
            result_dir: store.dir().to_path_buf(),
            runs: records,
            started,
            finished,
            recoveries: total_recoveries,
            failed_runs,
            quarantined_hosts,
            quarantined_runs: Vec::new(),
            total_recovery_time,
        })
    }

    /// Executes one measurement run at the testbed's current virtual
    /// instant: wipes leftovers, journals `RunStarted`, runs the
    /// measurement scripts with the full retry/recovery/quarantine
    /// machinery, captures artifacts, seals the run, and journals
    /// `RunCompleted`.
    ///
    /// This is the unit a parallel scheduler dispatches to a worker lane:
    /// the lane's controller keeps its own health map and journal, while
    /// `store` may be shared (runs write disjoint `run-NNNN` directories).
    /// An aborting failure (unsuccessful run without
    /// [`RunOptions::continue_on_run_failure`]) writes `controller.log`
    /// and returns [`ControllerError::RunFailed`], leaving the run
    /// journaled as started-only so a resume retries it.
    pub fn execute_one_run(
        &mut self,
        spec: &ExperimentSpec,
        opts: &RunOptions,
        store: &ResultStore,
        journal: &mut Journal,
        run: &RunParams,
        total: usize,
    ) -> Result<RunStep, ControllerError> {
        let mut quarantined: Vec<String> = Vec::new();
        // Not durable: clear any partial leftovers first, so what the
        // crash happened to leave behind cannot influence convergence.
        store.wipe_run(run.index)?;
        let run_started = self.tb.now();
        journal.append(&JournalRecord::RunStarted {
            index: run.index,
            started_ns: run_started.as_nanos(),
        })?;
        // Sequence number of the next trace entry; robust against ring
        // eviction (`len` alone would drift once entries are dropped).
        let trace_mark = self.tb.trace.len() as u64 + self.tb.trace.dropped();
        let mut attempts = 0u32;
        let mut recoveries = 0u32;
        let mut run_recovery_time = SimDuration::ZERO;
        let mut outputs = BTreeMap::new();
        let mut success = false;
        let mut backoff = self.backoff(opts, &format!("run/{}", run.index));

        // Runs depending on a quarantined host fail fast: burning the
        // retry budget against a host already known dead would only
        // stretch the sweep.
        let quarantined_dep = spec
            .roles
            .iter()
            .map(|r| r.host.clone())
            .find(|h| self.host_health(h) == HostHealth::Quarantined);
        if let Some(host) = &quarantined_dep {
            self.log_now(
                TraceLevel::Warn,
                "controller",
                format!("run {}: skipped, host {host} is quarantined", run.index),
            );
        }

        'attempts: while quarantined_dep.is_none() && attempts <= opts.max_run_retries {
            attempts += 1;
            // Loop variables are (re)deployed to every host each
            // attempt, so hosts can read them via pos_get_var. The
            // deployments proceed concurrently (one lane per host).
            let mut deploy_failed: Option<ExecError> = None;
            let deploy_start = self.tb.now();
            let mut deploy_end = deploy_start;
            for (i, role) in spec.roles.iter().enumerate() {
                self.tb.set_now(deploy_start);
                let vars = Self::role_vars(spec, i, Some(run));
                if let Err(e) = self.tb.deploy_tools(&role.host, &vars.rendered()) {
                    deploy_failed = Some(e);
                    break;
                }
                if self.tb.now() > deploy_end {
                    deploy_end = self.tb.now();
                }
            }
            let now = self.tb.now();
            self.tb.set_now(deploy_end.max(now));
            let failure = match deploy_failed {
                Some(e) => Some(Box::new(ScriptFailure {
                    role: String::new(),
                    command: "pos deploy".into(),
                    result: None,
                    exec: Some(e),
                })),
                None => match self.run_scripts_lockstep(spec, "measurement", Some(run)) {
                    Ok(out) => {
                        outputs = out;
                        success = true;
                        None
                    }
                    Err(f) => Some(f),
                },
            };

            let Some(f) = failure else { break };
            // Who is the suspect? An unreachable/timed-out host names
            // itself; a plain command failure may be collateral of a
            // crashed *peer* (the load generator errors out because the
            // DuT died mid-run), so probe every experiment host.
            let suspects: Vec<String> = match f.exec {
                Some(ExecError::HostUnreachable { ref host, .. })
                | Some(ExecError::Timeout { ref host, .. }) => vec![host.clone()],
                Some(e) => return Err(ControllerError::Exec(e)),
                None => spec
                    .roles
                    .iter()
                    .map(|r| r.host.clone())
                    .filter(|h| self.tb.host(h).is_some_and(|h| !h.is_up()))
                    .collect(),
            };

            if suspects.is_empty() {
                // Genuine command failure with every host healthy:
                // retry after a deterministic backoff if budget remains.
                if attempts <= opts.max_run_retries {
                    let delay = backoff.next_delay();
                    self.tb.advance(delay);
                    self.log_now(
                        TraceLevel::Debug,
                        "controller",
                        format!(
                            "run {}: attempt {attempts} failed, retrying after {delay}",
                            run.index
                        ),
                    );
                    self.emit(Progress::RunRetry {
                        index: run.index,
                        attempt: attempts,
                        delay,
                    });
                }
                continue;
            }

            for host in suspects {
                // R3: out-of-band recovery, then retry the run.
                let recovery_started = self.tb.now();
                self.set_health(&host, HostHealth::Suspect);
                self.log_now(
                    TraceLevel::Warn,
                    "controller",
                    format!("run {}: {host} unresponsive, recovering", run.index),
                );
                self.emit(Progress::HostRecovering { host: host.clone() });
                self.set_health(&host, HostHealth::Reinitializing);
                match self.recover_host(&host, spec, run, opts) {
                    Ok(()) => {
                        let took = self.tb.now().saturating_duration_since(recovery_started);
                        run_recovery_time += took;
                        self.set_health(&host, HostHealth::Healthy);
                        self.emit(Progress::HostRecovered { host: host.clone() });
                        recoveries += 1;
                    }
                    Err(e) => {
                        self.set_health(&host, HostHealth::Quarantined);
                        quarantined.push(host.clone());
                        self.log_now(
                            TraceLevel::Error,
                            "controller",
                            format!("{host}: recovery failed, quarantined ({e})"),
                        );
                        self.emit(Progress::HostQuarantined { host: host.clone() });
                        journal.append(&JournalRecord::HostQuarantined {
                            host: host.clone(),
                            at_ns: self.tb.now().as_nanos(),
                        })?;
                        if opts.continue_on_run_failure {
                            break 'attempts;
                        }
                        return Err(e);
                    }
                }
            }
        }

        // Capture per-run artifacts: command output...
        for (role, result) in &outputs {
            store.write_run_output(
                run.index,
                role,
                &result.stdout,
                &result.stderr,
                result.exit_code,
            )?;
        }
        // ...plus any files the scripts left under /srv/results/ on
        // the hosts (pcap dumps etc.), uploaded to the controller and
        // cleared so the next run starts empty.
        for role in &spec.roles {
            if let Some(host) = self.tb.host_mut(&role.host) {
                let keys: Vec<String> = host
                    .fs
                    .keys()
                    .filter(|k| k.starts_with("/srv/results/"))
                    .cloned()
                    .collect();
                for key in keys {
                    let data = host.fs.remove(&key).expect("key just listed");
                    let base = key.rsplit('/').next().expect("non-empty path");
                    store.write_run_file(run.index, &format!("{}_{base}", role.role), data)?;
                }
            }
        }
        let hosts_map: BTreeMap<String, String> = spec
            .roles
            .iter()
            .map(|r| (r.role.clone(), r.host.clone()))
            .collect();
        store.write_run_metadata(&run_metadata(
            run,
            run_started,
            self.tb.now(),
            attempts,
            success,
            hosts_map,
        ))?;
        // Seal the run: the checksum manifest is the last artifact
        // written, so its presence certifies every other one.
        let digest = store.finalize_run(run.index)?;
        let run_dir = store.run_dir(run.index)?;
        self.emit(Progress::RunDone {
            index: run.index,
            total,
            success,
            dir: run_dir,
        });
        if !success && !opts.continue_on_run_failure {
            // No RunCompleted record: an aborting failure leaves the
            // run journaled as started-only, so a resume retries it.
            store.write(
                "controller.log",
                self.tb.trace.render_min_level(TraceLevel::Info),
            )?;
            return Err(ControllerError::RunFailed {
                index: run.index,
                attempts,
            });
        }
        // Everything Warn-and-above since the run started is this run's
        // fault story — empty for clean runs.
        let skip = trace_mark.saturating_sub(self.tb.trace.dropped()) as usize;
        let fault_trace: Vec<String> = self
            .tb
            .trace
            .iter()
            .skip(skip)
            .filter(|e| e.level >= TraceLevel::Warn)
            .map(|e| e.to_string())
            .collect();
        let finished = self.tb.now();
        journal.append(&JournalRecord::RunCompleted {
            index: run.index,
            success,
            attempts,
            recoveries,
            recovery_time_ns: run_recovery_time.as_nanos(),
            started_ns: run_started.as_nanos(),
            finished_ns: finished.as_nanos(),
            rng_cursor: self.tb.rng_cursor(),
            digest: digest.clone(),
            fault_trace: fault_trace.clone(),
        })?;
        Ok(RunStep {
            record: RunRecord {
                params: run.clone(),
                outputs,
                attempts,
                success,
                recoveries,
                fault_trace,
            },
            quarantined,
            recoveries,
            recovery_time: run_recovery_time,
            started: run_started,
            finished,
            digest,
        })
    }

    /// Rebuilds the in-memory per-role outputs of a verified, skipped run
    /// from its on-disk artifacts. Command durations are not persisted,
    /// so reloaded results carry zero durations — run timing lives in the
    /// metadata, which is restored verbatim from disk. Public so a
    /// parallel resume can surface skipped runs' outputs in its outcome.
    pub fn reload_run_outputs(
        spec: &ExperimentSpec,
        run_dir: &Path,
    ) -> std::io::Result<BTreeMap<String, CommandResult>> {
        let mut outputs = BTreeMap::new();
        for role in &spec.roles {
            let status = run_dir.join(format!("{}_measurement.status", role.role));
            let Ok(code_text) = std::fs::read_to_string(&status) else {
                // No status file: the run never produced outputs for this
                // role (e.g. it failed fast on a quarantined host).
                continue;
            };
            let exit_code = code_text.trim().parse::<i32>().unwrap_or(0);
            let stdout =
                std::fs::read_to_string(run_dir.join(format!("{}_measurement.log", role.role)))
                    .unwrap_or_default();
            let stderr =
                std::fs::read_to_string(run_dir.join(format!("{}_measurement.err", role.role)))
                    .unwrap_or_default();
            let mut result = CommandResult::ok(stdout);
            result.stderr = stderr;
            result.exit_code = exit_code;
            outputs.insert(role.role.clone(), result);
        }
        Ok(outputs)
    }
}

/// What [`Controller::setup_campaign`] established: the calendar
/// allocation backing the campaign and when the setup phase began.
#[derive(Debug, Clone, Copy)]
pub struct CampaignSetup {
    /// The calendar reservation covering the experiment hosts; released
    /// by the campaign wrap-up (or by a scheduler tearing a lane down).
    pub reservation: pos_testbed::ReservationId,
    /// Virtual instant the setup phase began.
    pub started: SimTime,
}

/// What [`Controller::execute_one_run`] produced: the run's record plus
/// the bookkeeping a campaign (or scheduler) accumulates across runs.
#[derive(Debug)]
pub struct RunStep {
    /// The run's record (outputs, attempts, success, fault trace).
    pub record: RunRecord,
    /// Hosts newly quarantined while this run executed, in order.
    pub quarantined: Vec<String>,
    /// Out-of-band recoveries performed during this run.
    pub recoveries: u32,
    /// Virtual time spent in recovery during this run.
    pub recovery_time: SimDuration,
    /// Virtual instant the run started.
    pub started: SimTime,
    /// Virtual instant the run finished.
    pub finished: SimTime,
    /// The sealed run's digest, as journaled in `RunCompleted`.
    pub digest: String,
}

/// What a resume session learned from the journal: runs it may skip and
/// host state it must restore. Empty for a fresh campaign.
#[derive(Debug, Default)]
struct ResumeState {
    /// Verified-complete runs by index.
    completed: BTreeMap<usize, CompletedRun>,
    /// Hosts quarantined before the last durable run, in journal order.
    quarantined: Vec<String>,
}

/// The journaled post-state of one verified-complete run.
#[derive(Debug)]
struct CompletedRun {
    success: bool,
    attempts: u32,
    recoveries: u32,
    recovery_time_ns: u64,
    finished_ns: u64,
    rng_cursor: u64,
    fault_trace: Vec<String>,
}

/// Internal: a script step failed.
struct ScriptFailure {
    role: String,
    command: String,
    result: Option<CommandResult>,
    exec: Option<ExecError>,
}

impl ScriptFailure {
    fn into_setup_error(self) -> ControllerError {
        if let Some(e) = self.exec {
            return ControllerError::Exec(e);
        }
        ControllerError::SetupFailed {
            role: self.role,
            command: self.command,
            result: self.result.unwrap_or_else(|| CommandResult::fail(1, "")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::commands::register_all;
    use crate::experiment::linux_router_experiment;
    use pos_testbed::{HardwareSpec, InitInterface, PortId};
    use std::path::Path;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("pos-ctl-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn case_study_testbed(seed: u64) -> Testbed {
        let mut tb = Testbed::new(seed);
        tb.add_host("vriga", HardwareSpec::paper_dut(), InitInterface::Ipmi);
        tb.add_host("vtartu", HardwareSpec::paper_dut(), InitInterface::Ipmi);
        tb.topology
            .wire(PortId::new("vriga", 0), PortId::new("vtartu", 0))
            .unwrap();
        tb.topology
            .wire(PortId::new("vtartu", 1), PortId::new("vriga", 1))
            .unwrap();
        register_all(&mut tb);
        tb
    }

    /// A small case-study instance: 2 sizes × 3 rates, 1 s runs.
    fn small_spec() -> ExperimentSpec {
        linux_router_experiment("vriga", "vtartu", 3, 1)
    }

    #[test]
    fn full_workflow_produces_result_tree() {
        let mut tb = case_study_testbed(1);
        let root = tmp("workflow");
        let outcome = Controller::new(&mut tb)
            .run_experiment(&small_spec(), &RunOptions::new(&root))
            .unwrap();

        assert_eq!(outcome.runs.len(), 6);
        assert_eq!(outcome.successes(), 6);
        assert_eq!(outcome.recoveries, 0);
        assert!(outcome.finished > outcome.started);

        // The tree has the publishable inputs and per-run outputs.
        let dir = &outcome.result_dir;
        for rel in [
            "experiment/experiment.yml",
            "experiment/global-variables.yml",
            "experiment/loop-variables.yml",
            "experiment/dut/setup.sh",
            "experiment/loadgen/measurement.sh",
            "hardware/vtartu.txt",
            "topology.txt",
            "controller.log",
            "run-0000/metadata.json",
            "run-0000/loadgen_measurement.log",
            "run-0005/metadata.json",
        ] {
            assert!(dir.join(rel).exists(), "missing artifact {rel}");
        }
        // The measurement log is MoonGen-format output.
        let log = std::fs::read_to_string(dir.join("run-0000/loadgen_measurement.log")).unwrap();
        assert!(log.contains("[Device: id=1] RX:"), "{log}");
    }

    #[test]
    fn results_show_forwarding_because_setup_ran() {
        let mut tb = case_study_testbed(2);
        let root = tmp("setupcoupling");
        let outcome = Controller::new(&mut tb)
            .run_experiment(&small_spec(), &RunOptions::new(&root))
            .unwrap();
        // At 10 kpps / 64 B the bare-metal DuT forwards everything.
        let log =
            std::fs::read_to_string(outcome.result_dir.join("run-0000/loadgen_measurement.log"))
                .unwrap();
        assert!(
            log.contains("RX: 10000 packets"),
            "setup must have enabled forwarding: {log}"
        );
    }

    #[test]
    fn setup_failure_aborts_with_context() {
        let mut tb = case_study_testbed(3);
        let mut spec = small_spec();
        spec.roles[1].setup =
            crate::script::Script::parse("sysctl -w no.such.key=1\npos_sync setup_done");
        spec.roles[0].setup = crate::script::Script::parse("pos_sync setup_done");
        let err = Controller::new(&mut tb)
            .run_experiment(&spec, &RunOptions::new(tmp("setupfail")))
            .unwrap_err();
        match err {
            ControllerError::SetupFailed {
                role,
                command,
                result,
            } => {
                assert_eq!(role, "dut");
                assert!(command.contains("no.such.key"));
                assert_ne!(result.exit_code, 0);
            }
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn allocation_conflict_rejected() {
        let mut tb = case_study_testbed(4);
        // Another user holds vtartu right now.
        tb.calendar
            .reserve(
                "mallory",
                &["vtartu".to_string()],
                tb.now(),
                pos_simkernel::SimDuration::from_hours(5),
            )
            .unwrap();
        let err = Controller::new(&mut tb)
            .run_experiment(&small_spec(), &RunOptions::new(tmp("alloc")))
            .unwrap_err();
        assert!(matches!(err, ControllerError::Allocation(_)), "{err}");
    }

    #[test]
    fn reservation_released_after_experiment() {
        let mut tb = case_study_testbed(5);
        Controller::new(&mut tb)
            .run_experiment(&small_spec(), &RunOptions::new(tmp("release")))
            .unwrap();
        let now = tb.now();
        assert!(tb.calendar.is_free(
            "vtartu",
            now,
            now + pos_simkernel::SimDuration::from_hours(1)
        ));
    }

    #[test]
    fn too_many_runs_rejected_upfront() {
        let mut tb = case_study_testbed(6);
        let mut spec = small_spec();
        let big: Vec<crate::vars::VarValue> = (0..200i64).map(crate::vars::VarValue::Int).collect();
        spec.loop_vars
            .set("a", crate::vars::VarValue::List(big.clone()));
        spec.loop_vars.set("b", crate::vars::VarValue::List(big));
        let mut opts = RunOptions::new(tmp("toomany"));
        opts.max_runs = 1000;
        let err = Controller::new(&mut tb)
            .run_experiment(&spec, &opts)
            .unwrap_err();
        assert!(matches!(err, ControllerError::TooManyRuns { .. }));
    }

    #[test]
    fn unknown_host_and_image_rejected() {
        let mut tb = case_study_testbed(7);
        let mut spec = small_spec();
        spec.roles[0].host = "nonexistent".into();
        assert!(matches!(
            Controller::new(&mut tb).run_experiment(&spec, &RunOptions::new(tmp("uh"))),
            Err(ControllerError::UnknownHost { .. })
        ));

        let mut tb = case_study_testbed(8);
        let mut spec = small_spec();
        spec.roles[0].image_name = "gentoo".into();
        assert!(matches!(
            Controller::new(&mut tb).run_experiment(&spec, &RunOptions::new(tmp("ui"))),
            Err(ControllerError::UnknownImage { .. })
        ));
    }

    #[test]
    fn barriers_align_lanes_to_slowest_host() {
        // loadgen sleeps 1 s, dut sleeps 5 s before the common barrier: the
        // barrier must complete after ~5 s, not ~6 s (parallel, not serial).
        let mut tb = case_study_testbed(9);
        let mut spec = small_spec();
        spec.loop_vars = crate::vars::Variables::new(); // single run
        spec.roles[0].measurement = crate::script::Script::parse("sleep 1\npos_sync run_done");
        spec.roles[1].measurement = crate::script::Script::parse("sleep 5\npos_sync run_done");
        let before_boot = tb.now();
        let outcome = Controller::new(&mut tb)
            .run_experiment(&spec, &RunOptions::new(tmp("barrier")))
            .unwrap();
        let total = (outcome.finished - before_boot).as_secs_f64();
        // Boot ≈80 s dominated; the measurement adds max(1,5)=5 s, not 6 s.
        // Measure the run itself from metadata instead:
        let store = ResultStore::open(&outcome.result_dir);
        let runs = store.list_runs().unwrap();
        let meta = ResultStore::read_run_metadata(&runs[0]).unwrap();
        let run_secs = (meta.finished_ns - meta.started_ns) as f64 / 1e9;
        assert!(
            (5.0..5.6).contains(&run_secs),
            "lockstep run should take ≈5 s (parallel), got {run_secs} (total {total})"
        );
    }

    #[test]
    fn progress_callback_fires() {
        let mut tb = case_study_testbed(10);
        let events = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        let sink = events.clone();
        Controller::new(&mut tb)
            .with_progress(move |p| sink.borrow_mut().push(p.clone()))
            .run_experiment(&small_spec(), &RunOptions::new(tmp("progress")))
            .unwrap();
        let events = events.borrow();
        let ready = events
            .iter()
            .filter(|e| matches!(e, Progress::HostReady { .. }))
            .count();
        let runs = events
            .iter()
            .filter(|e| matches!(e, Progress::RunDone { .. }))
            .count();
        assert_eq!(ready, 2);
        assert_eq!(runs, 6);
        assert!(events.contains(&Progress::SetupDone));
        // Run indices arrive in order with correct totals.
        let mut expect = 0;
        for e in events.iter() {
            if let Progress::RunDone {
                index,
                total,
                success,
                ..
            } = e
            {
                assert_eq!(*index, expect);
                assert_eq!(*total, 6);
                assert!(success);
                expect += 1;
            }
        }
    }

    #[test]
    fn determinism_full_experiment() {
        let run = |root: &Path| {
            let mut tb = case_study_testbed(77);
            let outcome = Controller::new(&mut tb)
                .run_experiment(&small_spec(), &RunOptions::new(root))
                .unwrap();
            let mut all = String::new();
            for rec in &outcome.runs {
                all.push_str(&rec.outputs["loadgen"].stdout);
            }
            (all, outcome.finished.as_nanos())
        };
        let a = run(&tmp("det-a"));
        let b = run(&tmp("det-b"));
        assert_eq!(a, b, "same seed, same experiment, same bytes");
    }

    #[test]
    fn crash_recovery_retries_run() {
        // A command that crashes the DuT on its first invocation, then
        // succeeds: models a driver wedge that a reboot clears.
        let mut tb = case_study_testbed(11);
        let crashed_once = std::rc::Rc::new(std::cell::Cell::new(false));
        let flag = crashed_once.clone();
        tb.register_command(
            "flaky-op",
            std::rc::Rc::new(move |tb: &mut Testbed, host: &str, _argv: &[String]| {
                if !flag.get() {
                    flag.set(true);
                    tb.host_mut(host).unwrap().inject_crash();
                    // The crash means the connection drops mid-command.
                    CommandResult::fail(255, "connection reset by peer")
                } else {
                    CommandResult::ok("ok")
                }
            }),
        );
        let mut spec = small_spec();
        spec.loop_vars = crate::vars::Variables::new(); // single run
        spec.roles[1].measurement =
            crate::script::Script::parse("flaky-op\nsleep 1\npos_sync run_done");
        spec.roles[0].measurement = crate::script::Script::parse("sleep 1\npos_sync run_done");

        let outcome = Controller::new(&mut tb)
            .run_experiment(&spec, &RunOptions::new(tmp("recovery")))
            .unwrap();
        assert_eq!(outcome.runs.len(), 1);
        let rec = &outcome.runs[0];
        assert!(rec.success);
        assert!(rec.attempts >= 2, "first attempt crashed");
        assert!(rec.recoveries >= 1, "an out-of-band recovery happened");
        // Host is up and was rebooted at least twice (initial boot + reset).
        assert!(tb.host("vtartu").unwrap().boots >= 2);
    }

    #[test]
    fn persistent_failure_aborts_or_continues_per_option() {
        let mut tb = case_study_testbed(12);
        let mut spec = small_spec();
        spec.loop_vars = crate::vars::Variables::new();
        spec.roles[1].measurement = crate::script::Script::parse("false\npos_sync run_done");
        spec.roles[0].measurement = crate::script::Script::parse("pos_sync run_done");
        let err = Controller::new(&mut tb)
            .run_experiment(&spec, &RunOptions::new(tmp("persist")))
            .unwrap_err();
        assert!(
            matches!(err, ControllerError::RunFailed { index: 0, .. }),
            "{err}"
        );

        // With continue_on_run_failure the experiment records the failure.
        let mut tb = case_study_testbed(13);
        let mut opts = RunOptions::new(tmp("persist2"));
        opts.continue_on_run_failure = true;
        let outcome = Controller::new(&mut tb)
            .run_experiment(&spec, &opts)
            .unwrap();
        assert_eq!(outcome.successes(), 0);
        assert_eq!(outcome.runs.len(), 1);
        assert!(outcome.runs[0].attempts >= 3, "used its retry budget");
    }

    #[test]
    fn host_files_under_srv_results_are_collected_per_run() {
        let mut tb = case_study_testbed(15);
        let mut spec = small_spec();
        spec.loop_vars = crate::vars::Variables::new().with("pkt_rate", vec![10_000i64, 20_000]);
        spec.global_vars.set("pkt_sz", 64i64);
        spec.roles[0].measurement = crate::script::Script::parse(
            "moongen --rate $pkt_rate --size $pkt_sz --time $run_secs --pcap /srv/results/tx.pcap\n\
             pos_sync run_done\n",
        );
        let outcome = Controller::new(&mut tb)
            .run_experiment(&spec, &RunOptions::new(tmp("pcapcollect")))
            .unwrap();
        for idx in 0..2 {
            let pcap = outcome
                .result_dir
                .join(format!("run-{idx:04}/loadgen_tx.pcap"));
            assert!(pcap.exists(), "pcap artifact for run {idx}");
            let bytes = std::fs::read(&pcap).unwrap();
            assert_eq!(&bytes[..4], &0xA1B2_C3D4u32.to_le_bytes());
        }
        // The host's staging area is empty again after collection.
        assert!(tb
            .host("vriga")
            .unwrap()
            .fs
            .keys()
            .all(|k| !k.starts_with("/srv/results/")));
    }

    #[test]
    fn metadata_matches_cross_product_order() {
        let mut tb = case_study_testbed(14);
        let outcome = Controller::new(&mut tb)
            .run_experiment(&small_spec(), &RunOptions::new(tmp("meta")))
            .unwrap();
        let store = ResultStore::open(&outcome.result_dir);
        let runs = store.list_runs().unwrap();
        assert_eq!(runs.len(), 6);
        let expected = expand_cross_product(&small_spec().loop_vars);
        for (dir, exp) in runs.iter().zip(&expected) {
            let meta = ResultStore::read_run_metadata(dir).unwrap();
            assert_eq!(meta.index, exp.index);
            assert_eq!(meta.label, exp.label());
            assert!(meta.success);
            assert_eq!(meta.hosts["dut"], "vtartu");
        }
    }
}
