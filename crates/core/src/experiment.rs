//! The experiment specification.
//!
//! Fig. 2 of the paper: an experiment is a controller-side *experiment
//! script* plus, per experiment host, a *setup* and a *measurement* script
//! and a *local variables* file; globally there are *global variables* and
//! *loop variables*. This module is the typed form of that file bundle.

use crate::script::Script;
use crate::vars::Variables;
use serde::{Deserialize, Serialize};

/// One experiment host role (e.g. "loadgen", "dut") and everything pos
/// needs to prepare that host.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RoleSpec {
    /// Role name; also the key for local variables and result files.
    pub role: String,
    /// The testbed host assigned to this role (Appendix A: the arguments
    /// to `experiment.sh`, e.g. `vriga`, `vtartu`).
    pub host: String,
    /// Live image name to boot.
    pub image_name: String,
    /// Image snapshot pin; `None` selects the newest snapshot.
    pub image_snapshot: Option<String>,
    /// Kernel boot parameters.
    pub boot_params: Vec<String>,
    /// The setup script (runs once, setup phase).
    pub setup: Script,
    /// The measurement script (runs once per measurement run).
    pub measurement: Script,
    /// This host's local variables.
    pub local_vars: Variables,
}

impl RoleSpec {
    /// Creates a role with empty scripts and variables.
    pub fn new(role: impl Into<String>, host: impl Into<String>) -> RoleSpec {
        RoleSpec {
            role: role.into(),
            host: host.into(),
            image_name: "debian-buster".into(),
            image_snapshot: None,
            boot_params: Vec::new(),
            setup: Script::default(),
            measurement: Script::default(),
            local_vars: Variables::new(),
        }
    }
}

/// A complete pos experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExperimentSpec {
    /// Experiment name (result directory component).
    pub name: String,
    /// The experimenting user (calendar owner).
    pub user: String,
    /// Planned duration for the calendar reservation. An experiment that
    /// overruns its reservation is an error (multi-user fairness).
    pub planned_duration_secs: u64,
    /// Variables visible on all hosts.
    pub global_vars: Variables,
    /// Variables swept across measurement runs (cross product).
    pub loop_vars: Variables,
    /// The participating roles.
    pub roles: Vec<RoleSpec>,
}

/// Problems detected by [`ExperimentSpec::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecError {
    /// No roles defined.
    NoRoles,
    /// Two roles share a name or a host.
    Duplicate {
        /// What is duplicated ("role" or "host").
        what: &'static str,
        /// The duplicated value.
        value: String,
    },
    /// Barrier sequences differ between roles' scripts, which would
    /// deadlock the lockstep execution.
    BarrierMismatch {
        /// The phase with the mismatch ("setup" or "measurement").
        phase: &'static str,
        /// First role (reference).
        reference: String,
        /// The role that disagrees.
        offender: String,
    },
    /// A loop variable would produce zero runs.
    EmptySweep {
        /// The variable with the empty list.
        variable: String,
    },
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpecError::NoRoles => write!(f, "experiment has no roles"),
            SpecError::Duplicate { what, value } => write!(f, "duplicate {what}: {value}"),
            SpecError::BarrierMismatch {
                phase,
                reference,
                offender,
            } => write!(
                f,
                "{phase} scripts of {reference} and {offender} have different barrier sequences"
            ),
            SpecError::EmptySweep { variable } => {
                write!(f, "loop variable {variable} has an empty value list")
            }
        }
    }
}

impl std::error::Error for SpecError {}

impl ExperimentSpec {
    /// Creates an empty experiment.
    pub fn new(name: impl Into<String>, user: impl Into<String>) -> ExperimentSpec {
        ExperimentSpec {
            name: name.into(),
            user: user.into(),
            planned_duration_secs: 3 * 3600, // the case study's ~3 h
            global_vars: Variables::new(),
            loop_vars: Variables::new(),
            roles: Vec::new(),
        }
    }

    /// Adds a role (builder style).
    pub fn with_role(mut self, role: RoleSpec) -> ExperimentSpec {
        self.roles.push(role);
        self
    }

    /// The role with the given name.
    pub fn role(&self, name: &str) -> Option<&RoleSpec> {
        self.roles.iter().find(|r| r.role == name)
    }

    /// Host names of all roles.
    pub fn hosts(&self) -> Vec<String> {
        self.roles.iter().map(|r| r.host.clone()).collect()
    }

    /// Checks structural invariants before the controller touches hardware.
    pub fn validate(&self) -> Result<(), SpecError> {
        if self.roles.is_empty() {
            return Err(SpecError::NoRoles);
        }
        let mut seen_roles = std::collections::BTreeSet::new();
        let mut seen_hosts = std::collections::BTreeSet::new();
        for r in &self.roles {
            if !seen_roles.insert(&r.role) {
                return Err(SpecError::Duplicate {
                    what: "role",
                    value: r.role.clone(),
                });
            }
            if !seen_hosts.insert(&r.host) {
                return Err(SpecError::Duplicate {
                    what: "host",
                    value: r.host.clone(),
                });
            }
        }
        // Lockstep execution requires identical barrier sequences.
        for phase in ["setup", "measurement"] {
            let script_of = |r: &RoleSpec| match phase {
                "setup" => r.setup.clone(),
                _ => r.measurement.clone(),
            };
            let reference = &self.roles[0];
            let ref_barriers: Vec<String> = script_of(reference)
                .barrier_names()
                .iter()
                .map(|s| s.to_string())
                .collect();
            for r in &self.roles[1..] {
                let barriers: Vec<String> = script_of(r)
                    .barrier_names()
                    .iter()
                    .map(|s| s.to_string())
                    .collect();
                if barriers != ref_barriers {
                    return Err(SpecError::BarrierMismatch {
                        phase: if phase == "setup" {
                            "setup"
                        } else {
                            "measurement"
                        },
                        reference: reference.role.clone(),
                        offender: r.role.clone(),
                    });
                }
            }
        }
        for (name, v) in self.loop_vars.iter() {
            if v.instances().is_empty() {
                return Err(SpecError::EmptySweep {
                    variable: name.clone(),
                });
            }
        }
        Ok(())
    }

    /// Serializes the spec to YAML (part of the published artifacts).
    pub fn to_yaml(&self) -> String {
        serde_yaml::to_string(self).expect("spec always serializes")
    }

    /// SHA-256 fingerprint of the spec's canonical YAML form.
    ///
    /// Recorded in the campaign journal's `CampaignStarted` record;
    /// `pos resume` refuses a result tree whose stored spec no longer
    /// digests to the journaled value, so an interrupted campaign can
    /// never be "resumed" into a different experiment.
    pub fn digest(&self) -> String {
        crate::hash::sha256_hex(self.to_yaml().as_bytes())
    }

    /// Writes the experiment as a file bundle, the layout of the
    /// `pos-artifacts` repository's `experiment/` folder: `experiment.yml`
    /// plus, per role, plain-text `setup.sh` / `measurement.sh` /
    /// `local-variables.yml`, and the global/loop variable files.
    pub fn to_dir(&self, dir: &std::path::Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        std::fs::write(dir.join("experiment.yml"), self.to_yaml())?;
        std::fs::write(dir.join("global-variables.yml"), self.global_vars.to_yaml())?;
        std::fs::write(dir.join("loop-variables.yml"), self.loop_vars.to_yaml())?;
        for role in &self.roles {
            let role_dir = dir.join(&role.role);
            std::fs::create_dir_all(&role_dir)?;
            std::fs::write(role_dir.join("setup.sh"), &role.setup.source)?;
            std::fs::write(role_dir.join("measurement.sh"), &role.measurement.source)?;
            std::fs::write(
                role_dir.join("local-variables.yml"),
                role.local_vars.to_yaml(),
            )?;
        }
        Ok(())
    }

    /// Loads an experiment from a file bundle written by [`Self::to_dir`]
    /// (or from the `experiment/` folder of a published result tree).
    ///
    /// The plain-text script and variable files are authoritative: they
    /// are what a replicating researcher reads and edits, so they override
    /// whatever `experiment.yml` embeds.
    pub fn from_dir(dir: &std::path::Path) -> std::io::Result<ExperimentSpec> {
        let yaml = std::fs::read_to_string(dir.join("experiment.yml"))?;
        let mut spec: ExperimentSpec = serde_yaml::from_str(&yaml)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
        let load_vars = |path: std::path::PathBuf| -> std::io::Result<Option<Variables>> {
            match std::fs::read_to_string(path) {
                Ok(text) => Variables::from_yaml(&text)
                    .map(Some)
                    .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e)),
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
                Err(e) => Err(e),
            }
        };
        if let Some(v) = load_vars(dir.join("global-variables.yml"))? {
            spec.global_vars = v;
        }
        if let Some(v) = load_vars(dir.join("loop-variables.yml"))? {
            spec.loop_vars = v;
        }
        for role in &mut spec.roles {
            let role_dir = dir.join(&role.role);
            if let Ok(text) = std::fs::read_to_string(role_dir.join("setup.sh")) {
                role.setup = Script::parse(&text);
            }
            if let Ok(text) = std::fs::read_to_string(role_dir.join("measurement.sh")) {
                role.measurement = Script::parse(&text);
            }
            if let Some(v) = load_vars(role_dir.join("local-variables.yml"))? {
                role.local_vars = v;
            }
        }
        Ok(spec)
    }
}

/// Builds the paper's case-study experiment (§5 / Appendix A): MoonGen on
/// `loadgen_host` measures the Linux router on `dut_host`, sweeping packet
/// size {64, 1500} × `rate_steps` rates from 10 kpps to 300 kpps. Each
/// measurement run transmits for `run_secs` seconds.
pub fn linux_router_experiment(
    loadgen_host: &str,
    dut_host: &str,
    rate_steps: usize,
    run_secs: u64,
) -> ExperimentSpec {
    assert!(rate_steps >= 1, "need at least one rate step");
    let rates: Vec<i64> = (1..=rate_steps as i64)
        .map(|i| 10_000 + (300_000 - 10_000) * (i - 1) / (rate_steps as i64 - 1).max(1))
        .collect();

    let dut_setup = Script::parse(
        "# enable forwarding between the two experiment ports\n\
         ip addr add $dut_ip0/24 dev $PORT0\n\
         ip addr add $dut_ip1/24 dev $PORT1\n\
         ip link set $PORT0 up\n\
         ip link set $PORT1 up\n\
         sysctl -w net.ipv4.ip_forward=1\n\
         pos_sync configured\n\
         pos_sync setup_done\n",
    );
    let dut_measurement = Script::parse(
        "# the DuT is passive during a run; hold until the generator is done\n\
         sleep $run_secs\n\
         pos_sync run_done\n",
    );
    let loadgen_setup = Script::parse(
        "ip link set $PORT0 up\n\
         ip link set $PORT1 up\n\
         # wait for the DuT to finish configuring, then verify the path\n\
         pos_sync configured\n\
         ping $dut_ip0\n\
         pos_sync setup_done\n",
    );
    let loadgen_measurement = Script::parse(
        "moongen --rate $pkt_rate --size $pkt_sz --time $run_secs\n\
         pos_sync run_done\n",
    );

    ExperimentSpec {
        name: "linux-router-forwarding".into(),
        user: "user".into(),
        planned_duration_secs: 3 * 3600,
        global_vars: Variables::new()
            .with("run_secs", run_secs as i64)
            .with("dut_ip0", "10.0.0.1")
            .with("dut_ip1", "10.0.1.1"),
        loop_vars: Variables::new().with("pkt_sz", vec![64i64, 1500]).with(
            "pkt_rate",
            crate::vars::VarValue::List(rates.into_iter().map(Into::into).collect()),
        ),
        roles: vec![
            RoleSpec {
                role: "loadgen".into(),
                host: loadgen_host.into(),
                image_name: "debian-buster".into(),
                image_snapshot: Some("2020-10-01T00:00:00Z".into()),
                boot_params: vec!["isolcpus=1-11".into()],
                setup: loadgen_setup,
                measurement: loadgen_measurement,
                local_vars: Variables::new().with("PORT0", "eno1").with("PORT1", "eno2"),
            },
            RoleSpec {
                role: "dut".into(),
                host: dut_host.into(),
                image_name: "debian-buster".into(),
                image_snapshot: Some("2020-10-01T00:00:00Z".into()),
                boot_params: vec![],
                setup: dut_setup,
                measurement: dut_measurement,
                local_vars: Variables::new()
                    .with("PORT0", "enp24s0f0")
                    .with("PORT1", "enp24s0f1"),
            },
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_study_spec_is_valid() {
        let spec = linux_router_experiment("vriga", "vtartu", 30, 10);
        spec.validate().unwrap();
        assert_eq!(spec.hosts(), vec!["vriga", "vtartu"]);
        assert_eq!(
            crate::loopvars::cross_product_size(&spec.loop_vars),
            Some(60),
            "Appendix A: 60 individual measurements"
        );
    }

    #[test]
    fn case_study_rates_span_10k_to_300k() {
        let spec = linux_router_experiment("a", "b", 30, 10);
        let rates = spec.loop_vars.get("pkt_rate").unwrap().instances();
        assert_eq!(rates.len(), 30);
        assert_eq!(rates[0].as_i64(), Some(10_000));
        assert_eq!(rates[29].as_i64(), Some(300_000));
    }

    #[test]
    fn validate_rejects_empty() {
        let spec = ExperimentSpec::new("x", "u");
        assert_eq!(spec.validate(), Err(SpecError::NoRoles));
    }

    #[test]
    fn validate_rejects_duplicate_roles_and_hosts() {
        let spec = ExperimentSpec::new("x", "u")
            .with_role(RoleSpec::new("a", "h1"))
            .with_role(RoleSpec::new("a", "h2"));
        assert!(matches!(
            spec.validate(),
            Err(SpecError::Duplicate { what: "role", .. })
        ));
        let spec = ExperimentSpec::new("x", "u")
            .with_role(RoleSpec::new("a", "h1"))
            .with_role(RoleSpec::new("b", "h1"));
        assert!(matches!(
            spec.validate(),
            Err(SpecError::Duplicate { what: "host", .. })
        ));
    }

    #[test]
    fn validate_rejects_barrier_mismatch() {
        let mut a = RoleSpec::new("a", "h1");
        a.setup = Script::parse("echo x\npos_sync s1");
        let mut b = RoleSpec::new("b", "h2");
        b.setup = Script::parse("echo y\npos_sync OTHER");
        let spec = ExperimentSpec::new("x", "u").with_role(a).with_role(b);
        assert!(matches!(
            spec.validate(),
            Err(SpecError::BarrierMismatch { phase: "setup", .. })
        ));
    }

    #[test]
    fn validate_rejects_empty_sweep() {
        let mut spec = ExperimentSpec::new("x", "u").with_role(RoleSpec::new("a", "h1"));
        spec.loop_vars
            .set("rates", crate::vars::VarValue::List(vec![]));
        assert!(matches!(spec.validate(), Err(SpecError::EmptySweep { .. })));
    }

    #[test]
    fn spec_serializes_to_yaml() {
        let spec = linux_router_experiment("vriga", "vtartu", 5, 10);
        let yaml = spec.to_yaml();
        assert!(yaml.contains("linux-router-forwarding"));
        assert!(yaml.contains("pkt_sz"));
        let back: ExperimentSpec = serde_yaml::from_str(&yaml).unwrap();
        assert_eq!(back.name, spec.name);
        assert_eq!(back.roles.len(), 2);
        assert_eq!(back.roles[1].setup.steps, spec.roles[1].setup.steps);
    }

    #[test]
    fn dir_roundtrip_preserves_spec() {
        let dir = std::env::temp_dir().join(format!("pos-spec-dir-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let spec = linux_router_experiment("vriga", "vtartu", 5, 10);
        spec.to_dir(&dir).unwrap();
        for rel in [
            "experiment.yml",
            "loop-variables.yml",
            "dut/setup.sh",
            "loadgen/measurement.sh",
            "loadgen/local-variables.yml",
        ] {
            assert!(dir.join(rel).exists(), "missing {rel}");
        }
        let back = ExperimentSpec::from_dir(&dir).unwrap();
        assert_eq!(back.name, spec.name);
        assert_eq!(back.loop_vars, spec.loop_vars);
        assert_eq!(back.roles[1].setup.steps, spec.roles[1].setup.steps);
        assert_eq!(back.roles[0].local_vars, spec.roles[0].local_vars);
        back.validate().unwrap();
    }

    #[test]
    fn from_dir_plain_files_override_embedded_yaml() {
        // The replicating researcher edits measurement.sh by hand; the
        // edited file must win over the YAML-embedded copy.
        let dir = std::env::temp_dir().join(format!("pos-spec-edit-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let spec = linux_router_experiment("a", "b", 2, 1);
        spec.to_dir(&dir).unwrap();
        std::fs::write(
            dir.join("dut/measurement.sh"),
            "echo edited\npos_sync run_done\n",
        )
        .unwrap();
        std::fs::write(
            dir.join("loop-variables.yml"),
            "pkt_sz: [64]\npkt_rate: [5000]\n",
        )
        .unwrap();
        let back = ExperimentSpec::from_dir(&dir).unwrap();
        assert!(back.roles[1].measurement.source.contains("echo edited"));
        assert_eq!(
            crate::loopvars::cross_product_size(&back.loop_vars),
            Some(1)
        );
    }

    #[test]
    fn from_dir_missing_experiment_yml_fails() {
        let dir = std::env::temp_dir().join(format!("pos-spec-miss-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        assert!(ExperimentSpec::from_dir(&dir).is_err());
    }

    #[test]
    fn single_rate_step_works() {
        let spec = linux_router_experiment("a", "b", 1, 1);
        let rates = spec.loop_vars.get("pkt_rate").unwrap().instances();
        assert_eq!(rates.len(), 1);
        assert_eq!(rates[0].as_i64(), Some(10_000));
    }
}
