//! # pos-core
//!
//! The plain orchestrating service — the paper's primary contribution.
//!
//! pos consists of a *methodology* (a mandatory experiment structure that
//! makes experiments reproducible by design) and a *testbed controller*
//! implementing it. This crate is both:
//!
//! * [`vars`] — experiment parameters: typed values, YAML files, `$NAME`
//!   substitution. The script/parameter split is the paper's HTML/CSS
//!   analogy (§4.3).
//! * [`loopvars`] — loop variables and their full cross-product expansion
//!   into measurement runs (§4.4).
//! * [`script`] — experiment scripts: command sequences with named
//!   synchronization barriers.
//! * [`experiment`] — the experiment specification: roles (DuT, LoadGen,
//!   …), per-role setup/measurement scripts, images, variables.
//! * [`controller`] — the three-phase workflow: setup (allocate → boot →
//!   configure), measurement (one queued run per loop-variable
//!   combination, all output captured), and handoff to evaluation; plus
//!   out-of-band recovery of crashed hosts (R3).
//! * [`resultstore`] — the structured on-disk result tree with per-run
//!   metadata "garnished" onto every result (§6).
//! * [`commands`] — experiment-domain commands (`moongen`, `iperf`)
//!   registered into the testbed's command registry.
//! * [`requirements`] — the R1–R5 capability model behind Table 1.
//! * [`hash`] — SHA-256, fingerprinting every artifact the store writes.
//! * [`journal`] — the append-only campaign journal (write-ahead log)
//!   that makes interrupted campaigns resumable.
//! * [`fsck`] — offline integrity checking of a result tree against its
//!   journal and per-run checksum manifests.
//! * [`vfs`] — the durable-I/O layer all of the above write through,
//!   with deterministic storage-fault injection (ENOSPC, torn writes,
//!   fsync failures, bit rot) as a replayable plan.
//! * [`scrub`] — bit-rot detection and self-healing repair of result
//!   trees (`pos scrub`).

#![warn(missing_docs)]

pub mod commands;
pub mod controller;
pub mod experiment;
pub mod fsck;
pub mod hash;
pub mod journal;
pub mod loopvars;
pub mod requirements;
pub mod resultstore;
pub mod script;
pub mod scrub;
pub mod vars;
pub mod vfs;

pub use controller::{
    CampaignSetup, CancelToken, Controller, ControllerError, ExperimentOutcome, HostHealth,
    Progress, ProgressCounters, ProgressSnapshot, RunOptions, RunRecord, RunStep,
};
pub use experiment::{ExperimentSpec, RoleSpec};
pub use loopvars::{expand_cross_product, RunParams};
pub use script::{Script, Step};
pub use scrub::{scrub, ScrubReport};
pub use vars::{VarValue, Variables};
pub use vfs::{DiskFault, FaultPlan, Vfs};
