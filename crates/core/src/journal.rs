//! The append-only campaign journal.
//!
//! A campaign (one `run_experiment` invocation) writes a write-ahead log
//! of its lifecycle into `journal.log` at the root of the result tree.
//! Every record is framed, checksummed, and fsynced before the controller
//! proceeds, so after a crash — of the controller process or the machine —
//! the journal tells exactly how far the campaign got:
//!
//! ```text
//! POSJ1 <len:08x> <sha256-hex-of-json> <json>\n
//! ```
//!
//! The frame makes two failure modes distinguishable on replay:
//!
//! * **Torn tail** — the file ends mid-record (crash during an append).
//!   The complete prefix is valid; the tail is reported and ignored.
//!   This is the *expected* crash artifact and resume handles it.
//! * **Corruption** — a complete frame whose payload does not match its
//!   checksum (bit rot, manual editing). This is never produced by a
//!   crash and replay refuses the journal.
//!
//! [`crate::controller::Controller::resume_experiment`] replays the
//! journal to skip verified-complete runs; [`crate::fsck`] replays it to
//! audit a result tree offline.

use crate::hash::sha256_hex;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// Frame magic; bump the digit for incompatible format changes.
pub const JOURNAL_MAGIC: &str = "POSJ1";

/// File name of the journal inside a result tree.
pub const JOURNAL_FILE: &str = "journal.log";

/// File name of worker lane `lane`'s journal inside a result tree.
///
/// A parallel campaign keeps the scheduler-level journal in
/// [`JOURNAL_FILE`] (campaign start, lane plan, campaign finish) and one
/// journal per worker lane recording the runs that lane executed. Lane
/// journals are an execution artifact, not part of the canonical result
/// tree: the determinism contract excludes `journal*.log` when comparing
/// parallel against sequential trees.
pub fn lane_journal_file(lane: usize) -> String {
    format!("journal-lane{lane}.log")
}

/// One campaign lifecycle event.
///
/// Records are self-describing externally-tagged JSON objects
/// (`{"RunStarted":{...}}`), so a journal survives the addition of new
/// fields (serde ignores unknown keys on replay of older code's
/// journals... and fails loudly on missing ones, which is what we want
/// for a consistency mechanism).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum JournalRecord {
    /// The campaign allocated hosts and created the result tree.
    CampaignStarted {
        /// Testbed root seed — a resume must run on the same seed to
        /// reproduce the boot/fault timeline.
        seed: u64,
        /// SHA-256 of the effective experiment spec (see
        /// [`crate::experiment::ExperimentSpec::digest`]); guards resume
        /// against a spec that was edited after the fact.
        spec_digest: String,
        /// Size of the expanded cross product.
        total_runs: usize,
        /// Testbed flavor the campaign ran on (`"pos"` bare metal,
        /// `"vpos"` virtualized) — the two boot differently, so a resume
        /// on the wrong one would diverge from the recorded timeline.
        testbed: String,
        /// Virtual start time, nanoseconds.
        started_ns: u64,
    },
    /// A later session picked the campaign up again.
    CampaignResumed {
        /// Virtual time of the resuming session at takeover, nanoseconds.
        resumed_ns: u64,
        /// How many runs the resuming session verified and skipped.
        verified_runs: usize,
    },
    /// A measurement run began executing.
    RunStarted {
        /// Zero-based run index in cross-product order.
        index: usize,
        /// Virtual start time, nanoseconds.
        started_ns: u64,
    },
    /// A measurement run reached a terminal state and its artifacts are
    /// durable (written, checksummed, manifest fsynced).
    RunCompleted {
        /// Zero-based run index.
        index: usize,
        /// Whether the final attempt succeeded.
        success: bool,
        /// Attempts consumed (0 = failed fast on a quarantined host).
        attempts: u32,
        /// Out-of-band recoveries this run triggered.
        recoveries: u32,
        /// Virtual time spent in recovery during this run, nanoseconds.
        recovery_time_ns: u64,
        /// Virtual start time of the run, nanoseconds.
        started_ns: u64,
        /// Virtual end time of the run, nanoseconds.
        finished_ns: u64,
        /// Draw count of the testbed's shared management RNG stream at
        /// run end; resume seeks the stream here after skipping the run.
        rng_cursor: u64,
        /// SHA-256 of the run's `checksums.json` — the run tree digest.
        digest: String,
        /// Warn-and-above trace lines captured during the run.
        fault_trace: Vec<String>,
    },
    /// A parallel scheduler split the campaign across worker lanes.
    ///
    /// Written to the scheduler-level journal right after
    /// `CampaignStarted`; its presence is how `pos resume` and `pos fsck`
    /// recognize a parallel result tree and go looking for per-lane
    /// journals (see [`lane_journal_file`]).
    LanePlan {
        /// Number of worker lanes.
        lanes: usize,
        /// Testbed flavor of each lane (`"pos"` bare metal, `"vpos"`
        /// virtualized clone), indexed by lane.
        flavors: Vec<String>,
    },
    /// A worker lane finished its setup phase and began executing runs.
    ///
    /// First record of each per-lane journal.
    LaneStarted {
        /// Zero-based lane index.
        lane: usize,
        /// Root seed of the lane's replica testbed (equals the campaign
        /// seed — lanes are same-seed replicas).
        seed: u64,
        /// Testbed flavor the lane runs on.
        flavor: String,
        /// Virtual time the lane became ready, nanoseconds.
        started_ns: u64,
    },
    /// The scheduler's lane-supervision configuration, journaled right
    /// after [`Self::LanePlan`] so a resume replays the exact same
    /// failover decisions (fault plan, grace factor, poison threshold,
    /// recovery policy).
    SupervisorPlan {
        /// JSON-serialized supervisor options (owned by `pos-sched`; the
        /// journal stores it opaquely so the record type stays in core).
        config: String,
    },
    /// A lane supervisor declared a worker lane dead and stopped
    /// dispatching to it.
    LaneRetired {
        /// The retired lane.
        lane: usize,
        /// Canonical virtual instant of the retirement, nanoseconds.
        at_ns: u64,
        /// Human-readable cause (injected fault, watchdog overrun,
        /// hosts quarantined, poison run).
        reason: String,
        /// The run the lane was holding when it died, if any. `Some`
        /// obliges the journal to later account for that run — either a
        /// `RunCompleted` (reassigned and finished elsewhere) or a
        /// `RunQuarantined`; `pos fsck` flags the stranded case.
        run: Option<usize>,
    },
    /// A run whose lane died is being retried on another lane after a
    /// deterministic backoff (the retry ladder).
    RunRetry {
        /// The run being retried.
        index: usize,
        /// Ladder attempt (1-based; resume continues the count).
        attempt: u32,
        /// The lane receiving the retry.
        lane: usize,
        /// Backoff delay charged to the receiving lane, nanoseconds
        /// (drawn from the `testbed/lane{k}/retry{run}` stream).
        delay_ns: u64,
        /// Canonical virtual instant of the retry decision, nanoseconds.
        at_ns: u64,
    },
    /// A poison run killed enough consecutive lanes to be quarantined:
    /// it is recorded failed (with a forensic bundle) instead of taking
    /// the campaign down. Always followed by a `RunCompleted` with
    /// `success: false` sealing the quarantined run's artifacts.
    RunQuarantined {
        /// The quarantined run.
        index: usize,
        /// Lanes this run killed before quarantine.
        lanes_killed: u32,
        /// Canonical virtual instant of the quarantine, nanoseconds.
        at_ns: u64,
    },
    /// The supervisor replanned a replacement lane (site calendar when a
    /// bare-metal replica set was free, virtual clone otherwise). Resume
    /// and fsck learn about lane journals beyond the original
    /// [`Self::LanePlan`] from these records.
    LaneReplanned {
        /// Index of the new lane (always the next unused index).
        lane: usize,
        /// Testbed flavor granted (`"pos"` / `"vpos"`).
        flavor: String,
        /// Canonical virtual instant of the replanning, nanoseconds.
        at_ns: u64,
    },
    /// A host's recovery failed beyond the retry budget.
    HostQuarantined {
        /// The quarantined host.
        host: String,
        /// Virtual time of the quarantine, nanoseconds.
        at_ns: u64,
    },
    /// The campaign ran to completion (controller.log is durable).
    CampaignFinished {
        /// Virtual end time, nanoseconds.
        finished_ns: u64,
        /// Successful runs.
        succeeded: usize,
        /// Failed-but-recorded runs.
        failed: usize,
    },
}

/// Why a journal could not be replayed.
#[derive(Debug)]
pub enum JournalError {
    /// Reading the file failed.
    Io(io::Error),
    /// A complete frame failed validation — not a crash artifact.
    Corrupt {
        /// Byte offset of the offending frame.
        offset: usize,
        /// What exactly failed.
        reason: String,
    },
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Io(e) => write!(f, "journal I/O error: {e}"),
            JournalError::Corrupt { offset, reason } => {
                write!(f, "journal corrupt at byte {offset}: {reason}")
            }
        }
    }
}

impl std::error::Error for JournalError {}

impl From<io::Error> for JournalError {
    fn from(e: io::Error) -> Self {
        JournalError::Io(e)
    }
}

/// Result of replaying a journal file.
#[derive(Debug)]
pub struct Replay {
    /// All complete, validated records in append order.
    pub records: Vec<JournalRecord>,
    /// True when the file ends mid-record (crash during an append).
    pub torn_tail: bool,
    /// Bytes in the torn tail, if any.
    pub torn_bytes: usize,
}

impl Replay {
    /// The `CampaignStarted` record, if the journal has one (it is
    /// always the first record of a well-formed journal).
    pub fn campaign_start(&self) -> Option<&JournalRecord> {
        match self.records.first() {
            Some(r @ JournalRecord::CampaignStarted { .. }) => Some(r),
            _ => None,
        }
    }

    /// True when a `CampaignFinished` record is present.
    pub fn finished(&self) -> bool {
        self.records
            .iter()
            .any(|r| matches!(r, JournalRecord::CampaignFinished { .. }))
    }
}

/// Writer handle for a campaign journal.
///
/// Appends are write-ahead: the record is framed, written, and fsynced
/// before `append` returns, so a record's presence in the journal is a
/// durable promise that the state it describes was reached.
///
/// For the crash-injection harness the writer can be armed to fail (and
/// optionally tear) the *k*-th append — see [`Journal::arm_crash`]. This
/// mirrors the testbed's deterministic chaos knobs: the fault is data,
/// not wall-clock luck.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    appended: u64,
    crash_after: Option<u64>,
    torn_write: bool,
}

impl Journal {
    /// Creates a fresh journal file (truncating any existing one).
    pub fn create(path: impl Into<PathBuf>) -> io::Result<Journal> {
        let path = path.into();
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)?;
        }
        let f = fs::File::create(&path)?;
        f.sync_all()?;
        Ok(Journal {
            path,
            appended: 0,
            crash_after: None,
            torn_write: false,
        })
    }

    /// Opens an existing journal for appending (resume sessions).
    ///
    /// A torn tail left by a crash mid-append is truncated away first —
    /// appending after partial-frame garbage would turn an honest crash
    /// artifact into irrecoverable corruption. A journal that replays as
    /// corrupt is refused.
    pub fn open_append(path: impl Into<PathBuf>) -> io::Result<Journal> {
        let path = path.into();
        if !path.exists() {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("no journal at {}", path.display()),
            ));
        }
        match Self::replay(&path) {
            Ok(replay) if replay.torn_tail => {
                let f = fs::OpenOptions::new().write(true).open(&path)?;
                let len = f.metadata()?.len();
                f.set_len(len - replay.torn_bytes as u64)?;
                f.sync_all()?;
            }
            Ok(_) => {}
            Err(JournalError::Io(e)) => return Err(e),
            Err(e @ JournalError::Corrupt { .. }) => {
                return Err(io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
            }
        }
        Ok(Journal {
            path,
            appended: 0,
            crash_after: None,
            torn_write: false,
        })
    }

    /// Arms deterministic crash injection: the append with zero-based
    /// sequence number `after` fails with [`io::ErrorKind::Interrupted`].
    /// With `torn` the failing append first writes a partial frame,
    /// simulating a machine crash mid-`write(2)`.
    pub fn arm_crash(&mut self, after: Option<u64>, torn: bool) {
        self.crash_after = after;
        self.torn_write = torn;
    }

    /// Number of records appended through this handle.
    pub fn appended(&self) -> u64 {
        self.appended
    }

    /// Encodes one record as its on-disk frame.
    fn encode(record: &JournalRecord) -> String {
        let json = serde_json::to_string(record).expect("journal records serialize");
        format!(
            "{JOURNAL_MAGIC} {:08x} {} {json}\n",
            json.len(),
            sha256_hex(json.as_bytes())
        )
    }

    /// Appends one record durably (write + fsync before returning).
    pub fn append(&mut self, record: &JournalRecord) -> io::Result<()> {
        let frame = Self::encode(record);
        if self.crash_after == Some(self.appended) {
            if self.torn_write {
                // A torn write leaves a partial frame: enough bytes that
                // replay sees an incomplete record, not a clean boundary.
                let cut = frame.len() / 2;
                let mut f = fs::OpenOptions::new().append(true).open(&self.path)?;
                f.write_all(&frame.as_bytes()[..cut])?;
                f.sync_all()?;
            }
            return Err(io::Error::new(
                io::ErrorKind::Interrupted,
                format!("injected journal crash at record {}", self.appended),
            ));
        }
        let mut f = fs::OpenOptions::new().append(true).open(&self.path)?;
        f.write_all(frame.as_bytes())?;
        f.sync_all()?;
        self.appended += 1;
        Ok(())
    }

    /// Replays a journal file: validates every complete frame, detects a
    /// torn tail, and rejects corruption.
    pub fn replay(path: &Path) -> Result<Replay, JournalError> {
        let bytes = fs::read(path)?;
        let mut records = Vec::new();
        let mut offset = 0usize;
        // Frame: "POSJ1 " + 8 hex + " " + 64 hex + " " + <len> json + "\n".
        let header_len = JOURNAL_MAGIC.len() + 1 + 8 + 1 + 64 + 1;
        while offset < bytes.len() {
            let rest = &bytes[offset..];
            if rest.len() < header_len {
                // Not even a full header: crash mid-append.
                return Ok(Replay {
                    records,
                    torn_tail: true,
                    torn_bytes: rest.len(),
                });
            }
            let header = &rest[..header_len];
            let header_str = std::str::from_utf8(header).map_err(|_| JournalError::Corrupt {
                offset,
                reason: "frame header is not UTF-8".into(),
            })?;
            let magic = &header_str[..JOURNAL_MAGIC.len()];
            if magic != JOURNAL_MAGIC {
                return Err(JournalError::Corrupt {
                    offset,
                    reason: format!("bad magic {magic:?}"),
                });
            }
            let len_hex = &header_str[JOURNAL_MAGIC.len() + 1..JOURNAL_MAGIC.len() + 9];
            let len = usize::from_str_radix(len_hex, 16).map_err(|_| JournalError::Corrupt {
                offset,
                reason: format!("bad length field {len_hex:?}"),
            })?;
            let digest = &header_str[JOURNAL_MAGIC.len() + 10..JOURNAL_MAGIC.len() + 74];
            let body_start = header_len;
            let frame_len = body_start + len + 1; // + trailing newline
            if rest.len() < frame_len {
                // Header complete, payload truncated: torn tail.
                return Ok(Replay {
                    records,
                    torn_tail: true,
                    torn_bytes: rest.len(),
                });
            }
            let body = &rest[body_start..body_start + len];
            if rest[body_start + len] != b'\n' {
                return Err(JournalError::Corrupt {
                    offset,
                    reason: "frame not newline-terminated".into(),
                });
            }
            if sha256_hex(body) != digest {
                return Err(JournalError::Corrupt {
                    offset,
                    reason: "record checksum mismatch".into(),
                });
            }
            let record: JournalRecord =
                serde_json::from_slice(body).map_err(|e| JournalError::Corrupt {
                    offset,
                    reason: format!("record does not parse: {e}"),
                })?;
            records.push(record);
            offset += frame_len;
        }
        Ok(Replay {
            records,
            torn_tail: false,
            torn_bytes: 0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("pos-journal-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir.join(JOURNAL_FILE)
    }

    fn started() -> JournalRecord {
        JournalRecord::CampaignStarted {
            seed: 0xFEED,
            spec_digest: "d".repeat(64),
            total_runs: 4,
            testbed: "pos".into(),
            started_ns: 0,
        }
    }

    fn completed(index: usize) -> JournalRecord {
        JournalRecord::RunCompleted {
            index,
            success: true,
            attempts: 1,
            recoveries: 0,
            recovery_time_ns: 0,
            started_ns: 100,
            finished_ns: 200,
            rng_cursor: 7,
            digest: "a".repeat(64),
            fault_trace: vec![],
        }
    }

    #[test]
    fn append_replay_roundtrip() {
        let path = tmp("roundtrip");
        let mut j = Journal::create(&path).unwrap();
        j.append(&started()).unwrap();
        j.append(&JournalRecord::RunStarted {
            index: 0,
            started_ns: 100,
        })
        .unwrap();
        j.append(&completed(0)).unwrap();
        let replay = Journal::replay(&path).unwrap();
        assert!(!replay.torn_tail);
        assert_eq!(replay.records.len(), 3);
        assert_eq!(replay.records[0], started());
        assert_eq!(replay.records[2], completed(0));
        assert!(replay.campaign_start().is_some());
        assert!(!replay.finished());
    }

    #[test]
    fn torn_tail_detected_and_prefix_preserved() {
        let path = tmp("torn");
        let mut j = Journal::create(&path).unwrap();
        j.append(&started()).unwrap();
        j.append(&completed(0)).unwrap();
        // Simulate a crash mid-append: truncate into the last frame.
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() - 10]).unwrap();
        let replay = Journal::replay(&path).unwrap();
        assert!(replay.torn_tail);
        assert!(replay.torn_bytes > 0);
        assert_eq!(replay.records.len(), 1, "complete prefix survives");
    }

    #[test]
    fn torn_header_detected() {
        let path = tmp("tornheader");
        let mut j = Journal::create(&path).unwrap();
        j.append(&started()).unwrap();
        let mut bytes = fs::read(&path).unwrap();
        bytes.extend_from_slice(b"POSJ1 000");
        fs::write(&path, &bytes).unwrap();
        let replay = Journal::replay(&path).unwrap();
        assert!(replay.torn_tail);
        assert_eq!(replay.torn_bytes, 9);
        assert_eq!(replay.records.len(), 1);
    }

    #[test]
    fn flipped_byte_is_corruption_not_torn_tail() {
        let path = tmp("corrupt");
        let mut j = Journal::create(&path).unwrap();
        j.append(&started()).unwrap();
        j.append(&completed(0)).unwrap();
        let mut bytes = fs::read(&path).unwrap();
        // Flip one byte inside the first record's JSON payload.
        let pos = bytes.len() / 4;
        bytes[pos] ^= 0x01;
        fs::write(&path, &bytes).unwrap();
        match Journal::replay(&path) {
            Err(JournalError::Corrupt { .. }) => {}
            other => panic!("expected corruption, got {other:?}"),
        }
    }

    #[test]
    fn injected_crash_stops_at_exact_boundary() {
        let path = tmp("crashinject");
        let mut j = Journal::create(&path).unwrap();
        j.arm_crash(Some(2), false);
        j.append(&started()).unwrap();
        j.append(&completed(0)).unwrap();
        let err = j.append(&completed(1)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::Interrupted);
        let replay = Journal::replay(&path).unwrap();
        assert!(!replay.torn_tail, "clean-boundary crash leaves no tail");
        assert_eq!(replay.records.len(), 2);
    }

    #[test]
    fn injected_torn_crash_leaves_partial_frame() {
        let path = tmp("crashtorn");
        let mut j = Journal::create(&path).unwrap();
        j.arm_crash(Some(1), true);
        j.append(&started()).unwrap();
        let err = j.append(&completed(0)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::Interrupted);
        let replay = Journal::replay(&path).unwrap();
        assert!(replay.torn_tail, "torn crash leaves a partial frame");
        assert_eq!(replay.records.len(), 1);
    }

    #[test]
    fn open_append_truncates_torn_tail() {
        let path = tmp("appendtorn");
        let mut j = Journal::create(&path).unwrap();
        j.arm_crash(Some(1), true);
        j.append(&started()).unwrap();
        j.append(&completed(0)).unwrap_err();
        assert!(Journal::replay(&path).unwrap().torn_tail);

        // Reopening removes the partial frame; new appends extend a
        // clean prefix instead of corrupting the file.
        let mut j = Journal::open_append(&path).unwrap();
        j.append(&completed(0)).unwrap();
        let replay = Journal::replay(&path).unwrap();
        assert!(!replay.torn_tail);
        assert_eq!(replay.records.len(), 2);
        assert_eq!(replay.records[1], completed(0));
    }

    #[test]
    fn lane_records_roundtrip() {
        assert_eq!(lane_journal_file(0), "journal-lane0.log");
        assert_eq!(lane_journal_file(3), "journal-lane3.log");
        let path = tmp("lanes");
        let mut j = Journal::create(&path).unwrap();
        j.append(&started()).unwrap();
        let plan = JournalRecord::LanePlan {
            lanes: 2,
            flavors: vec!["pos".into(), "vpos".into()],
        };
        let lane = JournalRecord::LaneStarted {
            lane: 1,
            seed: 0xFEED,
            flavor: "vpos".into(),
            started_ns: 42,
        };
        j.append(&plan).unwrap();
        j.append(&lane).unwrap();
        let replay = Journal::replay(&path).unwrap();
        assert_eq!(replay.records[1], plan);
        assert_eq!(replay.records[2], lane);
    }

    #[test]
    fn failover_records_roundtrip() {
        let path = tmp("failover");
        let mut j = Journal::create(&path).unwrap();
        let records = vec![
            JournalRecord::SupervisorPlan {
                config: r#"{"grace_factor":8.0}"#.into(),
            },
            JournalRecord::LaneRetired {
                lane: 1,
                at_ns: 77,
                reason: "injected lane fault at run boundary".into(),
                run: None,
            },
            JournalRecord::LaneRetired {
                lane: 2,
                at_ns: 99,
                reason: "poison run 4".into(),
                run: Some(4),
            },
            JournalRecord::RunRetry {
                index: 4,
                attempt: 1,
                lane: 3,
                delay_ns: 500_000_000,
                at_ns: 99,
            },
            JournalRecord::RunQuarantined {
                index: 4,
                lanes_killed: 2,
                at_ns: 99,
            },
            JournalRecord::LaneReplanned {
                lane: 4,
                flavor: "vpos".into(),
                at_ns: 99,
            },
        ];
        for r in &records {
            j.append(r).unwrap();
        }
        let replay = Journal::replay(&path).unwrap();
        assert_eq!(replay.records, records);
        assert!(!replay.torn_tail);
    }

    #[test]
    fn empty_journal_replays_empty() {
        let path = tmp("empty");
        Journal::create(&path).unwrap();
        let replay = Journal::replay(&path).unwrap();
        assert!(replay.records.is_empty());
        assert!(!replay.torn_tail);
        assert!(replay.campaign_start().is_none());
    }
}
