//! The append-only campaign journal.
//!
//! A campaign (one `run_experiment` invocation) writes a write-ahead log
//! of its lifecycle into `journal.log` at the root of the result tree.
//! Every record is framed, checksummed, and fsynced before the controller
//! proceeds, so after a crash — of the controller process or the machine —
//! the journal tells exactly how far the campaign got:
//!
//! ```text
//! POSJ1 <len:08x> <sha256-hex-of-json> <json>\n
//! ```
//!
//! The frame makes two failure modes distinguishable on replay:
//!
//! * **Torn tail** — the file ends mid-record (crash during an append).
//!   The complete prefix is valid; the tail is reported and ignored.
//!   This is the *expected* crash artifact and resume handles it.
//! * **Corruption** — a complete frame whose payload does not match its
//!   checksum (bit rot, manual editing). This is never produced by a
//!   crash and replay refuses the journal.
//!
//! [`crate::controller::Controller::resume_experiment`] replays the
//! journal to skip verified-complete runs; [`crate::fsck`] replays it to
//! audit a result tree offline.

use crate::hash::sha256_hex;
use crate::vfs::Vfs;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Frame magic; bump the digit for incompatible format changes.
pub const JOURNAL_MAGIC: &str = "POSJ1";

/// Byte length of a frame header: `"POSJ1 "` + 8 hex length digits +
/// `" "` + 64 hex digest digits + `" "`.
pub const FRAME_HEADER_LEN: usize = JOURNAL_MAGIC.len() + 1 + 8 + 1 + 64 + 1;

/// File name of the journal inside a result tree.
pub const JOURNAL_FILE: &str = "journal.log";

/// File name of the `pos serve` queue ledger inside a daemon state
/// directory. Same frame format as a campaign journal, different record
/// vocabulary (`ServeStarted` / `SubmissionAccepted` /
/// `CampaignDispatched` / `SubmissionFinished` / `DrainStarted`).
pub const LEDGER_FILE: &str = "ledger.log";

/// File name of worker lane `lane`'s journal inside a result tree.
///
/// A parallel campaign keeps the scheduler-level journal in
/// [`JOURNAL_FILE`] (campaign start, lane plan, campaign finish) and one
/// journal per worker lane recording the runs that lane executed. Lane
/// journals are an execution artifact, not part of the canonical result
/// tree: the determinism contract excludes `journal*.log` when comparing
/// parallel against sequential trees.
pub fn lane_journal_file(lane: usize) -> String {
    format!("journal-lane{lane}.log")
}

/// One campaign lifecycle event.
///
/// Records are self-describing externally-tagged JSON objects
/// (`{"RunStarted":{...}}`), so a journal survives the addition of new
/// fields (serde ignores unknown keys on replay of older code's
/// journals... and fails loudly on missing ones, which is what we want
/// for a consistency mechanism).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum JournalRecord {
    /// The campaign allocated hosts and created the result tree.
    CampaignStarted {
        /// Testbed root seed — a resume must run on the same seed to
        /// reproduce the boot/fault timeline.
        seed: u64,
        /// SHA-256 of the effective experiment spec (see
        /// [`crate::experiment::ExperimentSpec::digest`]); guards resume
        /// against a spec that was edited after the fact.
        spec_digest: String,
        /// Size of the expanded cross product.
        total_runs: usize,
        /// Testbed flavor the campaign ran on (`"pos"` bare metal,
        /// `"vpos"` virtualized) — the two boot differently, so a resume
        /// on the wrong one would diverge from the recorded timeline.
        testbed: String,
        /// Virtual start time, nanoseconds.
        started_ns: u64,
    },
    /// A later session picked the campaign up again.
    CampaignResumed {
        /// Virtual time of the resuming session at takeover, nanoseconds.
        resumed_ns: u64,
        /// How many runs the resuming session verified and skipped.
        verified_runs: usize,
    },
    /// A measurement run began executing.
    RunStarted {
        /// Zero-based run index in cross-product order.
        index: usize,
        /// Virtual start time, nanoseconds.
        started_ns: u64,
    },
    /// A measurement run reached a terminal state and its artifacts are
    /// durable (written, checksummed, manifest fsynced).
    RunCompleted {
        /// Zero-based run index.
        index: usize,
        /// Whether the final attempt succeeded.
        success: bool,
        /// Attempts consumed (0 = failed fast on a quarantined host).
        attempts: u32,
        /// Out-of-band recoveries this run triggered.
        recoveries: u32,
        /// Virtual time spent in recovery during this run, nanoseconds.
        recovery_time_ns: u64,
        /// Virtual start time of the run, nanoseconds.
        started_ns: u64,
        /// Virtual end time of the run, nanoseconds.
        finished_ns: u64,
        /// Draw count of the testbed's shared management RNG stream at
        /// run end; resume seeks the stream here after skipping the run.
        rng_cursor: u64,
        /// SHA-256 of the run's `checksums.json` — the run tree digest.
        digest: String,
        /// Warn-and-above trace lines captured during the run.
        fault_trace: Vec<String>,
    },
    /// A parallel scheduler split the campaign across worker lanes.
    ///
    /// Written to the scheduler-level journal right after
    /// `CampaignStarted`; its presence is how `pos resume` and `pos fsck`
    /// recognize a parallel result tree and go looking for per-lane
    /// journals (see [`lane_journal_file`]).
    LanePlan {
        /// Number of worker lanes.
        lanes: usize,
        /// Testbed flavor of each lane (`"pos"` bare metal, `"vpos"`
        /// virtualized clone), indexed by lane.
        flavors: Vec<String>,
    },
    /// A worker lane finished its setup phase and began executing runs.
    ///
    /// First record of each per-lane journal.
    LaneStarted {
        /// Zero-based lane index.
        lane: usize,
        /// Root seed of the lane's replica testbed (equals the campaign
        /// seed — lanes are same-seed replicas).
        seed: u64,
        /// Testbed flavor the lane runs on.
        flavor: String,
        /// Virtual time the lane became ready, nanoseconds.
        started_ns: u64,
    },
    /// The scheduler's lane-supervision configuration, journaled right
    /// after [`Self::LanePlan`] so a resume replays the exact same
    /// failover decisions (fault plan, grace factor, poison threshold,
    /// recovery policy).
    SupervisorPlan {
        /// JSON-serialized supervisor options (owned by `pos-sched`; the
        /// journal stores it opaquely so the record type stays in core).
        config: String,
    },
    /// A lane supervisor declared a worker lane dead and stopped
    /// dispatching to it.
    LaneRetired {
        /// The retired lane.
        lane: usize,
        /// Canonical virtual instant of the retirement, nanoseconds.
        at_ns: u64,
        /// Human-readable cause (injected fault, watchdog overrun,
        /// hosts quarantined, poison run).
        reason: String,
        /// The run the lane was holding when it died, if any. `Some`
        /// obliges the journal to later account for that run — either a
        /// `RunCompleted` (reassigned and finished elsewhere) or a
        /// `RunQuarantined`; `pos fsck` flags the stranded case.
        run: Option<usize>,
    },
    /// A run whose lane died is being retried on another lane after a
    /// deterministic backoff (the retry ladder).
    RunRetry {
        /// The run being retried.
        index: usize,
        /// Ladder attempt (1-based; resume continues the count).
        attempt: u32,
        /// The lane receiving the retry.
        lane: usize,
        /// Backoff delay charged to the receiving lane, nanoseconds
        /// (drawn from the `testbed/lane{k}/retry{run}` stream).
        delay_ns: u64,
        /// Canonical virtual instant of the retry decision, nanoseconds.
        at_ns: u64,
    },
    /// A poison run killed enough consecutive lanes to be quarantined:
    /// it is recorded failed (with a forensic bundle) instead of taking
    /// the campaign down. Always followed by a `RunCompleted` with
    /// `success: false` sealing the quarantined run's artifacts.
    RunQuarantined {
        /// The quarantined run.
        index: usize,
        /// Lanes this run killed before quarantine.
        lanes_killed: u32,
        /// Canonical virtual instant of the quarantine, nanoseconds.
        at_ns: u64,
    },
    /// The supervisor replanned a replacement lane (site calendar when a
    /// bare-metal replica set was free, virtual clone otherwise). Resume
    /// and fsck learn about lane journals beyond the original
    /// [`Self::LanePlan`] from these records.
    LaneReplanned {
        /// Index of the new lane (always the next unused index).
        lane: usize,
        /// Testbed flavor granted (`"pos"` / `"vpos"`).
        flavor: String,
        /// Canonical virtual instant of the replanning, nanoseconds.
        at_ns: u64,
    },
    /// A host's recovery failed beyond the retry budget.
    HostQuarantined {
        /// The quarantined host.
        host: String,
        /// Virtual time of the quarantine, nanoseconds.
        at_ns: u64,
    },
    /// The campaign ran to completion (controller.log is durable).
    CampaignFinished {
        /// Virtual end time, nanoseconds.
        finished_ns: u64,
        /// Successful runs.
        succeeded: usize,
        /// Failed-but-recorded runs.
        failed: usize,
    },
    /// A `pos serve` daemon process came up on this state directory.
    ///
    /// First record of every daemon session in the queue ledger
    /// ([`LEDGER_FILE`]); restart recovery uses the *last* one to learn
    /// where result trees live and what admission limits were configured.
    ServeStarted {
        /// Absolute path of the results root the daemon writes trees to.
        results_root: String,
        /// Total queue capacity configured for this session.
        capacity: usize,
        /// Per-user backlog cap configured for this session.
        user_backlog: usize,
        /// Campaign seed every dispatched campaign runs on.
        seed: u64,
    },
    /// The daemon durably accepted a submission — journaled *before* the
    /// client is acknowledged, so an acked submission is never lost to a
    /// crash.
    SubmissionAccepted {
        /// Queue-assigned submission id (dense, increasing).
        id: u64,
        /// Submitting user (fair-share accounting key).
        user: String,
        /// Experiment spec directory the submission points at.
        experiment: String,
        /// Priority weight (stride tickets).
        priority: u32,
        /// Client-chosen idempotency token, if any; a resubmission
        /// carrying a token already in the ledger is a duplicate, not a
        /// new campaign.
        token: Option<String>,
    },
    /// The stride scheduler admitted a submission and the daemon is
    /// about to execute it. Journaled before the campaign starts, so a
    /// crash mid-campaign leaves an in-flight marker for recovery to
    /// resume.
    CampaignDispatched {
        /// The admitted submission.
        id: u64,
    },
    /// A dispatched campaign reached a terminal state and its outcome is
    /// recorded in the completion ledger.
    SubmissionFinished {
        /// The finished submission.
        id: u64,
        /// Terminal outcome: `"completed"`, `"completed_degraded"` or
        /// `"failed"`.
        outcome: String,
        /// Absolute path of the campaign's result tree (empty when the
        /// campaign failed before a tree was claimed).
        result_dir: String,
    },
    /// The daemon stopped accepting submissions and began a
    /// preemption-free drain (SIGTERM or `POST /drain`).
    DrainStarted {
        /// Submissions still pending at drain start.
        pending: usize,
    },
    /// A DAG campaign created its result tree and journaled its plan.
    ///
    /// Always the first record of a DAG journal; its presence is how
    /// `pos dag resume` and `pos fsck` recognize a DAG result tree.
    DagStarted {
        /// DAG name (result directory component).
        name: String,
        /// SHA-256 of the canonical DAG spec — guards resume against a
        /// spec edited after the fact.
        dag_digest: String,
        /// SHA-256 of the effective experiment spec all sweep stages
        /// derive from.
        spec_digest: String,
        /// Testbed root seed every stage runs on.
        seed: u64,
        /// Testbed flavor (`"pos"` / `"vpos"`); stages boot testbeds, so
        /// a resume on the wrong flavor would diverge.
        testbed: String,
        /// Execution target name (`"in-process"` / `"sim-batch"`). The
        /// determinism contract makes targets interchangeable for the
        /// *artifacts*, but a resume replays target-side accounting, so
        /// the identity guard records where the DAG ran.
        target: String,
        /// Total number of stage nodes in the DAG.
        nodes: usize,
    },
    /// A later session picked the DAG up again.
    DagResumed {
        /// Nodes the resuming session verified (digest match) and
        /// fast-forwarded over.
        verified_nodes: usize,
    },
    /// A DAG stage node began executing.
    NodeStarted {
        /// Stage id (unique within the DAG).
        node: String,
        /// Stage kind (`"setup"` / `"sweep"` / `"gather"`).
        kind: String,
        /// Virtual start instant of the node on the DAG schedule,
        /// nanoseconds.
        started_ns: u64,
    },
    /// A gather node consumed all of its scatter inputs and sealed the
    /// barrier: every input subtree digest is recorded, so a resume (or
    /// `pos fsck`) can prove the aggregation saw complete inputs.
    ///
    /// Journaled after the gather's artifacts are durable and before its
    /// `NodeFinished` — a `NodeStarted` gather without a seal is an
    /// *unsealed gather* and `pos fsck` flags it.
    GatherSealed {
        /// The gather stage.
        node: String,
        /// Stage ids of the consumed scatter (sweep) inputs, in
        /// dependency order.
        inputs: Vec<String>,
        /// Subtree digest of each consumed input, aligned with `inputs`.
        input_digests: Vec<String>,
    },
    /// A DAG stage node reached a terminal state and its artifact
    /// subtree is durable.
    NodeFinished {
        /// The finished stage.
        node: String,
        /// Deterministic digest of the node's artifact subtree
        /// (journal files excluded) — what resume verifies before
        /// fast-forwarding over the node.
        digest: String,
        /// Virtual start instant of the node, nanoseconds.
        started_ns: u64,
        /// Virtual finish instant of the node, nanoseconds.
        finished_ns: u64,
        /// Measurement runs inside the node that failed (sweep stages
        /// under `continue_on_run_failure`; 0 for setup/gather).
        failed_runs: usize,
    },
    /// Every node of the DAG completed and the result tree is sealed.
    DagFinished {
        /// Nodes completed (equals the planned node count).
        nodes: usize,
        /// Total failed measurement runs across all sweep stages.
        failed_runs: usize,
        /// Virtual makespan of the DAG schedule, nanoseconds.
        makespan_ns: u64,
    },
}

/// Why a journal could not be replayed.
#[derive(Debug)]
pub enum JournalError {
    /// Reading the file failed.
    Io(io::Error),
    /// A complete frame failed validation — not a crash artifact.
    Corrupt {
        /// Byte offset of the offending frame.
        offset: usize,
        /// What exactly failed.
        reason: String,
    },
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Io(e) => write!(f, "journal I/O error: {e}"),
            JournalError::Corrupt { offset, reason } => {
                write!(f, "journal corrupt at byte {offset}: {reason}")
            }
        }
    }
}

impl std::error::Error for JournalError {}

impl From<io::Error> for JournalError {
    fn from(e: io::Error) -> Self {
        JournalError::Io(e)
    }
}

/// Result of replaying a journal file.
#[derive(Debug)]
pub struct Replay {
    /// All complete, validated records in append order.
    pub records: Vec<JournalRecord>,
    /// True when the file ends mid-record (crash during an append).
    pub torn_tail: bool,
    /// Bytes in the torn tail, if any.
    pub torn_bytes: usize,
}

impl Replay {
    /// The `CampaignStarted` record, if the journal has one (it is
    /// always the first record of a well-formed journal).
    pub fn campaign_start(&self) -> Option<&JournalRecord> {
        match self.records.first() {
            Some(r @ JournalRecord::CampaignStarted { .. }) => Some(r),
            _ => None,
        }
    }

    /// True when a `CampaignFinished` record is present.
    pub fn finished(&self) -> bool {
        self.records
            .iter()
            .any(|r| matches!(r, JournalRecord::CampaignFinished { .. }))
    }

    /// The `DagStarted` record, if this is a DAG journal (it is always
    /// the first record of a well-formed DAG journal).
    pub fn dag_start(&self) -> Option<&JournalRecord> {
        match self.records.first() {
            Some(r @ JournalRecord::DagStarted { .. }) => Some(r),
            _ => None,
        }
    }

    /// True when a `DagFinished` record is present.
    pub fn dag_finished(&self) -> bool {
        self.records
            .iter()
            .any(|r| matches!(r, JournalRecord::DagFinished { .. }))
    }
}

/// Writer handle for a campaign journal.
///
/// Appends are write-ahead: the record is framed, written, and fsynced
/// before `append` returns, so a record's presence in the journal is a
/// durable promise that the state it describes was reached.
///
/// For the crash-injection harness the writer can be armed to fail (and
/// optionally tear) the *k*-th append — see [`Journal::arm_crash`]. This
/// mirrors the testbed's deterministic chaos knobs: the fault is data,
/// not wall-clock luck.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    vfs: Vfs,
    appended: u64,
    crash_after: Option<u64>,
    torn_write: bool,
}

impl Journal {
    /// Creates a fresh journal file (truncating any existing one).
    pub fn create(path: impl Into<PathBuf>) -> io::Result<Journal> {
        Self::create_with(path, Vfs::real())
    }

    /// [`Journal::create`] writing through an explicit [`Vfs`] handle,
    /// so injected storage faults hit journal appends too.
    pub fn create_with(path: impl Into<PathBuf>, vfs: Vfs) -> io::Result<Journal> {
        let path = path.into();
        vfs.create_sync(&path)?;
        Ok(Journal {
            path,
            vfs,
            appended: 0,
            crash_after: None,
            torn_write: false,
        })
    }

    /// Opens an existing journal for appending (resume sessions).
    ///
    /// A torn tail left by a crash mid-append is truncated away first —
    /// appending after partial-frame garbage would turn an honest crash
    /// artifact into irrecoverable corruption. A journal that replays as
    /// corrupt is refused.
    pub fn open_append(path: impl Into<PathBuf>) -> io::Result<Journal> {
        Self::open_append_with(path, Vfs::real())
    }

    /// [`Journal::open_append`] writing through an explicit [`Vfs`].
    pub fn open_append_with(path: impl Into<PathBuf>, vfs: Vfs) -> io::Result<Journal> {
        let path = path.into();
        if !path.exists() {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("no journal at {}", path.display()),
            ));
        }
        match Self::replay(&path) {
            Ok(replay) if replay.torn_tail => {
                let len = fs::metadata(&path)?.len();
                vfs.truncate_sync(&path, len - replay.torn_bytes as u64)?;
            }
            Ok(_) => {}
            Err(JournalError::Io(e)) => return Err(e),
            Err(e @ JournalError::Corrupt { .. }) => {
                return Err(io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
            }
        }
        Ok(Journal {
            path,
            vfs,
            appended: 0,
            crash_after: None,
            torn_write: false,
        })
    }

    /// Arms deterministic crash injection: the append with zero-based
    /// sequence number `after` fails with [`io::ErrorKind::Interrupted`].
    /// With `torn` the failing append first writes a partial frame,
    /// simulating a machine crash mid-`write(2)`.
    pub fn arm_crash(&mut self, after: Option<u64>, torn: bool) {
        self.crash_after = after;
        self.torn_write = torn;
    }

    /// Number of records appended through this handle.
    pub fn appended(&self) -> u64 {
        self.appended
    }

    /// Encodes one record as its on-disk frame. Serialization failure
    /// surfaces as a typed error instead of aborting — an injected fault
    /// must never be able to take the process down past an `expect`.
    fn encode(record: &JournalRecord) -> io::Result<String> {
        let json = serde_json::to_string(record)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        Ok(encode_frame(&json))
    }

    /// Appends one record durably (write + fsync before returning).
    pub fn append(&mut self, record: &JournalRecord) -> io::Result<()> {
        let frame = Self::encode(record)?;
        if self.crash_after == Some(self.appended) {
            if self.torn_write {
                // A torn write leaves a partial frame: enough bytes that
                // replay sees an incomplete record, not a clean boundary.
                let cut = frame.len() / 2;
                Vfs::real().append_sync(&self.path, &frame.as_bytes()[..cut])?;
            }
            return Err(io::Error::new(
                io::ErrorKind::Interrupted,
                format!("injected journal crash at record {}", self.appended),
            ));
        }
        self.vfs.append_sync(&self.path, frame.as_bytes())?;
        self.appended += 1;
        Ok(())
    }

    /// Replays a journal file: validates every complete frame, detects a
    /// torn tail, and rejects corruption.
    pub fn replay(path: &Path) -> Result<Replay, JournalError> {
        let bytes = fs::read(path)?;
        let mut records = Vec::new();
        let mut offset = 0usize;
        while offset < bytes.len() {
            match decode_frame(&bytes, offset)? {
                FrameStep::Record { record, frame_len } => {
                    records.push(record);
                    offset += frame_len;
                }
                FrameStep::Torn { torn_bytes } => {
                    return Ok(Replay {
                        records,
                        torn_tail: true,
                        torn_bytes,
                    });
                }
            }
        }
        Ok(Replay {
            records,
            torn_tail: false,
            torn_bytes: 0,
        })
    }
}

/// Encodes a serialized record payload as its on-disk frame:
/// `POSJ1 <len:08x> <sha256-hex-of-json> <json>\n`. The single framing
/// path shared by every journal writer — the scheduler-level
/// `journal.log` and the per-lane `journal-lane{k}.log` files alike.
pub fn encode_frame(json: &str) -> String {
    format!(
        "{JOURNAL_MAGIC} {:08x} {} {json}\n",
        json.len(),
        sha256_hex(json.as_bytes())
    )
}

/// Outcome of decoding one frame out of a byte buffer.
#[derive(Debug)]
pub enum FrameStep {
    /// A complete, validated record.
    Record {
        /// The decoded record.
        record: JournalRecord,
        /// Total on-disk frame length (header + payload + newline).
        frame_len: usize,
    },
    /// The buffer ends mid-frame — a torn tail, not corruption.
    Torn {
        /// Trailing bytes that do not form a complete frame.
        torn_bytes: usize,
    },
}

/// Decodes the frame starting at `offset`, distinguishing a torn tail
/// (buffer ends mid-frame) from corruption (a complete frame that fails
/// validation). The single decoding path shared by [`Journal::replay`]
/// for every journal flavor.
pub fn decode_frame(bytes: &[u8], offset: usize) -> Result<FrameStep, JournalError> {
    let rest = &bytes[offset..];
    if rest.len() < FRAME_HEADER_LEN {
        // Not even a full header: crash mid-append.
        return Ok(FrameStep::Torn {
            torn_bytes: rest.len(),
        });
    }
    let header = &rest[..FRAME_HEADER_LEN];
    let header_str = std::str::from_utf8(header).map_err(|_| JournalError::Corrupt {
        offset,
        reason: "frame header is not UTF-8".into(),
    })?;
    let magic = &header_str[..JOURNAL_MAGIC.len()];
    if magic != JOURNAL_MAGIC {
        return Err(JournalError::Corrupt {
            offset,
            reason: format!("bad magic {magic:?}"),
        });
    }
    let len_hex = &header_str[JOURNAL_MAGIC.len() + 1..JOURNAL_MAGIC.len() + 9];
    let len = usize::from_str_radix(len_hex, 16).map_err(|_| JournalError::Corrupt {
        offset,
        reason: format!("bad length field {len_hex:?}"),
    })?;
    let digest = &header_str[JOURNAL_MAGIC.len() + 10..JOURNAL_MAGIC.len() + 74];
    let body_start = FRAME_HEADER_LEN;
    let frame_len = body_start + len + 1; // + trailing newline
    if rest.len() < frame_len {
        // Header complete, payload truncated: torn tail.
        return Ok(FrameStep::Torn {
            torn_bytes: rest.len(),
        });
    }
    let body = &rest[body_start..body_start + len];
    if rest[body_start + len] != b'\n' {
        return Err(JournalError::Corrupt {
            offset,
            reason: "frame not newline-terminated".into(),
        });
    }
    if sha256_hex(body) != digest {
        return Err(JournalError::Corrupt {
            offset,
            reason: "record checksum mismatch".into(),
        });
    }
    let record: JournalRecord =
        serde_json::from_slice(body).map_err(|e| JournalError::Corrupt {
            offset,
            reason: format!("record does not parse: {e}"),
        })?;
    Ok(FrameStep::Record { record, frame_len })
}

/// Disk-level lifecycle state of a campaign result tree, judged purely
/// from its scheduler-level journal. The replay entry point `pos serve`
/// restart recovery and the queue-ledger fsck share: both need to decide,
/// for a tree found on disk, whether the campaign it belongs to finished,
/// is resumable, or never got far enough to matter.
#[derive(Debug, Clone, PartialEq)]
pub enum CampaignDiskState {
    /// The directory has no journal at all (or an empty one) — the
    /// process died between creating the tree and completing the first
    /// append. Nothing in it is durable; a fresh campaign may reclaim
    /// the path.
    NoJournal,
    /// The journal replays but has no `CampaignFinished` record: the
    /// campaign is in flight or was interrupted, and `resume_experiment`
    /// / `resume_parallel` can complete it.
    InProgress {
        /// Runs with a durable `RunCompleted` record so far.
        runs_completed: usize,
        /// Total runs the campaign planned, when known.
        total_runs: Option<usize>,
    },
    /// The campaign sealed a `CampaignFinished` record.
    Finished {
        /// Successful runs.
        succeeded: usize,
        /// Failed-but-recorded runs.
        failed: usize,
    },
    /// The journal is unreadable or corrupt — not a crash artifact;
    /// surfaces the reason for the operator.
    Unreadable(String),
}

/// Classifies the campaign result tree at `dir` by replaying its
/// scheduler-level journal (see [`CampaignDiskState`]).
pub fn campaign_disk_state(dir: &Path) -> CampaignDiskState {
    let path = dir.join(JOURNAL_FILE);
    if !path.exists() {
        return CampaignDiskState::NoJournal;
    }
    let replay = match Journal::replay(&path) {
        Ok(r) => r,
        Err(e) => return CampaignDiskState::Unreadable(e.to_string()),
    };
    if replay.records.is_empty() {
        // A crash on the very first append leaves the created-but-empty
        // file (possibly with a torn partial frame): nothing durable.
        return CampaignDiskState::NoJournal;
    }
    for record in &replay.records {
        if let JournalRecord::CampaignFinished {
            succeeded, failed, ..
        } = record
        {
            return CampaignDiskState::Finished {
                succeeded: *succeeded,
                failed: *failed,
            };
        }
        // A DAG tree reports in node granularity: each finished stage
        // node counts as one unit of progress, and a sealed DAG maps its
        // sweep-run failure count into the `failed` slot so adopters
        // (the `pos serve` recovery path) classify degradation the same
        // way they do for flat campaigns.
        if let JournalRecord::DagFinished {
            nodes, failed_runs, ..
        } = record
        {
            return CampaignDiskState::Finished {
                succeeded: *nodes,
                failed: *failed_runs,
            };
        }
    }
    let total_runs = replay.records.iter().find_map(|r| match r {
        JournalRecord::CampaignStarted { total_runs, .. } => Some(*total_runs),
        JournalRecord::DagStarted { nodes, .. } => Some(*nodes),
        _ => None,
    });
    let runs_completed = replay
        .records
        .iter()
        .filter(|r| {
            matches!(
                r,
                JournalRecord::RunCompleted { .. } | JournalRecord::NodeFinished { .. }
            )
        })
        .count();
    CampaignDiskState::InProgress {
        runs_completed,
        total_runs,
    }
}

/// Everything needed to bring up one worker lane's journal.
///
/// Shared by the three places that used to hand-roll the same
/// create-or-reopen + crash-arming + `LaneStarted` boilerplate: the
/// parallel scheduler's initial lane bring-up, its resume path, and the
/// supervisor's replacement-lane replanning.
#[derive(Debug, Clone)]
pub struct LaneJournalSpec {
    /// Zero-based lane index.
    pub lane: usize,
    /// Campaign root seed (lanes are same-seed replicas).
    pub seed: u64,
    /// Testbed flavor the lane runs on.
    pub flavor: String,
    /// Virtual time the lane became ready, nanoseconds.
    pub started_ns: u64,
    /// Deterministic crash injection: fail the `crash_after`-th append.
    pub crash_after: Option<u64>,
    /// Whether the injected crash tears the frame.
    pub torn_write: bool,
}

/// Opens lane `spec.lane`'s journal in `dir` for appending, creating it
/// (and writing its `LaneStarted` header record) when absent. Crash
/// injection is armed *before* the header append so an armed lane can
/// crash on its very first record, same as the hand-rolled code did.
pub fn open_or_create_lane_journal(
    vfs: &Vfs,
    dir: &Path,
    spec: &LaneJournalSpec,
) -> io::Result<Journal> {
    let path = dir.join(lane_journal_file(spec.lane));
    if path.exists() {
        let mut journal = Journal::open_append_with(&path, vfs.clone())?;
        journal.arm_crash(spec.crash_after, spec.torn_write);
        Ok(journal)
    } else {
        let mut journal = Journal::create_with(&path, vfs.clone())?;
        journal.arm_crash(spec.crash_after, spec.torn_write);
        journal.append(&JournalRecord::LaneStarted {
            lane: spec.lane,
            seed: spec.seed,
            flavor: spec.flavor.clone(),
            started_ns: spec.started_ns,
        })?;
        Ok(journal)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("pos-journal-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir.join(JOURNAL_FILE)
    }

    fn started() -> JournalRecord {
        JournalRecord::CampaignStarted {
            seed: 0xFEED,
            spec_digest: "d".repeat(64),
            total_runs: 4,
            testbed: "pos".into(),
            started_ns: 0,
        }
    }

    fn completed(index: usize) -> JournalRecord {
        JournalRecord::RunCompleted {
            index,
            success: true,
            attempts: 1,
            recoveries: 0,
            recovery_time_ns: 0,
            started_ns: 100,
            finished_ns: 200,
            rng_cursor: 7,
            digest: "a".repeat(64),
            fault_trace: vec![],
        }
    }

    #[test]
    fn append_replay_roundtrip() {
        let path = tmp("roundtrip");
        let mut j = Journal::create(&path).unwrap();
        j.append(&started()).unwrap();
        j.append(&JournalRecord::RunStarted {
            index: 0,
            started_ns: 100,
        })
        .unwrap();
        j.append(&completed(0)).unwrap();
        let replay = Journal::replay(&path).unwrap();
        assert!(!replay.torn_tail);
        assert_eq!(replay.records.len(), 3);
        assert_eq!(replay.records[0], started());
        assert_eq!(replay.records[2], completed(0));
        assert!(replay.campaign_start().is_some());
        assert!(!replay.finished());
    }

    #[test]
    fn torn_tail_detected_and_prefix_preserved() {
        let path = tmp("torn");
        let mut j = Journal::create(&path).unwrap();
        j.append(&started()).unwrap();
        j.append(&completed(0)).unwrap();
        // Simulate a crash mid-append: truncate into the last frame.
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() - 10]).unwrap();
        let replay = Journal::replay(&path).unwrap();
        assert!(replay.torn_tail);
        assert!(replay.torn_bytes > 0);
        assert_eq!(replay.records.len(), 1, "complete prefix survives");
    }

    #[test]
    fn torn_header_detected() {
        let path = tmp("tornheader");
        let mut j = Journal::create(&path).unwrap();
        j.append(&started()).unwrap();
        let mut bytes = fs::read(&path).unwrap();
        bytes.extend_from_slice(b"POSJ1 000");
        fs::write(&path, &bytes).unwrap();
        let replay = Journal::replay(&path).unwrap();
        assert!(replay.torn_tail);
        assert_eq!(replay.torn_bytes, 9);
        assert_eq!(replay.records.len(), 1);
    }

    #[test]
    fn flipped_byte_is_corruption_not_torn_tail() {
        let path = tmp("corrupt");
        let mut j = Journal::create(&path).unwrap();
        j.append(&started()).unwrap();
        j.append(&completed(0)).unwrap();
        let mut bytes = fs::read(&path).unwrap();
        // Flip one byte inside the first record's JSON payload.
        let pos = bytes.len() / 4;
        bytes[pos] ^= 0x01;
        fs::write(&path, &bytes).unwrap();
        match Journal::replay(&path) {
            Err(JournalError::Corrupt { .. }) => {}
            other => panic!("expected corruption, got {other:?}"),
        }
    }

    #[test]
    fn injected_crash_stops_at_exact_boundary() {
        let path = tmp("crashinject");
        let mut j = Journal::create(&path).unwrap();
        j.arm_crash(Some(2), false);
        j.append(&started()).unwrap();
        j.append(&completed(0)).unwrap();
        let err = j.append(&completed(1)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::Interrupted);
        let replay = Journal::replay(&path).unwrap();
        assert!(!replay.torn_tail, "clean-boundary crash leaves no tail");
        assert_eq!(replay.records.len(), 2);
    }

    #[test]
    fn injected_torn_crash_leaves_partial_frame() {
        let path = tmp("crashtorn");
        let mut j = Journal::create(&path).unwrap();
        j.arm_crash(Some(1), true);
        j.append(&started()).unwrap();
        let err = j.append(&completed(0)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::Interrupted);
        let replay = Journal::replay(&path).unwrap();
        assert!(replay.torn_tail, "torn crash leaves a partial frame");
        assert_eq!(replay.records.len(), 1);
    }

    #[test]
    fn open_append_truncates_torn_tail() {
        let path = tmp("appendtorn");
        let mut j = Journal::create(&path).unwrap();
        j.arm_crash(Some(1), true);
        j.append(&started()).unwrap();
        j.append(&completed(0)).unwrap_err();
        assert!(Journal::replay(&path).unwrap().torn_tail);

        // Reopening removes the partial frame; new appends extend a
        // clean prefix instead of corrupting the file.
        let mut j = Journal::open_append(&path).unwrap();
        j.append(&completed(0)).unwrap();
        let replay = Journal::replay(&path).unwrap();
        assert!(!replay.torn_tail);
        assert_eq!(replay.records.len(), 2);
        assert_eq!(replay.records[1], completed(0));
    }

    #[test]
    fn lane_records_roundtrip() {
        assert_eq!(lane_journal_file(0), "journal-lane0.log");
        assert_eq!(lane_journal_file(3), "journal-lane3.log");
        let path = tmp("lanes");
        let mut j = Journal::create(&path).unwrap();
        j.append(&started()).unwrap();
        let plan = JournalRecord::LanePlan {
            lanes: 2,
            flavors: vec!["pos".into(), "vpos".into()],
        };
        let lane = JournalRecord::LaneStarted {
            lane: 1,
            seed: 0xFEED,
            flavor: "vpos".into(),
            started_ns: 42,
        };
        j.append(&plan).unwrap();
        j.append(&lane).unwrap();
        let replay = Journal::replay(&path).unwrap();
        assert_eq!(replay.records[1], plan);
        assert_eq!(replay.records[2], lane);
    }

    #[test]
    fn failover_records_roundtrip() {
        let path = tmp("failover");
        let mut j = Journal::create(&path).unwrap();
        let records = vec![
            JournalRecord::SupervisorPlan {
                config: r#"{"grace_factor":8.0}"#.into(),
            },
            JournalRecord::LaneRetired {
                lane: 1,
                at_ns: 77,
                reason: "injected lane fault at run boundary".into(),
                run: None,
            },
            JournalRecord::LaneRetired {
                lane: 2,
                at_ns: 99,
                reason: "poison run 4".into(),
                run: Some(4),
            },
            JournalRecord::RunRetry {
                index: 4,
                attempt: 1,
                lane: 3,
                delay_ns: 500_000_000,
                at_ns: 99,
            },
            JournalRecord::RunQuarantined {
                index: 4,
                lanes_killed: 2,
                at_ns: 99,
            },
            JournalRecord::LaneReplanned {
                lane: 4,
                flavor: "vpos".into(),
                at_ns: 99,
            },
        ];
        for r in &records {
            j.append(r).unwrap();
        }
        let replay = Journal::replay(&path).unwrap();
        assert_eq!(replay.records, records);
        assert!(!replay.torn_tail);
    }

    #[test]
    fn empty_journal_replays_empty() {
        let path = tmp("empty");
        Journal::create(&path).unwrap();
        let replay = Journal::replay(&path).unwrap();
        assert!(replay.records.is_empty());
        assert!(!replay.torn_tail);
        assert!(replay.campaign_start().is_none());
    }

    /// Byte offsets at which a journal image is a clean prefix: 0 and
    /// the end of every complete frame.
    fn frame_boundaries(bytes: &[u8]) -> Vec<usize> {
        let mut boundaries = vec![0usize];
        let mut offset = 0;
        while offset < bytes.len() {
            match decode_frame(bytes, offset).expect("whole journal decodes") {
                FrameStep::Record { frame_len, .. } => {
                    offset += frame_len;
                    boundaries.push(offset);
                }
                FrameStep::Torn { .. } => panic!("whole journal has no torn tail"),
            }
        }
        boundaries
    }

    /// The torn/corrupt distinction, exhaustively: a file cut at *any*
    /// byte offset is a crash artifact — replay classifies it as a torn
    /// tail (or a clean boundary), never as corruption, and keeps every
    /// frame that fit entirely below the cut.
    #[test]
    fn every_truncation_offset_classified_torn_or_clean() {
        let path = tmp("truncsweep");
        let mut j = Journal::create(&path).unwrap();
        j.append(&started()).unwrap();
        j.append(&completed(0)).unwrap();
        let bytes = fs::read(&path).unwrap();
        let boundaries = frame_boundaries(&bytes);
        for cut in 0..=bytes.len() {
            fs::write(&path, &bytes[..cut]).unwrap();
            let replay = Journal::replay(&path)
                .unwrap_or_else(|e| panic!("cut at byte {cut} misclassified as {e}"));
            assert_eq!(replay.torn_tail, !boundaries.contains(&cut), "cut {cut}");
            let committed = boundaries.iter().filter(|&&b| b <= cut).count() - 1;
            assert_eq!(replay.records.len(), committed, "cut {cut}");
        }
    }

    mod prop {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Same invariant under randomized journals: any truncation
            /// replays as the committed prefix, and reopening for append
            /// (which drops the torn tail) never loses a committed
            /// record — the file keeps growing from a clean boundary.
            #[test]
            fn truncated_journal_reopens_without_losing_records(
                extra in 1usize..4,
                cut_frac in 0.0f64..1.0,
            ) {
                let path = tmp("proptrunc");
                let mut expected = vec![started()];
                expected.extend((0..extra).map(completed));
                let mut j = Journal::create(&path).unwrap();
                for r in &expected {
                    j.append(r).unwrap();
                }
                let bytes = fs::read(&path).unwrap();
                let boundaries = frame_boundaries(&bytes);
                let cut = ((cut_frac * (bytes.len() + 1) as f64) as usize).min(bytes.len());
                fs::write(&path, &bytes[..cut]).unwrap();

                let replay = Journal::replay(&path)
                    .expect("truncation is a crash artifact, never corruption");
                let committed = boundaries.iter().filter(|&&b| b <= cut).count() - 1;
                prop_assert_eq!(replay.records.len(), committed);
                prop_assert_eq!(replay.torn_tail, !boundaries.contains(&cut));

                let mut j = Journal::open_append(&path).unwrap();
                j.append(&completed(99)).unwrap();
                let replay = Journal::replay(&path).unwrap();
                prop_assert!(!replay.torn_tail);
                prop_assert_eq!(replay.records.len(), committed + 1);
                prop_assert_eq!(&replay.records[..committed], &expected[..committed]);
                prop_assert_eq!(replay.records.last().unwrap(), &completed(99));
            }
        }
    }
}
