//! Experiment-domain commands.
//!
//! The measurement scripts of the case study invoke `moongen`; this module
//! registers that command (and an `iperf` alternative) into a testbed's
//! command registry. The handler is where the orchestration layer meets
//! the packet-level simulation: it inspects the *actual* testbed state —
//! wiring, peer host kind, the peer's sysctl and interface configuration —
//! and builds the corresponding `pos-netsim` scenario. If the DuT's setup
//! script forgot `sysctl -w net.ipv4.ip_forward=1`, the measurement
//! faithfully reports zero forwarded packets.

use crate::controller::ControllerError;
use crate::experiment::ExperimentSpec;
use pos_loadgen::scenario::{run_forwarding_experiment, ForwardingScenario, Platform};
use pos_simkernel::{SimDuration, SimRng};
use pos_testbed::{
    clone_virtual, CloneOptions, CommandResult, DeviceKind, HardwareSpec, InitInterface, PortId,
    Testbed,
};
use std::rc::Rc;

/// Registers all experiment-domain commands on the testbed.
pub fn register_all(tb: &mut Testbed) {
    tb.register_command("moongen", Rc::new(moongen_command));
    tb.register_command("iperf", Rc::new(iperf_command));
    tb.register_command("ping", Rc::new(ping_command));
}

/// Builds a testbed matching an experiment's roles: one host per role,
/// wired as the case-study topology requires (role0 port0 → role1 port0,
/// role1 port1 → role0 port1 for two roles; a chain for more), with all
/// experiment-domain commands registered.
///
/// With `exact_seed` false (`pos run`) `seed` is the user seed and the
/// vpos clone derives its own; with `exact_seed` true (resume paths and
/// replica lanes) `seed` is the final testbed seed straight from the
/// journal and is used as-is, derivation already having happened in the
/// original session.
///
/// Shared by the CLI, the scheduler's replica-lane closures, and the
/// `pos serve` daemon; failures are typed ([`ControllerError::Topology`])
/// so callers propagate them instead of aborting.
pub fn case_study_testbed(
    spec: &ExperimentSpec,
    seed: u64,
    virtualized: bool,
    exact_seed: bool,
) -> Result<Testbed, ControllerError> {
    let topology = |reason: String| ControllerError::Topology { reason };
    let mut tb = Testbed::new(seed);
    for role in &spec.roles {
        tb.add_host(&role.host, HardwareSpec::paper_dut(), InitInterface::Ipmi);
    }
    let hosts = spec.hosts();
    match hosts.as_slice() {
        [] => return Err(topology("experiment has no roles".into())),
        [_single] => {}
        [a, b] => {
            tb.topology
                .wire(PortId::new(a, 0), PortId::new(b, 0))
                .map_err(|e| topology(e.to_string()))?;
            tb.topology
                .wire(PortId::new(b, 1), PortId::new(a, 1))
                .map_err(|e| topology(e.to_string()))?;
        }
        many => {
            for pair in many.windows(2) {
                tb.topology
                    .wire(PortId::new(&pair[0], 1), PortId::new(&pair[1], 0))
                    .map_err(|e| topology(e.to_string()))?;
            }
        }
    }
    let mut tb = if virtualized {
        let opts = CloneOptions {
            seed: exact_seed.then_some(seed),
            ..CloneOptions::default()
        };
        clone_virtual(&tb, opts)
    } else {
        tb
    };
    register_all(&mut tb);
    Ok(tb)
}

/// The `ping` command: `ping <target-ip>` — the connectivity check setup
/// scripts run before measuring. The target is reachable when the wired
/// peer is up and has the address configured (`ip addr add` + `ip link set
/// ... up` in its setup script); the probe itself runs packet-level
/// through the peer's service model.
fn ping_command(tb: &mut Testbed, host: &str, argv: &[String]) -> CommandResult {
    use pos_netsim::engine::{LinkConfig, NetSim, PortConfig};
    use pos_netsim::ping::{PingConfig, PingProbe, ProbeReply};
    use pos_netsim::router::LinuxRouter;
    use pos_packet::MacAddr;
    use std::net::Ipv4Addr;

    let Some(target) = argv.get(1).and_then(|t| t.parse::<Ipv4Addr>().ok()) else {
        return CommandResult::fail(2, "usage: ping <ipv4-address>");
    };
    let peer_name = match resolve_dut(tb, host) {
        Ok(p) => p,
        Err(e) => return CommandResult::fail(1, format!("ping: {e}")),
    };
    let Some(peer) = tb.host(&peer_name) else {
        return CommandResult::fail(1, format!("ping: peer {peer_name} unknown"));
    };
    // The peer answers only on addresses its setup script configured on
    // *up* interfaces.
    let configured: Vec<Ipv4Addr> = peer
        .netconf
        .iter()
        .filter_map(|(k, v)| {
            let ifname = k.strip_prefix("addr:")?;
            let up = peer
                .netconf
                .get(&format!("link:{ifname}"))
                .map(String::as_str)
                == Some("up");
            if !up {
                return None;
            }
            v.split('/').next()?.parse().ok()
        })
        .collect();
    let count = 4u16;
    if !peer.is_up() || !configured.contains(&target) {
        let duration = SimDuration::from_secs(u64::from(count));
        return CommandResult::fail(
            1,
            format!("PING {target}: {count} packets transmitted, 0 received, 100% packet loss"),
        )
        .with_duration(duration);
    }

    // Packet-level probe through the peer's service profile.
    let profile = match peer.spec.kind {
        DeviceKind::VirtualMachine => Platform::Vpos,
        _ => Platform::Pos,
    }
    .dut_profile();
    let seed = SimRng::new(tb.seed())
        .derive(&format!("ping/{host}/{target}/{}", tb.now().as_nanos()))
        .next_raw();
    let mut sim = NetSim::new(seed);
    let probe = sim.add_element(
        "probe",
        Box::new(PingProbe::new(PingConfig {
            src_ip: Ipv4Addr::new(10, 0, 0, 2),
            src_mac: MacAddr::testbed_host(1),
            // Cold neighbor cache: the probe ARPs the directly attached
            // target before the first echo, like a real host would.
            gateway_mac: MacAddr::ZERO,
            target,
            count,
            interval: SimDuration::from_secs(1),
            ttl: 64,
            resolve_gateway: Some(target),
        })),
        &[PortConfig::ten_gbe()],
    );
    let mut router = LinuxRouter::new(
        profile,
        vec![MacAddr::testbed_host(10)],
        SimRng::new(seed).derive("peer"),
    );
    router.set_port_ips(vec![target]);
    router.add_route(pos_netsim::router::RouteEntry {
        network: Ipv4Addr::new(10, 0, 0, 0),
        prefix_len: 24,
        port: 0,
        next_hop_mac: MacAddr::testbed_host(1),
    });
    let peer_node = sim.add_element("peer", Box::new(router), &[PortConfig::ten_gbe()]);
    sim.connect((probe, 0), (peer_node, 0), LinkConfig::direct_cable());
    sim.run_until(pos_simkernel::SimTime::from_secs(u64::from(count) + 1));

    let p = sim.element_as::<PingProbe>(probe).expect("probe element");
    let mut out = format!("PING {target} 56(84) bytes of data.\n");
    for (seq, reply) in &p.replies {
        if let ProbeReply::Echo { rtt_ns } = reply {
            out.push_str(&format!(
                "64 bytes from {target}: icmp_seq={} ttl=64 time={:.3} ms\n",
                seq + 1,
                *rtt_ns as f64 / 1e6
            ));
        }
    }
    let received = p.replies.len();
    out.push_str(&format!(
        "--- {target} ping statistics ---\n{count} packets transmitted, {received} received, {}% packet loss\n",
        (u32::from(count) - received as u32) * 100 / u32::from(count)
    ));
    let duration = SimDuration::from_secs(u64::from(count));
    if received > 0 {
        CommandResult::ok(out).with_duration(duration)
    } else {
        CommandResult::fail(1, out).with_duration(duration)
    }
}

/// Parsed `--key value` arguments.
fn parse_kv_args(argv: &[String]) -> Result<std::collections::BTreeMap<String, String>, String> {
    let mut out = std::collections::BTreeMap::new();
    let mut i = 1;
    while i < argv.len() {
        let key = argv[i]
            .strip_prefix("--")
            .ok_or_else(|| format!("expected --option, got {}", argv[i]))?;
        let value = argv
            .get(i + 1)
            .ok_or_else(|| format!("--{key} needs a value"))?;
        out.insert(key.to_owned(), value.clone());
        i += 2;
    }
    Ok(out)
}

fn parse_f64(map: &std::collections::BTreeMap<String, String>, key: &str) -> Result<f64, String> {
    map.get(key)
        .ok_or_else(|| format!("missing --{key}"))?
        .parse::<f64>()
        .map_err(|e| format!("--{key}: {e}"))
}

/// Resolves the DuT that `host`'s TX port is wired to (directly, or across
/// the vpos bridges which are invisible at this level: the peer of port 0).
fn resolve_dut(tb: &Testbed, host: &str) -> Result<String, String> {
    let peer = tb
        .topology
        .peer(&PortId::new(host, 0))
        .ok_or_else(|| format!("{host}:0 is not wired to anything — no carrier"))?;
    Ok(peer.host.clone())
}

/// The `moongen` command:
/// `moongen --rate <pps> --size <bytes> --time <secs> [--latency-every <n>]`.
///
/// Output is the MoonGen-style report text that the evaluation phase
/// parses.
fn moongen_command(tb: &mut Testbed, host: &str, argv: &[String]) -> CommandResult {
    let args = match parse_kv_args(argv) {
        Ok(a) => a,
        Err(e) => return CommandResult::fail(2, format!("moongen: {e}")),
    };
    // `--size` accepts a byte count or the literal `imix`.
    let imix = args.get("size").map(String::as_str) == Some("imix");
    let (rate, size, time) = match (
        parse_f64(&args, "rate"),
        if imix {
            Ok(64.0)
        } else {
            parse_f64(&args, "size")
        },
        parse_f64(&args, "time"),
    ) {
        (Ok(r), Ok(s), Ok(t)) => (r, s, t),
        (r, s, t) => {
            let err = [r.err(), s.err(), t.err()]
                .into_iter()
                .flatten()
                .collect::<Vec<_>>()
                .join("; ");
            return CommandResult::fail(2, format!("moongen: {err}"));
        }
    };
    if rate <= 0.0 || time <= 0.0 || !(64.0..=1518.0).contains(&size) {
        return CommandResult::fail(
            2,
            "moongen: rate/time must be positive, size within [64, 1518] or `imix`",
        );
    }
    let latency_every = args
        .get("latency-every")
        .and_then(|v| v.parse::<u32>().ok())
        .unwrap_or(16)
        .max(1);

    let dut_name = match resolve_dut(tb, host) {
        Ok(d) => d,
        Err(e) => return CommandResult::fail(1, format!("moongen: {e}")),
    };
    let Some(dut) = tb.host(&dut_name) else {
        return CommandResult::fail(1, format!("moongen: peer host {dut_name} unknown"));
    };
    if !dut.is_up() {
        // The wire is dark: a down peer transmits nothing back.
        return CommandResult::fail(1, format!("moongen: no link — peer {dut_name} is down"));
    }

    // The measurement outcome depends on what the DuT's *setup script*
    // actually configured — this is the coupling that makes a forgotten
    // setup step visible in the results.
    let forwarding_enabled = dut.sysctls.get("net.ipv4.ip_forward").map(String::as_str)
        == Some("1")
        && dut
            .netconf
            .iter()
            .filter(|(k, v)| k.starts_with("link:") && v.as_str() == "up")
            .count()
            >= 2;
    let platform = match dut.spec.kind {
        DeviceKind::VirtualMachine => Platform::Vpos,
        _ => Platform::Pos,
    };
    // Kernel boot parameters matter (§4.4): `isolcpus` shields the DuT's
    // forwarding cores from background work, cutting service-time jitter.
    let dut_jitter_sigma = if dut.boot_params.iter().any(|p| p.starts_with("isolcpus")) {
        Some(platform.dut_profile().jitter_sigma * 0.3)
    } else {
        None
    };

    // Per-invocation deterministic seed: testbed seed, parameters, and the
    // current virtual instant (so a retried run re-measures, it does not
    // replay).
    let seed = SimRng::new(tb.seed())
        .derive(&format!(
            "moongen/{host}/{rate}/{size}/{time}/{}",
            tb.now().as_nanos()
        ))
        .next_raw();

    // Chaos campaigns can degrade the generator's experiment link for
    // scheduled windows; an active window shows up in the measurement as
    // real packet loss.
    let mut link_fault = pos_netsim::FaultConfig::none();
    if let Some((drop_chance, corrupt_chance)) = tb.link_degradation(host, tb.now()) {
        link_fault.drop_chance = drop_chance;
        link_fault.corrupt_chance = corrupt_chance;
    }

    let pcap_path = args.get("pcap").cloned();
    let scenario = ForwardingScenario {
        platform,
        pkt_size: size as usize,
        rate_pps: rate,
        duration: SimDuration::from_secs_f64(time),
        seed,
        latency_sample_every: latency_every,
        dut_forwarding: forwarding_enabled,
        dut_jitter_sigma,
        record_pcap_frames: if pcap_path.is_some() { 1000 } else { 0 },
        imix,
        link_fault,
    };
    let result = run_forwarding_experiment(&scenario);

    // Store the capture in the host's filesystem; the controller collects
    // everything under /srv/results/ into the run's artifacts.
    if let Some(path) = pcap_path {
        let mut writer = match pos_packet::pcap::PcapWriter::new(Vec::new()) {
            Ok(w) => w,
            Err(e) => return CommandResult::fail(1, format!("moongen: pcap: {e}")),
        };
        for cap in &result.tx_capture {
            if let Err(e) = writer.write(cap.ts_ns, &cap.frame) {
                return CommandResult::fail(1, format!("moongen: pcap: {e}"));
            }
        }
        match writer.finish() {
            Ok(bytes) => {
                tb.host_mut(host)
                    .expect("reachability checked by exec")
                    .fs
                    .insert(path, bytes);
            }
            Err(e) => return CommandResult::fail(1, format!("moongen: pcap: {e}")),
        }
    }

    let elapsed = scenario.duration + SimDuration::from_millis(200);
    CommandResult::ok(result.report.render_text()).with_duration(elapsed)
}

/// The `iperf` command: `iperf --rate <pps> --size <bytes> --time <secs>`.
/// A coarse, bursty OS-socket generator; reports average goodput only.
fn iperf_command(tb: &mut Testbed, host: &str, argv: &[String]) -> CommandResult {
    use pos_loadgen::iperf::{IperfConfig, IperfGenerator};
    use pos_netsim::engine::{LinkConfig, NetSim, PortConfig};
    use pos_netsim::sink::CountingSink;
    use pos_packet::builder::UdpFrameSpec;
    use pos_packet::MacAddr;
    use std::net::Ipv4Addr;

    let args = match parse_kv_args(argv) {
        Ok(a) => a,
        Err(e) => return CommandResult::fail(2, format!("iperf: {e}")),
    };
    let (rate, size, time) = match (
        parse_f64(&args, "rate"),
        parse_f64(&args, "size"),
        parse_f64(&args, "time"),
    ) {
        (Ok(r), Ok(s), Ok(t)) => (r, s, t),
        _ => return CommandResult::fail(2, "iperf: need --rate, --size, --time"),
    };
    if rate <= 0.0 || time <= 0.0 || !(64.0..=1518.0).contains(&size) {
        return CommandResult::fail(2, "iperf: invalid parameters");
    }
    if let Err(e) = resolve_dut(tb, host) {
        return CommandResult::fail(1, format!("iperf: {e}"));
    }

    let seed = SimRng::new(tb.seed())
        .derive(&format!("iperf/{host}/{}", tb.now().as_nanos()))
        .next_raw();
    let mut sim = NetSim::new(seed);
    let duration = SimDuration::from_secs_f64(time);
    let gen = sim.add_element(
        "iperf",
        Box::new(IperfGenerator::new(IperfConfig {
            spec: UdpFrameSpec {
                src_mac: MacAddr::testbed_host(1),
                dst_mac: MacAddr::testbed_host(2),
                src_ip: Ipv4Addr::new(10, 0, 0, 2),
                dst_ip: Ipv4Addr::new(10, 0, 1, 2),
                src_port: 5001,
                dst_port: 5001,
                ttl: 64,
            },
            wire_size: size as usize,
            rate_pps: rate,
            duration,
            burst_interval: SimDuration::from_millis(1),
        })),
        &[PortConfig::ten_gbe()],
    );
    let sink = sim.add_element(
        "peer",
        Box::new(CountingSink::new()),
        &[PortConfig::ten_gbe()],
    );
    sim.connect((gen, 0), (sink, 0), LinkConfig::direct_cable());
    sim.run_until(pos_simkernel::SimTime::ZERO + duration + SimDuration::from_millis(50));
    let received = sim.element_as::<CountingSink>(sink).expect("sink").frames;
    let bytes = sim.element_as::<CountingSink>(sink).expect("sink").bytes;
    let mbit = bytes as f64 * 8.0 / time / 1e6;
    CommandResult::ok(format!(
        "[ ID] Interval       Transfer     Bandwidth\n\
         [  3] 0.0-{time:.1} sec  {received} datagrams  {mbit:.2} Mbits/sec"
    ))
    .with_duration(duration + SimDuration::from_millis(50))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pos_testbed::{HardwareSpec, ImageId, InitInterface};

    /// A booted two-host testbed wired like the case study.
    fn wired_testbed() -> Testbed {
        let mut tb = Testbed::new(0xC0FFEE);
        tb.add_host("vriga", HardwareSpec::paper_dut(), InitInterface::Ipmi);
        tb.add_host("vtartu", HardwareSpec::paper_dut(), InitInterface::Ipmi);
        tb.topology
            .wire(PortId::new("vriga", 0), PortId::new("vtartu", 0))
            .unwrap();
        tb.topology
            .wire(PortId::new("vtartu", 1), PortId::new("vriga", 1))
            .unwrap();
        register_all(&mut tb);
        for host in ["vriga", "vtartu"] {
            tb.select_image(host, ImageId(0)).unwrap();
            while tb.power_on(host).is_err() {}
            tb.wait_booted(host).unwrap();
        }
        tb
    }

    fn configure_dut(tb: &mut Testbed) {
        for cmd in [
            "ip link set enp24s0f0 up",
            "ip link set enp24s0f1 up",
            "sysctl -w net.ipv4.ip_forward=1",
        ] {
            assert!(tb.exec("vtartu", cmd).unwrap().success());
        }
    }

    #[test]
    fn moongen_measures_configured_dut() {
        let mut tb = wired_testbed();
        configure_dut(&mut tb);
        let t0 = tb.now();
        let r = tb
            .exec("vriga", "moongen --rate 100000 --size 64 --time 1")
            .unwrap();
        assert!(r.success(), "stderr: {}", r.stderr);
        assert!(r.stdout.contains("RX: 100000 packets"), "{}", r.stdout);
        // The run consumed its virtual duration.
        assert!((tb.now() - t0).as_secs_f64() >= 1.0);
    }

    #[test]
    fn moongen_sees_misconfigured_dut() {
        // Without the setup commands the DuT does not forward: the
        // methodology point — configuration must be scripted, and a missing
        // step is visible in the measurement.
        let mut tb = wired_testbed();
        let r = tb
            .exec("vriga", "moongen --rate 50000 --size 64 --time 1")
            .unwrap();
        assert!(r.success());
        assert!(r.stdout.contains("RX: 0 packets"), "{}", r.stdout);
    }

    #[test]
    fn moongen_fails_cleanly_on_dark_fiber() {
        let mut tb = wired_testbed();
        configure_dut(&mut tb);
        tb.host_mut("vtartu").unwrap().inject_crash();
        let r = tb
            .exec("vriga", "moongen --rate 50000 --size 64 --time 1")
            .unwrap();
        assert!(!r.success());
        assert!(r.stderr.contains("peer vtartu is down"));
    }

    #[test]
    fn moongen_argument_validation() {
        let mut tb = wired_testbed();
        for bad in [
            "moongen",
            "moongen --rate 1000",
            "moongen --rate 1000 --size 64 --time abc",
            "moongen --rate -5 --size 64 --time 1",
            "moongen --rate 1000 --size 32 --time 1",
            "moongen --rate 1000 --size 64 --time 1 --oops",
        ] {
            let r = tb.exec("vriga", bad).unwrap();
            assert_eq!(r.exit_code, 2, "should reject: {bad}");
        }
    }

    #[test]
    fn moongen_unwired_port_has_no_carrier() {
        let mut tb = Testbed::new(1);
        tb.add_host("lonely", HardwareSpec::paper_dut(), InitInterface::Ipmi);
        register_all(&mut tb);
        tb.select_image("lonely", ImageId(0)).unwrap();
        while tb.power_on("lonely").is_err() {}
        tb.wait_booted("lonely").unwrap();
        let r = tb
            .exec("lonely", "moongen --rate 1000 --size 64 --time 1")
            .unwrap();
        assert!(!r.success());
        assert!(r.stderr.contains("no carrier"));
    }

    #[test]
    fn moongen_vpos_platform_detected_from_host_kind() {
        let mut tb = Testbed::new(2);
        tb.add_host("vm-gen", HardwareSpec::vpos_vm(), InitInterface::Hypervisor);
        tb.add_host("vm-dut", HardwareSpec::vpos_vm(), InitInterface::Hypervisor);
        tb.topology
            .wire(PortId::new("vm-gen", 0), PortId::new("vm-dut", 0))
            .unwrap();
        tb.topology
            .wire(PortId::new("vm-dut", 1), PortId::new("vm-gen", 1))
            .unwrap();
        register_all(&mut tb);
        for host in ["vm-gen", "vm-dut"] {
            tb.select_image(host, ImageId(0)).unwrap();
            while tb.power_on(host).is_err() {}
            tb.wait_booted(host).unwrap();
        }
        for cmd in [
            "ip link set eth0 up",
            "ip link set eth1 up",
            "sysctl -w net.ipv4.ip_forward=1",
        ] {
            tb.exec("vm-dut", cmd).unwrap();
        }
        // 100 kpps offered, but a VM saturates around 40 kpps (Fig. 3b).
        let r = tb
            .exec("vm-gen", "moongen --rate 100000 --size 64 --time 1")
            .unwrap();
        assert!(r.success());
        // Parse the final RX line loosely: rx packets should be ~40k ± band.
        let rx_line = r
            .stdout
            .lines()
            .find(|l| l.contains("id=1] RX:") && l.contains("packets"))
            .expect("summary RX line");
        let rx: u64 = rx_line.split_whitespace().nth(3).unwrap().parse().unwrap();
        assert!(
            (25_000..60_000).contains(&rx),
            "VM DuT should cap near 40 kpps, got {rx}: {rx_line}"
        );
    }

    #[test]
    fn moongen_determinism_under_same_testbed_history() {
        let run = || {
            let mut tb = wired_testbed();
            configure_dut(&mut tb);
            tb.exec("vriga", "moongen --rate 100000 --size 64 --time 1")
                .unwrap()
                .stdout
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn moongen_pcap_dump_lands_in_host_fs() {
        let mut tb = wired_testbed();
        configure_dut(&mut tb);
        let r = tb
            .exec(
                "vriga",
                "moongen --rate 50000 --size 64 --time 1 --pcap /srv/results/tx.pcap",
            )
            .unwrap();
        assert!(r.success(), "stderr: {}", r.stderr);
        let bytes = tb.download("vriga", "/srv/results/tx.pcap").unwrap();
        let caps = pos_packet::pcap::PcapReader::new(&bytes[..])
            .unwrap()
            .collect_all()
            .unwrap();
        assert_eq!(caps.len(), 1000, "first 1000 frames recorded");
        // The capture holds real, parseable frames with increasing probes.
        let p0 = pos_packet::probe::Probe::parse(
            pos_packet::builder::parse_udp_frame(caps[0].frame.bytes())
                .unwrap()
                .payload,
        )
        .unwrap();
        let p1 = pos_packet::probe::Probe::parse(
            pos_packet::builder::parse_udp_frame(caps[1].frame.bytes())
                .unwrap()
                .payload,
        )
        .unwrap();
        assert_eq!(p0.seq + 1, p1.seq);
        assert!(caps[0].ts_ns <= caps[1].ts_ns);
    }

    #[test]
    fn isolcpus_boot_param_reduces_latency_jitter() {
        let stddev_with_params = |params: &[String]| -> f64 {
            let mut tb = wired_testbed();
            tb.set_boot_params("vtartu", params).unwrap();
            // Reboot so the parameters take effect.
            while tb.reset("vtartu").is_err() {}
            tb.wait_booted("vtartu").unwrap();
            configure_dut(&mut tb);
            let out = tb
                .exec(
                    "vriga",
                    "moongen --rate 100000 --size 64 --time 1 --latency-every 1",
                )
                .unwrap();
            // Parse the StdDev from the Samples line.
            let line = out
                .stdout
                .lines()
                .find(|l| l.starts_with("Samples:"))
                .expect("latency line");
            line.split("StdDev: ")
                .nth(1)
                .unwrap()
                .split(" ns")
                .next()
                .unwrap()
                .parse()
                .unwrap()
        };
        let noisy = stddev_with_params(&[]);
        let shielded = stddev_with_params(&["isolcpus=1-11".to_string()]);
        assert!(
            shielded < noisy * 0.6,
            "isolcpus must cut jitter: {shielded} vs {noisy}"
        );
    }

    #[test]
    fn moongen_size_imix_accepted() {
        let mut tb = wired_testbed();
        configure_dut(&mut tb);
        let r = tb
            .exec("vriga", "moongen --rate 50000 --size imix --time 1")
            .unwrap();
        assert!(r.success(), "stderr: {}", r.stderr);
        // Nominal size in the header is the mix mean.
        assert!(r.stdout.contains("size=356 B"), "{}", r.stdout);
        assert!(r.stdout.contains("RX: 50000 packets"), "{}", r.stdout);
        // Byte counters reflect mixed sizes, not 64 B frames.
        let parsed = pos_eval_compat_parse(&r.stdout);
        assert!(
            parsed > 50_000 * 64,
            "mixed sizes carry more bytes: {parsed}"
        );
    }

    /// Tiny local extraction of the RX byte count (pos-eval is not a
    /// dependency of pos-core; the full parser lives there).
    fn pos_eval_compat_parse(text: &str) -> u64 {
        let line = text
            .lines()
            .find(|l| l.contains("id=1] RX:") && l.contains("bytes"))
            .expect("cumulative RX line");
        let idx = line.find(" bytes").expect("bytes suffix");
        line[..idx]
            .split_whitespace()
            .last()
            .unwrap()
            .parse()
            .unwrap()
    }

    #[test]
    fn ping_succeeds_only_after_setup() {
        let mut tb = wired_testbed();
        // Before the DuT's setup script ran, its addresses do not exist.
        let r = tb.exec("vriga", "ping 10.0.0.1").unwrap();
        assert!(!r.success());
        assert!(r.stderr.contains("100% packet loss"), "{}", r.stderr);

        // Configure the address but leave the link down: still dark.
        tb.exec("vtartu", "ip addr add 10.0.0.1/24 dev enp24s0f0")
            .unwrap();
        let r = tb.exec("vriga", "ping 10.0.0.1").unwrap();
        assert!(!r.success(), "address on a down link must not answer");

        // Bring the link up: the path works, RTTs are printed.
        tb.exec("vtartu", "ip link set enp24s0f0 up").unwrap();
        let t0 = tb.now();
        let r = tb.exec("vriga", "ping 10.0.0.1").unwrap();
        assert!(r.success(), "stderr: {}", r.stderr);
        assert!(r
            .stdout
            .contains("4 packets transmitted, 4 received, 0% packet loss"));
        assert!(r.stdout.contains("icmp_seq=1"));
        assert!(r.stdout.contains("time=0.0"), "sub-ms RTT: {}", r.stdout);
        // The four 1s-spaced probes consumed virtual time.
        assert!((tb.now() - t0).as_secs_f64() >= 4.0);

        // An address the DuT never configured stays unreachable.
        let r = tb.exec("vriga", "ping 10.9.9.9").unwrap();
        assert!(!r.success());
    }

    #[test]
    fn ping_argument_validation() {
        let mut tb = wired_testbed();
        assert_eq!(tb.exec("vriga", "ping").unwrap().exit_code, 2);
        assert_eq!(tb.exec("vriga", "ping not-an-ip").unwrap().exit_code, 2);
    }

    #[test]
    fn ping_dead_peer_is_loss() {
        let mut tb = wired_testbed();
        configure_dut(&mut tb);
        tb.exec("vtartu", "ip addr add 10.0.0.1/24 dev enp24s0f0")
            .unwrap();
        tb.host_mut("vtartu").unwrap().inject_crash();
        let r = tb.exec("vriga", "ping 10.0.0.1").unwrap();
        assert!(!r.success());
        assert!(r.stderr.contains("100% packet loss"));
    }

    #[test]
    fn iperf_reports_bandwidth() {
        let mut tb = wired_testbed();
        let r = tb
            .exec("vriga", "iperf --rate 10000 --size 1500 --time 1")
            .unwrap();
        assert!(r.success(), "stderr: {}", r.stderr);
        assert!(r.stdout.contains("Mbits/sec"), "{}", r.stdout);
        // ≈10000 datagrams of 1500 B in 1 s ≈ 120 Mbit/s.
        let mbit: f64 = r
            .stdout
            .lines()
            .last()
            .unwrap()
            .split_whitespace()
            .rev()
            .nth(1)
            .unwrap()
            .parse()
            .unwrap();
        assert!((110.0..130.0).contains(&mbit), "got {mbit}");
    }

    #[test]
    fn iperf_argument_validation() {
        let mut tb = wired_testbed();
        let r = tb.exec("vriga", "iperf --rate 1000").unwrap();
        assert_eq!(r.exit_code, 2);
    }
}
