//! Offline integrity checking of a result tree (`pos fsck`).
//!
//! Cross-checks the three durability layers the store maintains:
//!
//! 1. the campaign journal (`journal.log`) — replayable, torn tail
//!    reported, corruption rejected;
//! 2. per-run checksum manifests (`checksums.json`) — every journaled
//!    run digest must match the manifest bytes on disk;
//! 3. the artifacts themselves — every manifest entry present and
//!    byte-identical, no unlisted files.
//!
//! The report distinguishes *incomplete* (a crash artifact `pos resume`
//! repairs) from *damaged* (missing/corrupt/extra artifacts in a run the
//! journal claims durable — bit rot or tampering).

use crate::journal::{
    campaign_disk_state, lane_journal_file, CampaignDiskState, Journal, JournalError,
    JournalRecord, JOURNAL_FILE, LEDGER_FILE,
};
use crate::resultstore::{tree_digest, ResultStore, RunVerification};
use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};

/// Integrity status of one run directory.
#[derive(Debug, Clone, PartialEq)]
pub enum RunStatus {
    /// Manifest and all artifacts match the journaled digest.
    Verified,
    /// Journaled as completed, but the on-disk manifest hashes to a
    /// different digest (or is missing/unreadable).
    DigestMismatch {
        /// The digest the journal recorded.
        journaled: String,
        /// The digest of the manifest on disk, if one could be read.
        on_disk: Option<String>,
    },
    /// Manifest digest matches but artifacts diverge from it.
    Damaged(RunVerification),
    /// The journal never recorded this run as completed — a crash
    /// artifact; `pos resume` wipes and re-executes it.
    Incomplete,
    /// Journaled as completed but the run directory does not exist.
    Missing,
}

impl RunStatus {
    /// True for states a clean tree may not contain.
    pub fn is_problem(&self) -> bool {
        !matches!(self, RunStatus::Verified)
    }
}

/// One run's entry in the report.
#[derive(Debug, Clone)]
pub struct RunFsck {
    /// Zero-based run index.
    pub index: usize,
    /// What the check found.
    pub status: RunStatus,
}

/// Everything `fsck` found out about a result tree.
#[derive(Debug)]
pub struct FsckReport {
    /// The checked tree.
    pub result_dir: PathBuf,
    /// Complete journal records replayed (scheduler-level `journal.log`).
    pub journal_records: usize,
    /// Per-lane journals found (`journal-lane*.log`); 0 for a sequential
    /// tree.
    pub lane_journals: usize,
    /// Complete records replayed across all per-lane journals.
    pub lane_records: usize,
    /// True when any journal (scheduler-level or per-lane) ends in a
    /// torn (partially written) record.
    pub torn_tail: bool,
    /// True when a `CampaignFinished` record is present.
    pub campaign_finished: bool,
    /// Runs the expanded campaign planned, per the journal.
    pub planned_runs: Option<usize>,
    /// Lanes a supervisor retired, as `(lane, reason)` in journal order.
    pub retired_lanes: Vec<(usize, String)>,
    /// Replacement lanes the supervisor replanned (`LaneReplanned`).
    pub replanned_lanes: usize,
    /// Retry-ladder steps journaled (`RunRetry`).
    pub run_retries: usize,
    /// Runs quarantined as poison (`RunQuarantined`), in index order.
    pub quarantined_runs: Vec<usize>,
    /// Per-run findings, in index order.
    pub runs: Vec<RunFsck>,
    /// Tree-level problems (unreadable journal, no start record, ...).
    pub errors: Vec<String>,
}

impl FsckReport {
    /// True when the tree is complete and every artifact verifies.
    pub fn is_clean(&self) -> bool {
        self.errors.is_empty()
            && !self.torn_tail
            && self.campaign_finished
            && self.runs.iter().all(|r| !r.status.is_problem())
    }

    /// Indices of runs that need re-execution (anything not verified).
    pub fn broken_runs(&self) -> Vec<usize> {
        self.runs
            .iter()
            .filter(|r| r.status.is_problem())
            .map(|r| r.index)
            .collect()
    }

    /// Renders the human-readable report (`pos fsck` output).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("fsck {}\n", self.result_dir.display()));
        out.push_str(&format!(
            "journal: {} records{}{}\n",
            self.journal_records,
            if self.torn_tail { ", torn tail" } else { "" },
            if self.campaign_finished {
                ", campaign finished"
            } else {
                ", campaign INCOMPLETE"
            },
        ));
        if self.lane_journals > 0 {
            out.push_str(&format!(
                "lanes: {} lane journals, {} records\n",
                self.lane_journals, self.lane_records,
            ));
        }
        if !self.retired_lanes.is_empty() || self.replanned_lanes > 0 || self.run_retries > 0 {
            out.push_str(&format!(
                "failover: {} lane(s) retired, {} replacement lane(s), {} run retry step(s)\n",
                self.retired_lanes.len(),
                self.replanned_lanes,
                self.run_retries,
            ));
            for (lane, reason) in &self.retired_lanes {
                out.push_str(&format!("  lane {lane} retired: {reason}\n"));
            }
        }
        if !self.quarantined_runs.is_empty() {
            out.push_str(&format!("quarantined runs: {:?}\n", self.quarantined_runs));
        }
        if let Some(planned) = self.planned_runs {
            let verified = self
                .runs
                .iter()
                .filter(|r| r.status == RunStatus::Verified)
                .count();
            out.push_str(&format!("runs: {verified}/{planned} verified\n"));
        }
        for e in &self.errors {
            out.push_str(&format!("error: {e}\n"));
        }
        for run in &self.runs {
            match &run.status {
                RunStatus::Verified => {
                    out.push_str(&format!("run {:04}: ok\n", run.index));
                }
                RunStatus::DigestMismatch { journaled, on_disk } => {
                    out.push_str(&format!(
                        "run {:04}: manifest digest mismatch (journal {}.., disk {})\n",
                        run.index,
                        &journaled[..12.min(journaled.len())],
                        on_disk
                            .as_ref()
                            .map(|d| format!("{}..", &d[..12.min(d.len())]))
                            .unwrap_or_else(|| "unreadable".into()),
                    ));
                }
                RunStatus::Damaged(v) => {
                    out.push_str(&format!("run {:04}: damaged", run.index));
                    if !v.missing.is_empty() {
                        out.push_str(&format!(" missing={:?}", v.missing));
                    }
                    if !v.corrupt.is_empty() {
                        out.push_str(&format!(" corrupt={:?}", v.corrupt));
                    }
                    if !v.extra.is_empty() {
                        out.push_str(&format!(" extra={:?}", v.extra));
                    }
                    out.push('\n');
                }
                RunStatus::Incomplete => {
                    out.push_str(&format!(
                        "run {:04}: incomplete (no completion record; resume re-executes it)\n",
                        run.index
                    ));
                }
                RunStatus::Missing => {
                    out.push_str(&format!(
                        "run {:04}: journaled complete but directory is missing\n",
                        run.index
                    ));
                }
            }
        }
        out.push_str(if self.is_clean() {
            "status: clean\n"
        } else {
            "status: NOT clean\n"
        });
        out
    }
}

/// Checks a result tree: replays its journal, verifies every journaled
/// run against its digest and manifest, and reports run directories the
/// journal does not account for.
pub fn fsck(result_dir: &Path) -> io::Result<FsckReport> {
    let store = ResultStore::open(result_dir);
    let mut report = FsckReport {
        result_dir: result_dir.to_path_buf(),
        journal_records: 0,
        lane_journals: 0,
        lane_records: 0,
        torn_tail: false,
        campaign_finished: false,
        planned_runs: None,
        retired_lanes: Vec::new(),
        replanned_lanes: 0,
        run_retries: 0,
        quarantined_runs: Vec::new(),
        runs: Vec::new(),
        errors: Vec::new(),
    };

    let journal_path = result_dir.join(JOURNAL_FILE);
    let replay = match Journal::replay(&journal_path) {
        Ok(r) => Some(r),
        Err(JournalError::Io(e)) => {
            report.errors.push(format!("journal unreadable: {e}"));
            None
        }
        Err(e @ JournalError::Corrupt { .. }) => {
            report.errors.push(e.to_string());
            None
        }
    };

    // Journaled completion per run index, last record wins.
    let mut completed: BTreeMap<usize, String> = BTreeMap::new();
    let mut lane_plan: Option<usize> = None;
    // Runs a retired lane was holding when it died — the journal must
    // later account for each (reassigned completion or quarantine).
    let mut held_by_dead_lane: Vec<(usize, usize)> = Vec::new();
    if let Some(replay) = &replay {
        report.journal_records = replay.records.len();
        report.torn_tail = replay.torn_tail;
        report.campaign_finished = replay.finished();
        match replay.campaign_start() {
            Some(JournalRecord::CampaignStarted { total_runs, .. }) => {
                report.planned_runs = Some(*total_runs);
            }
            _ => report
                .errors
                .push("journal has no CampaignStarted record".into()),
        }
        for rec in &replay.records {
            match rec {
                JournalRecord::RunCompleted { index, digest, .. } => {
                    completed.insert(*index, digest.clone());
                }
                JournalRecord::LanePlan { lanes, .. } => {
                    lane_plan = Some(*lanes);
                }
                JournalRecord::LaneRetired {
                    lane, reason, run, ..
                } => {
                    report.retired_lanes.push((*lane, reason.clone()));
                    if let Some(index) = run {
                        held_by_dead_lane.push((*lane, *index));
                    }
                }
                JournalRecord::LaneReplanned { .. } => {
                    report.replanned_lanes += 1;
                }
                JournalRecord::RunRetry { .. } => {
                    report.run_retries += 1;
                }
                JournalRecord::RunQuarantined { index, .. }
                    if !report.quarantined_runs.contains(index) =>
                {
                    report.quarantined_runs.push(*index);
                }
                _ => {}
            }
        }
        report.quarantined_runs.sort_unstable();
    }

    // A LanePlan record marks a parallel tree: every worker lane kept its
    // own journal (`journal-lane{k}.log`), and a run's completion lives in
    // whichever lane executed it. Replacement lanes replanned after a
    // retirement (`LaneReplanned`) keep journals beyond the original
    // plan. Merge them all; a run is accounted for if *any* lane
    // journaled it complete. Torn lane tails are ordinary crash
    // artifacts, like a torn scheduler journal.
    if let Some(lanes) = lane_plan {
        let total_lanes = lanes + report.replanned_lanes;
        for lane in 0..total_lanes {
            let lane_path = result_dir.join(lane_journal_file(lane));
            match Journal::replay(&lane_path) {
                Ok(lane_replay) => {
                    report.lane_journals += 1;
                    report.lane_records += lane_replay.records.len();
                    report.torn_tail |= lane_replay.torn_tail;
                    for rec in &lane_replay.records {
                        if let JournalRecord::RunCompleted { index, digest, .. } = rec {
                            completed.insert(*index, digest.clone());
                        }
                    }
                }
                Err(JournalError::Io(e))
                    if e.kind() == io::ErrorKind::NotFound && lane >= lanes =>
                {
                    // A replanned lane the crash beat to its journal:
                    // an ordinary crash artifact, resume recreates it.
                }
                Err(JournalError::Io(e)) if e.kind() == io::ErrorKind::NotFound => {
                    report
                        .errors
                        .push(format!("lane {lane}: journal missing ({e})"));
                }
                Err(e) => {
                    report.errors.push(format!("lane {lane}: {e}"));
                }
            }
        }
    }

    // Failover integrity: a lane retired while holding a run obliges the
    // journal to account for that run — a completion (reassigned to a
    // surviving or replacement lane) or a poison quarantine. A stranded
    // run means the failover was interrupted; resume finishes it.
    for (lane, index) in &held_by_dead_lane {
        if !completed.contains_key(index) && !report.quarantined_runs.contains(index) {
            report.errors.push(format!(
                "lane {lane} retired holding run {index:04}: run neither reassigned nor \
                 quarantined (stranded); run `pos resume` to repair"
            ));
        }
    }

    // Run directories actually on disk.
    let on_disk: BTreeMap<usize, PathBuf> = store
        .list_runs()?
        .into_iter()
        .filter_map(|dir| {
            dir.file_name()
                .and_then(|n| n.to_str())
                .and_then(|n| n.strip_prefix("run-"))
                .and_then(|n| n.parse::<usize>().ok())
                .map(|idx| (idx, dir))
        })
        .collect();

    let mut indices: Vec<usize> = completed.keys().copied().collect();
    for idx in on_disk.keys() {
        if !completed.contains_key(idx) {
            indices.push(*idx);
        }
    }
    indices.sort_unstable();

    for index in indices {
        let status = match (completed.get(&index), on_disk.get(&index)) {
            (Some(journaled), Some(dir)) => {
                let disk_digest = ResultStore::run_digest(dir).ok();
                if disk_digest.as_ref() != Some(journaled) {
                    RunStatus::DigestMismatch {
                        journaled: journaled.clone(),
                        on_disk: disk_digest,
                    }
                } else {
                    match ResultStore::verify_run(dir) {
                        Ok(v) if v.is_clean() => RunStatus::Verified,
                        Ok(v) => RunStatus::Damaged(v),
                        Err(e) => RunStatus::DigestMismatch {
                            journaled: journaled.clone(),
                            on_disk: Some(format!("unreadable: {e}")),
                        },
                    }
                }
            }
            (Some(_), None) => RunStatus::Missing,
            (None, Some(_)) => RunStatus::Incomplete,
            (None, None) => unreachable!("index came from one of the maps"),
        };
        report.runs.push(RunFsck { index, status });
    }

    // Planned runs the tree has no trace of at all also count as
    // incomplete when the campaign claims to be finished.
    if let (Some(planned), true) = (report.planned_runs, report.campaign_finished) {
        for index in 0..planned {
            if !completed.contains_key(&index) && !on_disk.contains_key(&index) {
                report.runs.push(RunFsck {
                    index,
                    status: RunStatus::Incomplete,
                });
            }
        }
        report.runs.sort_by_key(|r| r.index);
    }

    Ok(report)
}

/// One submission's fate according to the queue ledger.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LedgerEntryState {
    /// Accepted, never dispatched — waiting in the queue.
    Pending,
    /// Dispatched, no terminal record — in flight (or interrupted;
    /// daemon restart resumes it).
    InFlight,
    /// Reached a terminal outcome.
    Finished {
        /// `"completed"`, `"completed_degraded"` or `"failed"`.
        outcome: String,
        /// The result tree the ledger claims (empty for early failures).
        result_dir: String,
    },
}

/// Everything the queue-ledger fsck found out about a `pos serve` state
/// directory and its result trees.
#[derive(Debug)]
pub struct QueueFsckReport {
    /// The checked state directory.
    pub state_dir: PathBuf,
    /// Results root recorded by the last `ServeStarted` record.
    pub results_root: Option<PathBuf>,
    /// Complete ledger records replayed.
    pub ledger_records: usize,
    /// True when the ledger ends in a torn (partially written) record —
    /// the expected artifact of a daemon killed mid-append; a daemon
    /// restart truncates it away.
    pub torn_tail: bool,
    /// Daemon sessions the ledger spans (`ServeStarted` records).
    pub sessions: usize,
    /// Submissions accepted across all sessions.
    pub accepted: usize,
    /// Submissions with a terminal record.
    pub finished: usize,
    /// Accepted-but-never-dispatched submission ids (normal while the
    /// daemon is up; work to resume after a crash).
    pub pending: Vec<u64>,
    /// Dispatched-but-unfinished submission ids.
    pub in_flight: Vec<u64>,
    /// Orphaned ledger entries: `(id, problem)` — the ledger acknowledged
    /// a completion whose result tree is missing or not actually
    /// finished. Remediation: `pos resume` the tree if present,
    /// resubmit otherwise.
    pub orphaned_entries: Vec<(u64, String)>,
    /// Orphan trees: finished result trees under the results root that no
    /// ledger entry accounts for.
    pub orphan_trees: Vec<PathBuf>,
    /// Unfinished trees (no terminal journal record) not claimed by any
    /// finished ledger entry — in-flight work a daemon restart or
    /// `pos resume` completes.
    pub resumable_trees: Vec<PathBuf>,
    /// Ledger-level problems (unreadable, corrupt, no start record, ...).
    pub errors: Vec<String>,
}

impl QueueFsckReport {
    /// True when ledger and trees agree: no corruption, no torn tail, no
    /// orphaned entries, no orphan trees. Pending and in-flight entries
    /// (and their resumable trees) are normal operating state, not
    /// problems.
    pub fn is_clean(&self) -> bool {
        self.errors.is_empty()
            && !self.torn_tail
            && self.orphaned_entries.is_empty()
            && self.orphan_trees.is_empty()
    }

    /// Renders the human-readable report (`pos fsck` on a state dir).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("fsck queue {}\n", self.state_dir.display()));
        out.push_str(&format!(
            "ledger: {} records, {} session(s){}\n",
            self.ledger_records,
            self.sessions,
            if self.torn_tail {
                ", torn tail (daemon restart truncates it)"
            } else {
                ""
            },
        ));
        out.push_str(&format!(
            "submissions: {} accepted, {} finished, {} pending, {} in flight\n",
            self.accepted,
            self.finished,
            self.pending.len(),
            self.in_flight.len(),
        ));
        for id in &self.in_flight {
            out.push_str(&format!(
                "in flight: submission {id} (daemon restart resumes it)\n"
            ));
        }
        for (id, problem) in &self.orphaned_entries {
            out.push_str(&format!("orphaned entry: submission {id}: {problem}\n"));
        }
        for tree in &self.orphan_trees {
            out.push_str(&format!(
                "orphan tree: {} (finished tree, no ledger entry)\n",
                tree.display()
            ));
        }
        for tree in &self.resumable_trees {
            out.push_str(&format!(
                "resumable tree: {} (unfinished; `pos resume` completes it)\n",
                tree.display()
            ));
        }
        for e in &self.errors {
            out.push_str(&format!("error: {e}\n"));
        }
        out.push_str(if self.is_clean() {
            "status: clean\n"
        } else {
            "status: NOT clean\n"
        });
        out
    }
}

/// Collects every result tree under `root` (the `user/experiment/vt-*`
/// layout [`ResultStore::create`] produces), in sorted order.
fn collect_result_trees(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut trees = Vec::new();
    if !root.exists() {
        return Ok(trees);
    }
    for user in fs_read_dir_sorted(root)? {
        if !user.is_dir() {
            continue;
        }
        for exp in fs_read_dir_sorted(&user)? {
            if !exp.is_dir() {
                continue;
            }
            for tree in fs_read_dir_sorted(&exp)? {
                let is_tree = tree.is_dir()
                    && tree
                        .file_name()
                        .and_then(|n| n.to_str())
                        .is_some_and(|n| n.starts_with("vt-"));
                if is_tree {
                    trees.push(tree);
                }
            }
        }
    }
    Ok(trees)
}

/// `read_dir` with deterministic (sorted) order.
fn fs_read_dir_sorted(dir: &Path) -> io::Result<Vec<PathBuf>> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    Ok(entries)
}

/// Cross-checks a `pos serve` queue ledger against the campaign result
/// trees it acknowledged.
///
/// Two failure classes, per the lifecycle contract (journal-before-ack):
///
/// * **Orphaned ledger entry** — the ledger says a submission completed,
///   but its result tree is missing or its campaign journal never
///   finished. The ack was durable, the work is not: bit rot or manual
///   deletion, never a crash (completion is journaled *after* the tree
///   seals). Remediation: `pos resume` the tree if it exists.
/// * **Orphan tree** — a finished result tree no ledger entry claims.
///   Someone wrote into the daemon's results root behind its back, or
///   the ledger was truncated. Remediation: ledger repair (resubmit and
///   let the daemon adopt, or archive the tree).
pub fn fsck_queue(state_dir: &Path) -> io::Result<QueueFsckReport> {
    let mut report = QueueFsckReport {
        state_dir: state_dir.to_path_buf(),
        results_root: None,
        ledger_records: 0,
        torn_tail: false,
        sessions: 0,
        accepted: 0,
        finished: 0,
        pending: Vec::new(),
        in_flight: Vec::new(),
        orphaned_entries: Vec::new(),
        orphan_trees: Vec::new(),
        resumable_trees: Vec::new(),
        errors: Vec::new(),
    };

    let ledger_path = state_dir.join(LEDGER_FILE);
    let replay = match Journal::replay(&ledger_path) {
        Ok(r) => r,
        Err(JournalError::Io(e)) => {
            report.errors.push(format!("ledger unreadable: {e}"));
            return Ok(report);
        }
        Err(e @ JournalError::Corrupt { .. }) => {
            report.errors.push(e.to_string());
            return Ok(report);
        }
    };
    report.ledger_records = replay.records.len();
    report.torn_tail = replay.torn_tail;

    // Fold the ledger into per-submission states, last record wins.
    let mut entries: BTreeMap<u64, LedgerEntryState> = BTreeMap::new();
    for rec in &replay.records {
        match rec {
            JournalRecord::ServeStarted { results_root, .. } => {
                report.sessions += 1;
                report.results_root = Some(PathBuf::from(results_root));
            }
            JournalRecord::SubmissionAccepted { id, .. } => {
                report.accepted += 1;
                entries.insert(*id, LedgerEntryState::Pending);
            }
            JournalRecord::CampaignDispatched { id } => {
                entries.insert(*id, LedgerEntryState::InFlight);
            }
            JournalRecord::SubmissionFinished {
                id,
                outcome,
                result_dir,
            } => {
                report.finished += 1;
                entries.insert(
                    *id,
                    LedgerEntryState::Finished {
                        outcome: outcome.clone(),
                        result_dir: result_dir.clone(),
                    },
                );
            }
            _ => {}
        }
    }
    if report.sessions == 0 {
        report
            .errors
            .push("ledger has no ServeStarted record".into());
    }

    // Which trees do finished entries claim?
    let mut claimed: BTreeMap<PathBuf, u64> = BTreeMap::new();
    for (id, state) in &entries {
        match state {
            LedgerEntryState::Pending => report.pending.push(*id),
            LedgerEntryState::InFlight => report.in_flight.push(*id),
            LedgerEntryState::Finished {
                outcome,
                result_dir,
            } => {
                if result_dir.is_empty() {
                    // An early hard failure never claimed a tree; only a
                    // *successful* ack without a tree is an orphan.
                    if outcome != "failed" {
                        report.orphaned_entries.push((
                            *id,
                            format!("outcome {outcome} but no result tree recorded"),
                        ));
                    }
                    continue;
                }
                let tree = PathBuf::from(result_dir);
                match campaign_disk_state(&tree) {
                    CampaignDiskState::Finished { .. } => {
                        claimed.insert(tree, *id);
                    }
                    CampaignDiskState::NoJournal if !tree.exists() => {
                        report
                            .orphaned_entries
                            .push((*id, format!("acknowledged tree {result_dir} is missing")));
                    }
                    CampaignDiskState::NoJournal => {
                        report.orphaned_entries.push((
                            *id,
                            format!("acknowledged tree {result_dir} has no journal"),
                        ));
                    }
                    CampaignDiskState::InProgress { runs_completed, .. } => {
                        claimed.insert(tree, *id);
                        report.orphaned_entries.push((
                            *id,
                            format!(
                                "acknowledged tree {result_dir} never finished \
                                 ({runs_completed} runs durable; `pos resume` completes it)"
                            ),
                        ));
                    }
                    CampaignDiskState::Unreadable(reason) => {
                        claimed.insert(tree, *id);
                        report
                            .orphaned_entries
                            .push((*id, format!("tree {result_dir}: {reason}")));
                    }
                }
            }
        }
    }

    // Sweep the results root for trees the ledger does not account for.
    if let Some(root) = report.results_root.clone() {
        for tree in collect_result_trees(&root)? {
            if claimed.contains_key(&tree) {
                continue;
            }
            match campaign_disk_state(&tree) {
                CampaignDiskState::Finished { .. } => report.orphan_trees.push(tree),
                CampaignDiskState::NoJournal | CampaignDiskState::InProgress { .. } => {
                    report.resumable_trees.push(tree)
                }
                CampaignDiskState::Unreadable(reason) => {
                    report.errors.push(format!("{}: {reason}", tree.display()));
                }
            }
        }
    }

    Ok(report)
}

/// Integrity status of one DAG node.
#[derive(Debug, Clone, PartialEq)]
pub enum NodeFsckStatus {
    /// The journaled subtree digest matches the stage directory.
    Verified,
    /// Journaled complete, but the stage subtree hashes differently —
    /// bit rot, tampering, or a write the journal never saw.
    DigestMismatch {
        /// The digest `NodeFinished` recorded.
        journaled: String,
        /// What the stage directory hashes to now.
        on_disk: String,
    },
    /// `NodeStarted` with no `NodeFinished`: the crash landed inside
    /// this node — for a sweep, a stranded scatter group `pos dag
    /// resume` re-drives through the scheduler.
    Stranded,
    /// A gather node that started but never sealed: its scatter inputs
    /// were not all consumed; resume re-evaluates from scratch.
    UnsealedGather,
    /// Journaled complete but the stage directory is gone.
    Missing,
}

impl NodeFsckStatus {
    /// True for states a clean DAG tree may not contain.
    pub fn is_problem(&self) -> bool {
        !matches!(self, NodeFsckStatus::Verified)
    }
}

/// One node's entry in the DAG report.
#[derive(Debug, Clone)]
pub struct NodeFsck {
    /// The stage id.
    pub id: String,
    /// The stage kind as journaled (`setup` / `sweep` / `gather`).
    pub kind: String,
    /// What the check found.
    pub status: NodeFsckStatus,
}

/// Everything `fsck_dag` found out about a DAG result tree.
#[derive(Debug)]
pub struct DagFsckReport {
    /// The checked tree.
    pub result_dir: PathBuf,
    /// Complete DAG-journal records replayed.
    pub journal_records: usize,
    /// True when the DAG journal ends in a torn record.
    pub torn_tail: bool,
    /// True when a `DagFinished` record is present.
    pub dag_finished: bool,
    /// Nodes the DAG planned, per `DagStarted`.
    pub planned_nodes: Option<usize>,
    /// `DagResumed` records seen (how often the DAG was picked back up).
    pub resumes: usize,
    /// Per-node findings, in journal order (first start wins the slot).
    pub nodes: Vec<NodeFsck>,
    /// Inner campaign fsck of every finished sweep stage, as
    /// `(stage id, report)` — the node-record ↔ result-tree cross-check
    /// descends into the scatter trees themselves.
    pub sweeps: Vec<(String, FsckReport)>,
    /// Tree-level problems (unreadable journal, unaccounted stage
    /// directories, gather input digest drift, ...).
    pub errors: Vec<String>,
}

impl DagFsckReport {
    /// True when the DAG completed and every node and scatter tree
    /// verifies.
    pub fn is_clean(&self) -> bool {
        self.errors.is_empty()
            && !self.torn_tail
            && self.dag_finished
            && self.nodes.iter().all(|n| !n.status.is_problem())
            && self.sweeps.iter().all(|(_, r)| r.is_clean())
    }

    /// Renders the human-readable report (`pos fsck` on a DAG tree).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("fsck (dag) {}\n", self.result_dir.display()));
        out.push_str(&format!(
            "journal: {} records{}{}{}\n",
            self.journal_records,
            if self.torn_tail { ", torn tail" } else { "" },
            if self.dag_finished {
                ", dag finished"
            } else {
                ", dag INCOMPLETE"
            },
            if self.resumes > 0 {
                format!(", {} resume(s)", self.resumes)
            } else {
                String::new()
            },
        ));
        if let Some(planned) = self.planned_nodes {
            let verified = self
                .nodes
                .iter()
                .filter(|n| n.status == NodeFsckStatus::Verified)
                .count();
            out.push_str(&format!("nodes: {verified}/{planned} verified\n"));
        }
        for e in &self.errors {
            out.push_str(&format!("error: {e}\n"));
        }
        for node in &self.nodes {
            match &node.status {
                NodeFsckStatus::Verified => {
                    out.push_str(&format!("node {} [{}]: ok\n", node.id, node.kind));
                }
                NodeFsckStatus::DigestMismatch { journaled, on_disk } => {
                    out.push_str(&format!(
                        "node {} [{}]: subtree digest mismatch (journal {}.., disk {}..)\n",
                        node.id,
                        node.kind,
                        &journaled[..12.min(journaled.len())],
                        &on_disk[..12.min(on_disk.len())],
                    ));
                }
                NodeFsckStatus::Stranded => {
                    out.push_str(&format!(
                        "node {} [{}]: {} (no completion record; `pos dag resume` re-drives it)\n",
                        node.id,
                        node.kind,
                        if node.kind == "sweep" {
                            "stranded scatter group"
                        } else {
                            "stranded"
                        },
                    ));
                }
                NodeFsckStatus::UnsealedGather => {
                    out.push_str(&format!(
                        "node {} [{}]: gather never sealed; resume re-evaluates it\n",
                        node.id, node.kind
                    ));
                }
                NodeFsckStatus::Missing => {
                    out.push_str(&format!(
                        "node {} [{}]: journaled complete but stage directory is missing\n",
                        node.id, node.kind
                    ));
                }
            }
        }
        for (id, report) in &self.sweeps {
            out.push_str(&format!(
                "sweep {id}: inner campaign {}\n",
                if report.is_clean() {
                    "clean"
                } else {
                    "NOT clean"
                }
            ));
        }
        out.push_str(if self.is_clean() {
            "status: clean\n"
        } else {
            "status: NOT clean\n"
        });
        out
    }
}

/// Checks a DAG result tree: replays the DAG journal, verifies every
/// `NodeFinished` subtree digest against the stage directory, flags
/// stranded scatter groups and unsealed gathers, cross-checks sealed
/// gather input digests against the trees they consumed, descends into
/// every finished sweep's campaign tree with [`fsck`], and reports
/// stage directories the journal does not account for.
pub fn fsck_dag(dag_dir: &Path) -> io::Result<DagFsckReport> {
    let mut report = DagFsckReport {
        result_dir: dag_dir.to_path_buf(),
        journal_records: 0,
        torn_tail: false,
        dag_finished: false,
        planned_nodes: None,
        resumes: 0,
        nodes: Vec::new(),
        sweeps: Vec::new(),
        errors: Vec::new(),
    };

    let replay = match Journal::replay(&dag_dir.join(JOURNAL_FILE)) {
        Ok(r) => r,
        Err(JournalError::Io(e)) => {
            report.errors.push(format!("journal unreadable: {e}"));
            return Ok(report);
        }
        Err(e @ JournalError::Corrupt { .. }) => {
            report.errors.push(e.to_string());
            return Ok(report);
        }
    };
    report.journal_records = replay.records.len();
    report.torn_tail = replay.torn_tail;
    match replay.dag_start() {
        Some(JournalRecord::DagStarted { nodes, .. }) => {
            report.planned_nodes = Some(*nodes);
        }
        _ => {
            report
                .errors
                .push("journal has no DagStarted record (not a DAG tree?)".into());
            return Ok(report);
        }
    }

    // Fold the journal: node kinds in first-start order, last finish
    // wins a node's digest, any seal counts (a resume may re-seal).
    let mut order: Vec<String> = Vec::new();
    let mut kinds: BTreeMap<String, String> = BTreeMap::new();
    let mut finished: BTreeMap<String, String> = BTreeMap::new();
    let mut sealed: BTreeMap<String, (Vec<String>, Vec<String>)> = BTreeMap::new();
    for rec in &replay.records {
        match rec {
            JournalRecord::NodeStarted { node, kind, .. } => {
                if !kinds.contains_key(node) {
                    order.push(node.clone());
                }
                kinds.insert(node.clone(), kind.clone());
            }
            JournalRecord::NodeFinished { node, digest, .. } => {
                finished.insert(node.clone(), digest.clone());
            }
            JournalRecord::GatherSealed {
                node,
                inputs,
                input_digests,
            } => {
                sealed.insert(node.clone(), (inputs.clone(), input_digests.clone()));
            }
            JournalRecord::DagResumed { .. } => report.resumes += 1,
            JournalRecord::DagFinished { .. } => report.dag_finished = true,
            _ => {}
        }
    }

    for id in &order {
        let kind = kinds[id].clone();
        let stage_dir = dag_dir.join(format!("stage-{id}"));
        let status = match finished.get(id) {
            Some(_) if !stage_dir.is_dir() => NodeFsckStatus::Missing,
            Some(journaled) => {
                let on_disk = tree_digest(&stage_dir)?;
                if &on_disk == journaled {
                    NodeFsckStatus::Verified
                } else {
                    NodeFsckStatus::DigestMismatch {
                        journaled: journaled.clone(),
                        on_disk,
                    }
                }
            }
            None if kind == "gather" && !sealed.contains_key(id) => NodeFsckStatus::UnsealedGather,
            None => NodeFsckStatus::Stranded,
        };
        // A finished gather must have sealed first — the executor
        // appends GatherSealed before NodeFinished, so a finish without
        // a seal means records were lost.
        if kind == "gather" && finished.contains_key(id) && !sealed.contains_key(id) {
            report.errors.push(format!(
                "gather `{id}` finished without a GatherSealed record"
            ));
        }
        report.nodes.push(NodeFsck {
            id: id.clone(),
            kind: kind.clone(),
            status,
        });
        // Descend into finished sweeps: the scatter tree is itself a
        // journaled campaign and must fsck clean.
        if kind == "sweep" && finished.contains_key(id) && stage_dir.is_dir() {
            if let Some(tree) = single_campaign_tree(&stage_dir) {
                report.sweeps.push((id.clone(), fsck(&tree)?));
            } else {
                report
                    .errors
                    .push(format!("sweep `{id}` finished but holds no campaign tree"));
            }
        }
    }

    // Sealed gathers: the input trees must still hash to what the seal
    // consumed (scatter results may not drift under a sealed gather).
    for (id, (inputs, digests)) in &sealed {
        for (input, want) in inputs.iter().zip(digests) {
            let input_dir = dag_dir.join(format!("stage-{input}"));
            let got = tree_digest(&input_dir).unwrap_or_default();
            if &got != want {
                report.errors.push(format!(
                    "gather `{id}`: input `{input}` drifted since the seal \
                     (sealed {}.., now {}..)",
                    &want[..12.min(want.len())],
                    &got[..12.min(got.len())],
                ));
            }
        }
    }

    // Stage directories the journal never started.
    if dag_dir.is_dir() {
        for entry in std::fs::read_dir(dag_dir)? {
            let path = entry?.path();
            let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
                continue;
            };
            if path.is_dir() && name.starts_with("stage-") && !kinds.contains_key(&name[6..]) {
                report
                    .errors
                    .push(format!("stage directory `{name}` has no journal records"));
            }
        }
    }

    Ok(report)
}

/// The single `<user>/<name>/vt-*` campaign tree inside a sweep stage
/// directory, if exactly that chain exists.
fn single_campaign_tree(stage_dir: &Path) -> Option<PathBuf> {
    let mut dir = stage_dir.to_path_buf();
    for _ in 0..3 {
        let mut subdirs: Vec<PathBuf> = std::fs::read_dir(&dir)
            .ok()?
            .flatten()
            .map(|e| e.path())
            .filter(|p| p.is_dir())
            .collect();
        subdirs.sort();
        dir = subdirs.into_iter().next()?;
    }
    Some(dir)
}
