//! Offline integrity checking of a result tree (`pos fsck`).
//!
//! Cross-checks the three durability layers the store maintains:
//!
//! 1. the campaign journal (`journal.log`) — replayable, torn tail
//!    reported, corruption rejected;
//! 2. per-run checksum manifests (`checksums.json`) — every journaled
//!    run digest must match the manifest bytes on disk;
//! 3. the artifacts themselves — every manifest entry present and
//!    byte-identical, no unlisted files.
//!
//! The report distinguishes *incomplete* (a crash artifact `pos resume`
//! repairs) from *damaged* (missing/corrupt/extra artifacts in a run the
//! journal claims durable — bit rot or tampering).

use crate::journal::{lane_journal_file, Journal, JournalError, JournalRecord, JOURNAL_FILE};
use crate::resultstore::{ResultStore, RunVerification};
use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};

/// Integrity status of one run directory.
#[derive(Debug, Clone, PartialEq)]
pub enum RunStatus {
    /// Manifest and all artifacts match the journaled digest.
    Verified,
    /// Journaled as completed, but the on-disk manifest hashes to a
    /// different digest (or is missing/unreadable).
    DigestMismatch {
        /// The digest the journal recorded.
        journaled: String,
        /// The digest of the manifest on disk, if one could be read.
        on_disk: Option<String>,
    },
    /// Manifest digest matches but artifacts diverge from it.
    Damaged(RunVerification),
    /// The journal never recorded this run as completed — a crash
    /// artifact; `pos resume` wipes and re-executes it.
    Incomplete,
    /// Journaled as completed but the run directory does not exist.
    Missing,
}

impl RunStatus {
    /// True for states a clean tree may not contain.
    pub fn is_problem(&self) -> bool {
        !matches!(self, RunStatus::Verified)
    }
}

/// One run's entry in the report.
#[derive(Debug, Clone)]
pub struct RunFsck {
    /// Zero-based run index.
    pub index: usize,
    /// What the check found.
    pub status: RunStatus,
}

/// Everything `fsck` found out about a result tree.
#[derive(Debug)]
pub struct FsckReport {
    /// The checked tree.
    pub result_dir: PathBuf,
    /// Complete journal records replayed (scheduler-level `journal.log`).
    pub journal_records: usize,
    /// Per-lane journals found (`journal-lane*.log`); 0 for a sequential
    /// tree.
    pub lane_journals: usize,
    /// Complete records replayed across all per-lane journals.
    pub lane_records: usize,
    /// True when any journal (scheduler-level or per-lane) ends in a
    /// torn (partially written) record.
    pub torn_tail: bool,
    /// True when a `CampaignFinished` record is present.
    pub campaign_finished: bool,
    /// Runs the expanded campaign planned, per the journal.
    pub planned_runs: Option<usize>,
    /// Lanes a supervisor retired, as `(lane, reason)` in journal order.
    pub retired_lanes: Vec<(usize, String)>,
    /// Replacement lanes the supervisor replanned (`LaneReplanned`).
    pub replanned_lanes: usize,
    /// Retry-ladder steps journaled (`RunRetry`).
    pub run_retries: usize,
    /// Runs quarantined as poison (`RunQuarantined`), in index order.
    pub quarantined_runs: Vec<usize>,
    /// Per-run findings, in index order.
    pub runs: Vec<RunFsck>,
    /// Tree-level problems (unreadable journal, no start record, ...).
    pub errors: Vec<String>,
}

impl FsckReport {
    /// True when the tree is complete and every artifact verifies.
    pub fn is_clean(&self) -> bool {
        self.errors.is_empty()
            && !self.torn_tail
            && self.campaign_finished
            && self.runs.iter().all(|r| !r.status.is_problem())
    }

    /// Indices of runs that need re-execution (anything not verified).
    pub fn broken_runs(&self) -> Vec<usize> {
        self.runs
            .iter()
            .filter(|r| r.status.is_problem())
            .map(|r| r.index)
            .collect()
    }

    /// Renders the human-readable report (`pos fsck` output).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("fsck {}\n", self.result_dir.display()));
        out.push_str(&format!(
            "journal: {} records{}{}\n",
            self.journal_records,
            if self.torn_tail { ", torn tail" } else { "" },
            if self.campaign_finished {
                ", campaign finished"
            } else {
                ", campaign INCOMPLETE"
            },
        ));
        if self.lane_journals > 0 {
            out.push_str(&format!(
                "lanes: {} lane journals, {} records\n",
                self.lane_journals, self.lane_records,
            ));
        }
        if !self.retired_lanes.is_empty() || self.replanned_lanes > 0 || self.run_retries > 0 {
            out.push_str(&format!(
                "failover: {} lane(s) retired, {} replacement lane(s), {} run retry step(s)\n",
                self.retired_lanes.len(),
                self.replanned_lanes,
                self.run_retries,
            ));
            for (lane, reason) in &self.retired_lanes {
                out.push_str(&format!("  lane {lane} retired: {reason}\n"));
            }
        }
        if !self.quarantined_runs.is_empty() {
            out.push_str(&format!("quarantined runs: {:?}\n", self.quarantined_runs));
        }
        if let Some(planned) = self.planned_runs {
            let verified = self
                .runs
                .iter()
                .filter(|r| r.status == RunStatus::Verified)
                .count();
            out.push_str(&format!("runs: {verified}/{planned} verified\n"));
        }
        for e in &self.errors {
            out.push_str(&format!("error: {e}\n"));
        }
        for run in &self.runs {
            match &run.status {
                RunStatus::Verified => {
                    out.push_str(&format!("run {:04}: ok\n", run.index));
                }
                RunStatus::DigestMismatch { journaled, on_disk } => {
                    out.push_str(&format!(
                        "run {:04}: manifest digest mismatch (journal {}.., disk {})\n",
                        run.index,
                        &journaled[..12.min(journaled.len())],
                        on_disk
                            .as_ref()
                            .map(|d| format!("{}..", &d[..12.min(d.len())]))
                            .unwrap_or_else(|| "unreadable".into()),
                    ));
                }
                RunStatus::Damaged(v) => {
                    out.push_str(&format!("run {:04}: damaged", run.index));
                    if !v.missing.is_empty() {
                        out.push_str(&format!(" missing={:?}", v.missing));
                    }
                    if !v.corrupt.is_empty() {
                        out.push_str(&format!(" corrupt={:?}", v.corrupt));
                    }
                    if !v.extra.is_empty() {
                        out.push_str(&format!(" extra={:?}", v.extra));
                    }
                    out.push('\n');
                }
                RunStatus::Incomplete => {
                    out.push_str(&format!(
                        "run {:04}: incomplete (no completion record; resume re-executes it)\n",
                        run.index
                    ));
                }
                RunStatus::Missing => {
                    out.push_str(&format!(
                        "run {:04}: journaled complete but directory is missing\n",
                        run.index
                    ));
                }
            }
        }
        out.push_str(if self.is_clean() {
            "status: clean\n"
        } else {
            "status: NOT clean\n"
        });
        out
    }
}

/// Checks a result tree: replays its journal, verifies every journaled
/// run against its digest and manifest, and reports run directories the
/// journal does not account for.
pub fn fsck(result_dir: &Path) -> io::Result<FsckReport> {
    let store = ResultStore::open(result_dir);
    let mut report = FsckReport {
        result_dir: result_dir.to_path_buf(),
        journal_records: 0,
        lane_journals: 0,
        lane_records: 0,
        torn_tail: false,
        campaign_finished: false,
        planned_runs: None,
        retired_lanes: Vec::new(),
        replanned_lanes: 0,
        run_retries: 0,
        quarantined_runs: Vec::new(),
        runs: Vec::new(),
        errors: Vec::new(),
    };

    let journal_path = result_dir.join(JOURNAL_FILE);
    let replay = match Journal::replay(&journal_path) {
        Ok(r) => Some(r),
        Err(JournalError::Io(e)) => {
            report.errors.push(format!("journal unreadable: {e}"));
            None
        }
        Err(e @ JournalError::Corrupt { .. }) => {
            report.errors.push(e.to_string());
            None
        }
    };

    // Journaled completion per run index, last record wins.
    let mut completed: BTreeMap<usize, String> = BTreeMap::new();
    let mut lane_plan: Option<usize> = None;
    // Runs a retired lane was holding when it died — the journal must
    // later account for each (reassigned completion or quarantine).
    let mut held_by_dead_lane: Vec<(usize, usize)> = Vec::new();
    if let Some(replay) = &replay {
        report.journal_records = replay.records.len();
        report.torn_tail = replay.torn_tail;
        report.campaign_finished = replay.finished();
        match replay.campaign_start() {
            Some(JournalRecord::CampaignStarted { total_runs, .. }) => {
                report.planned_runs = Some(*total_runs);
            }
            _ => report
                .errors
                .push("journal has no CampaignStarted record".into()),
        }
        for rec in &replay.records {
            match rec {
                JournalRecord::RunCompleted { index, digest, .. } => {
                    completed.insert(*index, digest.clone());
                }
                JournalRecord::LanePlan { lanes, .. } => {
                    lane_plan = Some(*lanes);
                }
                JournalRecord::LaneRetired {
                    lane, reason, run, ..
                } => {
                    report.retired_lanes.push((*lane, reason.clone()));
                    if let Some(index) = run {
                        held_by_dead_lane.push((*lane, *index));
                    }
                }
                JournalRecord::LaneReplanned { .. } => {
                    report.replanned_lanes += 1;
                }
                JournalRecord::RunRetry { .. } => {
                    report.run_retries += 1;
                }
                JournalRecord::RunQuarantined { index, .. }
                    if !report.quarantined_runs.contains(index) =>
                {
                    report.quarantined_runs.push(*index);
                }
                _ => {}
            }
        }
        report.quarantined_runs.sort_unstable();
    }

    // A LanePlan record marks a parallel tree: every worker lane kept its
    // own journal (`journal-lane{k}.log`), and a run's completion lives in
    // whichever lane executed it. Replacement lanes replanned after a
    // retirement (`LaneReplanned`) keep journals beyond the original
    // plan. Merge them all; a run is accounted for if *any* lane
    // journaled it complete. Torn lane tails are ordinary crash
    // artifacts, like a torn scheduler journal.
    if let Some(lanes) = lane_plan {
        let total_lanes = lanes + report.replanned_lanes;
        for lane in 0..total_lanes {
            let lane_path = result_dir.join(lane_journal_file(lane));
            match Journal::replay(&lane_path) {
                Ok(lane_replay) => {
                    report.lane_journals += 1;
                    report.lane_records += lane_replay.records.len();
                    report.torn_tail |= lane_replay.torn_tail;
                    for rec in &lane_replay.records {
                        if let JournalRecord::RunCompleted { index, digest, .. } = rec {
                            completed.insert(*index, digest.clone());
                        }
                    }
                }
                Err(JournalError::Io(e))
                    if e.kind() == io::ErrorKind::NotFound && lane >= lanes =>
                {
                    // A replanned lane the crash beat to its journal:
                    // an ordinary crash artifact, resume recreates it.
                }
                Err(JournalError::Io(e)) if e.kind() == io::ErrorKind::NotFound => {
                    report
                        .errors
                        .push(format!("lane {lane}: journal missing ({e})"));
                }
                Err(e) => {
                    report.errors.push(format!("lane {lane}: {e}"));
                }
            }
        }
    }

    // Failover integrity: a lane retired while holding a run obliges the
    // journal to account for that run — a completion (reassigned to a
    // surviving or replacement lane) or a poison quarantine. A stranded
    // run means the failover was interrupted; resume finishes it.
    for (lane, index) in &held_by_dead_lane {
        if !completed.contains_key(index) && !report.quarantined_runs.contains(index) {
            report.errors.push(format!(
                "lane {lane} retired holding run {index:04}: run neither reassigned nor \
                 quarantined (stranded); run `pos resume` to repair"
            ));
        }
    }

    // Run directories actually on disk.
    let on_disk: BTreeMap<usize, PathBuf> = store
        .list_runs()?
        .into_iter()
        .filter_map(|dir| {
            dir.file_name()
                .and_then(|n| n.to_str())
                .and_then(|n| n.strip_prefix("run-"))
                .and_then(|n| n.parse::<usize>().ok())
                .map(|idx| (idx, dir))
        })
        .collect();

    let mut indices: Vec<usize> = completed.keys().copied().collect();
    for idx in on_disk.keys() {
        if !completed.contains_key(idx) {
            indices.push(*idx);
        }
    }
    indices.sort_unstable();

    for index in indices {
        let status = match (completed.get(&index), on_disk.get(&index)) {
            (Some(journaled), Some(dir)) => {
                let disk_digest = ResultStore::run_digest(dir).ok();
                if disk_digest.as_ref() != Some(journaled) {
                    RunStatus::DigestMismatch {
                        journaled: journaled.clone(),
                        on_disk: disk_digest,
                    }
                } else {
                    match ResultStore::verify_run(dir) {
                        Ok(v) if v.is_clean() => RunStatus::Verified,
                        Ok(v) => RunStatus::Damaged(v),
                        Err(e) => RunStatus::DigestMismatch {
                            journaled: journaled.clone(),
                            on_disk: Some(format!("unreadable: {e}")),
                        },
                    }
                }
            }
            (Some(_), None) => RunStatus::Missing,
            (None, Some(_)) => RunStatus::Incomplete,
            (None, None) => unreachable!("index came from one of the maps"),
        };
        report.runs.push(RunFsck { index, status });
    }

    // Planned runs the tree has no trace of at all also count as
    // incomplete when the campaign claims to be finished.
    if let (Some(planned), true) = (report.planned_runs, report.campaign_finished) {
        for index in 0..planned {
            if !completed.contains_key(&index) && !on_disk.contains_key(&index) {
                report.runs.push(RunFsck {
                    index,
                    status: RunStatus::Incomplete,
                });
            }
        }
        report.runs.sort_by_key(|r| r.index);
    }

    Ok(report)
}
