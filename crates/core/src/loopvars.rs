//! Loop variables and cross-product expansion.
//!
//! §4.4, measurement phase: *"pos experiments perform measurements for
//! each possible combination of loop parameters. If lists are used as
//! parameters, pos automatically generates the cross product over all
//! parameter values to ensure full coverage. [...] Parameters must be
//! carefully chosen, as the exponential growth in the measurement runs may
//! cause infeasibly long experiment completion times."*
//!
//! The Appendix-A case study: `pkt_sz` with 2 entries × `pkt_rate` with 30
//! entries = 60 measurement runs.

use crate::vars::{VarValue, Variables};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The concrete loop-variable instance of one measurement run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunParams {
    /// Zero-based run index in expansion order.
    pub index: usize,
    /// One scalar per loop variable.
    pub values: BTreeMap<String, VarValue>,
}

impl RunParams {
    /// The parameters as a [`Variables`] set (for substitution).
    pub fn as_variables(&self) -> Variables {
        Variables(self.values.clone())
    }

    /// A compact `k=v,k=v` rendering for logs and directory names.
    pub fn label(&self) -> String {
        self.values
            .iter()
            .map(|(k, v)| format!("{k}={}", v.render()))
            .collect::<Vec<_>>()
            .join(",")
    }
}

/// Number of runs the cross product of `loop_vars` will produce, without
/// materializing it. Returns `None` on overflow (which certainly exceeds
/// any feasible experiment).
pub fn cross_product_size(loop_vars: &Variables) -> Option<usize> {
    let mut n: usize = 1;
    for (_, v) in loop_vars.iter() {
        n = n.checked_mul(v.instances().len())?;
    }
    Some(n)
}

/// Expands loop variables into the full cross product, in deterministic
/// order: variables iterate in name order; the *last* variable varies
/// fastest (row-major, like nested for-loops in name order).
///
/// A loop variable with an empty list produces zero runs — full coverage
/// of nothing is nothing, matching the semantics of an empty sweep.
pub fn expand_cross_product(loop_vars: &Variables) -> Vec<RunParams> {
    let names: Vec<&String> = loop_vars.iter().map(|(k, _)| k).collect();
    let instance_lists: Vec<Vec<VarValue>> = loop_vars.iter().map(|(_, v)| v.instances()).collect();
    let total = match cross_product_size(loop_vars) {
        Some(n) => n,
        None => panic!("loop-variable cross product overflows usize"),
    };
    if instance_lists.iter().any(|l| l.is_empty()) {
        return Vec::new();
    }

    let mut runs = Vec::with_capacity(total);
    for index in 0..total {
        let mut values = BTreeMap::new();
        // Row-major decomposition of `index` over the instance lists.
        let mut rem = index;
        for (name, list) in names.iter().zip(&instance_lists).rev() {
            let pick = rem % list.len();
            rem /= list.len();
            values.insert((*name).clone(), list[pick].clone());
        }
        runs.push(RunParams { index, values });
    }
    runs
}

/// The paper's warning threshold: expansions beyond this count are almost
/// certainly a mistake (the case study's 60 runs already take 3 hours).
pub const RUN_COUNT_WARNING_THRESHOLD: usize = 10_000;

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn appendix_a_loop_vars() -> Variables {
        // 2 packet sizes × 30 rates, as in Appendix A.
        let rates: Vec<VarValue> = (1..=30).map(|i| VarValue::Int(i * 10_000)).collect();
        Variables::new()
            .with("pkt_sz", vec![64i64, 1500])
            .with("pkt_rate", VarValue::List(rates))
    }

    #[test]
    fn appendix_a_yields_60_runs() {
        let vars = appendix_a_loop_vars();
        assert_eq!(cross_product_size(&vars), Some(60));
        let runs = expand_cross_product(&vars);
        assert_eq!(runs.len(), 60);
        // Every combination appears exactly once.
        let mut seen = std::collections::BTreeSet::new();
        for r in &runs {
            let key = r.label();
            assert!(seen.insert(key.clone()), "duplicate combination {key}");
        }
    }

    #[test]
    fn expansion_order_is_row_major_and_indexed() {
        let vars = Variables::new()
            .with("a", vec![1i64, 2])
            .with("b", vec![10i64, 20, 30]);
        let runs = expand_cross_product(&vars);
        let labels: Vec<String> = runs.iter().map(RunParams::label).collect();
        assert_eq!(
            labels,
            vec!["a=1,b=10", "a=1,b=20", "a=1,b=30", "a=2,b=10", "a=2,b=20", "a=2,b=30",],
            "last-named variable varies fastest"
        );
        for (i, r) in runs.iter().enumerate() {
            assert_eq!(r.index, i);
        }
    }

    #[test]
    fn scalars_count_as_single_instance() {
        let vars = Variables::new()
            .with("fixed", "eno1")
            .with("swept", vec![1i64, 2, 3]);
        let runs = expand_cross_product(&vars);
        assert_eq!(runs.len(), 3);
        for r in &runs {
            assert_eq!(r.values["fixed"], VarValue::Str("eno1".into()));
        }
    }

    #[test]
    fn no_loop_vars_is_one_run() {
        let runs = expand_cross_product(&Variables::new());
        assert_eq!(runs.len(), 1, "an unparameterized experiment runs once");
        assert!(runs[0].values.is_empty());
    }

    #[test]
    fn empty_list_yields_zero_runs() {
        let vars = Variables::new()
            .with("a", VarValue::List(vec![]))
            .with("b", vec![1i64, 2]);
        assert_eq!(cross_product_size(&vars), Some(0));
        assert!(expand_cross_product(&vars).is_empty());
    }

    #[test]
    fn run_params_as_variables_substitute() {
        let vars = Variables::new().with("pkt_sz", vec![64i64]);
        let runs = expand_cross_product(&vars);
        let v = runs[0].as_variables();
        assert_eq!(v.substitute("--size $pkt_sz"), "--size 64");
    }

    #[test]
    fn exponential_growth_is_detectable() {
        // Ten variables with ten values each: 10^10 runs — the paper's
        // warning case. Size must be computed without materialization.
        let mut vars = Variables::new();
        for i in 0..10 {
            let list: Vec<VarValue> = (0..10i64).map(VarValue::Int).collect();
            vars.set(format!("v{i}"), VarValue::List(list));
        }
        let size = cross_product_size(&vars).unwrap();
        assert_eq!(size, 10_000_000_000usize);
        assert!(size > RUN_COUNT_WARNING_THRESHOLD);
    }

    proptest! {
        /// Expansion size always equals the analytic cross-product size,
        /// and every run index is unique and dense.
        #[test]
        fn prop_size_and_indices(
            lists in proptest::collection::vec(proptest::collection::vec(0i64..100, 1..5), 0..4)
        ) {
            let mut vars = Variables::new();
            for (i, l) in lists.iter().enumerate() {
                vars.set(format!("v{i}"), VarValue::List(l.iter().map(|&x| x.into()).collect()));
            }
            let runs = expand_cross_product(&vars);
            prop_assert_eq!(Some(runs.len()), cross_product_size(&vars));
            for (i, r) in runs.iter().enumerate() {
                prop_assert_eq!(r.index, i);
                prop_assert_eq!(r.values.len(), lists.len());
            }
        }

        /// Every combination of the inputs appears exactly once.
        #[test]
        fn prop_full_coverage(
            a in proptest::collection::vec(0i64..20, 1..5),
            b in proptest::collection::vec(0i64..20, 1..5),
        ) {
            let vars = Variables::new()
                .with("a", VarValue::List(a.iter().map(|&x| x.into()).collect()))
                .with("b", VarValue::List(b.iter().map(|&x| x.into()).collect()));
            let runs = expand_cross_product(&vars);
            for &x in &a {
                for &y in &b {
                    let hits = runs.iter().filter(|r| {
                        r.values["a"] == VarValue::Int(x) && r.values["b"] == VarValue::Int(y)
                    }).count();
                    // Duplicated list entries multiply; count multiplicity.
                    let mult = a.iter().filter(|&&v| v == x).count()
                        * b.iter().filter(|&&v| v == y).count();
                    prop_assert_eq!(hits, mult);
                }
            }
        }
    }
}
