//! Durable-I/O layer with deterministic storage-fault injection.
//!
//! Every byte the controller promises to keep — journal frames, lane
//! journals, result-store artifacts, the queue ledger — goes through a
//! [`Vfs`] handle. The default handle ([`Vfs::real`]) is a transparent
//! pass-through that preserves the existing fsync discipline exactly.
//! A faulty handle ([`Vfs::faulty`]) carries a [`FaultPlan`]: a seeded,
//! serializable list of disk faults that fire deterministically as the
//! campaign writes, mirroring the testbed's `ChaosPlan` design — every
//! storage failure is data, not wall-clock luck, so the same plan
//! reproduces the same broken tree bit-for-bit.
//!
//! The fault taxonomy covers the storage failures a long campaign
//! actually meets:
//!
//! * [`DiskFault::Enospc`] — the disk fills after a byte budget; the
//!   failing write lands a partial prefix (real `write(2)` under ENOSPC
//!   writes what fits) and the error carries
//!   [`io::ErrorKind::StorageFull`], exactly like the genuine errno 28.
//! * [`DiskFault::TornWrite`] — a chosen write persists only its first
//!   `keep_bytes` bytes (a sector tear / powercut mid-`write`).
//! * [`DiskFault::FsyncFail`] — a chosen fsync reports failure after the
//!   data reached the page cache: the bytes may be on disk but were
//!   never promised, so the writer must not treat them as durable.
//! * [`DiskFault::BitFlip`] — post-hoc bit rot in a named file of a
//!   finished tree, applied by [`Vfs::apply_bit_flips`]; this is what
//!   `pos scrub` exists to catch.
//!
//! Faults carry an optional `file` suffix filter so a test can pin, say,
//! ENOSPC to the campaign journal while the result store keeps writing.

use serde::{Deserialize, Serialize};
use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// Raw errno for "No space left on device"; building the injected error
/// from the OS code makes `kind()` report [`io::ErrorKind::StorageFull`]
/// exactly like a genuine ENOSPC from the kernel.
const ENOSPC_ERRNO: i32 = 28;

/// Constructs the error an injected (or real) full disk produces.
pub fn enospc_error() -> io::Error {
    io::Error::from_raw_os_error(ENOSPC_ERRNO)
}

/// True when `e` means the storage medium is full.
pub fn is_storage_full(e: &io::Error) -> bool {
    e.kind() == io::ErrorKind::StorageFull || e.raw_os_error() == Some(ENOSPC_ERRNO)
}

/// One deterministic storage fault.
///
/// Write- and fsync-indexed faults count only operations whose target
/// path matches the `file` suffix filter (all operations when `None`),
/// so a plan can aim at `journal.log` without caring how many artifacts
/// the store writes in between.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum DiskFault {
    /// The disk fills once `after_bytes` matching bytes have been
    /// written: the failing write persists the prefix that still fit and
    /// returns [`io::ErrorKind::StorageFull`].
    Enospc {
        /// Byte budget before the device reports full.
        after_bytes: u64,
        /// Optional path-suffix filter (e.g. `"journal.log"`).
        file: Option<String>,
    },
    /// The zero-based `at_write`-th matching write persists only its
    /// first `keep_bytes` bytes, then fails with
    /// [`io::ErrorKind::Interrupted`] — a powercut mid-`write(2)`.
    TornWrite {
        /// Zero-based index of the write operation to tear.
        at_write: u64,
        /// Bytes of the torn write that reach the disk.
        keep_bytes: usize,
        /// Optional path-suffix filter.
        file: Option<String>,
    },
    /// The zero-based `at_fsync`-th matching fsync reports failure. The
    /// data was written but never promised durable.
    FsyncFail {
        /// Zero-based index of the fsync operation to fail.
        at_fsync: u64,
        /// Optional path-suffix filter.
        file: Option<String>,
    },
    /// Post-hoc bit rot: XOR `mask` into the byte at `offset` of the
    /// file whose path ends with `file`. Not triggered by writes —
    /// applied to a tree at rest via [`Vfs::apply_bit_flips`].
    BitFlip {
        /// Path-suffix of the victim file (e.g.
        /// `"run-0001/loadgen_measurement.log"`).
        file: String,
        /// Byte offset; reduced modulo the file length.
        offset: u64,
        /// XOR mask; must be non-zero to actually flip something.
        mask: u8,
    },
}

impl DiskFault {
    fn matches(filter: &Option<String>, path: &Path) -> bool {
        match filter {
            None => true,
            Some(sfx) => path.to_string_lossy().ends_with(sfx.as_str()),
        }
    }
}

/// A replayable storage-fault schedule — the disk-level sibling of the
/// testbed's `ChaosPlan`. Serializable so a CLI invocation can load it
/// from a file (`pos run --disk-faults plan.json`) and a report can
/// quote exactly which faults produced a tree.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Provenance seed: identifies the scenario that generated this plan
    /// (plans themselves are explicit, not sampled at fire time).
    pub seed: u64,
    /// The faults, checked in order; the first one that fires on an
    /// operation wins.
    pub faults: Vec<DiskFault>,
}

impl FaultPlan {
    /// A plan with no faults (equivalent to the real VFS).
    pub fn empty(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            faults: Vec::new(),
        }
    }

    /// True when the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Rejects plans that could never fire or would fire as no-ops.
    pub fn validate(&self) -> Result<(), String> {
        for (i, f) in self.faults.iter().enumerate() {
            match f {
                DiskFault::BitFlip { file, mask, .. } => {
                    if file.is_empty() {
                        return Err(format!("fault {i}: BitFlip with empty file suffix"));
                    }
                    if *mask == 0 {
                        return Err(format!("fault {i}: BitFlip with zero mask flips nothing"));
                    }
                }
                DiskFault::Enospc { file, .. }
                | DiskFault::TornWrite { file, .. }
                | DiskFault::FsyncFail { file, .. } => {
                    if matches!(file, Some(s) if s.is_empty()) {
                        return Err(format!("fault {i}: empty file suffix matches nothing"));
                    }
                }
            }
        }
        Ok(())
    }
}

/// Per-fault runtime counters. Each write/fsync-indexed fault advances
/// its own counter only on matching operations, so two faults with
/// different filters fire independently and deterministically.
#[derive(Debug)]
struct FaultRuntime {
    plan: FaultPlan,
    /// Matching bytes counted so far, per fault (Enospc budget).
    bytes: Vec<u64>,
    /// Matching writes counted so far, per fault (TornWrite index).
    writes: Vec<u64>,
    /// Matching fsyncs counted so far, per fault (FsyncFail index).
    fsyncs: Vec<u64>,
    /// One-shot latch: a fired fault never fires again.
    tripped: Vec<bool>,
}

impl FaultRuntime {
    fn new(plan: FaultPlan) -> FaultRuntime {
        let n = plan.faults.len();
        FaultRuntime {
            plan,
            bytes: vec![0; n],
            writes: vec![0; n],
            fsyncs: vec![0; n],
            tripped: vec![false; n],
        }
    }

    /// Accounts a write of `len` bytes to `path`. Returns `Ok(())` when
    /// the write may proceed in full, or `Err((keep, error))`: persist
    /// only the first `keep` bytes, then surface `error`.
    fn on_write(&mut self, path: &Path, len: usize) -> Result<(), (usize, io::Error)> {
        for i in 0..self.plan.faults.len() {
            if self.tripped[i] {
                continue;
            }
            match &self.plan.faults[i] {
                DiskFault::Enospc { after_bytes, file } if DiskFault::matches(file, path) => {
                    let left = after_bytes.saturating_sub(self.bytes[i]);
                    if (len as u64) > left {
                        self.tripped[i] = true;
                        return Err((left as usize, enospc_error()));
                    }
                    self.bytes[i] += len as u64;
                }
                DiskFault::TornWrite {
                    at_write,
                    keep_bytes,
                    file,
                } if DiskFault::matches(file, path) => {
                    if self.writes[i] == *at_write {
                        self.tripped[i] = true;
                        let keep = (*keep_bytes).min(len);
                        return Err((
                            keep,
                            io::Error::new(
                                io::ErrorKind::Interrupted,
                                format!("injected torn write to {}", path.display()),
                            ),
                        ));
                    }
                    self.writes[i] += 1;
                }
                _ => {}
            }
        }
        Ok(())
    }

    /// Accounts an fsync of `path`. `Err` means the fsync must report
    /// failure (the data is written but not promised).
    fn on_fsync(&mut self, path: &Path) -> io::Result<()> {
        for i in 0..self.plan.faults.len() {
            if self.tripped[i] {
                continue;
            }
            if let DiskFault::FsyncFail { at_fsync, file } = &self.plan.faults[i] {
                if DiskFault::matches(file, path) {
                    if self.fsyncs[i] == *at_fsync {
                        self.tripped[i] = true;
                        return Err(io::Error::other(format!(
                            "injected fsync failure on {}",
                            path.display()
                        )));
                    }
                    self.fsyncs[i] += 1;
                }
            }
        }
        Ok(())
    }
}

/// Handle to the durable-I/O layer. Cheap to clone; clones of a faulty
/// handle share one fault schedule, so counters advance campaign-wide
/// no matter which component (journal, store, scheduler lane) writes.
#[derive(Debug, Clone, Default)]
pub struct Vfs {
    faults: Option<Arc<Mutex<FaultRuntime>>>,
}

impl Vfs {
    /// The real VFS: a transparent pass-through with the historical
    /// fsync discipline. This is the default everywhere.
    pub fn real() -> Vfs {
        Vfs { faults: None }
    }

    /// A VFS that injects `plan`'s faults deterministically. Rejects
    /// invalid plans (see [`FaultPlan::validate`]).
    pub fn faulty(plan: FaultPlan) -> io::Result<Vfs> {
        plan.validate()
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e))?;
        Ok(Vfs {
            faults: Some(Arc::new(Mutex::new(FaultRuntime::new(plan)))),
        })
    }

    /// True when this handle carries a fault plan.
    pub fn is_faulty(&self) -> bool {
        self.faults.is_some()
    }

    /// The fault plan, if any (for reports and journaling).
    pub fn plan(&self) -> Option<FaultPlan> {
        self.faults
            .as_ref()
            .map(|f| f.lock().expect("vfs fault state lock").plan.clone())
    }

    fn check_write(&self, path: &Path, len: usize) -> Result<(), (usize, io::Error)> {
        match &self.faults {
            None => Ok(()),
            Some(rt) => rt.lock().expect("vfs fault state lock").on_write(path, len),
        }
    }

    fn sync_file(&self, path: &Path, f: &fs::File) -> io::Result<()> {
        if let Some(rt) = &self.faults {
            rt.lock().expect("vfs fault state lock").on_fsync(path)?;
        }
        f.sync_all()
    }

    /// Creates (truncating) an empty file and fsyncs it — how a journal
    /// is born.
    pub fn create_sync(&self, path: &Path) -> io::Result<()> {
        if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
            fs::create_dir_all(parent)?;
        }
        let f = fs::File::create(path)?;
        self.sync_file(path, &f)
    }

    /// Appends `bytes` to `path` and fsyncs before returning — the
    /// journal's write-ahead primitive. Under an injected fault the
    /// allowed prefix still lands (and is synced) so the on-disk
    /// artifact is exactly what a real tear/full disk leaves.
    pub fn append_sync(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        match self.check_write(path, bytes.len()) {
            Ok(()) => {
                let mut f = fs::OpenOptions::new().append(true).open(path)?;
                f.write_all(bytes)?;
                self.sync_file(path, &f)
            }
            Err((keep, err)) => {
                if keep > 0 {
                    let mut f = fs::OpenOptions::new().append(true).open(path)?;
                    f.write_all(&bytes[..keep])?;
                    f.sync_all()?;
                }
                Err(err)
            }
        }
    }

    /// Truncates `path` to `new_len` bytes and fsyncs — how a reopened
    /// journal sheds a torn tail.
    pub fn truncate_sync(&self, path: &Path, new_len: u64) -> io::Result<()> {
        let f = fs::OpenOptions::new().write(true).open(path)?;
        f.set_len(new_len)?;
        self.sync_file(path, &f)
    }

    /// Atomically writes `contents` to `path`: temp sibling → fsync →
    /// rename → parent directory fsync. Readers never see partial
    /// content; under an injected fault the temp file is removed and the
    /// target is untouched — atomicity holds even on a full disk.
    pub fn atomic_write(&self, path: &Path, contents: &[u8]) -> io::Result<()> {
        let parent = path
            .parent()
            .filter(|p| !p.as_os_str().is_empty())
            .ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!("no parent directory for {}", path.display()),
                )
            })?;
        fs::create_dir_all(parent)?;
        let file_name = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or("artifact");
        let tmp = parent.join(format!(".{file_name}.tmp"));
        let res = (|| {
            let mut f = fs::File::create(&tmp)?;
            match self.check_write(path, contents.len()) {
                Ok(()) => f.write_all(contents)?,
                Err((keep, err)) => {
                    f.write_all(&contents[..keep])?;
                    return Err(err);
                }
            }
            self.sync_file(path, &f)
        })();
        if let Err(e) = res {
            let _ = fs::remove_file(&tmp);
            return Err(e);
        }
        fs::rename(&tmp, path)?;
        // The rename is only durable once the directory entry is flushed.
        fs::File::open(parent)?.sync_all()?;
        Ok(())
    }

    /// Reads a file. Reads are never faulted — bit rot is modeled at
    /// rest via [`Vfs::apply_bit_flips`], not as transient read errors.
    pub fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        fs::read(path)
    }

    /// Applies every [`DiskFault::BitFlip`] of the plan to the tree
    /// under `root`: for each fault, the first file (walk in sorted
    /// order) whose path ends with the fault's suffix gets `mask` XORed
    /// into the byte at `offset % len`. Returns the damaged paths.
    ///
    /// This is the "tree at rest" half of the fault model: campaigns
    /// write through the faultable primitives above, then bit rot is
    /// stamped onto the finished artifacts for `pos scrub` to find.
    pub fn apply_bit_flips(&self, root: &Path) -> io::Result<Vec<PathBuf>> {
        let plan = match self.plan() {
            Some(p) => p,
            None => return Ok(Vec::new()),
        };
        let mut flipped = Vec::new();
        for fault in &plan.faults {
            if let DiskFault::BitFlip { file, offset, mask } = fault {
                if let Some(path) = find_by_suffix(root, file)? {
                    let mut bytes = fs::read(&path)?;
                    if bytes.is_empty() {
                        continue;
                    }
                    let at = (*offset as usize) % bytes.len();
                    bytes[at] ^= mask;
                    fs::write(&path, &bytes)?;
                    flipped.push(path);
                }
            }
        }
        Ok(flipped)
    }
}

/// Depth-first sorted walk for the first file whose path ends with
/// `suffix`.
fn find_by_suffix(root: &Path, suffix: &str) -> io::Result<Option<PathBuf>> {
    let mut entries: Vec<PathBuf> = fs::read_dir(root)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in &entries {
        if path.is_dir() {
            if let Some(found) = find_by_suffix(path, suffix)? {
                return Ok(Some(found));
            }
        } else if path.to_string_lossy().ends_with(suffix) {
            return Ok(Some(path.clone()));
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("pos-vfs-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn faulty(faults: Vec<DiskFault>) -> Vfs {
        Vfs::faulty(FaultPlan { seed: 1, faults }).unwrap()
    }

    #[test]
    fn real_vfs_appends_and_atomic_writes() {
        let dir = tmpdir("real");
        let vfs = Vfs::real();
        assert!(!vfs.is_faulty());
        let log = dir.join("a.log");
        vfs.create_sync(&log).unwrap();
        vfs.append_sync(&log, b"one").unwrap();
        vfs.append_sync(&log, b"two").unwrap();
        assert_eq!(fs::read(&log).unwrap(), b"onetwo");
        vfs.atomic_write(&dir.join("b.txt"), b"hello").unwrap();
        assert_eq!(fs::read(dir.join("b.txt")).unwrap(), b"hello");
    }

    #[test]
    fn enospc_fires_after_budget_and_lands_partial_prefix() {
        let dir = tmpdir("enospc");
        let vfs = faulty(vec![DiskFault::Enospc {
            after_bytes: 10,
            file: None,
        }]);
        let log = dir.join("j.log");
        vfs.create_sync(&log).unwrap();
        vfs.append_sync(&log, b"12345678").unwrap(); // 8 of 10
        let err = vfs.append_sync(&log, b"abcdef").unwrap_err();
        assert!(is_storage_full(&err), "{err:?}");
        assert_eq!(err.kind(), io::ErrorKind::StorageFull);
        // 2 bytes of budget were left; exactly those landed.
        assert_eq!(fs::read(&log).unwrap(), b"12345678ab");
        // The fault is one-shot: space "returns" afterwards.
        vfs.append_sync(&log, b"cdef").unwrap();
    }

    #[test]
    fn enospc_filter_spares_other_files() {
        let dir = tmpdir("enospc-filter");
        let vfs = faulty(vec![DiskFault::Enospc {
            after_bytes: 0,
            file: Some("journal.log".into()),
        }]);
        vfs.atomic_write(&dir.join("artifact.txt"), b"unaffected")
            .unwrap();
        let log = dir.join("journal.log");
        vfs.create_sync(&log).unwrap();
        let err = vfs.append_sync(&log, b"x").unwrap_err();
        assert!(is_storage_full(&err));
        assert_eq!(fs::read(&log).unwrap(), b"", "zero budget: clean boundary");
    }

    #[test]
    fn torn_write_keeps_prefix() {
        let dir = tmpdir("torn");
        let vfs = faulty(vec![DiskFault::TornWrite {
            at_write: 1,
            keep_bytes: 3,
            file: None,
        }]);
        let log = dir.join("j.log");
        vfs.create_sync(&log).unwrap();
        vfs.append_sync(&log, b"first").unwrap();
        let err = vfs.append_sync(&log, b"second").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::Interrupted);
        assert_eq!(fs::read(&log).unwrap(), b"firstsec");
    }

    #[test]
    fn fsync_failure_reports_but_data_reached_cache() {
        let dir = tmpdir("fsync");
        let vfs = faulty(vec![DiskFault::FsyncFail {
            at_fsync: 1, // 0 is create_sync's fsync
            file: Some("j.log".into()),
        }]);
        let log = dir.join("j.log");
        vfs.create_sync(&log).unwrap();
        let err = vfs.append_sync(&log, b"record").unwrap_err();
        assert!(err.to_string().contains("injected fsync failure"), "{err}");
        // The write itself went through — it was just never promised.
        assert_eq!(fs::read(&log).unwrap(), b"record");
        vfs.append_sync(&log, b"+more").unwrap();
    }

    #[test]
    fn atomic_write_under_fault_leaves_target_untouched() {
        let dir = tmpdir("atomic-fault");
        let vfs = faulty(vec![DiskFault::Enospc {
            after_bytes: 2,
            file: None,
        }]);
        let path = dir.join("artifact.txt");
        Vfs::real().atomic_write(&path, b"old").unwrap();
        let err = vfs.atomic_write(&path, b"newcontent").unwrap_err();
        assert!(is_storage_full(&err));
        assert_eq!(fs::read(&path).unwrap(), b"old", "old content survives");
        assert!(
            !dir.join(".artifact.txt.tmp").exists(),
            "temp removed on fault"
        );
    }

    #[test]
    fn bit_flips_apply_post_hoc_and_are_found_by_suffix() {
        let dir = tmpdir("bitflip");
        fs::create_dir_all(dir.join("run-0001")).unwrap();
        fs::write(dir.join("run-0001/out.log"), b"measurement").unwrap();
        let vfs = faulty(vec![DiskFault::BitFlip {
            file: "run-0001/out.log".into(),
            offset: 2,
            mask: 0x40,
        }]);
        let flipped = vfs.apply_bit_flips(&dir).unwrap();
        assert_eq!(flipped.len(), 1);
        let bytes = fs::read(dir.join("run-0001/out.log")).unwrap();
        assert_eq!(bytes[2], b'a' ^ 0x40);
    }

    #[test]
    fn plan_validation_rejects_noop_faults() {
        assert!(Vfs::faulty(FaultPlan {
            seed: 0,
            faults: vec![DiskFault::BitFlip {
                file: String::new(),
                offset: 0,
                mask: 1
            }],
        })
        .is_err());
        assert!(Vfs::faulty(FaultPlan {
            seed: 0,
            faults: vec![DiskFault::BitFlip {
                file: "x".into(),
                offset: 0,
                mask: 0
            }],
        })
        .is_err());
        assert!(Vfs::faulty(FaultPlan {
            seed: 0,
            faults: vec![DiskFault::Enospc {
                after_bytes: 1,
                file: Some(String::new())
            }],
        })
        .is_err());
    }

    #[test]
    fn plan_serializes_and_replays_identically() {
        let plan = FaultPlan {
            seed: 0xD15C,
            faults: vec![
                DiskFault::Enospc {
                    after_bytes: 4096,
                    file: Some("journal.log".into()),
                },
                DiskFault::FsyncFail {
                    at_fsync: 3,
                    file: None,
                },
            ],
        };
        let json = serde_json::to_string(&plan).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(back, plan);
    }

    #[test]
    fn clones_share_one_fault_schedule() {
        let dir = tmpdir("shared");
        let vfs = faulty(vec![DiskFault::Enospc {
            after_bytes: 4,
            file: None,
        }]);
        let clone = vfs.clone();
        let log = dir.join("j.log");
        vfs.create_sync(&log).unwrap();
        vfs.append_sync(&log, b"1234").unwrap();
        // The clone sees the budget already spent.
        let err = clone.append_sync(&log, b"5").unwrap_err();
        assert!(is_storage_full(&err));
    }
}
