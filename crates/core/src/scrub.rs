//! Bit-rot detection and self-healing repair of result trees
//! (`pos scrub`).
//!
//! `fsck` answers *is this tree intact?*; scrub answers *and if not, how
//! do we get the bytes back?* It walks every run directory against its
//! `checksums.json` manifest and the journaled run digest, classifies
//! each finding, and — in repair mode — heals what it can without
//! re-running the experiment:
//!
//! * **Corrupt or missing artifacts** are restored from *redundant
//!   copies*: a sweep's runs share many byte-identical artifacts (status
//!   files, repeated-parameter outputs, lane copies of replicated runs),
//!   so scrub builds a content-addressed index of every artifact that
//!   still matches its manifest hash and copies the bytes back from any
//!   donor. The manifest hash proves the restored file is exactly the
//!   original.
//! * **Rotted manifests** (journal digest mismatch) are rebuilt from the
//!   artifacts themselves; if the rebuilt manifest hashes to the
//!   journaled digest, the artifacts were fine and only the manifest had
//!   rotted.
//! * **Unlisted extra files** in a sealed run are deleted — the
//!   journal-anchored manifest is the root of trust.
//!
//! What redundancy cannot heal (no donor anywhere, a missing run
//! directory) is classified as *re-execution required*: the `pos scrub
//! --repair` CLI hands those runs to the same resume machinery that
//! repairs damaged finished trees, which wipes and re-executes exactly
//! the broken runs — spec + seed permitting — and converges the tree
//! back to byte-identical.
//!
//! The report is machine-readable (`--json`) so CI and fleet tooling can
//! act on scrub results without parsing prose.

use crate::fsck::{fsck, RunStatus};
use crate::hash::sha256_hex;
use crate::resultstore::{ResultStore, RunManifest, MANIFEST_FILE};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// What kind of damage a finding describes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FindingKind {
    /// An artifact's bytes no longer match its manifest hash.
    CorruptArtifact,
    /// A manifest-listed artifact is absent on disk.
    MissingArtifact,
    /// A file the manifest does not know about sits in a sealed run.
    ExtraArtifact,
    /// The manifest itself fails the journaled run digest.
    ManifestMismatch,
    /// A journaled-complete run directory is gone entirely.
    MissingRun,
    /// A run directory with no completion record (crash artifact).
    IncompleteRun,
    /// Tree-level damage (unreadable/corrupt journal, stranded run).
    TreeError,
}

/// What scrub did (or could do) about a finding.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RepairOutcome {
    /// Detection-only mode; no repair attempted.
    NotAttempted,
    /// Bytes restored from a redundant copy elsewhere in the tree.
    RestoredFromCopy {
        /// Tree-relative path of the donor file.
        source: String,
    },
    /// The manifest was rebuilt from intact artifacts and re-hashed to
    /// the journaled digest.
    ManifestRebuilt,
    /// The unlisted file was deleted.
    ExtraRemoved,
    /// No donor exists; only re-executing the run can heal this.
    NeedsReexecution,
    /// Scrub cannot heal this at all (e.g. a corrupt journal — the root
    /// of trust itself).
    Unrepairable,
}

/// One piece of damage scrub found.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScrubFinding {
    /// Zero-based run index, when the damage is run-scoped.
    pub run: Option<usize>,
    /// File name inside the run directory, when file-scoped.
    pub file: Option<String>,
    /// Damage classification.
    pub kind: FindingKind,
    /// Human-readable detail.
    pub detail: String,
    /// What happened to it.
    pub repair: RepairOutcome,
}

/// Machine-readable scrub result.
#[derive(Debug, Serialize, Deserialize)]
pub struct ScrubReport {
    /// The scrubbed tree.
    pub result_dir: String,
    /// Run directories examined.
    pub runs_scanned: usize,
    /// Artifact files checked against a manifest hash.
    pub files_scanned: usize,
    /// Everything found wrong, in run/file order.
    pub findings: Vec<ScrubFinding>,
    /// Findings healed in place (restored, rebuilt, or removed).
    pub repaired: usize,
    /// Runs that need re-execution to converge (sorted, deduplicated).
    pub reexecution_required: Vec<usize>,
    /// True when the tree had zero findings.
    pub clean: bool,
}

impl ScrubReport {
    /// Serializes the report as pretty JSON.
    pub fn to_json(&self) -> io::Result<String> {
        serde_json::to_string_pretty(self)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }

    /// Renders the human-readable report (`pos scrub` output).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("scrub {}\n", self.result_dir));
        out.push_str(&format!(
            "scanned: {} run(s), {} file(s)\n",
            self.runs_scanned, self.files_scanned
        ));
        for f in &self.findings {
            let loc = match (f.run, &f.file) {
                (Some(run), Some(file)) => format!("run {run:04} {file}"),
                (Some(run), None) => format!("run {run:04}"),
                _ => "tree".to_string(),
            };
            let fix = match &f.repair {
                RepairOutcome::NotAttempted => String::new(),
                RepairOutcome::RestoredFromCopy { source } => {
                    format!(" — restored from {source}")
                }
                RepairOutcome::ManifestRebuilt => " — manifest rebuilt from artifacts".into(),
                RepairOutcome::ExtraRemoved => " — removed".into(),
                RepairOutcome::NeedsReexecution => " — re-execution required".into(),
                RepairOutcome::Unrepairable => " — UNREPAIRABLE".into(),
            };
            out.push_str(&format!("finding: {loc}: {}{fix}\n", f.detail));
        }
        if self.clean {
            out.push_str("status: clean, zero findings\n");
        } else {
            out.push_str(&format!(
                "status: {} finding(s), {} repaired in place{}\n",
                self.findings.len(),
                self.repaired,
                if self.reexecution_required.is_empty() {
                    String::new()
                } else {
                    format!(", re-execution required: {:?}", self.reexecution_required)
                }
            ));
        }
        out
    }
}

/// Content-addressed index over every artifact in the tree that still
/// matches its manifest hash: hash → tree-relative donor path. Built
/// lazily, only when a repair actually needs a donor.
struct DonorIndex {
    by_hash: BTreeMap<String, PathBuf>,
}

impl DonorIndex {
    fn build(result_dir: &Path) -> io::Result<DonorIndex> {
        let store = ResultStore::open(result_dir);
        let mut by_hash = BTreeMap::new();
        for run_dir in store.list_runs()? {
            let manifest = match read_manifest(&run_dir) {
                Some(m) => m,
                None => continue,
            };
            for (name, want) in &manifest.files {
                if by_hash.contains_key(want) {
                    continue;
                }
                let path = run_dir.join(name);
                if let Ok(bytes) = fs::read(&path) {
                    if &sha256_hex(&bytes) == want {
                        by_hash.insert(want.clone(), path);
                    }
                }
            }
        }
        Ok(DonorIndex { by_hash })
    }

    fn donate(&self, hash: &str) -> Option<&PathBuf> {
        self.by_hash.get(hash)
    }
}

fn read_manifest(run_dir: &Path) -> Option<RunManifest> {
    let text = fs::read_to_string(run_dir.join(MANIFEST_FILE)).ok()?;
    serde_json::from_str(&text).ok()
}

fn rel_to(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .into_owned()
}

/// Walks `result_dir` against its manifests and journaled digests,
/// reporting (and with `repair` healing) every divergence. Re-execution
/// itself is the caller's job — the CLI hands
/// [`ScrubReport::reexecution_required`] to the resume machinery.
pub fn scrub(result_dir: &Path, repair: bool) -> io::Result<ScrubReport> {
    let fsck_report = fsck(result_dir)?;
    let store = ResultStore::open(result_dir);

    let mut report = ScrubReport {
        result_dir: result_dir.display().to_string(),
        runs_scanned: 0,
        files_scanned: 0,
        findings: Vec::new(),
        repaired: 0,
        reexecution_required: Vec::new(),
        clean: false,
    };

    // Count the surface actually checked: every manifest entry of every
    // run directory on disk.
    for run_dir in store.list_runs()? {
        report.runs_scanned += 1;
        if let Some(m) = read_manifest(&run_dir) {
            report.files_scanned += m.files.len();
        }
    }

    let mut donors: Option<DonorIndex> = None;
    let need_donors = |donors: &mut Option<DonorIndex>| -> io::Result<()> {
        if donors.is_none() {
            *donors = Some(DonorIndex::build(result_dir)?);
        }
        Ok(())
    };

    for run in &fsck_report.runs {
        let run_dir = result_dir.join(format!("run-{:04}", run.index));
        match &run.status {
            RunStatus::Verified => {}
            RunStatus::Damaged(v) => {
                // The manifest digest matched the journal, so the
                // manifest is the trustworthy description of this run;
                // heal the artifacts toward it.
                let manifest = read_manifest(&run_dir);
                for (names, kind) in [
                    (&v.corrupt, FindingKind::CorruptArtifact),
                    (&v.missing, FindingKind::MissingArtifact),
                ] {
                    for name in names {
                        let mut repair_outcome = RepairOutcome::NotAttempted;
                        if repair {
                            need_donors(&mut donors)?;
                            let want = manifest.as_ref().and_then(|m| m.files.get(name));
                            let donor = want
                                .and_then(|w| donors.as_ref().and_then(|d| d.donate(w)))
                                .cloned();
                            match donor {
                                Some(src) => {
                                    let bytes = fs::read(&src)?;
                                    store.write(&format!("run-{:04}/{name}", run.index), &bytes)?;
                                    report.repaired += 1;
                                    repair_outcome = RepairOutcome::RestoredFromCopy {
                                        source: rel_to(result_dir, &src),
                                    };
                                }
                                None => {
                                    repair_outcome = RepairOutcome::NeedsReexecution;
                                    report.reexecution_required.push(run.index);
                                }
                            }
                        }
                        report.findings.push(ScrubFinding {
                            run: Some(run.index),
                            file: Some(name.clone()),
                            kind: kind.clone(),
                            detail: match kind {
                                FindingKind::CorruptArtifact => {
                                    "bytes diverge from manifest hash (bit rot)".into()
                                }
                                _ => "listed in manifest but absent on disk".into(),
                            },
                            repair: repair_outcome,
                        });
                    }
                }
                for name in &v.extra {
                    let mut repair_outcome = RepairOutcome::NotAttempted;
                    if repair {
                        fs::remove_file(run_dir.join(name))?;
                        report.repaired += 1;
                        repair_outcome = RepairOutcome::ExtraRemoved;
                    }
                    report.findings.push(ScrubFinding {
                        run: Some(run.index),
                        file: Some(name.clone()),
                        kind: FindingKind::ExtraArtifact,
                        detail: "file not listed in the sealed manifest".into(),
                        repair: repair_outcome,
                    });
                }
            }
            RunStatus::DigestMismatch { journaled, .. } => {
                let mut repair_outcome = RepairOutcome::NotAttempted;
                if repair {
                    // If only the manifest rotted, resealing the intact
                    // artifacts reproduces the journaled digest exactly.
                    let rebuilt = store.finalize_run(run.index)?;
                    if &rebuilt == journaled {
                        report.repaired += 1;
                        repair_outcome = RepairOutcome::ManifestRebuilt;
                    } else {
                        repair_outcome = RepairOutcome::NeedsReexecution;
                        report.reexecution_required.push(run.index);
                    }
                }
                report.findings.push(ScrubFinding {
                    run: Some(run.index),
                    file: Some(MANIFEST_FILE.into()),
                    kind: FindingKind::ManifestMismatch,
                    detail: "manifest does not hash to the journaled run digest".into(),
                    repair: repair_outcome,
                });
            }
            RunStatus::Missing => {
                let repair_outcome = if repair {
                    report.reexecution_required.push(run.index);
                    RepairOutcome::NeedsReexecution
                } else {
                    RepairOutcome::NotAttempted
                };
                report.findings.push(ScrubFinding {
                    run: Some(run.index),
                    file: None,
                    kind: FindingKind::MissingRun,
                    detail: "journaled complete but directory is missing".into(),
                    repair: repair_outcome,
                });
            }
            RunStatus::Incomplete => {
                let repair_outcome = if repair {
                    report.reexecution_required.push(run.index);
                    RepairOutcome::NeedsReexecution
                } else {
                    RepairOutcome::NotAttempted
                };
                report.findings.push(ScrubFinding {
                    run: Some(run.index),
                    file: None,
                    kind: FindingKind::IncompleteRun,
                    detail: "no completion record (interrupted run)".into(),
                    repair: repair_outcome,
                });
            }
        }
    }

    for e in &fsck_report.errors {
        report.findings.push(ScrubFinding {
            run: None,
            file: None,
            kind: FindingKind::TreeError,
            detail: e.clone(),
            repair: if repair {
                RepairOutcome::Unrepairable
            } else {
                RepairOutcome::NotAttempted
            },
        });
    }

    report.reexecution_required.sort_unstable();
    report.reexecution_required.dedup();
    report.clean = report.findings.is_empty();
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::{Journal, JournalRecord, JOURNAL_FILE};
    use pos_simkernel::SimTime;

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("pos-scrub-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    /// A two-run sealed tree with a complete journal. Both runs carry an
    /// identical status artifact (the redundancy donor) plus a unique
    /// log each.
    fn sealed_tree(name: &str) -> (PathBuf, ResultStore) {
        let root = tmpdir(name);
        let store = ResultStore::create(&root, "u", "e", SimTime::ZERO).unwrap();
        let dir = store.dir().to_path_buf();
        let mut journal = Journal::create(dir.join(JOURNAL_FILE)).unwrap();
        journal
            .append(&JournalRecord::CampaignStarted {
                seed: 1,
                spec_digest: "d".repeat(64),
                total_runs: 2,
                testbed: "pos".into(),
                started_ns: 0,
            })
            .unwrap();
        for index in 0..2usize {
            store
                .write_run_output(index, "loadgen", &format!("RX: {index} packets\n"), "", 0)
                .unwrap();
            let digest = store.finalize_run(index).unwrap();
            journal
                .append(&JournalRecord::RunCompleted {
                    index,
                    success: true,
                    attempts: 1,
                    recoveries: 0,
                    recovery_time_ns: 0,
                    started_ns: 0,
                    finished_ns: 1,
                    rng_cursor: 0,
                    digest,
                    fault_trace: vec![],
                })
                .unwrap();
        }
        journal
            .append(&JournalRecord::CampaignFinished {
                finished_ns: 2,
                succeeded: 2,
                failed: 0,
            })
            .unwrap();
        (dir, store)
    }

    #[test]
    fn clean_tree_scrubs_with_zero_findings() {
        let (dir, _) = sealed_tree("clean");
        let report = scrub(&dir, false).unwrap();
        assert!(report.clean, "{}", report.render());
        assert!(report.findings.is_empty());
        assert_eq!(report.runs_scanned, 2);
        assert!(report.files_scanned >= 4);
    }

    #[test]
    fn corrupt_artifact_restored_from_redundant_copy() {
        let (dir, _) = sealed_tree("restore");
        // Both runs share a byte-identical status file; rot one copy.
        let victim = dir.join("run-0001/loadgen_measurement.status");
        let mut bytes = fs::read(&victim).unwrap();
        bytes[0] ^= 0x20;
        fs::write(&victim, bytes).unwrap();

        let detect = scrub(&dir, false).unwrap();
        assert!(!detect.clean);
        assert_eq!(detect.findings.len(), 1);
        assert_eq!(detect.findings[0].kind, FindingKind::CorruptArtifact);
        assert_eq!(detect.findings[0].repair, RepairOutcome::NotAttempted);

        let heal = scrub(&dir, true).unwrap();
        assert_eq!(heal.repaired, 1, "{}", heal.render());
        assert!(matches!(
            heal.findings[0].repair,
            RepairOutcome::RestoredFromCopy { .. }
        ));
        assert!(heal.reexecution_required.is_empty());
        assert!(scrub(&dir, false).unwrap().clean, "healed tree is clean");
    }

    #[test]
    fn unique_artifact_without_donor_needs_reexecution() {
        let (dir, _) = sealed_tree("reexec");
        // The per-run log is unique — no donor anywhere.
        let victim = dir.join("run-0000/loadgen_measurement.log");
        let mut bytes = fs::read(&victim).unwrap();
        bytes[0] ^= 0x01;
        fs::write(&victim, bytes).unwrap();

        let heal = scrub(&dir, true).unwrap();
        assert_eq!(heal.repaired, 0);
        assert_eq!(heal.reexecution_required, vec![0]);
        assert_eq!(heal.findings[0].repair, RepairOutcome::NeedsReexecution);
    }

    #[test]
    fn rotted_manifest_rebuilt_from_intact_artifacts() {
        let (dir, _) = sealed_tree("manifest");
        let manifest = dir.join("run-0000").join(MANIFEST_FILE);
        let mut bytes = fs::read(&manifest).unwrap();
        let at = bytes.len() / 2;
        bytes[at] ^= 0x08;
        fs::write(&manifest, bytes).unwrap();

        let detect = scrub(&dir, false).unwrap();
        assert_eq!(detect.findings[0].kind, FindingKind::ManifestMismatch);

        let heal = scrub(&dir, true).unwrap();
        assert_eq!(heal.findings[0].repair, RepairOutcome::ManifestRebuilt);
        assert!(scrub(&dir, false).unwrap().clean);
    }

    #[test]
    fn extra_file_in_sealed_run_removed() {
        let (dir, _) = sealed_tree("extra");
        fs::write(dir.join("run-0001/stray.tmp"), b"junk").unwrap();
        let heal = scrub(&dir, true).unwrap();
        assert_eq!(heal.findings[0].kind, FindingKind::ExtraArtifact);
        assert_eq!(heal.findings[0].repair, RepairOutcome::ExtraRemoved);
        assert!(!dir.join("run-0001/stray.tmp").exists());
        assert!(scrub(&dir, false).unwrap().clean);
    }

    #[test]
    fn report_json_roundtrips() {
        let (dir, _) = sealed_tree("json");
        fs::write(dir.join("run-0000/stray.tmp"), b"junk").unwrap();
        let report = scrub(&dir, false).unwrap();
        let json = report.to_json().unwrap();
        let back: ScrubReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.findings.len(), report.findings.len());
        assert_eq!(back.clean, report.clean);
    }
}
