//! # pos-eval
//!
//! The evaluation phase of the pos workflow (§4.4): *"The evaluation
//! script processes the result files [...] Based on this metadata, the
//! evaluation script can filter or aggregate specific parameters and
//! values. We integrated a parser for MoonGen's output into our plotting
//! scripts. [...] Our plotting scripts can create throughput figures and
//! latency distributions out-of-the-box using a set of different
//! representations (line plot, histogram, CDF, HDR, and violin plot). The
//! generated plots are exported to multiple formats, e.g., tex, svg."*
//!
//! * [`moongen`] — parses the MoonGen-style measurement output back into
//!   structured summaries.
//! * [`loader`] — walks a pos result tree, joining each run's output with
//!   its loop-parameter metadata; provides filtering/grouping/series
//!   extraction.
//! * [`stats`] — descriptive statistics with percentiles and confidence
//!   intervals.
//! * [`hdr`] — a high-dynamic-range histogram for latency distributions.
//! * [`plot`] — the five plot representations, rendered to SVG, pgfplots
//!   TeX, and CSV.

#![warn(missing_docs)]

pub mod hdr;
pub mod loader;
pub mod moongen;
pub mod plot;
pub mod stats;

pub use hdr::HdrHistogram;
pub use loader::{ParsedRun, ResultSet};
pub use moongen::{LatencySummary, MoonGenSummary};
pub use plot::{PlotKind, PlotSpec};
pub use stats::Summary;
