//! Parser for the MoonGen-style measurement output.
//!
//! Inverse of `pos-loadgen`'s `MoonGenReport::render_text`. The parser is
//! tolerant of extra lines (real tool output is noisy) but strict about
//! the lines it does claim to understand.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Latency statistics from the `Samples:` line.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencySummary {
    /// Number of recorded samples.
    pub samples: u64,
    /// Mean latency in nanoseconds.
    pub avg_ns: f64,
    /// Standard deviation in nanoseconds.
    pub stddev_ns: f64,
    /// 25th/50th/75th percentile in nanoseconds.
    pub quartiles_ns: [u64; 3],
}

/// Structured summary of one measurement run's generator output.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct MoonGenSummary {
    /// Offered rate in packets per second (from the header line).
    pub offered_pps: f64,
    /// Configured frame wire size in bytes.
    pub wire_size: usize,
    /// Measurement duration in seconds.
    pub duration_s: f64,
    /// Total packets transmitted.
    pub tx_frames: u64,
    /// Total wire bytes transmitted.
    pub tx_bytes: u64,
    /// Departures dropped at the generator NIC.
    pub tx_nic_drops: u64,
    /// Total packets received.
    pub rx_frames: u64,
    /// Total wire bytes received.
    pub rx_bytes: u64,
    /// Sequence-gap losses.
    pub lost: u64,
    /// Out-of-order arrivals.
    pub reordered: u64,
    /// Per-interval (tx_mpps, rx_mpps) pairs.
    pub intervals: Vec<(f64, f64)>,
    /// Latency statistics, when the run sampled latency.
    pub latency: Option<LatencySummary>,
}

impl MoonGenSummary {
    /// Achieved transmit rate in Mpps.
    pub fn tx_mpps(&self) -> f64 {
        if self.duration_s <= 0.0 {
            return 0.0;
        }
        self.tx_frames as f64 / self.duration_s / 1e6
    }

    /// Achieved receive (forwarded) rate in Mpps.
    pub fn rx_mpps(&self) -> f64 {
        if self.duration_s <= 0.0 {
            return 0.0;
        }
        self.rx_frames as f64 / self.duration_s / 1e6
    }

    /// Offered rate in Mpps.
    pub fn offered_mpps(&self) -> f64 {
        self.offered_pps / 1e6
    }

    /// Loss fraction relative to transmitted packets.
    pub fn loss_fraction(&self) -> f64 {
        if self.tx_frames == 0 {
            0.0
        } else {
            1.0 - self.rx_frames as f64 / self.tx_frames as f64
        }
    }
}

/// Why parsing failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MoonGenParseError {
    /// The `# moongen-sim:` header line is missing or malformed.
    MissingHeader,
    /// The cumulative TX/RX summary lines are missing.
    MissingSummary,
    /// A recognized line had an unparseable field.
    BadField {
        /// The offending line.
        line: String,
        /// What was expected.
        expected: &'static str,
    },
}

impl fmt::Display for MoonGenParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MoonGenParseError::MissingHeader => write!(f, "missing '# moongen-sim:' header"),
            MoonGenParseError::MissingSummary => write!(f, "missing cumulative TX/RX summary"),
            MoonGenParseError::BadField { line, expected } => {
                write!(f, "cannot parse {expected} from line: {line}")
            }
        }
    }
}

impl std::error::Error for MoonGenParseError {}

fn num_before<'a>(line: &'a str, suffix: &str) -> Option<&'a str> {
    // Extracts the whitespace-separated token immediately before `suffix`.
    let idx = line.find(suffix)?;
    line[..idx].split_whitespace().last()
}

/// Parses MoonGen-style output text into a summary.
pub fn parse(text: &str) -> Result<MoonGenSummary, MoonGenParseError> {
    let mut out = MoonGenSummary::default();
    let mut have_header = false;
    let mut have_tx_total = false;
    let mut have_rx_total = false;
    let mut interval_tx: Vec<f64> = Vec::new();
    let mut interval_rx: Vec<f64> = Vec::new();

    for line in text.lines() {
        let line = line.trim();
        if let Some(rest) = line.strip_prefix("# moongen-sim:") {
            // rate=<pps> pps, size=<B> B, duration=<dur>
            for part in rest.split(',') {
                let part = part.trim();
                if let Some(v) = part.strip_prefix("rate=") {
                    out.offered_pps = v.trim_end_matches(" pps").parse().map_err(|_| {
                        MoonGenParseError::BadField {
                            line: line.into(),
                            expected: "rate",
                        }
                    })?;
                } else if let Some(v) = part.strip_prefix("size=") {
                    out.wire_size = v.trim_end_matches(" B").parse().map_err(|_| {
                        MoonGenParseError::BadField {
                            line: line.into(),
                            expected: "size",
                        }
                    })?;
                } else if let Some(v) = part.strip_prefix("duration=") {
                    out.duration_s = parse_duration_s(v).ok_or(MoonGenParseError::BadField {
                        line: line.into(),
                        expected: "duration",
                    })?;
                }
            }
            have_header = true;
        } else if line.contains("packets with") {
            // Cumulative summaries.
            let count: u64 = num_before(line, " packets with")
                .and_then(|t| t.parse().ok())
                .ok_or(MoonGenParseError::BadField {
                    line: line.into(),
                    expected: "packet count",
                })?;
            let bytes: u64 = num_before(line, " bytes")
                .and_then(|t| t.parse().ok())
                .ok_or(MoonGenParseError::BadField {
                    line: line.into(),
                    expected: "byte count",
                })?;
            if line.contains("TX:") {
                out.tx_frames = count;
                out.tx_bytes = bytes;
                if line.contains("dropped at NIC") {
                    out.tx_nic_drops = num_before(line, " dropped at NIC")
                        .and_then(|t| t.parse().ok())
                        .ok_or(MoonGenParseError::BadField {
                            line: line.into(),
                            expected: "NIC drop count",
                        })?;
                }
                have_tx_total = true;
            } else if line.contains("RX:") {
                out.rx_frames = count;
                out.rx_bytes = bytes;
                if line.contains("lost") {
                    out.lost = num_before(line, " lost")
                        .and_then(|t| t.parse().ok())
                        .unwrap_or(0);
                }
                if line.contains("reordered") {
                    out.reordered = num_before(line, " reordered")
                        .and_then(|t| t.parse().ok())
                        .unwrap_or(0);
                }
                have_rx_total = true;
            }
        } else if line.contains("Mpps") {
            // Interval lines: "[Device: id=0] TX: 0.300000 Mpps, ..."
            let mpps: f64 = num_before(line, " Mpps")
                .and_then(|t| t.parse().ok())
                .ok_or(MoonGenParseError::BadField {
                    line: line.into(),
                    expected: "Mpps value",
                })?;
            if line.contains("TX:") {
                interval_tx.push(mpps);
            } else if line.contains("RX:") {
                interval_rx.push(mpps);
            }
        } else if let Some(rest) = line.strip_prefix("Samples: ") {
            // "Samples: N, Average: A ns, StdDev: S ns, Quartiles: a/b/c ns"
            let bad = |expected| MoonGenParseError::BadField {
                line: line.into(),
                expected,
            };
            let mut samples = 0u64;
            let mut avg = 0.0f64;
            let mut stddev = 0.0f64;
            let mut quartiles = [0u64; 3];
            for part in rest.split(", ") {
                if let Some(v) = part.strip_prefix("Average: ") {
                    avg = v
                        .trim_end_matches(" ns")
                        .parse()
                        .map_err(|_| bad("average"))?;
                } else if let Some(v) = part.strip_prefix("StdDev: ") {
                    stddev = v
                        .trim_end_matches(" ns")
                        .parse()
                        .map_err(|_| bad("stddev"))?;
                } else if let Some(v) = part.strip_prefix("Quartiles: ") {
                    let nums: Vec<u64> = v
                        .trim_end_matches(" ns")
                        .split('/')
                        .filter_map(|t| t.parse().ok())
                        .collect();
                    if nums.len() != 3 {
                        return Err(bad("quartiles"));
                    }
                    quartiles = [nums[0], nums[1], nums[2]];
                } else {
                    samples = part.parse().map_err(|_| bad("sample count"))?;
                }
            }
            out.latency = Some(LatencySummary {
                samples,
                avg_ns: avg,
                stddev_ns: stddev,
                quartiles_ns: quartiles,
            });
        }
    }

    if !have_header {
        return Err(MoonGenParseError::MissingHeader);
    }
    if !have_tx_total || !have_rx_total {
        return Err(MoonGenParseError::MissingSummary);
    }
    out.intervals = interval_tx.into_iter().zip(interval_rx).collect();
    Ok(out)
}

/// Parses the `SimDuration` display format back to seconds ("10s",
/// "500ms", "1.500s", "3333us", "67ns").
fn parse_duration_s(text: &str) -> Option<f64> {
    let text = text.trim();
    for (suffix, scale) in [("ns", 1e-9), ("us", 1e-6), ("ms", 1e-3), ("s", 1.0)] {
        if let Some(v) = text.strip_suffix(suffix) {
            // "ms" also ends with "s": try the longest suffixes first —
            // the array is ordered so that ns/us/ms are tried before s.
            return v.parse::<f64>().ok().map(|x| x * scale);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# moongen-sim: rate=300000 pps, size=64 B, duration=10s
[Device: id=0] TX: 0.300000 Mpps, 201.60 Mbit/s
[Device: id=1] RX: 0.290000 Mpps, 194.88 Mbit/s
[Device: id=0] TX: 0.300000 Mpps, 201.60 Mbit/s
[Device: id=1] RX: 0.291000 Mpps, 195.55 Mbit/s
[Device: id=0] TX: 3000000 packets with 192000000 bytes (incl. CRC), 0 dropped at NIC
[Device: id=1] RX: 2900000 packets with 185600000 bytes (incl. CRC), 100000 lost, 5 reordered
Samples: 1000, Average: 15723.4 ns, StdDev: 120.2 ns, Quartiles: 15600/15700/15800 ns
";

    #[test]
    fn parses_complete_output() {
        let s = parse(SAMPLE).unwrap();
        assert_eq!(s.offered_pps, 300000.0);
        assert_eq!(s.wire_size, 64);
        assert_eq!(s.duration_s, 10.0);
        assert_eq!(s.tx_frames, 3_000_000);
        assert_eq!(s.tx_bytes, 192_000_000);
        assert_eq!(s.tx_nic_drops, 0);
        assert_eq!(s.rx_frames, 2_900_000);
        assert_eq!(s.lost, 100_000);
        assert_eq!(s.reordered, 5);
        assert_eq!(s.intervals.len(), 2);
        assert_eq!(s.intervals[1], (0.3, 0.291));
        let l = s.latency.unwrap();
        assert_eq!(l.samples, 1000);
        assert!((l.avg_ns - 15723.4).abs() < 1e-6);
        assert_eq!(l.quartiles_ns, [15600, 15700, 15800]);
    }

    #[test]
    fn derived_metrics() {
        let s = parse(SAMPLE).unwrap();
        assert!((s.tx_mpps() - 0.3).abs() < 1e-9);
        assert!((s.rx_mpps() - 0.29).abs() < 1e-9);
        assert!((s.offered_mpps() - 0.3).abs() < 1e-9);
        assert!((s.loss_fraction() - 1.0 / 30.0).abs() < 1e-9);
    }

    #[test]
    fn latency_is_optional() {
        let without: String = SAMPLE
            .lines()
            .filter(|l| !l.starts_with("Samples:"))
            .collect::<Vec<_>>()
            .join("\n");
        let s = parse(&without).unwrap();
        assert!(s.latency.is_none());
    }

    #[test]
    fn missing_header_or_summary_rejected() {
        assert_eq!(parse("").unwrap_err(), MoonGenParseError::MissingHeader);
        assert_eq!(
            parse("# moongen-sim: rate=1 pps, size=64 B, duration=1s\n").unwrap_err(),
            MoonGenParseError::MissingSummary
        );
    }

    #[test]
    fn garbage_fields_rejected_with_line_context() {
        let bad = SAMPLE.replace("3000000 packets", "three packets");
        match parse(&bad).unwrap_err() {
            MoonGenParseError::BadField { line, .. } => assert!(line.contains("three packets")),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn unknown_lines_ignored() {
        let noisy = format!("starting up...\nEAL: probing devices\n{SAMPLE}\nbye\n");
        assert!(parse(&noisy).is_ok());
    }

    #[test]
    fn duration_suffixes() {
        assert_eq!(parse_duration_s("10s"), Some(10.0));
        assert_eq!(parse_duration_s("500ms"), Some(0.5));
        assert_eq!(parse_duration_s("1.500s"), Some(1.5));
        assert_eq!(parse_duration_s("250us"), Some(0.00025));
        assert_eq!(parse_duration_s("67ns"), Some(6.7e-8));
        assert_eq!(parse_duration_s("oops"), None);
    }

    #[test]
    fn roundtrip_with_loadgen_renderer() {
        // The authoritative compatibility test: whatever the generator
        // renders, the parser must reconstruct.
        use pos_loadgen::report::{IntervalStat, MoonGenReport};
        use pos_simkernel::SimDuration;
        let report = MoonGenReport {
            offered_pps: 123_456.0,
            wire_size: 1500,
            duration: SimDuration::from_secs(3),
            tx_attempted: 370_368,
            tx_frames: 370_000,
            tx_bytes: 555_000_000,
            tx_nic_drops: 368,
            rx_frames: 369_500,
            rx_bytes: 554_250_000,
            lost: 500,
            reordered: 2,
            latency_samples_ns: vec![100, 150, 200, 250, 300],
            intervals: vec![
                IntervalStat {
                    index: 0,
                    tx_frames: 123_456,
                    rx_frames: 123_400,
                    tx_bytes: 1,
                    rx_bytes: 1,
                },
                IntervalStat {
                    index: 1,
                    tx_frames: 123_456,
                    rx_frames: 123_300,
                    tx_bytes: 1,
                    rx_bytes: 1,
                },
            ],
        };
        let s = parse(&report.render_text()).unwrap();
        assert_eq!(s.offered_pps, 123_456.0);
        assert_eq!(s.wire_size, 1500);
        assert_eq!(s.duration_s, 3.0);
        assert_eq!(s.tx_frames, 370_000);
        assert_eq!(s.tx_nic_drops, 368);
        assert_eq!(s.rx_frames, 369_500);
        assert_eq!(s.lost, 500);
        assert_eq!(s.reordered, 2);
        assert_eq!(s.intervals.len(), 2);
        let l = s.latency.unwrap();
        assert_eq!(l.samples, 5);
        assert_eq!(l.avg_ns, 200.0);
        assert_eq!(l.quartiles_ns, [150, 200, 250]);
    }
}
