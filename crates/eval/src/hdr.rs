//! A high-dynamic-range histogram for latency distributions.
//!
//! Latency in the case study spans bare-metal microseconds to virtualized
//! milliseconds — four orders of magnitude. An HDR histogram records
//! values with a configurable number of significant decimal digits across
//! the whole range in constant memory, like Gil Tene's HdrHistogram: a
//! sequence of doubling bucket ranges, each subdivided linearly.

use serde::{Deserialize, Serialize};

/// The histogram.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HdrHistogram {
    /// Counts indexed by (bucket, sub-bucket), flattened.
    counts: Vec<u64>,
    sub_bucket_count: usize,
    sub_bucket_half_count: usize,
    /// log2 of sub_bucket_count.
    sub_bucket_bits: u32,
    highest_trackable: u64,
    total: u64,
    min: u64,
    max: u64,
}

impl HdrHistogram {
    /// Creates a histogram covering `1..=highest_trackable` with
    /// `significant_digits` (1–5) decimal digits of precision.
    ///
    /// # Panics
    /// Panics on `significant_digits` outside 1–5 or a zero range.
    pub fn new(highest_trackable: u64, significant_digits: u32) -> HdrHistogram {
        assert!(
            (1..=5).contains(&significant_digits),
            "significant digits must be 1..=5"
        );
        assert!(highest_trackable >= 2, "range must be at least 2");
        let largest_resolvable = 2 * 10u64.pow(significant_digits);
        let sub_bucket_bits = 64 - u64::leading_zeros(largest_resolvable - 1);
        let sub_bucket_count = 1usize << sub_bucket_bits;
        // Number of doubling buckets needed to reach highest_trackable.
        let mut buckets = 1usize;
        let mut reach = sub_bucket_count as u64;
        while reach < highest_trackable {
            reach = reach.saturating_mul(2);
            buckets += 1;
        }
        let len = (buckets + 1) * (sub_bucket_count / 2);
        HdrHistogram {
            counts: vec![0; len],
            sub_bucket_count,
            sub_bucket_half_count: sub_bucket_count / 2,
            sub_bucket_bits,
            highest_trackable,
            total: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Bucket of `value`: 0 while the value fits the linear sub-bucket
    /// range, then one per doubling.
    fn bucket_of(&self, value: u64) -> usize {
        (64 - u64::leading_zeros(value | (self.sub_bucket_count as u64 - 1)) - self.sub_bucket_bits)
            as usize
    }

    fn index_of(&self, value: u64) -> usize {
        let value = value.max(1);
        let bucket = self.bucket_of(value);
        let sub = (value >> bucket) as usize;
        // Bucket 0 uses all sub-buckets (indices 0..count); bucket b ≥ 1
        // only the top half (sub ∈ [half, count)), so the flattened index
        // is simply bucket·half + sub.
        bucket * self.sub_bucket_half_count + sub
    }

    /// Bucket a flattened index belongs to (inverse of [`Self::index_of`]).
    fn bucket_of_index(&self, index: usize) -> usize {
        if index < 2 * self.sub_bucket_half_count {
            0
        } else {
            index / self.sub_bucket_half_count - 1
        }
    }

    fn value_at_index(&self, index: usize) -> u64 {
        let bucket = self.bucket_of_index(index);
        let sub = index - bucket * self.sub_bucket_half_count;
        (sub as u64) << bucket
    }

    /// Highest value equivalent to the one stored at `index` (the top of
    /// that index's range).
    fn highest_equivalent(&self, index: usize) -> u64 {
        let scale = 1u64 << self.bucket_of_index(index);
        self.value_at_index(index) + scale - 1
    }

    /// Records one observation. Values above the trackable range are
    /// clamped to it (and counted), never dropped: overload tails matter.
    pub fn record(&mut self, value: u64) {
        self.record_n(value, 1);
    }

    /// Records `n` observations of the same value.
    pub fn record_n(&mut self, value: u64, n: u64) {
        let clamped = value.clamp(1, self.highest_trackable);
        let idx = self.index_of(clamped);
        self.counts[idx] += n;
        self.total += n;
        self.min = self.min.min(clamped);
        self.max = self.max.max(clamped);
    }

    /// Number of recorded observations.
    pub fn len(&self) -> u64 {
        self.total
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Smallest recorded value (clamped); `None` when empty.
    pub fn min(&self) -> Option<u64> {
        if self.is_empty() {
            None
        } else {
            Some(self.min)
        }
    }

    /// Largest recorded value (clamped); `None` when empty.
    pub fn max(&self) -> Option<u64> {
        if self.is_empty() {
            None
        } else {
            Some(self.max)
        }
    }

    /// Mean of the recorded values (at histogram resolution).
    pub fn mean(&self) -> Option<f64> {
        if self.is_empty() {
            return None;
        }
        let sum: f64 = self
            .counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| self.value_at_index(i) as f64 * c as f64)
            .sum();
        Some(sum / self.total as f64)
    }

    /// The value at percentile `p` (0–100).
    ///
    /// # Panics
    /// Panics if `p` is out of range or the histogram is empty.
    pub fn value_at_percentile(&self, p: f64) -> u64 {
        assert!((0.0..=100.0).contains(&p), "percentile out of range");
        assert!(!self.is_empty(), "empty histogram");
        let target = ((p / 100.0) * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return self.highest_equivalent(i).min(self.max);
            }
        }
        self.max
    }

    /// Iterates `(percentile, value)` pairs at standard HDR "nines" ticks,
    /// the series an HDR plot draws.
    pub fn percentile_series(&self) -> Vec<(f64, u64)> {
        if self.is_empty() {
            return Vec::new();
        }
        let ticks = [
            0.0, 10.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0, 99.9, 99.99, 100.0,
        ];
        ticks
            .iter()
            .map(|&p| (p, self.value_at_percentile(p)))
            .collect()
    }

    /// Merges another histogram (same configuration) into this one.
    ///
    /// # Panics
    /// Panics if configurations differ.
    pub fn merge(&mut self, other: &HdrHistogram) {
        assert_eq!(
            (
                self.sub_bucket_count,
                self.highest_trackable,
                self.counts.len()
            ),
            (
                other.sub_bucket_count,
                other.highest_trackable,
                other.counts.len()
            ),
            "cannot merge differently configured histograms"
        );
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// One hour in nanoseconds: a comfortable latency ceiling.
    const HOUR_NS: u64 = 3_600_000_000_000;

    #[test]
    fn records_and_counts() {
        let mut h = HdrHistogram::new(HOUR_NS, 3);
        assert!(h.is_empty());
        h.record(1_000);
        h.record(2_000);
        h.record_n(5_000, 3);
        assert_eq!(h.len(), 5);
        assert_eq!(h.min(), Some(1_000));
        assert_eq!(h.max(), Some(5_000));
    }

    #[test]
    fn precision_within_significant_digits() {
        for v in [1_234u64, 98_765, 1_234_567, 987_654_321] {
            let mut h = HdrHistogram::new(HOUR_NS, 3);
            h.record(v);
            let got = h.value_at_percentile(100.0);
            let err = (got as f64 - v as f64).abs() / v as f64;
            assert!(err < 1e-3, "value {v}: got {got}, rel err {err}");
        }
    }

    #[test]
    fn percentiles_of_uniform_ramp() {
        let mut h = HdrHistogram::new(1_000_000, 3);
        for v in 1..=10_000u64 {
            h.record(v * 100); // 100..=1_000_000, uniform
        }
        let p50 = h.value_at_percentile(50.0) as f64;
        assert!((p50 - 500_000.0).abs() / 500_000.0 < 0.01, "p50 {p50}");
        let p99 = h.value_at_percentile(99.0) as f64;
        assert!((p99 - 990_000.0).abs() / 990_000.0 < 0.01, "p99 {p99}");
        assert_eq!(h.value_at_percentile(100.0), 1_000_000);
    }

    #[test]
    fn mean_matches_at_resolution() {
        let mut h = HdrHistogram::new(1_000_000, 3);
        for v in [100u64, 200, 300, 400] {
            h.record(v);
        }
        let mean = h.mean().unwrap();
        assert!((mean - 250.0).abs() / 250.0 < 0.01, "got {mean}");
    }

    #[test]
    fn values_above_range_clamp_not_drop() {
        let mut h = HdrHistogram::new(1_000, 2);
        h.record(50_000);
        assert_eq!(h.len(), 1, "overflow must still be counted");
        assert_eq!(h.max(), Some(1_000));
    }

    #[test]
    fn zero_records_as_one() {
        let mut h = HdrHistogram::new(1_000, 2);
        h.record(0);
        assert_eq!(h.min(), Some(1));
    }

    #[test]
    fn empty_histogram_queries() {
        let h = HdrHistogram::new(1_000, 2);
        assert!(h.min().is_none());
        assert!(h.max().is_none());
        assert!(h.mean().is_none());
        assert!(h.percentile_series().is_empty());
    }

    #[test]
    #[should_panic(expected = "empty histogram")]
    fn percentile_of_empty_panics() {
        HdrHistogram::new(1_000, 2).value_at_percentile(50.0);
    }

    #[test]
    fn percentile_series_is_monotone() {
        let mut h = HdrHistogram::new(HOUR_NS, 3);
        let mut rng = 1234u64;
        for _ in 0..10_000 {
            rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1);
            h.record((rng >> 33) % 1_000_000 + 1);
        }
        let series = h.percentile_series();
        assert_eq!(series.first().unwrap().0, 0.0);
        assert_eq!(series.last().unwrap().0, 100.0);
        for w in series.windows(2) {
            assert!(w[0].1 <= w[1].1, "series must be monotone: {series:?}");
        }
    }

    #[test]
    fn merge_combines() {
        let mut a = HdrHistogram::new(HOUR_NS, 3);
        let mut b = HdrHistogram::new(HOUR_NS, 3);
        a.record_n(100, 10);
        b.record_n(10_000, 10);
        a.merge(&b);
        assert_eq!(a.len(), 20);
        assert_eq!(a.min(), Some(100));
        let p75 = a.value_at_percentile(75.0);
        assert!(p75 >= 9_900, "upper half comes from b, got {p75}");
    }

    #[test]
    #[should_panic(expected = "differently configured")]
    fn merge_mismatched_panics() {
        let mut a = HdrHistogram::new(1_000, 2);
        let b = HdrHistogram::new(1_000_000, 2);
        a.merge(&b);
    }

    #[test]
    #[should_panic(expected = "significant digits")]
    fn bad_digits_rejected() {
        HdrHistogram::new(1_000, 0);
    }

    proptest! {
        /// Recording any value keeps relative error within the precision
        /// bound (10^-digits) when queried back via p100.
        #[test]
        fn prop_precision(value in 1u64..HOUR_NS) {
            let mut h = HdrHistogram::new(HOUR_NS, 3);
            h.record(value);
            let got = h.value_at_percentile(100.0);
            let err = (got as f64 - value as f64).abs() / value as f64;
            prop_assert!(err < 2e-3, "value {value}, got {got}, err {err}");
        }

        /// Total count equals the number of record calls; percentiles stay
        /// within [min, max].
        #[test]
        fn prop_counts_and_bounds(values in proptest::collection::vec(1u64..1_000_000_000, 1..500)) {
            let mut h = HdrHistogram::new(HOUR_NS, 3);
            for &v in &values {
                h.record(v);
            }
            prop_assert_eq!(h.len(), values.len() as u64);
            for p in [0.0, 50.0, 99.0, 100.0] {
                let v = h.value_at_percentile(p);
                prop_assert!(v >= h.min().unwrap());
                prop_assert!(v <= h.max().unwrap());
            }
        }
    }
}
